#!/usr/bin/env bash
# Bench snapshots: builds the tree and leaves committed JSON records at the
# repo root, each validated against deepphi.bench.v1.
#
#  - simd          -> BENCH_simd.json: the two real-wall-time kernel benches
#                     (bench_micro_kernels, bench_gemm_fusion) with --json,
#                     merged into one document — the dispatched-vs-forced-
#                     scalar speedups on this machine.
#  - data_parallel -> BENCH_data_parallel.json: bench_data_parallel --json —
#                     the simulated replica-sweep step-throughput tables
#                     (Fig. 9 batch range) plus the real host wall-clock
#                     table of DataParallelTrainer on this machine.
#  - quant         -> BENCH_quant.json: bench_quant --json — served rows/s
#                     fp32 vs int8 at batch 64 on Fig. 7-class shapes, with
#                     the encode-accuracy delta.
#  - serve_tail    -> BENCH_serve_tail.json: bench_serve_tail --json — the
#                     lock-free latency histogram vs the retired sort-under-
#                     mutex recorder (record ns/op, contended throughput
#                     under a stats poller) and open-loop serving p99 with a
#                     live stats endpoint scraping.
#  - serve_registry -> BENCH_serve_registry.json: bench_serve_registry --json
#                     — two models with different latency budgets in one
#                     registry-backed server under bursty Poisson arrivals:
#                     static batching misses the tight SLO, SLO-aware
#                     adaptive batching holds every lane inside its budget.
#  - data_pipeline -> BENCH_data_pipeline.json: bench_data_pipeline --json —
#                     real chunk-ring drain throughput of the in-memory vs
#                     mmap'd-shard backings (per-stage ms, consumer stall)
#                     and end-to-end training with overlap efficiency.
#  - cluster       -> BENCH_cluster.json: bench_cluster --json — simulated
#                     C-cards x R-replicas scaling with communication share,
#                     the tree/rdouble/ring all-reduce sweep the
#                     size-adaptive selection is built on, and a real
#                     cluster-attached training run.
#
# Usage: scripts/bench_snapshot.sh [build-dir] [name...]
#   Names default to all snapshots. The first argument is taken as the
#   build directory only when it is not a snapshot name AND is an existing
#   directory (or contains a '/'); it defaults to "build". Spell a fresh
#   build directory with a path form ("./mybuild") so a mistyped snapshot
#   name fails instead of silently becoming a build directory.
set -euo pipefail

cd "$(dirname "$0")/.."

KNOWN=(simd data_parallel quant serve_tail serve_registry cluster data_pipeline)

is_known() {
  local n
  for n in "${KNOWN[@]}"; do
    [ "$n" = "$1" ] && return 0
  done
  return 1
}

usage() {
  echo "usage: scripts/bench_snapshot.sh [build-dir] [name...]" >&2
  echo "valid snapshot names: ${KNOWN[*]}" >&2
  exit 2
}

BUILD_DIR=build
if [ $# -gt 0 ] && ! is_known "$1"; then
  case "$1" in
    */*) BUILD_DIR="$1"; shift ;;
    *) if [ -d "$1" ]; then
         BUILD_DIR="$1"; shift
       else
         echo "unknown snapshot '$1'" >&2
         usage
       fi ;;
  esac
fi
NAMES=("$@")
if [ ${#NAMES[@]} -eq 0 ]; then
  NAMES=("${KNOWN[@]}")
fi

TARGETS=(deepphi_json_check)
for name in "${NAMES[@]}"; do
  case "$name" in
    simd)          TARGETS+=(bench_micro_kernels bench_gemm_fusion) ;;
    data_parallel) TARGETS+=(bench_data_parallel) ;;
    quant)         TARGETS+=(bench_quant) ;;
    serve_tail)    TARGETS+=(bench_serve_tail) ;;
    serve_registry) TARGETS+=(bench_serve_registry) ;;
    cluster)       TARGETS+=(bench_cluster) ;;
    data_pipeline) TARGETS+=(bench_data_pipeline) ;;
    *) echo "unknown snapshot '$name'" >&2
       usage ;;
  esac
done

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${TARGETS[@]}"

# validate OUT [extra json_check args...] — the shared deepphi.bench.v1
# contract every snapshot must satisfy, plus per-snapshot requirements.
validate() {
  local out="$1"
  shift
  "$BUILD_DIR/tools/deepphi_json_check" --require=schema --require=bench \
    --require=tables --require=columns --require=rows \
    --expect=deepphi.bench.v1 "$@" "$out"
}

snapshot_simd() {
  local out="BENCH_simd.json"
  local micro_json fusion_json
  micro_json="$(mktemp)"
  fusion_json="$(mktemp)"
  # Keep the google-benchmark section to the per-tier GEMM variants; the
  # hand-timed Fig. 7 tables are what lands in the JSON.
  "$BUILD_DIR/bench/bench_micro_kernels" \
    --benchmark_filter='BM_GemmBlocked<' \
    --batch=256 --reps=3 --max_hidden=4096 --json="$micro_json"
  "$BUILD_DIR/bench/bench_gemm_fusion" \
    --batch=256 --reps=3 --max_hidden=4096 --json="$fusion_json"
  # Each bench writes its own deepphi.bench.v1 document; concatenate their
  # tables into one document so the snapshot is a single valid file.
  jq -s '{schema: .[0].schema,
          bench: "simd_snapshot",
          simd_tier: .[0].simd_tier,
          benches: [.[].bench],
          tables: (map(.tables) | add)}' \
    "$micro_json" "$fusion_json" > "$out"
  rm -f "$micro_json" "$fusion_json"
  validate "$out"
  echo "snapshot written to $out"
}

snapshot_data_parallel() {
  local out="BENCH_data_parallel.json"
  "$BUILD_DIR/bench/bench_data_parallel" --model=both --json="$out"
  validate "$out" --require=speedup
  echo "snapshot written to $out"
}

snapshot_quant() {
  local out="BENCH_quant.json"
  "$BUILD_DIR/bench/bench_quant" --seconds=1 --json="$out"
  validate "$out" --require=precision --require=speedup --expect=int8
  echo "snapshot written to $out"
}

snapshot_serve_tail() {
  local out="BENCH_serve_tail.json"
  "$BUILD_DIR/bench/bench_serve_tail" --seconds=1 --json="$out"
  validate "$out" --require=speedup_vs_mutex --require=p99_ms
  echo "snapshot written to $out"
}

snapshot_serve_registry() {
  local out="BENCH_serve_registry.json"
  "$BUILD_DIR/bench/bench_serve_registry" --seconds=2 --json="$out"
  validate "$out" --require=budget_ms --require=p99_ms --require=slo_met
  echo "snapshot written to $out"
}

snapshot_cluster() {
  local out="BENCH_cluster.json"
  "$BUILD_DIR/bench/bench_cluster" --json="$out"
  validate "$out" --require=comm_share --require=auto_alg \
    --require=best_fixed --require=speedup
  echo "snapshot written to $out"
}

snapshot_data_pipeline() {
  local out="BENCH_data_pipeline.json"
  # A larger corpus than the bench default so each ring drain takes long
  # enough for the rows/s and per-stage numbers to be stable.
  "$BUILD_DIR/bench/bench_data_pipeline" --examples=262144 --reps=5 \
    --work="$BUILD_DIR/bench_data_pipeline_work" --json="$out"
  validate "$out" --require=vs_memory --require=overlap_efficiency
  echo "snapshot written to $out"
}

for name in "${NAMES[@]}"; do
  "snapshot_$name"
done
