#!/usr/bin/env bash
# Bench snapshots: builds the tree and leaves two committed JSON records at
# the repo root, both validated against deepphi.bench.v1.
#
#  - BENCH_simd.json: the two real-wall-time kernel benches
#    (bench_micro_kernels, bench_gemm_fusion) with --json, merged into one
#    document — the dispatched-vs-forced-scalar speedups on this machine.
#  - BENCH_data_parallel.json: bench_data_parallel --json — the simulated
#    replica-sweep step-throughput tables (Fig. 9 batch range) plus the real
#    host wall-clock table of DataParallelTrainer on this machine.
#
# Usage: scripts/bench_snapshot.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_simd.json"
DP_OUT="BENCH_data_parallel.json"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target bench_micro_kernels bench_gemm_fusion bench_data_parallel \
  deepphi_json_check

MICRO_JSON="$(mktemp)"
FUSION_JSON="$(mktemp)"
trap 'rm -f "$MICRO_JSON" "$FUSION_JSON"' EXIT

# Keep the google-benchmark section to the per-tier GEMM variants; the
# hand-timed Fig. 7 tables are what lands in the JSON.
"$BUILD_DIR/bench/bench_micro_kernels" \
  --benchmark_filter='BM_GemmBlocked<' \
  --batch=256 --reps=3 --max_hidden=4096 --json="$MICRO_JSON"
"$BUILD_DIR/bench/bench_gemm_fusion" \
  --batch=256 --reps=3 --max_hidden=4096 --json="$FUSION_JSON"

# Each bench writes its own deepphi.bench.v1 document; concatenate their
# tables into one document so the snapshot is a single valid file.
jq -s '{schema: .[0].schema,
        bench: "simd_snapshot",
        simd_tier: .[0].simd_tier,
        benches: [.[].bench],
        tables: (map(.tables) | add)}' \
  "$MICRO_JSON" "$FUSION_JSON" > "$OUT"

"$BUILD_DIR/tools/deepphi_json_check" --require=schema --require=bench \
  --require=tables --require=columns --require=rows \
  --expect=deepphi.bench.v1 "$OUT"

# Data-parallel replica sweep: one bench, one document — no merge needed.
"$BUILD_DIR/bench/bench_data_parallel" --model=both --json="$DP_OUT"

"$BUILD_DIR/tools/deepphi_json_check" --require=schema --require=bench \
  --require=tables --require=columns --require=rows --require=speedup \
  --expect=deepphi.bench.v1 "$DP_OUT"

echo "snapshots written to $OUT and $DP_OUT"
