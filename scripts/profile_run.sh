#!/usr/bin/env bash
# One-shot profiled training run: builds the tree, trains a chunked Sparse
# Autoencoder with the profiler and telemetry armed, and validates both
# artifacts with deepphi_json_check. Leaves:
#   <build-dir>/profile_run.trace.json   — Chrome trace (ui.perfetto.dev)
#   <build-dir>/profile_run.jsonl        — JSONL run telemetry
#
# Usage: scripts/profile_run.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DDEEPPHI_BUILD_TESTS=OFF -DDEEPPHI_BUILD_BENCH=OFF \
  -DDEEPPHI_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)" --target deepphi_train deepphi_json_check

TRACE="$BUILD_DIR/profile_run.trace.json"
TELEMETRY="$BUILD_DIR/profile_run.jsonl"

"$BUILD_DIR/tools/deepphi_train" --model=sae --synthetic=digits \
  --examples=4096 --epochs=2 --hidden=32 --chunk=1024 \
  --profile "$TRACE" --telemetry "$TELEMETRY"

"$BUILD_DIR/tools/deepphi_json_check" --require=traceEvents \
  "--expect=host (measured)" --expect=loading "$TRACE"
"$BUILD_DIR/tools/deepphi_json_check" --jsonl --require=record --require=seq \
  --expect=deepphi.telemetry.v1 --expect=run_header --expect=run_summary \
  "$TELEMETRY"

echo
echo "trace:     $TRACE  (load in https://ui.perfetto.dev)"
echo "telemetry: $TELEMETRY"
