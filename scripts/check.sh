#!/usr/bin/env bash
# Sanitized build + test run: configures a separate build tree with
# DEEPPHI_SANITIZE=ON (ASan + UBSan), builds the library and tests, and runs
# ctest. Benchmarks and examples are skipped — the sanitizers slow them to a
# crawl and the tests already cover the kernels they exercise.
#
# Usage: scripts/check.sh [build-dir]   (default: build-sanitize)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDEEPPHI_SANITIZE=ON \
  -DDEEPPHI_BUILD_BENCH=OFF \
  -DDEEPPHI_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
