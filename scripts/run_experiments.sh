#!/usr/bin/env bash
# Regenerates every reproduced table and figure (EXPERIMENTS.md's source of
# truth) into experiments_output/.
#
#   ./scripts/run_experiments.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"
OUT="experiments_output"
mkdir -p "$OUT"

if [ ! -d "$BUILD/bench" ]; then
  echo "build directory '$BUILD' not found; run:" >&2
  echo "  cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "=== $name ==="
  "$b" | tee "$OUT/$name.txt"
  echo
done
echo "all outputs in $OUT/"
