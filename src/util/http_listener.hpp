// Minimal blocking HTTP/1.0 listener for the live stats endpoint — and the
// matching one-shot client used by deepphi_top, tests, and benches.
//
// Deliberately tiny: GET only, loopback only, one connection served at a
// time, `Connection: close` on every response. That is exactly what a stats
// scrape needs (a poller every second or so) and nothing a real web server
// needs; requests never touch the serving hot path — handlers run on the
// listener's own accept thread.
//
//   util::HttpListener http(0, [](const std::string& path) {
//     util::HttpListener::Response r;
//     if (path == "/metrics") r.body = render();
//     else r.status = 404;
//     return r;
//   });
//   ... http.port() is the bound port (pass 0 to let the kernel pick) ...
//
// stop() (also the destructor) unblocks the accept loop and joins the
// thread; in-flight handler calls finish first.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace deepphi::util {

class HttpListener {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  /// Called with the full request target (e.g. "/stats.json" or
  /// "/admin/swap?model=a&path=b") for every GET; exceptions become 500
  /// responses. Handlers that take parameters split the target with
  /// split_target() / parse_query() below.
  using Handler = std::function<Response(const std::string& target)>;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see port()) and starts the
  /// accept thread. Throws util::Error when the bind fails.
  HttpListener(int port, Handler handler);
  ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// The actually bound port.
  int port() const { return port_; }

  /// Requests answered so far (any status).
  std::int64_t requests_served() const;

  /// Stops accepting, joins the accept thread. Idempotent.
  void stop();

 private:
  void accept_loop();

  int listen_fd_ = -1;
  int port_ = 0;
  Handler handler_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> served_{0};
  std::thread thread_;
};

/// One-shot HTTP GET against 127.0.0.1-style hosts: connects, sends the
/// request, reads to EOF, and returns the response body. Throws util::Error
/// on connection failure, timeout (`timeout_s` covers connect and read), or
/// a non-200 status.
std::string http_get(const std::string& host, int port,
                     const std::string& path, double timeout_s = 5.0);

/// Splits a request target at the first '?': "/p?a=1" -> {"/p", "a=1"},
/// "/p" -> {"/p", ""}.
std::pair<std::string, std::string> split_target(const std::string& target);

/// Parses "k1=v1&k2=v2" into a map, percent-decoding %XX escapes and '+' in
/// values. Keys without '=' map to "". Later duplicates win.
std::map<std::string, std::string> parse_query(const std::string& query);

}  // namespace deepphi::util
