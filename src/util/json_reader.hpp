// Small recursive-descent JSON parser returning an immutable value tree.
// Counterpart to util::JsonWriter; used by deepphi_top to digest
// /stats.json, and by tests to check emitted records structurally instead
// of by substring.
//
//   util::JsonValue v = util::parse_json(body);
//   double p99 = v.at("histograms").at("serve.latency").at("p99").as_number();
//
// Strict where it matters (rejects trailing garbage, malformed escapes,
// bad numbers — throws util::Error with a byte offset), minimal elsewhere:
// numbers are doubles, \uXXXX escapes outside ASCII are passed through
// UTF-8-encoded for the BMP only.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace deepphi::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Typed accessors; throw util::Error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member access. at() throws when missing; has() probes;
  /// get(key) returns a null value when missing.
  bool has(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;

  /// Array element access with bounds checking.
  const JsonValue& at(std::size_t index) const;
  std::size_t size() const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document. Throws util::Error (with the byte
/// offset of the problem) on any syntax error or trailing non-whitespace.
JsonValue parse_json(const std::string& text);

}  // namespace deepphi::util
