#include "util/rng.hpp"

#include <cmath>

namespace deepphi::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : seed_(seed), stream_(stream) {
  // Mix seed and stream through SplitMix64 so that nearby (seed, stream)
  // pairs land far apart in state space.
  SplitMix64 sm(seed ^ (0x632be59bd9b4e019ULL * (stream + 1)));
  for (auto& s : s_) s = sm.next();
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

float Rng::uniform_float() {
  // 24 high bits → float in [0, 1).
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection sampling to kill modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

Rng Rng::split(std::uint64_t k) const {
  // Derive a substream from the original seed material, not the evolving
  // state, so split(k) is stable regardless of how much has been drawn.
  return Rng(seed_, stream_ * 0x9e3779b97f4a7c15ULL + k + 1);
}

}  // namespace deepphi::util
