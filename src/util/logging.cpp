#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "util/string_util.hpp"

namespace deepphi::util {

namespace {

LogLevel initial_level() {
  LogLevel level = LogLevel::kInfo;
  if (const char* env = std::getenv("DEEPPHI_LOG_LEVEL")) {
    if (!parse_log_level(env, level))
      std::fprintf(stderr,
                   "[WARN ] unknown DEEPPHI_LOG_LEVEL '%s' "
                   "(debug|info|warn|error|off); using info\n",
                   env);
  }
  return level;
}

std::atomic<LogLevel>& level_flag() {
  static std::atomic<LogLevel> g_level{initial_level()};
  return g_level;
}

std::mutex g_mutex;
LogSink g_sink;  // empty = stderr; guarded by g_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

// ISO-8601 UTC with millisecond precision: 2026-08-06T12:34:56.789Z.
std::string iso8601_now() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char buf[40];
  const std::size_t n = std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof buf - n, ".%03ldZ", ts.tv_nsec / 1000000);
  return buf;
}

}  // namespace

void set_log_level(LogLevel level) {
  level_flag().store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return level_flag().load(std::memory_order_relaxed); }

bool parse_log_level(const std::string& name, LogLevel& out) {
  const std::string v = to_lower(name);
  if (v == "debug") out = LogLevel::kDebug;
  else if (v == "info") out = LogLevel::kInfo;
  else if (v == "warn" || v == "warning") out = LogLevel::kWarn;
  else if (v == "error") out = LogLevel::kError;
  else if (v == "off" || v == "none") out = LogLevel::kOff;
  else return false;
  return true;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

int log_thread_id() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "%s [%s] [t%02d] ",
                iso8601_now().c_str(), level_name(level), log_thread_id());
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, prefix + message);
  } else {
    std::fprintf(stderr, "%s%s\n", prefix, message.c_str());
  }
}

}  // namespace deepphi::util
