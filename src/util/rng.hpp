// Deterministic, splittable random number generation.
//
// Training code never touches std::mt19937: we need (a) identical streams on
// sequential and parallel runs for parity tests, and (b) cheap per-thread
// streams. xoshiro256** provides the core generator; SplitMix64 expands a
// (seed, stream) pair into generator state, so Rng(seed, k) for distinct k are
// statistically independent.
#pragma once

#include <cstdint>

namespace deepphi::util {

/// SplitMix64: used to seed xoshiro and as a tiny standalone generator for
/// hashing-style uses.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// wrapped with convenience distributions used by the trainers.
class Rng {
 public:
  /// Seeds the generator from (seed, stream). Distinct streams with the same
  /// seed produce independent sequences; used to give each thread / purpose
  /// its own stream: Rng(seed, hash(thread, purpose)).
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform float in [0, 1) — the type used by sampling kernels.
  float uniform_float();

  /// Standard normal via Box–Muller (cached pair).
  double normal();
  /// Normal with the given mean/stddev.
  double normal(double mean, double stddev);

  /// Bernoulli(p) — true with probability p.
  bool bernoulli(double p);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Long-jump equivalent: returns a new Rng for substream `k`, derived
  /// deterministically from this generator's seed material.
  Rng split(std::uint64_t k) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_ = 0;
  std::uint64_t stream_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace deepphi::util
