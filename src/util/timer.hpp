// Wall-clock timing helpers used by the measurement paths and by benches.
#pragma once

#include <chrono>

namespace deepphi::util {

/// Monotonic stopwatch. Construction starts it.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace deepphi::util
