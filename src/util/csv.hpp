// Table/CSV emitters for benchmark output. Benches print both a fixed-width
// human-readable table (what the paper's figures show as curves) and an
// optional CSV file for plotting.
#pragma once

#include <iosfwd>
#include <type_traits>
#include <string>
#include <vector>

namespace deepphi::util {

/// Accumulates rows of stringified cells, then renders either aligned text or
/// CSV. All rows must have the same number of cells as the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.4g and integers as-is.
  static std::string cell(double v);
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  static std::string cell(T v) {
    return std::to_string(v);
  }
  static std::string cell(const std::string& v) { return v; }

  /// Renders an aligned, pipe-separated text table.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our cells; commas in
  /// cells are rejected).
  std::string to_csv() const;

  /// Writes CSV to `path`; throws util::Error on I/O failure.
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

  /// Raw access for non-CSV serializers (bench --json output).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepphi::util
