// Tiny --key=value command-line option parser used by benches and examples.
// Not a general argv framework: flags are always of the form --name=value or
// --name (boolean true); unknown flags throw so experiments never silently
// ignore a typo'd parameter.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace deepphi::util {

class Options {
 public:
  Options() = default;

  /// Parses argv. Throws util::Error on malformed arguments. Positional
  /// arguments (no leading --) are collected in positional().
  static Options parse(int argc, const char* const* argv);

  /// Declares a known flag so validate() can reject unknown ones, and so
  /// help() can print it.
  Options& declare(const std::string& name, const std::string& help,
                   const std::string& default_value = "");

  /// Throws if an undeclared flag was supplied.
  void validate() const;

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Every value supplied for a repeatable flag, in argv order (get_string
  /// returns the last one). Empty when the flag was never supplied.
  std::vector<std::string> get_repeated(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Formatted help text for declared flags.
  std::string help(const std::string& program) const;

 private:
  struct Decl {
    std::string help;
    std::string default_value;
  };
  std::map<std::string, std::string> values_;
  // Flags may repeat (e.g. one --model per served model); every occurrence
  // is kept here in argv order while values_ holds the last one.
  std::map<std::string, std::vector<std::string>> repeated_;
  std::map<std::string, Decl> decls_;
  std::vector<std::string> positional_;
};

}  // namespace deepphi::util
