// Minimal leveled logger. Single global sink (stderr by default); thread-safe
// line-at-a-time output. Benches and examples use INFO; the library itself
// logs sparingly (device setup, chunk pipeline events at DEBUG).
#pragma once

#include <sstream>
#include <string>

namespace deepphi::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line (thread-safe). Prefer the macros below.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace deepphi::util

#define DEEPPHI_LOG(level) ::deepphi::util::detail::LogMessage(level)
#define DEEPPHI_DEBUG() DEEPPHI_LOG(::deepphi::util::LogLevel::kDebug)
#define DEEPPHI_INFO() DEEPPHI_LOG(::deepphi::util::LogLevel::kInfo)
#define DEEPPHI_WARN() DEEPPHI_LOG(::deepphi::util::LogLevel::kWarn)
#define DEEPPHI_ERROR() DEEPPHI_LOG(::deepphi::util::LogLevel::kError)
