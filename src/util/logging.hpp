// Minimal leveled logger. Single global sink (stderr by default); thread-safe
// line-at-a-time output. Benches and examples use INFO; the library itself
// logs sparingly (device setup, chunk pipeline events at DEBUG).
//
// Each line is prefixed "<ISO-8601 UTC timestamp> [LEVEL] [tNN]" where NN is
// a small dense per-process thread id (assigned in first-log order, 0 = the
// first logging thread). The initial minimum level honors the
// DEEPPHI_LOG_LEVEL environment variable (debug|info|warn|error|off); a sink
// hook lets tests and telemetry capture formatted lines in place of stderr.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace deepphi::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. The startup value
/// comes from DEEPPHI_LOG_LEVEL when set, else INFO.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Returns false and leaves `out` untouched on unknown names.
bool parse_log_level(const std::string& name, LogLevel& out);

/// Receives each fully formatted line (timestamp/level/thread prefix
/// included, no trailing newline). Called under the logging mutex: exactly
/// one invocation at a time.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replaces the output sink; an empty function restores the default
/// (stderr). Not thread-safe against concurrent logging — install sinks at
/// startup or in single-threaded test sections.
void set_log_sink(LogSink sink);

/// Emits one line (thread-safe). Prefer the macros below.
void log_line(LogLevel level, const std::string& message);

/// Small dense id of the calling thread as used in log prefixes.
int log_thread_id();

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace deepphi::util

#define DEEPPHI_LOG(level) ::deepphi::util::detail::LogMessage(level)
#define DEEPPHI_DEBUG() DEEPPHI_LOG(::deepphi::util::LogLevel::kDebug)
#define DEEPPHI_INFO() DEEPPHI_LOG(::deepphi::util::LogLevel::kInfo)
#define DEEPPHI_WARN() DEEPPHI_LOG(::deepphi::util::LogLevel::kWarn)
#define DEEPPHI_ERROR() DEEPPHI_LOG(::deepphi::util::LogLevel::kError)
