#include "util/http_listener.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace deepphi::util {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

/// send() the whole buffer; MSG_NOSIGNAL so a client that hung up yields
/// EPIPE instead of killing the process with SIGPIPE.
bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

void set_timeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpListener::HttpListener(int port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DEEPPHI_CHECK_MSG(listen_fd_ >= 0,
                    "http: socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("http: cannot listen on 127.0.0.1:" + std::to_string(port) +
                ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  thread_ = std::thread([this] { accept_loop(); });
}

HttpListener::~HttpListener() { stop(); }

std::int64_t HttpListener::requests_served() const {
  return served_.load(std::memory_order_relaxed);
}

void HttpListener::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpListener::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Poll with a short timeout so stop() is noticed without needing a
    // wake-up connection.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_timeout(fd, 2.0);

    // Read until the end of the request headers (or a small cap — stats
    // clients send one short GET line).
    std::string req;
    char buf[1024];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.find("\n\n") == std::string::npos && req.size() < 8192) {
      const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) break;
      req.append(buf, static_cast<std::size_t>(r));
    }

    Response resp;
    std::istringstream line(req.substr(0, req.find('\n')));
    std::string method, target;
    line >> method >> target;
    if (method.empty() || target.empty()) {
      resp.status = 400;
      resp.body = "malformed request\n";
    } else if (method != "GET") {
      resp.status = 405;
      resp.body = "only GET is supported\n";
    } else {
      try {
        resp = handler_(target);
      } catch (const std::exception& e) {
        resp = Response{};
        resp.status = 500;
        resp.body = std::string("handler error: ") + e.what() + "\n";
        DEEPPHI_WARN() << "http handler failed for " << target << ": "
                       << e.what();
      }
    }

    std::ostringstream head;
    head << "HTTP/1.0 " << resp.status << " " << status_text(resp.status)
         << "\r\nContent-Type: " << resp.content_type
         << "\r\nContent-Length: " << resp.body.size()
         << "\r\nConnection: close\r\n\r\n";
    const std::string header = head.str();
    if (send_all(fd, header.data(), header.size()))
      send_all(fd, resp.body.data(), resp.body.size());
    // Count before close: a client that sees EOF must also see the bump.
    served_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
  }
}

std::pair<std::string, std::string> split_target(const std::string& target) {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return {target, ""};
  return {target.substr(0, q), target.substr(q + 1)};
}

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string percent_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> params;
  std::size_t start = 0;
  while (start <= query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        params[percent_decode(pair)] = "";
      } else {
        params[percent_decode(pair.substr(0, eq))] =
            percent_decode(pair.substr(eq + 1));
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return params;
}

std::string http_get(const std::string& host, int port, const std::string& path,
                     double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DEEPPHI_CHECK_MSG(fd >= 0, "http: socket() failed: " << std::strerror(errno));
  set_timeout(fd, timeout_s);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("http: bad host '" + host + "' (use a dotted IPv4 address)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("http: cannot connect to " + host + ":" +
                std::to_string(port) + ": " + err);
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, req.data(), req.size())) {
    ::close(fd);
    throw Error("http: send failed to " + host + ":" + std::to_string(port));
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    response.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  DEEPPHI_CHECK_MSG(!response.empty(), "http: empty response from "
                                           << host << ":" << port << path);
  std::size_t body = response.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body == std::string::npos) {
    body = response.find("\n\n");
    skip = 2;
  }
  DEEPPHI_CHECK_MSG(body != std::string::npos,
                    "http: malformed response from " << host << ":" << port);
  const std::string status_line = response.substr(0, response.find('\n'));
  DEEPPHI_CHECK_MSG(
      status_line.find(" 200 ") != std::string::npos,
      "http: " << host << ":" << port << path << " -> " << status_line);
  return response.substr(body + skip);
}

}  // namespace deepphi::util
