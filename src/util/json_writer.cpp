#include "util/json_writer.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace deepphi::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    DEEPPHI_CHECK_MSG(!top_level_written_,
                      "JsonWriter: second top-level value");
    top_level_written_ = true;
    return;
  }
  if (stack_.back() == Frame::kObject) {
    DEEPPHI_CHECK_MSG(key_pending_, "JsonWriter: value inside object needs key()");
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DEEPPHI_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject &&
                        !key_pending_,
                    "JsonWriter: mismatched end_object()");
  os_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DEEPPHI_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                    "JsonWriter: mismatched end_array()");
  os_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  DEEPPHI_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject &&
                        !key_pending_,
                    "JsonWriter: key() outside object or after another key()");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  os_ << '"' << json_escape(name) << "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

bool JsonWriter::done() const { return top_level_written_ && stack_.empty(); }

// --- validator -------------------------------------------------------------

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos;
  }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos;
    return true;
  }
};

bool parse_value(Cursor& c);

bool parse_string(Cursor& c) {
  if (!c.consume('"')) return false;
  while (!c.eof()) {
    const unsigned char ch = static_cast<unsigned char>(c.text[c.pos++]);
    if (ch == '"') return true;
    if (ch < 0x20) return false;  // raw control char
    if (ch == '\\') {
      if (c.eof()) return false;
      const char esc = c.text[c.pos++];
      switch (esc) {
        case '"': case '\\': case '/': case 'b': case 'f':
        case 'n': case 'r': case 't':
          break;
        case 'u': {
          for (int i = 0; i < 4; ++i) {
            if (c.eof() || !std::isxdigit(static_cast<unsigned char>(c.peek())))
              return false;
            ++c.pos;
          }
          break;
        }
        default:
          return false;
      }
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& c) {
  const std::size_t start = c.pos;
  c.consume('-');
  if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
  while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.pos;
  if (c.consume('.')) {
    if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.pos;
  }
  if (!c.eof() && (c.peek() == 'e' || c.peek() == 'E')) {
    ++c.pos;
    if (!c.eof() && (c.peek() == '+' || c.peek() == '-')) ++c.pos;
    if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.pos;
  }
  return c.pos > start;
}

bool parse_literal(Cursor& c, std::string_view word) {
  if (c.text.substr(c.pos, word.size()) != word) return false;
  c.pos += word.size();
  return true;
}

bool parse_object(Cursor& c) {
  if (!c.consume('{')) return false;
  c.skip_ws();
  if (c.consume('}')) return true;
  for (;;) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (!c.consume(':')) return false;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.consume('}')) return true;
    if (!c.consume(',')) return false;
  }
}

bool parse_array(Cursor& c) {
  if (!c.consume('[')) return false;
  c.skip_ws();
  if (c.consume(']')) return true;
  for (;;) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.consume(']')) return true;
    if (!c.consume(',')) return false;
  }
}

bool parse_value(Cursor& c) {
  if (++c.depth > 512) return false;  // runaway nesting
  c.skip_ws();
  if (c.eof()) return false;
  bool ok = false;
  switch (c.peek()) {
    case '{': ok = parse_object(c); break;
    case '[': ok = parse_array(c); break;
    case '"': ok = parse_string(c); break;
    case 't': ok = parse_literal(c, "true"); break;
    case 'f': ok = parse_literal(c, "false"); break;
    case 'n': ok = parse_literal(c, "null"); break;
    default: ok = parse_number(c); break;
  }
  --c.depth;
  return ok;
}

}  // namespace

bool json_is_valid(std::string_view text) {
  Cursor c{text};
  if (!parse_value(c)) return false;
  c.skip_ws();
  return c.eof();
}

}  // namespace deepphi::util
