#include "util/json_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "util/error.hpp"

namespace deepphi::util {

namespace {

const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* word) {
    std::size_t n = 0;
    while (word[n]) ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_word("true")) return JsonValue::make_bool(true);
        fail("bad literal");
      case 'f':
        if (consume_word("false")) return JsonValue::make_bool(false);
        fail("bad literal");
      case 'n':
        if (consume_word("null")) return JsonValue::make_null();
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // BMP-only UTF-8 encode; lone surrogates are passed through as-is.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    return JsonValue::make_number(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  DEEPPHI_CHECK_MSG(type_ == Type::kBool,
                    "json: expected bool, got " << type_name(type_));
  return bool_;
}

double JsonValue::as_number() const {
  DEEPPHI_CHECK_MSG(type_ == Type::kNumber,
                    "json: expected number, got " << type_name(type_));
  return number_;
}

const std::string& JsonValue::as_string() const {
  DEEPPHI_CHECK_MSG(type_ == Type::kString,
                    "json: expected string, got " << type_name(type_));
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  DEEPPHI_CHECK_MSG(type_ == Type::kArray,
                    "json: expected array, got " << type_name(type_));
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  DEEPPHI_CHECK_MSG(type_ == Type::kObject,
                    "json: expected object, got " << type_name(type_));
  return object_;
}

bool JsonValue::has(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) != 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  DEEPPHI_CHECK_MSG(it != obj.end(), "json: missing key '" << key << "'");
  return it->second;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  static const JsonValue kNullValue;
  if (type_ != Type::kObject) return kNullValue;
  const auto it = object_.find(key);
  return it == object_.end() ? kNullValue : it->second;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& arr = as_array();
  DEEPPHI_CHECK_MSG(index < arr.size(), "json: index " << index
                                                       << " out of range (size "
                                                       << arr.size() << ")");
  return arr[index];
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace deepphi::util
