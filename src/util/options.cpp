#include "util/options.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace deepphi::util {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      opts.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      DEEPPHI_CHECK_MSG(!body.empty(), "empty flag '--'");
      // "--name value" form: a bare flag followed by a non-flag token takes
      // that token as its value; a bare flag at the end (or before another
      // --flag) is boolean true.
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        opts.values_[body] = argv[++i];
      } else {
        opts.values_[body] = "true";
      }
      opts.repeated_[body].push_back(opts.values_[body]);
    } else {
      const std::string key = body.substr(0, eq);
      DEEPPHI_CHECK_MSG(!key.empty(), "flag with empty name: '" << arg << "'");
      opts.values_[key] = body.substr(eq + 1);
      opts.repeated_[key].push_back(opts.values_[key]);
    }
  }
  return opts;
}

Options& Options::declare(const std::string& name, const std::string& help,
                          const std::string& default_value) {
  decls_[name] = Decl{help, default_value};
  return *this;
}

void Options::validate() const {
  for (const auto& [key, value] : values_) {
    (void)value;
    DEEPPHI_CHECK_MSG(decls_.count(key) != 0, "unknown flag --" << key);
  }
}

bool Options::has(const std::string& name) const { return values_.count(name) != 0; }

std::string Options::get_string(const std::string& name) const {
  if (auto it = values_.find(name); it != values_.end()) return it->second;
  if (auto it = decls_.find(name); it != decls_.end()) return it->second.default_value;
  throw Error("option --" + name + " was neither supplied nor declared with a default");
}

long long Options::get_int(const std::string& name) const {
  return parse_int(get_string(name));
}

double Options::get_double(const std::string& name) const {
  return parse_double(get_string(name));
}

bool Options::get_bool(const std::string& name) const {
  return parse_bool(get_string(name));
}

std::vector<std::string> Options::get_repeated(const std::string& name) const {
  if (auto it = repeated_.find(name); it != repeated_.end()) return it->second;
  return {};
}

std::string Options::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [--flag=value ...]\n";
  for (const auto& [name, decl] : decls_) {
    os << "  --" << name;
    if (!decl.default_value.empty()) os << " (default: " << decl.default_value << ")";
    os << "\n      " << decl.help << "\n";
  }
  return os.str();
}

}  // namespace deepphi::util
