// Small string helpers shared by the CLI option parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace deepphi::util {

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

/// True when `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

/// Parses "123", "1e6", "4096" into the requested numeric type; throws
/// util::Error on malformed input.
long long parse_int(const std::string& s);
double parse_double(const std::string& s);
bool parse_bool(const std::string& s);

/// Human-friendly "1.23 GB" / "456 MB" formatting of a byte count.
std::string format_bytes(double bytes);

/// "1.23e+09 flop" style formatting with SI suffix (K/M/G/T).
std::string format_si(double value, const std::string& unit);

}  // namespace deepphi::util
