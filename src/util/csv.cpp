#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace deepphi::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DEEPPHI_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DEEPPHI_CHECK_MSG(cells.size() == header_.size(),
                    "row has " << cells.size() << " cells, header has "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      DEEPPHI_CHECK_MSG(row[c].find(',') == std::string::npos,
                        "CSV cell contains a comma: '" << row[c] << "'");
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  DEEPPHI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_csv();
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace deepphi::util
