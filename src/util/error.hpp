// Error handling primitives: checked invariants that throw structured
// exceptions. The library throws deepphi::util::Error (a std::runtime_error)
// for precondition violations instead of asserting, so callers (tests,
// benches, user applications) can recover and report.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace deepphi::util {

/// Exception type thrown by all DEEPPHI_CHECK* macros.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace deepphi::util

/// Throws util::Error when `cond` is false. Always on (not compiled out in
/// release builds): the costs guarded here are shape/state checks outside the
/// hot loops.
#define DEEPPHI_CHECK(cond)                                                     \
  do {                                                                          \
    if (!(cond))                                                                \
      ::deepphi::util::detail::throw_check_failure(#cond, __FILE__, __LINE__,   \
                                                   "");                         \
  } while (0)

/// Like DEEPPHI_CHECK but with a streamed message:
///   DEEPPHI_CHECK_MSG(a.cols() == b.rows(), "gemm shape " << a.cols());
#define DEEPPHI_CHECK_MSG(cond, stream_expr)                                    \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::ostringstream dp_os_;                                                \
      dp_os_ << stream_expr;                                                    \
      ::deepphi::util::detail::throw_check_failure(#cond, __FILE__, __LINE__,   \
                                                   dp_os_.str());               \
    }                                                                           \
  } while (0)
