// Cache-line/SIMD aligned heap buffers. The Xeon Phi's 512-bit VPU wants
// 64-byte alignment; we align every matrix/vector buffer to 64 bytes so the
// vectorized kernels can use aligned loads and never straddle cache lines.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace deepphi::util {

inline constexpr std::size_t kAlignment = 64;

/// Allocates `n` objects of type T with 64-byte alignment. Throws
/// std::bad_alloc on failure. `n == 0` returns a non-null 64-byte allocation
/// so that empty containers still have distinct, alignable storage.
template <typename T>
T* aligned_new(std::size_t n) {
  const std::size_t bytes = (n == 0 ? 1 : n) * sizeof(T);
  // std::aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  void* p = std::aligned_alloc(kAlignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return static_cast<T*>(p);
}

struct AlignedDeleter {
  void operator()(void* p) const noexcept { std::free(p); }
};

/// Owning pointer to an aligned buffer of T. T must be trivially
/// destructible; the deleter only frees storage.
template <typename T>
using AlignedBuffer = std::unique_ptr<T[], AlignedDeleter>;

template <typename T>
AlignedBuffer<T> make_aligned(std::size_t n) {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer only supports trivially destructible types");
  return AlignedBuffer<T>(aligned_new<T>(n));
}

/// True when `p` is aligned to `kAlignment`.
inline bool is_aligned(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % kAlignment == 0;
}

}  // namespace deepphi::util
