// Minimal streaming JSON emitter shared by every JSON-producing path in the
// repo: phi::Trace::to_chrome_json, the obs:: profiler/telemetry exports, and
// the bench --json output. Centralizing it fixes the escaping bug the ad-hoc
// emitters shared (event names containing '"' produced invalid JSON) and
// keeps number formatting consistent (non-finite doubles become null — JSON
// has no NaN/Inf).
//
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("name"); w.value("chunk[0] h2d");
//   w.key("rows"); w.begin_array(); w.value(1); w.value(2); w.end_array();
//   w.end_object();
//
// Comma/colon placement is managed by a small state stack; misuse (two keys
// in a row, value without key inside an object) throws util::Error.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace deepphi::util {

/// Returns `s` with JSON string escaping applied (quotes, backslashes,
/// control characters; no surrounding quotes).
std::string json_escape(std::string_view s);

/// Strict-enough validator used by tests and tools: true iff `text` is one
/// complete JSON value (object/array/string/number/bool/null) with balanced
/// structure and valid string escapes. Not a full RFC 8259 parser — it does
/// not decode numbers beyond shape checks — but rejects everything our
/// emitters could plausibly get wrong.
bool json_is_valid(std::string_view text);

class JsonWriter {
 public:
  /// Writes to `os`, which must outlive the writer.
  explicit JsonWriter(std::ostream& os);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand for key(name) + value(v).
  template <typename T>
  JsonWriter& member(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once the single top-level value is complete.
  bool done() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
  bool top_level_written_ = false;
};

}  // namespace deepphi::util
