#include "util/string_util.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/error.hpp"

namespace deepphi::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

long long parse_int(const std::string& s) {
  try {
    std::size_t pos = 0;
    // Accept scientific notation for convenience ("1e6" examples counts).
    const double d = std::stod(s, &pos);
    DEEPPHI_CHECK_MSG(pos == s.size(), "trailing characters in integer '" << s << "'");
    const long long v = static_cast<long long>(std::llround(d));
    DEEPPHI_CHECK_MSG(static_cast<double>(v) == d, "'" << s << "' is not an integer");
    return v;
  } catch (const std::invalid_argument&) {
    throw Error("cannot parse integer from '" + s + "'");
  } catch (const std::out_of_range&) {
    throw Error("integer out of range: '" + s + "'");
  }
}

double parse_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(s, &pos);
    DEEPPHI_CHECK_MSG(pos == s.size(), "trailing characters in number '" << s << "'");
    return d;
  } catch (const std::invalid_argument&) {
    throw Error("cannot parse number from '" + s + "'");
  } catch (const std::out_of_range&) {
    throw Error("number out of range: '" + s + "'");
  }
}

bool parse_bool(const std::string& s) {
  const std::string v = to_lower(trim(s));
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw Error("cannot parse bool from '" + s + "'");
}

std::string format_bytes(double bytes) {
  static const char* suffix[] = {"B", "KB", "MB", "GB", "TB"};
  int i = 0;
  while (bytes >= 1024.0 && i < 4) {
    bytes /= 1024.0;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffix[i]);
  return buf;
}

std::string format_si(double value, const std::string& unit) {
  static const char* suffix[] = {"", "K", "M", "G", "T", "P"};
  int i = 0;
  double v = value;
  while (std::fabs(v) >= 1000.0 && i < 5) {
    v /= 1000.0;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s%s", v, suffix[i], unit.c_str());
  return buf;
}

}  // namespace deepphi::util
