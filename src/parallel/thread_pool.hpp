// Fixed-size worker pool. Used by the TaskGraph executor (concurrent matrix
// ops of paper Fig. 6) and by the chunk-loading pipeline (paper Fig. 5).
// OpenMP owns the data-parallel loops; this pool owns *task* parallelism, so
// the two never fight over the same iteration space.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace deepphi::par {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). Default: hardware concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; the returned future observes completion and propagates
  /// exceptions thrown by `fn`.
  std::future<void> submit(std::function<void()> fn);

  /// Blocks until the queue is empty and all workers are idle. Throws
  /// util::Error when called from one of this pool's own worker threads: the
  /// calling task counts as active, so the wait could never be satisfied —
  /// failing fast replaces a silent deadlock. Tasks that need to observe
  /// other tasks' completion should hold their submit() futures instead.
  void wait_idle();

  /// True when the calling thread is one of this pool's workers (the
  /// nested-wait_idle guard; also useful for assertions in task code).
  bool on_worker_thread() const;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Number of tasks executed since construction (tests/diagnostics).
  std::uint64_t tasks_executed() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_ = false;
};

}  // namespace deepphi::par
