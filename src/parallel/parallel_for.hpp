// Range parallelism over the ThreadPool — the task-parallel complement to
// the OpenMP data-parallel loops inside the kernels. Used when work items
// are coarse and heterogeneous (per-chunk preprocessing, per-layer jobs)
// where OpenMP's fork/join would fight the pool's scheduling.
//
//   par::parallel_for(pool, 0, n, [&](Index i) { work(i); });
//   par::parallel_for_chunks(pool, 0, n, grain,
//                            [&](Index b, Index e) { work_range(b, e); });
//
// Must be called from OUTSIDE the pool's own workers (a worker blocking on
// its own pool's futures can deadlock).
//
// kStatic splits [begin, end) into one contiguous slice per worker (cheap,
// deterministic assignment); kDynamic hands out `grain`-sized blocks from an
// atomic cursor (load balancing for ragged work). Exceptions from any
// invocation propagate to the caller (first one wins).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "parallel/thread_pool.hpp"

namespace deepphi::par {

enum class Schedule { kStatic, kDynamic };

/// Invokes body(b, e) over disjoint sub-ranges covering [begin, end).
void parallel_for_chunks(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                         std::int64_t grain,
                         const std::function<void(std::int64_t, std::int64_t)>& body,
                         Schedule schedule = Schedule::kDynamic);

/// Invokes body(i) for each i in [begin, end).
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  Schedule schedule = Schedule::kDynamic,
                  std::int64_t grain = 1);

}  // namespace deepphi::par
