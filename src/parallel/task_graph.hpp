// DAG task executor — the mechanism behind paper Fig. 6: "some matrix
// operations can also be calculated concurrently based on the sequence of
// the computations". A TaskGraph holds named nodes and dependency edges; run()
// executes every node exactly once, starting a node as soon as all of its
// predecessors finished, with independent nodes running concurrently on a
// ThreadPool.
//
// The graph is reusable: run() may be called repeatedly (one RBM gradient
// step per call), which is why node state is reset on every run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace deepphi::par {

class TaskGraph {
 public:
  using NodeId = std::size_t;

  /// Adds a node; `fn` runs when all dependencies have completed.
  NodeId add(std::string name, std::function<void()> fn);

  /// Declares that `node` must run after `dependency`.
  void depends(NodeId node, NodeId dependency);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& name(NodeId id) const { return nodes_[id].name; }

  /// Validates acyclicity (throws util::Error on a cycle) and executes the
  /// graph on `pool`. Rethrows the first node exception after the graph
  /// drains. Thread-safe against concurrent run() calls is NOT provided —
  /// one runner at a time.
  void run(ThreadPool& pool);

  /// Executes the graph on the calling thread in a valid topological order —
  /// the sequential reference used by parity tests and the Baseline level.
  void run_sequential();

  /// Completion order of the last run (node ids in finish order).
  std::vector<NodeId> last_finish_order() const;

  /// Highest number of nodes observed in flight simultaneously during the
  /// last run(pool) — lets tests assert that independent nodes really did
  /// overlap.
  int last_max_concurrency() const { return last_max_concurrency_; }

  /// A topological order (throws on cycle). Exposed for tests and for the
  /// cost model's critical-path analysis.
  std::vector<NodeId> topological_order() const;

  /// Length (in nodes) of the longest dependency chain — the critical path.
  std::size_t critical_path_length() const;

  /// Dependency depth of every node (roots = 0, otherwise 1 + max over
  /// dependencies). Nodes that share a level are independent and may run
  /// concurrently — the quantity the Fig. 6 ablation's overlap model uses.
  std::vector<std::size_t> levels() const;

 private:
  struct Node {
    std::string name;
    std::function<void()> fn;
    std::vector<NodeId> dependents;
    int in_degree = 0;
  };

  void check_node(NodeId id) const;

  std::vector<Node> nodes_;
  // Last-run bookkeeping (not touched between runs).
  std::vector<NodeId> finish_order_;
  int last_max_concurrency_ = 0;
};

}  // namespace deepphi::par
