#include "parallel/thread_pool.hpp"

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace deepphi::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      obs::set_thread_name("pool-" + std::to_string(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  DEEPPHI_CHECK(fn != nullptr);
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DEEPPHI_CHECK_MSG(!stop_, "submit on a stopped ThreadPool");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  DEEPPHI_CHECK_MSG(!on_worker_thread(),
                    "ThreadPool::wait_idle() called from one of the pool's own "
                    "worker threads — the calling task counts as active, so "
                    "the wait can never complete (deadlock). Wait on submit() "
                    "futures from inside tasks instead.");
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::on_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& w : workers_)
    if (w.get_id() == self) return true;
  return false;
}

std::uint64_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    {
      DEEPPHI_PROFILE_SCOPE("pool.task");
      task();  // packaged_task captures exceptions into the future
    }
    static obs::Counter& tasks = obs::counter("pool.tasks_executed");
    tasks.add();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      ++executed_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace deepphi::par
