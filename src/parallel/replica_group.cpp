#include "parallel/replica_group.hpp"

#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace deepphi::par {

namespace {

int ambient_omp_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_omp_threads(int threads) {
#ifdef _OPENMP
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
}

}  // namespace

ReplicaGroup::ReplicaGroup(ReplicaGroupConfig config) : config_(config) {
  DEEPPHI_CHECK_MSG(config_.replicas >= 1,
                    "ReplicaGroup needs replicas >= 1, got " << config_.replicas);
  DEEPPHI_CHECK_MSG(config_.threads_per_replica >= 0,
                    "threads_per_replica must be >= 0, got "
                        << config_.threads_per_replica);
  threads_per_replica_ =
      config_.threads_per_replica > 0
          ? config_.threads_per_replica
          : std::max(1, ambient_omp_threads() / config_.replicas);
  if (config_.replicas > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<unsigned>(config_.replicas));
    static obs::Gauge& replicas_gauge = obs::gauge("dp.replicas");
    replicas_gauge.set(static_cast<double>(config_.replicas));
  }
}

ReplicaGroup::~ReplicaGroup() = default;

const char* ReplicaGroup::replica_label(int r) {
  static const char* kLabels[] = {
      "dp.replica[0]",  "dp.replica[1]",  "dp.replica[2]",  "dp.replica[3]",
      "dp.replica[4]",  "dp.replica[5]",  "dp.replica[6]",  "dp.replica[7]",
      "dp.replica[8]",  "dp.replica[9]",  "dp.replica[10]", "dp.replica[11]",
      "dp.replica[12]", "dp.replica[13]", "dp.replica[14]", "dp.replica[15]"};
  constexpr int kCount = static_cast<int>(sizeof(kLabels) / sizeof(kLabels[0]));
  if (r >= 0 && r < kCount) return kLabels[r];
  return "dp.replica[16+]";
}

void ReplicaGroup::run(const std::function<void(int)>& fn) {
  DEEPPHI_CHECK(fn != nullptr);
  if (config_.replicas == 1) {
    // Inline: no pool hop, no ICV change — byte-for-byte the single-team path.
    DEEPPHI_PROFILE_SCOPE(replica_label(0));
    fn(0);
    return;
  }
  static obs::Counter& tasks = obs::counter("dp.replica_tasks");
  std::vector<std::future<void>> done;
  done.reserve(static_cast<std::size_t>(config_.replicas));
  for (int r = 0; r < config_.replicas; ++r) {
    done.push_back(pool_->submit([this, &fn, r] {
      // The ICV is per (worker) thread; setting it here scopes the replica's
      // kernels to its core-subset budget without touching other replicas.
      set_omp_threads(threads_per_replica_);
      DEEPPHI_PROFILE_SCOPE(replica_label(r));
      fn(r);
    }));
    tasks.add();
  }
  // Drain every future before rethrowing so no replica is still touching
  // shared state (gradient slots, workspaces) when the caller unwinds.
  std::exception_ptr first_error;
  for (auto& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace deepphi::par
