// BoundedQueue and ChunkPipeline are header-only templates (pipeline.hpp);
// this translation unit exists to give the module a home for future
// non-template helpers and to surface template compile errors early.
#include "parallel/pipeline.hpp"

namespace deepphi::par {

// Explicit instantiation of the common payload type (a loaded data chunk is
// an owning pointer in the offload engine).
template class BoundedQueue<int>;

}  // namespace deepphi::par
