#include "parallel/collectives.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace deepphi::par {

namespace {

int ceil_log2(int n) {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

const char* collective_name(Collective c) {
  switch (c) {
    case Collective::kAuto: return "auto";
    case Collective::kTree: return "tree";
    case Collective::kRecursiveDoubling: return "rdouble";
    case Collective::kRing: return "ring";
  }
  return "?";
}

Collective parse_collective(const std::string& name) {
  const std::string v = util::to_lower(name);
  if (v == "auto") return Collective::kAuto;
  if (v == "tree") return Collective::kTree;
  if (v == "rdouble" || v == "recursive-doubling")
    return Collective::kRecursiveDoubling;
  if (v == "ring") return Collective::kRing;
  throw util::Error("unknown collective '" + name +
                    "' (auto | tree | rdouble | ring)");
}

double CollectiveSchedule::time_s(const phi::InterconnectSpec& link) const {
  if (rounds == 0) return 0;
  const double latency_s =
      static_cast<double>(rounds) * link.hops * link.link_latency_us * 1e-6;
  const double bw = link.link_gb_s * 1e9;
  if (bw <= 0) return latency_s;
  // Concurrent links: a round costs its largest message. Shared medium: the
  // whole collective's wire traffic funnels through one link, hop by hop.
  const double bandwidth_s =
      link.shared_medium
          ? link.hops * wire_bytes / bw
          : static_cast<double>(rounds) * link.hops * round_bytes / bw;
  return latency_s + bandwidth_s;
}

CollectiveSchedule all_reduce_schedule(Collective algorithm,
                                       double message_bytes, int cards) {
  DEEPPHI_CHECK_MSG(cards >= 1, "cards must be >= 1, got " << cards);
  DEEPPHI_CHECK_MSG(message_bytes >= 0,
                    "negative collective message " << message_bytes);
  DEEPPHI_CHECK_MSG(algorithm != Collective::kAuto,
                    "all_reduce_schedule needs a concrete algorithm "
                    "(resolve_collective first)");
  CollectiveSchedule s;
  s.algorithm = algorithm;
  s.cards = cards;
  s.message_bytes = message_bytes;
  if (cards == 1) return s;  // nothing crosses a link

  const double b = message_bytes;
  const int n = cards;
  switch (algorithm) {
    case Collective::kTree: {
      // Stride-doubling reduce to card 0, then the mirrored broadcast.
      const int levels = ceil_log2(n);
      s.rounds = 2 * levels;
      s.round_bytes = b;
      s.wire_bytes = 2.0 * (n - 1) * b;
      break;
    }
    case Collective::kRecursiveDoubling: {
      // Cards beyond the largest power of two fold in first and get the
      // result copied back out; the core exchanges full messages pairwise.
      const int m = floor_pow2(n);
      const int extra = n - m;
      const int levels = ceil_log2(m);
      s.rounds = levels + (extra > 0 ? 2 : 0);
      s.round_bytes = b;
      s.wire_bytes = static_cast<double>(m) * levels * b + 2.0 * extra * b;
      break;
    }
    case Collective::kRing: {
      // Reduce-scatter then allgather: every round moves the whole message
      // once, split into per-card chunks on concurrent neighbor links.
      s.rounds = 2 * (n - 1);
      s.round_bytes = b / n;
      s.wire_bytes = 2.0 * (n - 1) * b;
      break;
    }
    case Collective::kAuto: break;  // unreachable (checked above)
  }
  return s;
}

Collective effective_collective(Collective requested) {
  if (const char* env = std::getenv("DEEPPHI_COLLECTIVE"); env && *env)
    return parse_collective(env);
  return requested;
}

Collective resolve_collective(Collective requested, double message_bytes,
                              int cards, const phi::InterconnectSpec& link) {
  requested = effective_collective(requested);
  if (requested != Collective::kAuto) return requested;
  Collective best = Collective::kTree;
  double best_s =
      all_reduce_schedule(best, message_bytes, cards).time_s(link);
  for (Collective c : {Collective::kRecursiveDoubling, Collective::kRing}) {
    const double t = all_reduce_schedule(c, message_bytes, cards).time_s(link);
    if (t < best_s) {
      best = c;
      best_s = t;
    }
  }
  return best;
}

namespace {

struct WireCounter {
  int rounds = 0;
  double wire_bytes = 0;
  double round_bytes = 0;  // largest single message seen
  void message(double bytes) {
    wire_bytes += bytes;
    round_bytes = std::max(round_bytes, bytes);
  }
};

void add_into(float* dst, const float* src, la::Index n) {
  for (la::Index k = 0; k < n; ++k) dst[k] += src[k];
}

void tree_all_reduce(const std::vector<float*>& bufs, la::Index n,
                     WireCounter& wire) {
  const int cards = static_cast<int>(bufs.size());
  const double bytes = 4.0 * static_cast<double>(n);
  int top = 1;
  // Reduce: the exact stride-doubling pairing of the PR-5 combine.
  for (int stride = 1; stride < cards; stride *= 2) {
    ++wire.rounds;
    for (int i = 0; i + stride < cards; i += 2 * stride) {
      add_into(bufs[i], bufs[i + stride], n);
      wire.message(bytes);
    }
    top = stride;
  }
  // Broadcast: the mirrored binomial tree fans the root's sum back out.
  for (int stride = top; stride >= 1; stride /= 2) {
    ++wire.rounds;
    for (int i = 0; i + stride < cards; i += 2 * stride) {
      std::memcpy(bufs[i + stride], bufs[i],
                  sizeof(float) * static_cast<std::size_t>(n));
      wire.message(bytes);
    }
  }
}

void rdouble_all_reduce(const std::vector<float*>& bufs, la::Index n,
                        WireCounter& wire) {
  const int cards = static_cast<int>(bufs.size());
  const double bytes = 4.0 * static_cast<double>(n);
  const int m = floor_pow2(cards);
  const int extra = cards - m;
  if (extra > 0) {
    ++wire.rounds;
    for (int e = 0; e < extra; ++e) {
      add_into(bufs[e], bufs[m + e], n);
      wire.message(bytes);
    }
  }
  std::vector<float> pair_sum(static_cast<std::size_t>(n));
  for (int stride = 1; stride < m; stride *= 2) {
    ++wire.rounds;
    for (int i = 0; i < m; ++i) {
      if (i & stride) continue;
      const int j = i + stride;
      // Both partners compute the same sum; float addition is commutative,
      // so one shared evaluation is exactly what both would see.
      for (la::Index k = 0; k < n; ++k) pair_sum[k] = bufs[i][k] + bufs[j][k];
      std::memcpy(bufs[i], pair_sum.data(),
                  sizeof(float) * static_cast<std::size_t>(n));
      std::memcpy(bufs[j], pair_sum.data(),
                  sizeof(float) * static_cast<std::size_t>(n));
      wire.message(bytes);  // i -> j
      wire.message(bytes);  // j -> i (full-duplex exchange)
    }
  }
  if (extra > 0) {
    ++wire.rounds;
    for (int e = 0; e < extra; ++e) {
      std::memcpy(bufs[m + e], bufs[e],
                  sizeof(float) * static_cast<std::size_t>(n));
      wire.message(bytes);
    }
  }
}

void ring_all_reduce(const std::vector<float*>& bufs, la::Index n,
                     WireCounter& wire) {
  const int cards = static_cast<int>(bufs.size());
  const la::Index len = (n + cards - 1) / cards;  // chunk c: [c·len, …)
  auto chunk_begin = [&](int c) { return std::min<la::Index>(c * len, n); };
  auto chunk_rows = [&](int c) {
    return std::min<la::Index>(chunk_begin(c) + len, n) - chunk_begin(c);
  };
  std::vector<std::vector<float>> outgoing(static_cast<std::size_t>(cards));

  // Reduce-scatter: at step s, card i sends chunk (i−s) mod N to card i+1,
  // which accumulates it. All sends of a step are simultaneous, so payloads
  // snapshot before any accumulation lands.
  for (int s = 0; s + 1 < cards; ++s) {
    ++wire.rounds;
    for (int i = 0; i < cards; ++i) {
      const int c = ((i - s) % cards + cards) % cards;
      const la::Index rows = chunk_rows(c);
      auto& out = outgoing[static_cast<std::size_t>(i)];
      out.assign(bufs[i] + chunk_begin(c), bufs[i] + chunk_begin(c) + rows);
    }
    for (int i = 0; i < cards; ++i) {
      const int c = ((i - s) % cards + cards) % cards;
      const int dst = (i + 1) % cards;
      const la::Index rows = chunk_rows(c);
      add_into(bufs[dst] + chunk_begin(c),
               outgoing[static_cast<std::size_t>(i)].data(), rows);
      wire.message(4.0 * static_cast<double>(rows));
    }
  }
  // Allgather: card i now owns the completed chunk (i+1) mod N; finished
  // chunks circulate N−1 more steps.
  for (int s = 0; s + 1 < cards; ++s) {
    ++wire.rounds;
    for (int i = 0; i < cards; ++i) {
      const int c = ((i + 1 - s) % cards + cards) % cards;
      const int dst = (i + 1) % cards;
      const la::Index rows = chunk_rows(c);
      std::memcpy(bufs[dst] + chunk_begin(c), bufs[i] + chunk_begin(c),
                  sizeof(float) * static_cast<std::size_t>(rows));
      wire.message(4.0 * static_cast<double>(rows));
    }
  }
}

}  // namespace

CollectiveSchedule all_reduce(Collective algorithm,
                              const std::vector<float*>& bufs, la::Index n) {
  DEEPPHI_CHECK_MSG(!bufs.empty(), "all_reduce over zero cards");
  DEEPPHI_CHECK_MSG(n >= 0, "negative all_reduce length " << n);
  DEEPPHI_CHECK_MSG(algorithm != Collective::kAuto,
                    "all_reduce needs a concrete algorithm");
  WireCounter wire;
  if (bufs.size() > 1) {
    switch (algorithm) {
      case Collective::kTree: tree_all_reduce(bufs, n, wire); break;
      case Collective::kRecursiveDoubling:
        rdouble_all_reduce(bufs, n, wire);
        break;
      case Collective::kRing: ring_all_reduce(bufs, n, wire); break;
      case Collective::kAuto: break;  // unreachable (checked above)
    }
  }
  CollectiveSchedule executed;
  executed.algorithm = algorithm;
  executed.cards = static_cast<int>(bufs.size());
  executed.message_bytes = 4.0 * static_cast<double>(n);
  executed.rounds = wire.rounds;
  executed.round_bytes = wire.round_bytes;
  executed.wire_bytes = wire.wire_bytes;
  return executed;
}

}  // namespace deepphi::par
