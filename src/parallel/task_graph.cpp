#include "parallel/task_graph.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>

#include "util/error.hpp"

namespace deepphi::par {

TaskGraph::NodeId TaskGraph::add(std::string name, std::function<void()> fn) {
  DEEPPHI_CHECK(fn != nullptr);
  nodes_.push_back(Node{std::move(name), std::move(fn), {}, 0});
  return nodes_.size() - 1;
}

void TaskGraph::depends(NodeId node, NodeId dependency) {
  check_node(node);
  check_node(dependency);
  DEEPPHI_CHECK_MSG(node != dependency, "self-dependency on node '"
                                            << nodes_[node].name << "'");
  nodes_[dependency].dependents.push_back(node);
  nodes_[node].in_degree += 1;
}

void TaskGraph::check_node(NodeId id) const {
  DEEPPHI_CHECK_MSG(id < nodes_.size(), "node id " << id << " out of range");
}

std::vector<TaskGraph::NodeId> TaskGraph::topological_order() const {
  std::vector<int> degree(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) degree[i] = nodes_[i].in_degree;
  std::deque<NodeId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (degree[i] == 0) ready.push_back(i);
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (NodeId d : nodes_[id].dependents)
      if (--degree[d] == 0) ready.push_back(d);
  }
  DEEPPHI_CHECK_MSG(order.size() == nodes_.size(),
                    "task graph has a dependency cycle ("
                        << order.size() << " of " << nodes_.size()
                        << " nodes orderable)");
  return order;
}

std::vector<std::size_t> TaskGraph::levels() const {
  const auto order = topological_order();
  std::vector<std::size_t> level(nodes_.size(), 0);
  for (NodeId id : order)
    for (NodeId d : nodes_[id].dependents)
      level[d] = std::max(level[d], level[id] + 1);
  return level;
}

std::size_t TaskGraph::critical_path_length() const {
  const auto order = topological_order();
  std::vector<std::size_t> depth(nodes_.size(), 1);
  std::size_t longest = nodes_.empty() ? 0 : 1;
  for (NodeId id : order) {
    for (NodeId d : nodes_[id].dependents) {
      depth[d] = std::max(depth[d], depth[id] + 1);
      longest = std::max(longest, depth[d]);
    }
  }
  return longest;
}

void TaskGraph::run_sequential() {
  finish_order_ = topological_order();
  last_max_concurrency_ = nodes_.empty() ? 0 : 1;
  for (NodeId id : finish_order_) nodes_[id].fn();
}

void TaskGraph::run(ThreadPool& pool) {
  // Validate up front so a cyclic graph fails before any node runs.
  (void)topological_order();

  struct RunState {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<int> degree;
    std::vector<TaskGraph::NodeId> finish_order;
    std::exception_ptr first_error;
    int in_flight = 0;
    int max_concurrency = 0;
    std::size_t finished = 0;
  };
  RunState state;
  state.degree.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    state.degree[i] = nodes_[i].in_degree;
  state.finish_order.reserve(nodes_.size());

  // Recursive-ish scheduling: when a node completes it enqueues newly ready
  // dependents. std::function requires the lambda be copyable, so schedule is
  // defined as a plain function object over shared state.
  std::function<void(NodeId)> schedule = [&](NodeId id) {
    pool.submit([this, id, &state, &schedule] {
      bool skip;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        ++state.in_flight;
        state.max_concurrency = std::max(state.max_concurrency, state.in_flight);
        skip = state.first_error != nullptr;
      }
      std::exception_ptr error;
      try {
        if (!skip) nodes_[id].fn();
      } catch (...) {
        error = std::current_exception();
      }
      std::vector<NodeId> ready;
      {
        // The completion notification happens while the lock is held: once
        // run() observes finished == n it may destroy `state`, so the last
        // worker must not touch state after releasing this lock.
        std::lock_guard<std::mutex> lock(state.mutex);
        --state.in_flight;
        ++state.finished;
        state.finish_order.push_back(id);
        if (error && !state.first_error) state.first_error = error;
        for (NodeId d : nodes_[id].dependents)
          if (--state.degree[d] == 0) ready.push_back(d);
        if (state.finished == nodes_.size()) state.done_cv.notify_all();
      }
      // `ready` is empty whenever this was the final node, so `state` and
      // `schedule` are only touched while run() is still waiting.
      for (NodeId d : ready) schedule(d);
    });
  };

  std::size_t roots = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].in_degree == 0) {
      ++roots;
      schedule(i);
    }
  }
  if (roots == 0 && !nodes_.empty())
    throw util::Error("task graph has nodes but no roots");

  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&] { return state.finished == nodes_.size(); });
  }
  finish_order_ = state.finish_order;
  last_max_concurrency_ = state.max_concurrency;
  if (state.first_error) std::rethrow_exception(state.first_error);
}

std::vector<TaskGraph::NodeId> TaskGraph::last_finish_order() const {
  return finish_order_;
}

}  // namespace deepphi::par
