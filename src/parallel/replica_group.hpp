// Replica workers for shared-memory data-parallel training (the
// DistBelief-style pattern the paper's future work points at: R model
// replicas on disjoint core subsets, each working a shard of the data).
//
// A ReplicaGroup owns a par::ThreadPool with one worker per replica and a
// per-replica OpenMP thread budget: replica task bodies run inside an OpenMP
// ICV of threads_per_replica threads, so the within-op parallel kernels
// (gemm/elementwise) of R concurrent replicas split the machine instead of
// oversubscribing it R-fold. The replica id is carried on profiler spans
// ("dp.replica[r]") so the host timeline shows the replicas side by side.
//
// With replicas == 1 the group runs the task inline on the calling thread
// with the ambient OpenMP settings — zero scheduling or ICV difference from
// not using a group at all, which is what lets the data-parallel trainer's
// single-replica path reproduce the flat single-team trainer exactly.
#pragma once

#include <functional>
#include <memory>

#include "parallel/thread_pool.hpp"

namespace deepphi::par {

struct ReplicaGroupConfig {
  int replicas = 1;
  /// OpenMP threads each replica's kernels may use. 0 = auto: the ambient
  /// omp_get_max_threads() divided evenly across replicas (at least 1).
  int threads_per_replica = 0;
};

class ReplicaGroup {
 public:
  explicit ReplicaGroup(ReplicaGroupConfig config);
  ~ReplicaGroup();

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  int replicas() const { return config_.replicas; }
  /// The resolved per-replica OpenMP budget (auto split already applied).
  int threads_per_replica() const { return threads_per_replica_; }

  /// Runs fn(replica_id) for every replica id in [0, replicas) concurrently
  /// (inline for a single replica) and blocks until all complete. The first
  /// exception thrown by any replica is rethrown after all replicas finish.
  void run(const std::function<void(int)>& fn);

  /// Profiler label for replica `r` ("dp.replica[0]" ... — static storage,
  /// as DEEPPHI_PROFILE_SCOPE requires; ids beyond the label table share a
  /// catch-all label).
  static const char* replica_label(int r);

 private:
  ReplicaGroupConfig config_;
  int threads_per_replica_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when replicas == 1
};

}  // namespace deepphi::par
