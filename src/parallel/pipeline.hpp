// Bounded producer/consumer machinery behind the paper's Fig. 5 design: "we
// use a thread to load the data chunk from the host to the Intel Xeon Phi so
// that our algorithm does not need to wait for loading new data".
//
// BoundedQueue<T> is a blocking MPMC ring of depth `capacity` (the paper's
// "loading buffer ... several times as [large as] a data chunk").
// ChunkPipeline runs a producer function on a dedicated loading thread and
// lets the training loop pop chunks; when the producer is exhausted, pop()
// drains the queue and then returns nullopt.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace deepphi::par {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    DEEPPHI_CHECK_MSG(capacity > 0, "BoundedQueue capacity must be positive");
  }

  /// Blocks while full. Returns false if the queue was closed before the
  /// item could be enqueued.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed *and*
  /// drained. Time actually spent blocked (the condition wait, not lock or
  /// move overhead) accumulates into pop_wait_seconds().
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty() && !closed_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      pop_wait_ns_.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count(),
          std::memory_order_relaxed);
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes will succeed; pending pops drain the remaining items.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Total seconds pop() sat blocked on an empty queue.
  double pop_wait_seconds() const {
    return static_cast<double>(pop_wait_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  std::atomic<std::int64_t> pop_wait_ns_{0};
};

/// Runs `produce` on a dedicated loading thread. `produce` is called
/// repeatedly; each non-nullopt result is enqueued, the first nullopt ends
/// production. Consumers call pop() until it returns nullopt.
template <typename T>
class ChunkPipeline {
 public:
  ChunkPipeline(std::size_t buffer_chunks,
                std::function<std::optional<T>()> produce)
      : queue_(buffer_chunks) {
    DEEPPHI_CHECK(produce != nullptr);
    loader_ = std::thread([this, produce = std::move(produce)]() mutable {
      // The paper's Fig. 5 loading thread — named so the profiler's host
      // timeline shows its chunk materialization next to compute.
      obs::set_thread_name("loading");
      static obs::Gauge& occupancy = obs::gauge("pipeline.peak_buffered");
      for (;;) {
        std::optional<T> item;
        {
          DEEPPHI_PROFILE_SCOPE("pipeline.produce");
          item = produce();
        }
        if (!item.has_value()) break;
        {
          DEEPPHI_PROFILE_SCOPE("pipeline.push_wait");
          const auto t0 = std::chrono::steady_clock::now();
          const bool pushed = queue_.push(std::move(*item));
          push_wait_ns_.fetch_add(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count(),
              std::memory_order_relaxed);
          if (!pushed) break;  // consumer aborted
        }
        occupancy.set_max(static_cast<double>(queue_.size()));
      }
      queue_.close();
    });
  }

  ~ChunkPipeline() {
    queue_.close();
    if (loader_.joinable()) loader_.join();
  }

  ChunkPipeline(const ChunkPipeline&) = delete;
  ChunkPipeline& operator=(const ChunkPipeline&) = delete;

  /// Next chunk, or nullopt when production finished and the buffer drained.
  std::optional<T> pop() { return queue_.pop(); }

  /// Chunks currently buffered ahead of the consumer.
  std::size_t buffered() const { return queue_.size(); }

  /// Total seconds pop() callers sat blocked on an empty ring — the stall
  /// the consumer actually felt, excluding lock/move overhead.
  double consumer_wait_seconds() const { return queue_.pop_wait_seconds(); }

  /// Total seconds the loader thread sat blocked on a full ring — high when
  /// production outruns the consumer (the healthy, fully-overlapped state).
  double producer_wait_seconds() const {
    return static_cast<double>(push_wait_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

 private:
  BoundedQueue<T> queue_;
  std::atomic<std::int64_t> push_wait_ns_{0};
  std::thread loader_;
};

}  // namespace deepphi::par
