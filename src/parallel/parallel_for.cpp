#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <vector>

#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace deepphi::par {

void parallel_for_chunks(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                         std::int64_t grain,
                         const std::function<void(std::int64_t, std::int64_t)>& body,
                         Schedule schedule) {
  DEEPPHI_PROFILE_SCOPE("parallel_for");
  DEEPPHI_CHECK_MSG(grain >= 1, "grain must be >= 1, got " << grain);
  DEEPPHI_CHECK(body != nullptr);
  if (begin >= end) return;
  const std::int64_t n = end - begin;

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto guarded = [&](std::int64_t b, std::int64_t e) {
    try {
      body(b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::future<void>> futures;
  if (schedule == Schedule::kStatic) {
    const std::int64_t workers = std::max<std::int64_t>(1, pool.size());
    const std::int64_t chunk = std::max(grain, (n + workers - 1) / workers);
    for (std::int64_t b = begin; b < end; b += chunk) {
      const std::int64_t e = std::min(b + chunk, end);
      futures.push_back(pool.submit([&, b, e] { guarded(b, e); }));
    }
  } else {
    // Dynamic: one task per worker, each draining grain-sized blocks from a
    // shared cursor (fewer queue operations than one task per block).
    auto cursor = std::make_shared<std::atomic<std::int64_t>>(begin);
    const std::int64_t workers = std::max<std::int64_t>(1, pool.size());
    for (std::int64_t w = 0; w < workers; ++w) {
      futures.push_back(pool.submit([&, cursor] {
        for (;;) {
          const std::int64_t b = cursor->fetch_add(grain);
          if (b >= end) return;
          guarded(b, std::min(b + grain, end));
        }
      }));
    }
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  Schedule schedule, std::int64_t grain) {
  DEEPPHI_CHECK(body != nullptr);
  parallel_for_chunks(
      pool, begin, end, grain,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) body(i);
      },
      schedule);
}

}  // namespace deepphi::par
