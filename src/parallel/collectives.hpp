// Inter-card all-reduce collectives (docs/cluster.md): the algorithms a
// multi-card gradient combine can run on phi::Cluster's interconnect, each
// described as a SCHEDULE — sequential rounds, per-message bytes, total wire
// traffic — that the interconnect model converts to simulated seconds.
//
//  * tree       — PR-5's fixed binary tree, reduce-to-root then broadcast:
//                 2·ceil(log2 N) rounds of the full message. Fewest flops,
//                 but the bandwidth term grows with log2(N)·bytes.
//  * rdouble    — recursive doubling: log2(N) full-message pairwise
//                 exchanges (plus a fold-in/copy-out round pair when N is
//                 not a power of two). Latency-optimal for an all-reduce.
//  * ring       — reduce-scatter + allgather around a ring: 2(N−1) rounds of
//                 bytes/N. Bandwidth-optimal (each card moves ~2·bytes
//                 regardless of N) but pays 2(N−1) latencies — the classic
//                 large-message winner on point-to-point links.
//  * auto       — evaluate all three schedules under the active interconnect
//                 and take the cheapest (so selection is never worse than the
//                 best fixed algorithm at any message size by construction).
//
// The DEEPPHI_COLLECTIVE environment variable (tree | rdouble | ring | auto)
// overrides any configured choice — the ablation hook.
//
// all_reduce() is the functional counterpart used by tests and benches: it
// really moves and sums data between per-card buffers in each algorithm's
// pattern and returns the schedule it executed, so the modeled byte counts
// are pinned to real data movement. NOTE the determinism contract: the
// cluster TRAINER does not combine through these (their summation orders
// differ per algorithm and per N); it keeps the canonical global-slot tree
// so trained weights are bitwise invariant to geometry and algorithm, and
// charges the schedule to the interconnect — the cluster analogue of "the
// Device never computes anything" (phi/device.hpp).
#pragma once

#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "phi/interconnect.hpp"

namespace deepphi::par {

enum class Collective { kAuto = 0, kTree, kRecursiveDoubling, kRing };

/// "auto" | "tree" | "rdouble" | "ring".
const char* collective_name(Collective c);

/// Inverse of collective_name; throws util::Error on anything else.
Collective parse_collective(const std::string& name);

/// Communication plan of one all-reduce of `message_bytes` over `cards`.
struct CollectiveSchedule {
  Collective algorithm = Collective::kTree;
  int cards = 1;
  double message_bytes = 0;
  /// Sequential interconnect rounds (0 when cards == 1: nothing moves).
  int rounds = 0;
  /// Bytes of one message within a round (messages of a round are
  /// concurrent on point-to-point links).
  double round_bytes = 0;
  /// Total bytes crossing inter-card links over the whole collective.
  double wire_bytes = 0;

  /// Modeled seconds on `link`: every round pays the per-hop latency; the
  /// bandwidth term is per-message on concurrent links but serializes the
  /// full wire traffic on a shared medium (host-staged staging).
  double time_s(const phi::InterconnectSpec& link) const;
};

/// The schedule of `algorithm` (must not be kAuto) at this size/card count.
CollectiveSchedule all_reduce_schedule(Collective algorithm,
                                       double message_bytes, int cards);

/// The effective requested algorithm: the DEEPPHI_COLLECTIVE environment
/// override when set (throws on an unparsable value), otherwise `requested`
/// unchanged. resolve_collective applies this internally; telemetry headers
/// call it directly so they record what the run will actually use.
Collective effective_collective(Collective requested);

/// Resolves `requested` to a concrete algorithm: the DEEPPHI_COLLECTIVE
/// override wins over everything; kAuto picks the schedule with the smallest
/// modeled time on `link` (ties break tree < rdouble < ring).
Collective resolve_collective(Collective requested, double message_bytes,
                              int cards, const phi::InterconnectSpec& link);

/// Functional all-reduce-sum over per-card buffers: after the call every
/// bufs[c][0..n) holds the element-wise sum of all cards' inputs, produced
/// by `algorithm`'s real data movement (tree reduce/broadcast, pairwise
/// exchanges, ring reduce-scatter + allgather). Returns the executed
/// schedule with rounds/wire_bytes counted from the actual messages —
/// pinned equal to all_reduce_schedule() by tests.
CollectiveSchedule all_reduce(Collective algorithm,
                              const std::vector<float*>& bufs, la::Index n);

}  // namespace deepphi::par
