#include "baseline/seq_autoencoder.hpp"

#include <cmath>

#include "util/error.hpp"

namespace deepphi::baseline {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double clamp01(double q) {
  return std::min(std::max(q, 1e-6), 1.0 - 1e-6);
}
}  // namespace

SaeReference::SaeReference(const core::SparseAutoencoder& model) {
  visible = model.visible();
  hidden = model.hidden();
  lambda = model.config().lambda;
  rho = model.config().rho;
  beta = model.config().beta;
  auto snapshot = [](const float* p, la::Index n, std::vector<double>& out) {
    out.assign(p, p + n);
  };
  snapshot(model.w1().data(), model.w1().size(), w1);
  snapshot(model.b1().data(), model.b1().size(), b1);
  snapshot(model.w2().data(), model.w2().size(), w2);
  snapshot(model.b2().data(), model.b2().size(), b2);
}

double SaeReference::cost(const la::Matrix& x) const {
  std::vector<double> gw1, gb1, gw2, gb2;
  return gradient(x, gw1, gb1, gw2, gb2);
}

double SaeReference::gradient(const la::Matrix& x, std::vector<double>& g_w1,
                              std::vector<double>& g_b1,
                              std::vector<double>& g_w2,
                              std::vector<double>& g_b2) const {
  DEEPPHI_CHECK_MSG(x.cols() == visible, "reference input dim mismatch");
  const la::Index m = x.rows();
  const std::size_t v = static_cast<std::size_t>(visible);
  const std::size_t h = static_cast<std::size_t>(hidden);

  g_w1.assign(h * v, 0.0);
  g_b1.assign(h, 0.0);
  g_w2.assign(v * h, 0.0);
  g_b2.assign(v, 0.0);

  // Pass 1: forward every example; accumulate ρ̂ and reconstruction error,
  // and cache activations for the backward pass.
  std::vector<double> y_all(static_cast<std::size_t>(m) * h);
  std::vector<double> z_all(static_cast<std::size_t>(m) * v);
  std::vector<double> rho_hat(h, 0.0);
  double recon = 0.0;
  for (la::Index e = 0; e < m; ++e) {
    const float* xe = x.row(e);
    double* y = &y_all[static_cast<std::size_t>(e) * h];
    double* z = &z_all[static_cast<std::size_t>(e) * v];
    for (std::size_t i = 0; i < h; ++i) {
      double a = b1[i];
      for (std::size_t j = 0; j < v; ++j) a += w1[i * v + j] * xe[j];
      y[i] = sigmoid(a);
      rho_hat[i] += y[i];
    }
    for (std::size_t j = 0; j < v; ++j) {
      double a = b2[j];
      for (std::size_t i = 0; i < h; ++i) a += w2[j * h + i] * y[i];
      z[j] = sigmoid(a);
      const double d = z[j] - xe[j];
      recon += d * d;
    }
  }
  for (std::size_t i = 0; i < h; ++i) rho_hat[i] /= static_cast<double>(m);

  // Sparsity delta per hidden unit.
  std::vector<double> sparse(h);
  double kl = 0.0;
  for (std::size_t i = 0; i < h; ++i) {
    const double q = clamp01(rho_hat[i]);
    kl += rho * std::log(rho / q) + (1.0 - rho) * std::log((1.0 - rho) / (1.0 - q));
    sparse[i] = beta * (-rho / q + (1.0 - rho) / (1.0 - q));
  }

  // Pass 2: backprop per example, accumulating gradients.
  for (la::Index e = 0; e < m; ++e) {
    const float* xe = x.row(e);
    const double* y = &y_all[static_cast<std::size_t>(e) * h];
    const double* z = &z_all[static_cast<std::size_t>(e) * v];
    std::vector<double> d2(v);
    for (std::size_t j = 0; j < v; ++j)
      d2[j] = (z[j] - xe[j]) * z[j] * (1.0 - z[j]);
    for (std::size_t j = 0; j < v; ++j) {
      g_b2[j] += d2[j];
      for (std::size_t i = 0; i < h; ++i) g_w2[j * h + i] += d2[j] * y[i];
    }
    std::vector<double> d1(h);
    for (std::size_t i = 0; i < h; ++i) {
      double back = 0.0;
      for (std::size_t j = 0; j < v; ++j) back += d2[j] * w2[j * h + i];
      d1[i] = (back + sparse[i]) * y[i] * (1.0 - y[i]);
    }
    for (std::size_t i = 0; i < h; ++i) {
      g_b1[i] += d1[i];
      for (std::size_t j = 0; j < v; ++j) g_w1[i * v + j] += d1[i] * xe[j];
    }
  }

  // Average and add the weight-decay term.
  const double inv_m = 1.0 / static_cast<double>(m);
  double decay = 0.0;
  for (std::size_t i = 0; i < h * v; ++i) {
    g_w1[i] = g_w1[i] * inv_m + lambda * w1[i];
    decay += w1[i] * w1[i];
  }
  for (std::size_t i = 0; i < v * h; ++i) {
    g_w2[i] = g_w2[i] * inv_m + lambda * w2[i];
    decay += w2[i] * w2[i];
  }
  for (std::size_t i = 0; i < h; ++i) g_b1[i] *= inv_m;
  for (std::size_t j = 0; j < v; ++j) g_b2[j] *= inv_m;

  return recon * inv_m / 2.0 + 0.5 * lambda * decay + beta * kl;
}

}  // namespace deepphi::baseline
