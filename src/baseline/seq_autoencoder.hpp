// Independent double-precision reference implementation of the Sparse
// Autoencoder cost and gradient — written example-by-example from the
// paper's equations (3)–(6), sharing no code with the optimized path. The
// gradient-parity tests check the batched float implementation against this
// oracle; the finite-difference tests check this oracle against the cost
// itself.
#pragma once

#include <vector>

#include "core/sparse_autoencoder.hpp"

namespace deepphi::baseline {

struct SaeReference {
  // Flat double copies of the parameters (layouts match the model).
  std::vector<double> w1, b1, w2, b2;
  la::Index visible = 0, hidden = 0;
  float lambda = 0, rho = 0, beta = 0;

  /// Snapshot of `model`'s parameters and hyperparameters.
  explicit SaeReference(const core::SparseAutoencoder& model);

  /// Cost J over the batch (x is batch×visible).
  double cost(const la::Matrix& x) const;

  /// Cost + gradient over the batch, layouts matching AeGradients.
  double gradient(const la::Matrix& x, std::vector<double>& g_w1,
                  std::vector<double>& g_b1, std::vector<double>& g_w2,
                  std::vector<double>& g_b2) const;
};

}  // namespace deepphi::baseline
