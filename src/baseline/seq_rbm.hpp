// Independent double-precision reference of the RBM CD-k gradient, written
// example-by-example from the paper's equations (8)–(13). It consumes Gibbs
// noise through the SAME (rng.split(phase)).split(row) stream convention as
// the optimized kernels, so given equal parameters both implementations
// sample identical binary states and the parity tests can compare gradients
// exactly (up to float/double accumulation).
#pragma once

#include <vector>

#include "core/rbm.hpp"

namespace deepphi::baseline {

struct RbmReference {
  std::vector<double> w, b, c;  // layouts match the model
  la::Index visible = 0, hidden = 0;
  int cd_k = 1;
  bool sample_visible = false;
  bool gaussian_visible = false;

  explicit RbmReference(const core::Rbm& model);

  /// CD-k descent gradient (layouts matching RbmGradients); returns the mean
  /// squared reconstruction error.
  double gradient(const la::Matrix& v1, const util::Rng& rng,
                  std::vector<double>& g_w, std::vector<double>& g_b,
                  std::vector<double>& g_c) const;

  /// Mean free energy over the batch.
  double free_energy(const la::Matrix& v) const;
};

}  // namespace deepphi::baseline
