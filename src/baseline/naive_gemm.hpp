// Naive triple-loop GEMM — the correctness oracle for la::gemm and the
// reference point of the micro-kernel benchmark. Accumulates in double so it
// is strictly more accurate than the optimized kernel it checks.
#pragma once

#include "la/gemm.hpp"
#include "la/matrix.hpp"

namespace deepphi::baseline {

/// C = alpha · op(A)·op(B) + beta · C, computed with the textbook loop nest.
void naive_gemm(la::Trans trans_a, la::Trans trans_b, float alpha,
                const la::Matrix& a, const la::Matrix& b, float beta,
                la::Matrix& c);

}  // namespace deepphi::baseline
