#include "baseline/matlab_like.hpp"

namespace deepphi::baseline {

namespace {
using phi::KernelStats;

// A Matlab elementwise expression of n elements: the op itself plus a
// temporary materialization (pure copy traffic, one more dispatch).
KernelStats matlab_elementwise(la::Index n, double flops_per_elem,
                               double reads, double writes) {
  KernelStats k = phi::loop_contribution(n, flops_per_elem, reads, writes);
  k += phi::loop_contribution(n, 0.0, 1.0, 1.0);  // temporary copy
  return k;
}
}  // namespace

phi::KernelStats matlab_sae_batch_stats(const core::SaeShape& s) {
  const la::Index b = s.batch, v = s.visible, h = s.hidden;
  KernelStats k;
  // forward
  k += phi::gemm_contribution(b, h, v);
  k += matlab_elementwise(b * h, 1.0, 1.0, 1.0);  // +bias (bsxfun)
  k += matlab_elementwise(b * h, 8.0, 1.0, 1.0);  // sigmoid
  k += phi::gemm_contribution(b, v, h);
  k += matlab_elementwise(b * v, 1.0, 1.0, 1.0);
  k += matlab_elementwise(b * v, 8.0, 1.0, 1.0);
  // cost pieces
  k += matlab_elementwise(b * h, 1.0, 1.0, 0.0);  // mean(y)
  k += matlab_elementwise(b * v, 3.0, 2.0, 0.0);  // sum((z-x).^2)
  k += matlab_elementwise(h * v, 2.0, 1.0, 0.0);
  k += matlab_elementwise(v * h, 2.0, 1.0, 0.0);
  k += matlab_elementwise(h, 12.0, 1.0, 0.0);
  // output delta (three vectorized expressions in typical Matlab code:
  // (z-x), z.*(1-z), product)
  k += matlab_elementwise(b * v, 1.0, 2.0, 1.0);
  k += matlab_elementwise(b * v, 2.0, 1.0, 1.0);
  k += matlab_elementwise(b * v, 1.0, 2.0, 1.0);
  // W2/b2 gradients
  k += phi::gemm_contribution(v, h, b);
  k += matlab_elementwise(v * h, 2.0, 2.0, 1.0);
  k += matlab_elementwise(b * v, 1.0, 1.0, 0.0);
  // hidden delta
  k += phi::gemm_contribution(b, h, v);
  k += matlab_elementwise(h, 6.0, 1.0, 1.0);
  k += matlab_elementwise(b * h, 1.0, 1.0, 1.0);
  k += matlab_elementwise(b * h, 2.0, 1.0, 1.0);
  k += matlab_elementwise(b * h, 1.0, 2.0, 1.0);
  // W1/b1 gradients
  k += phi::gemm_contribution(h, v, b);
  k += matlab_elementwise(h * v, 2.0, 2.0, 1.0);
  k += matlab_elementwise(b * h, 1.0, 1.0, 0.0);
  // SGD update, one vectorized expression per parameter
  k += matlab_elementwise(h * v, 2.0, 2.0, 1.0);
  k += matlab_elementwise(h, 2.0, 2.0, 1.0);
  k += matlab_elementwise(v * h, 2.0, 2.0, 1.0);
  k += matlab_elementwise(v, 2.0, 2.0, 1.0);
  return k;
}

phi::KernelStats matlab_sae_train_stats(const core::TrainShape& run,
                                        const core::SaeShape& shape) {
  KernelStats k;
  for (int epoch = 0; epoch < run.epochs; ++epoch) {
    for (la::Index begin = 0; begin < run.examples; begin += run.batch) {
      core::SaeShape s = shape;
      s.batch = std::min(run.batch, run.examples - begin);
      k += matlab_sae_batch_stats(s);
    }
  }
  return k;
}

}  // namespace deepphi::baseline
