// The Fig. 10 comparator: "a Matlab code ... on the same single Xeon CPU
// [platform]; Matlab has its own optimization of matrix operations".
//
// What distinguishes a Matlab implementation is not the math (identical) but
// the execution profile: matrix products go to an optimized multithreaded
// BLAS, while every other vectorized expression pays interpreter dispatch
// and materializes full temporaries. We model that as:
//
//  * work     — the unfused matrix-form step (each elementwise op its own
//               kernel) plus one extra temporary-copy pass per elementwise
//               op (Matlab's out-of-place semantics);
//  * machine  — phi::matlab_host(): BLAS-grade gemm efficiency, low loop
//               efficiency, software_overhead ≈ 3 and dispatch_us per kernel.
//
// matlab_sae_batch_stats builds the work bundle; benches evaluate it on the
// matlab_host MachineSpec.
#pragma once

#include "core/cost_accounting.hpp"

namespace deepphi::baseline {

/// KernelStats of one Matlab-style SAE gradient + SGD update at the given
/// shape: the unfused matrix-form sequence with an extra temporary-copy pass
/// per elementwise kernel.
phi::KernelStats matlab_sae_batch_stats(const core::SaeShape& shape);

/// Full-run Matlab-style stats (chunking is irrelevant on the host — data is
/// local — but batching matters; mirrors core::sae_train_stats structure
/// with zero transfer traffic).
phi::KernelStats matlab_sae_train_stats(const core::TrainShape& run,
                                        const core::SaeShape& shape);

}  // namespace deepphi::baseline
