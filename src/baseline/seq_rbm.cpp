#include "baseline/seq_rbm.hpp"

#include <cmath>

#include "util/error.hpp"

namespace deepphi::baseline {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}

RbmReference::RbmReference(const core::Rbm& model) {
  visible = model.visible();
  hidden = model.hidden();
  cd_k = model.config().cd_k;
  sample_visible = model.config().sample_visible;
  gaussian_visible =
      model.config().visible_type == core::VisibleType::kGaussian;
  w.assign(model.w().data(), model.w().data() + model.w().size());
  b.assign(model.b().data(), model.b().data() + model.b().size());
  c.assign(model.c().data(), model.c().data() + model.c().size());
}

double RbmReference::gradient(const la::Matrix& v1, const util::Rng& rng,
                              std::vector<double>& g_w, std::vector<double>& g_b,
                              std::vector<double>& g_c) const {
  DEEPPHI_CHECK_MSG(v1.cols() == visible, "reference input dim mismatch");
  const la::Index m = v1.rows();
  const std::size_t nv = static_cast<std::size_t>(visible);
  const std::size_t nh = static_cast<std::size_t>(hidden);

  g_w.assign(nh * nv, 0.0);
  g_b.assign(nv, 0.0);
  g_c.assign(nh, 0.0);
  double recon = 0.0;

  // Per-example chain; the per-row noise streams are pre-split exactly like
  // the batched kernels do: phase stream split(phase), then row split(r).
  const util::Rng h1_noise = rng.split(0);

  std::vector<double> h1_mean(nh), h2_mean(nh), v2(nv), h_state(nh);
  for (la::Index e = 0; e < m; ++e) {
    const float* ve = v1.row(e);
    util::Rng row_h1 = h1_noise.split(static_cast<std::uint64_t>(e));

    // Positive phase.
    for (std::size_t i = 0; i < nh; ++i) {
      double a = c[i];
      for (std::size_t j = 0; j < nv; ++j) a += w[i * nv + j] * ve[j];
      h1_mean[i] = sigmoid(a);
      h_state[i] =
          row_h1.uniform_float() < static_cast<float>(h1_mean[i]) ? 1.0 : 0.0;
    }

    // Gibbs chain.
    for (int step = 0; step < cd_k; ++step) {
      for (std::size_t j = 0; j < nv; ++j) {
        double a = b[j];
        for (std::size_t i = 0; i < nh; ++i) a += w[i * nv + j] * h_state[i];
        v2[j] = gaussian_visible ? a : sigmoid(a);
      }
      if (sample_visible) {
        util::Rng row_v =
            rng.split(100 + step).split(static_cast<std::uint64_t>(e));
        if (gaussian_visible) {
          for (std::size_t j = 0; j < nv; ++j) v2[j] += row_v.normal();
        } else {
          for (std::size_t j = 0; j < nv; ++j)
            v2[j] =
                row_v.uniform_float() < static_cast<float>(v2[j]) ? 1.0 : 0.0;
        }
      }
      for (std::size_t i = 0; i < nh; ++i) {
        double a = c[i];
        for (std::size_t j = 0; j < nv; ++j) a += w[i * nv + j] * v2[j];
        h2_mean[i] = sigmoid(a);
      }
      if (step + 1 < cd_k) {
        util::Rng row_h =
            rng.split(200 + step).split(static_cast<std::uint64_t>(e));
        for (std::size_t i = 0; i < nh; ++i)
          h_state[i] =
              row_h.uniform_float() < static_cast<float>(h2_mean[i]) ? 1.0 : 0.0;
      }
    }

    // Descent statistics: g = (model − data)/m.
    for (std::size_t i = 0; i < nh; ++i) {
      for (std::size_t j = 0; j < nv; ++j)
        g_w[i * nv + j] += h2_mean[i] * v2[j] - h1_mean[i] * ve[j];
      g_c[i] += h2_mean[i] - h1_mean[i];
    }
    for (std::size_t j = 0; j < nv; ++j) {
      g_b[j] += v2[j] - ve[j];
      const double d = ve[j] - v2[j];
      recon += d * d;
    }
  }

  const double inv_m = 1.0 / static_cast<double>(m);
  for (auto& g : g_w) g *= inv_m;
  for (auto& g : g_b) g *= inv_m;
  for (auto& g : g_c) g *= inv_m;
  return recon * inv_m;
}

double RbmReference::free_energy(const la::Matrix& v) const {
  DEEPPHI_CHECK_MSG(v.cols() == visible, "reference input dim mismatch");
  const std::size_t nv = static_cast<std::size_t>(visible);
  const std::size_t nh = static_cast<std::size_t>(hidden);
  double total = 0.0;
  for (la::Index e = 0; e < v.rows(); ++e) {
    const float* ve = v.row(e);
    double fe = 0.0;
    for (std::size_t j = 0; j < nv; ++j) {
      if (gaussian_visible) {
        const double d = ve[j] - b[j];
        fe += 0.5 * d * d;
      } else {
        fe -= b[j] * ve[j];
      }
    }
    for (std::size_t i = 0; i < nh; ++i) {
      double a = c[i];
      for (std::size_t j = 0; j < nv; ++j) a += w[i * nv + j] * ve[j];
      fe -= a > 30 ? a : std::log1p(std::exp(a));
    }
    total += fe;
  }
  return total / static_cast<double>(v.rows());
}

}  // namespace deepphi::baseline
