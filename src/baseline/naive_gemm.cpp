#include "baseline/naive_gemm.hpp"

#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::baseline {

void naive_gemm(la::Trans trans_a, la::Trans trans_b, float alpha,
                const la::Matrix& a, const la::Matrix& b, float beta,
                la::Matrix& c) {
  using la::Index;
  using la::Trans;
  const Index m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const Index ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const Index kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const Index n = trans_b == Trans::kNo ? b.cols() : b.rows();
  DEEPPHI_CHECK_MSG(ka == kb, "naive_gemm inner dims " << ka << " vs " << kb);
  DEEPPHI_CHECK_MSG(c.rows() == m && c.cols() == n,
                    "naive_gemm C must be " << m << "x" << n);
  phi::record(phi::naive_gemm_contribution(m, n, ka));

  auto av = [&](Index i, Index p) {
    return trans_a == Trans::kNo ? a(i, p) : a(p, i);
  };
  auto bv = [&](Index p, Index j) {
    return trans_b == Trans::kNo ? b(p, j) : b(j, p);
  };
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      double acc = 0.0;
      for (Index p = 0; p < ka; ++p)
        acc += static_cast<double>(av(i, p)) * bv(p, j);
      c(i, j) = alpha * static_cast<float>(acc) + beta * c(i, j);
    }
  }
}

}  // namespace deepphi::baseline
