#include "data/sharded_dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/io_util.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DEEPPHI_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace deepphi::data {

namespace fs = std::filesystem;

const char* dtype_name(ShardDtype dtype) {
  switch (dtype) {
    case ShardDtype::kF32: return "f32";
    case ShardDtype::kU8: return "u8";
  }
  return "?";
}

ShardDtype parse_dtype(const std::string& name) {
  if (name == "f32") return ShardDtype::kF32;
  if (name == "u8") return ShardDtype::kU8;
  throw IoError("unknown shard dtype '" + name + "' (f32|u8)");
}

std::size_t dtype_size(ShardDtype dtype) {
  return dtype == ShardDtype::kF32 ? 4 : 1;
}

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t state) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= 0x100000001b3ULL;
  }
  return state;
}

std::uint64_t Manifest::total_bytes() const {
  std::uint64_t total = 0;
  for (const ShardEntry& s : shards) total += s.bytes;
  return total;
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::uint64_t parse_hex64(const std::string& s, const std::string& path) {
  if (s.empty() || s.size() > 16)
    throw IoError("'" + path + "' has malformed checksum '" + s + "'");
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else throw IoError("'" + path + "' has malformed checksum '" + s + "'");
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

Index json_index(const util::JsonValue& v, const char* key,
                 const std::string& path) {
  if (!v.has(key) || !v.at(key).is_number())
    throw IoError("'" + path + "' manifest missing numeric field '" +
                  std::string(key) + "'");
  const double d = v.at(key).as_number();
  if (d < 0 || d != std::floor(d))
    throw IoError("'" + path + "' manifest field '" + std::string(key) +
                  "' must be a non-negative integer, got " +
                  std::to_string(d));
  return static_cast<Index>(d);
}

}  // namespace

Manifest read_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  util::JsonValue doc;
  try {
    doc = util::parse_json(buf.str());
  } catch (const util::Error& e) {
    throw IoError("'" + path + "' is not valid JSON: " + e.what());
  }
  if (!doc.is_object() || !doc.has("schema") || !doc.at("schema").is_string() ||
      doc.at("schema").as_string() != kManifestSchema)
    throw IoError("'" + path + "' is not a " + std::string(kManifestSchema) +
                  " manifest");
  Manifest m;
  m.rows = json_index(doc, "rows", path);
  m.dim = json_index(doc, "dim", path);
  if (m.dim < 1)
    throw IoError("'" + path + "' manifest has dim " + std::to_string(m.dim) +
                  " (must be >= 1)");
  if (!doc.has("dtype") || !doc.at("dtype").is_string())
    throw IoError("'" + path + "' manifest missing string field 'dtype'");
  m.dtype = parse_dtype(doc.at("dtype").as_string());
  if (!doc.has("shards") || !doc.at("shards").is_array())
    throw IoError("'" + path + "' manifest missing array field 'shards'");
  const std::size_t esize = dtype_size(m.dtype);
  Index covered = 0;
  for (const util::JsonValue& sv : doc.at("shards").as_array()) {
    if (!sv.is_object() || !sv.has("path") || !sv.at("path").is_string())
      throw IoError("'" + path + "' manifest shard entry missing 'path'");
    ShardEntry e;
    e.path = sv.at("path").as_string();
    e.rows = json_index(sv, "rows", path);
    e.offset = sv.has("offset")
                   ? static_cast<std::uint64_t>(json_index(sv, "offset", path))
                   : 0;
    e.bytes = static_cast<std::uint64_t>(json_index(sv, "bytes", path));
    if (!sv.has("checksum") || !sv.at("checksum").is_string())
      throw IoError("'" + path + "' manifest shard '" + e.path +
                    "' missing 'checksum'");
    e.checksum = parse_hex64(sv.at("checksum").as_string(), path);
    const std::uint64_t need = static_cast<std::uint64_t>(e.rows) *
                               static_cast<std::uint64_t>(m.dim) * esize;
    if (e.bytes != need)
      throw IoError("'" + path + "' manifest shard '" + e.path +
                    "' byte count mismatch: manifest says " +
                    std::to_string(e.bytes) + " bytes, " +
                    std::to_string(e.rows) + " rows x " +
                    std::to_string(m.dim) + " " + dtype_name(m.dtype) +
                    " need " + std::to_string(need));
    covered += e.rows;
    m.shards.push_back(std::move(e));
  }
  if (covered != m.rows)
    throw IoError("'" + path + "' manifest rows " + std::to_string(m.rows) +
                  " != sum of shard rows " + std::to_string(covered));
  return m;
}

void write_manifest(const Manifest& manifest, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good())
    throw IoError("cannot open '" + path + "' for writing");
  util::JsonWriter w(out);
  w.begin_object();
  w.member("schema", kManifestSchema);
  w.member("rows", static_cast<std::int64_t>(manifest.rows));
  w.member("dim", static_cast<std::int64_t>(manifest.dim));
  w.member("dtype", dtype_name(manifest.dtype));
  w.key("shards");
  w.begin_array();
  for (const ShardEntry& e : manifest.shards) {
    w.begin_object();
    w.member("path", e.path);
    w.member("rows", static_cast<std::int64_t>(e.rows));
    w.member("offset", e.offset);
    w.member("bytes", e.bytes);
    w.member("checksum", hex64(e.checksum));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  if (!out.good()) throw IoError("write to '" + path + "' failed");
}

// --- mmap backing ---------------------------------------------------------

class ShardedDataset::MappedFile {
 public:
  /// Maps `path` read-only; throws IoError when the file cannot be opened
  /// or holds fewer than `need_bytes` bytes.
  MappedFile(const std::string& path, std::uint64_t need_bytes) : path_(path) {
#if DEEPPHI_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw IoError("cannot open shard '" + path + "'");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw IoError("cannot stat shard '" + path + "'");
    }
    len_ = static_cast<std::size_t>(st.st_size);
    if (len_ < need_bytes) {
      ::close(fd);
      detail::throw_truncated(path, "shard payload",
                              static_cast<std::size_t>(need_bytes), len_);
    }
    if (len_ > 0) {
      addr_ = ::mmap(nullptr, len_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr_ == MAP_FAILED) {
        ::close(fd);
        addr_ = nullptr;
        throw IoError("mmap of shard '" + path + "' failed");
      }
    }
    ::close(fd);
#else
    // Portable fallback: buffer the whole file (loses the out-of-core
    // property but keeps the format readable everywhere).
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.good()) throw IoError("cannot open shard '" + path + "'");
    len_ = static_cast<std::size_t>(in.tellg());
    if (len_ < need_bytes)
      detail::throw_truncated(path, "shard payload",
                              static_cast<std::size_t>(need_bytes), len_);
    fallback_.resize(len_);
    in.seekg(0);
    if (len_ > 0)
      detail::read_exact(in, fallback_.data(), len_, path, "shard payload");
#endif
  }

  ~MappedFile() {
#if DEEPPHI_HAVE_MMAP
    if (addr_ != nullptr) ::munmap(addr_, len_);
#endif
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const {
#if DEEPPHI_HAVE_MMAP
    return static_cast<const unsigned char*>(addr_);
#else
    return fallback_.data();
#endif
  }

  std::size_t size() const { return len_; }

  /// Kernel readahead hint for [offset, offset+len) of the mapping.
  void advise_willneed(std::size_t offset, std::size_t len) const {
#if DEEPPHI_HAVE_MMAP
    if (addr_ == nullptr || len == 0 || offset >= len_) return;
    len = std::min(len, len_ - offset);
    const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t aligned = offset & ~(page - 1);
    ::madvise(static_cast<char*>(addr_) + aligned, len + (offset - aligned),
              MADV_WILLNEED);
#else
    (void)offset;
    (void)len;
#endif
  }

 private:
  std::string path_;
#if DEEPPHI_HAVE_MMAP
  void* addr_ = nullptr;
#else
  std::vector<unsigned char> fallback_;
#endif
  std::size_t len_ = 0;
};

// --- ShardedDataset -------------------------------------------------------

ShardedDataset ShardedDataset::open(const std::string& manifest_path,
                                    OpenOptions options) {
  ShardedDataset set;
  set.manifest_ = read_manifest(manifest_path);
  set.manifest_path_ = manifest_path;
  const fs::path dir = fs::path(manifest_path).parent_path();
  set.row_begin_.reserve(set.manifest_.shards.size() + 1);
  set.row_begin_.push_back(0);
  for (const ShardEntry& e : set.manifest_.shards) {
    const std::string full = (dir / e.path).string();
    auto map = std::make_shared<MappedFile>(full, e.offset + e.bytes);
    const unsigned char* payload = e.bytes > 0 ? map->data() + e.offset
                                               : nullptr;
    if (options.verify_checksums && e.bytes > 0) {
      const std::uint64_t got =
          fnv1a64(payload, static_cast<std::size_t>(e.bytes));
      if (got != e.checksum)
        throw IoError("shard '" + full + "' corrupt: payload checksum " +
                      hex64(got) + " != manifest " + hex64(e.checksum));
    }
    set.maps_.push_back(std::move(map));
    set.payload_.push_back(payload);
    set.row_begin_.push_back(set.row_begin_.back() + e.rows);
  }
  return set;
}

std::size_t ShardedDataset::shard_of(Index row) const {
  // row_begin_ is sorted; find the shard whose [begin, end) holds `row`.
  const auto it =
      std::upper_bound(row_begin_.begin(), row_begin_.end(), row);
  return static_cast<std::size_t>(it - row_begin_.begin()) - 1;
}

void ShardedDataset::decode_span(std::size_t s, Index local, Index count,
                                 float* dst) const {
  const Index d = dim();
  const std::size_t esize = dtype_size(manifest_.dtype);
  const unsigned char* src =
      payload_[s] + static_cast<std::size_t>(local) *
                        static_cast<std::size_t>(d) * esize;
  if (manifest_.dtype == ShardDtype::kF32) {
    std::memcpy(dst, src,
                sizeof(float) * static_cast<std::size_t>(count * d));
  } else {
    const std::size_t n = static_cast<std::size_t>(count * d);
    // Same decode rule as the IDX loader, so u8 shards of an IDX corpus
    // train bitwise-identically to the in-memory load.
    for (std::size_t i = 0; i < n; ++i)
      dst[i] = static_cast<float>(src[i]) / 255.0f;
  }
}

void ShardedDataset::copy_rows(Index begin, Index count,
                               la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(begin >= 0 && count >= 0 && begin + count <= rows(),
                    "batch [" << begin << ", " << begin + count << ") out of "
                              << rows() << " examples");
  DEEPPHI_CHECK_MSG(out.rows() == count && out.cols() == dim(),
                    "batch target must be " << count << "x" << dim()
                                            << ", got " << out.rows() << "x"
                                            << out.cols());
  Index row = begin;
  Index written = 0;
  while (written < count) {
    const std::size_t s = shard_of(row);
    const Index span = std::min(count - written, row_begin_[s + 1] - row);
    decode_span(s, row - row_begin_[s], span, out.row(written));
    row += span;
    written += span;
  }
}

void ShardedDataset::copy_rows(const std::vector<Index>& indices,
                               la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(out.rows() == static_cast<Index>(indices.size()) &&
                        out.cols() == dim(),
                    "gather target must be " << indices.size() << "x" << dim()
                                             << ", got " << out.rows() << "x"
                                             << out.cols());
  // The window shuffle hands us runs that stay inside one window, which
  // nearly always lands in a single shard — memoize the last hit so the
  // steady state skips the binary search, and hoist the f32 row copy out
  // of decode_span (the per-row dispatch showed up in bench_data_pipeline).
  const Index d = dim();
  const std::size_t esize = dtype_size(manifest_.dtype);
  const std::size_t row_bytes = static_cast<std::size_t>(d) * esize;
  std::size_t s = 0;
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const Index i = indices[r];
    DEEPPHI_CHECK_MSG(i >= 0 && i < rows(),
                      "example index " << i << " out of " << rows());
    if (i < row_begin_[s] || i >= row_begin_[s + 1]) s = shard_of(i);
    const unsigned char* src =
        payload_[s] + static_cast<std::size_t>(i - row_begin_[s]) * row_bytes;
    float* dst = out.row(static_cast<Index>(r));
    if (manifest_.dtype == ShardDtype::kF32) {
      std::memcpy(dst, src, sizeof(float) * static_cast<std::size_t>(d));
    } else {
      for (Index j = 0; j < d; ++j)
        dst[j] = static_cast<float>(src[j]) / 255.0f;
    }
  }
}

void ShardedDataset::prefetch(Index begin, Index count) const {
  if (count <= 0) return;
  begin = std::max<Index>(begin, 0);
  count = std::min(count, rows() - begin);
  if (count <= 0) return;
  const std::size_t row_bytes =
      static_cast<std::size_t>(dim()) * dtype_size(manifest_.dtype);
  Index row = begin;
  Index left = count;
  while (left > 0) {
    const std::size_t s = shard_of(row);
    const Index span = std::min(left, row_begin_[s + 1] - row);
    const std::size_t local = static_cast<std::size_t>(row - row_begin_[s]);
    maps_[s]->advise_willneed(
        static_cast<std::size_t>(manifest_.shards[s].offset) +
            local * row_bytes,
        static_cast<std::size_t>(span) * row_bytes);
    row += span;
    left -= span;
  }
}

SourceInfo ShardedDataset::info() const {
  SourceInfo info;
  info.kind = "sharded";
  info.format = dtype_name(manifest_.dtype);
  info.bytes = manifest_.total_bytes();
  return info;
}

// --- Writer ---------------------------------------------------------------

std::string write_sharded(const StreamingSource& source, const std::string& dir,
                          ShardWriteOptions options) {
  DEEPPHI_CHECK_MSG(options.rows_per_shard >= 1,
                    "rows_per_shard must be >= 1, got "
                        << options.rows_per_shard);
  DEEPPHI_CHECK_MSG(source.dim() >= 1,
                    "cannot shard a source of dim " << source.dim());
  fs::create_directories(dir);
  const Index n = source.rows();
  const Index d = source.dim();
  const std::size_t esize = dtype_size(options.dtype);
  // Bounded staging: decode at most this many rows at a time, so sharding a
  // 100 GB source needs megabytes, not the source.
  const Index stage_rows = std::min<Index>(options.rows_per_shard, 4096);
  la::Matrix stage;
  std::vector<unsigned char> encoded;

  Manifest manifest;
  manifest.rows = n;
  manifest.dim = d;
  manifest.dtype = options.dtype;
  int shard_index = 0;
  for (Index begin = 0; begin < n; begin += options.rows_per_shard) {
    const Index shard_rows = std::min(options.rows_per_shard, n - begin);
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%04d.bin", shard_index++);
    const std::string full = (fs::path(dir) / name).string();
    std::ofstream out(full, std::ios::binary | std::ios::trunc);
    if (!out.good()) throw IoError("cannot open '" + full + "' for writing");
    std::uint64_t checksum = kFnvOffsetBasis;
    for (Index off = 0; off < shard_rows; off += stage_rows) {
      const Index count = std::min(stage_rows, shard_rows - off);
      if (stage.rows() != count || stage.cols() != d)
        stage = la::Matrix::uninitialized(count, d);
      source.copy_rows(begin + off, count, stage);
      const std::size_t bytes =
          static_cast<std::size_t>(count * d) * esize;
      encoded.resize(bytes);
      if (options.dtype == ShardDtype::kF32) {
        std::memcpy(encoded.data(), stage.data(), bytes);
      } else {
        const float* src = stage.data();
        // Mirror save_idx_images' quantization exactly.
        for (std::size_t i = 0; i < bytes; ++i) {
          const float v = std::clamp(src[i], 0.0f, 1.0f);
          encoded[i] = static_cast<unsigned char>(std::lround(v * 255.0f));
        }
      }
      checksum = fnv1a64(encoded.data(), bytes, checksum);
      out.write(reinterpret_cast<const char*>(encoded.data()),
                static_cast<std::streamsize>(bytes));
    }
    if (!out.good()) throw IoError("write to '" + full + "' failed");
    ShardEntry entry;
    entry.path = name;
    entry.rows = shard_rows;
    entry.offset = 0;
    entry.bytes = static_cast<std::uint64_t>(shard_rows) *
                  static_cast<std::uint64_t>(d) * esize;
    entry.checksum = checksum;
    manifest.shards.push_back(std::move(entry));
  }
  const std::string manifest_path = (fs::path(dir) / "manifest.json").string();
  write_manifest(manifest, manifest_path);
  return manifest_path;
}

}  // namespace deepphi::data
