#include "data/digits.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace deepphi::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

struct Point {
  float x, y;
};
using Polyline = std::vector<Point>;

void add_arc(Polyline& line, float cx, float cy, float rx, float ry, float a0,
             float a1, int n = 12) {
  for (int i = 0; i <= n; ++i) {
    const float a = a0 + (a1 - a0) * static_cast<float>(i) / n;
    line.push_back(Point{cx + rx * std::cos(a), cy + ry * std::sin(a)});
  }
}

// Stroke skeletons per digit class, in unit coordinates (x right, y down),
// glyphs inscribed roughly in [0.25, 0.75] × [0.18, 0.82].
std::vector<Polyline> digit_strokes(int digit) {
  const float pi = static_cast<float>(kPi);
  std::vector<Polyline> strokes;
  switch (digit) {
    case 0: {
      Polyline o;
      add_arc(o, 0.5f, 0.5f, 0.22f, 0.30f, 0.0f, 2 * pi, 24);
      strokes.push_back(o);
      break;
    }
    case 1: {
      strokes.push_back({{0.38f, 0.32f}, {0.52f, 0.18f}, {0.52f, 0.82f}});
      strokes.push_back({{0.38f, 0.82f}, {0.66f, 0.82f}});
      break;
    }
    case 2: {
      Polyline top;
      add_arc(top, 0.5f, 0.36f, 0.20f, 0.18f, -pi, 0.15f * pi, 14);
      strokes.push_back(top);
      strokes.push_back({{0.67f, 0.45f}, {0.30f, 0.82f}, {0.72f, 0.82f}});
      break;
    }
    case 3: {
      Polyline top, bottom;
      add_arc(top, 0.48f, 0.34f, 0.20f, 0.16f, -0.8f * pi, 0.5f * pi, 14);
      add_arc(bottom, 0.48f, 0.66f, 0.22f, 0.17f, -0.5f * pi, 0.8f * pi, 14);
      strokes.push_back(top);
      strokes.push_back(bottom);
      break;
    }
    case 4: {
      strokes.push_back({{0.62f, 0.18f}, {0.28f, 0.58f}, {0.76f, 0.58f}});
      strokes.push_back({{0.62f, 0.18f}, {0.62f, 0.82f}});
      break;
    }
    case 5: {
      strokes.push_back({{0.70f, 0.18f}, {0.34f, 0.18f}, {0.32f, 0.47f}});
      Polyline bowl;
      add_arc(bowl, 0.48f, 0.63f, 0.22f, 0.19f, -0.55f * pi, 0.85f * pi, 16);
      strokes.push_back(bowl);
      break;
    }
    case 6: {
      strokes.push_back({{0.62f, 0.18f}, {0.40f, 0.45f}, {0.33f, 0.62f}});
      Polyline loop;
      add_arc(loop, 0.5f, 0.64f, 0.18f, 0.17f, 0.0f, 2 * pi, 20);
      strokes.push_back(loop);
      break;
    }
    case 7: {
      strokes.push_back({{0.28f, 0.18f}, {0.74f, 0.18f}, {0.44f, 0.82f}});
      break;
    }
    case 8: {
      Polyline top, bottom;
      add_arc(top, 0.5f, 0.35f, 0.16f, 0.15f, 0.0f, 2 * pi, 18);
      add_arc(bottom, 0.5f, 0.66f, 0.20f, 0.16f, 0.0f, 2 * pi, 20);
      strokes.push_back(top);
      strokes.push_back(bottom);
      break;
    }
    case 9: {
      Polyline loop;
      add_arc(loop, 0.5f, 0.36f, 0.18f, 0.17f, 0.0f, 2 * pi, 20);
      strokes.push_back(loop);
      strokes.push_back({{0.67f, 0.38f}, {0.60f, 0.60f}, {0.42f, 0.82f}});
      break;
    }
    default:
      throw util::Error("digit class must be 0-9, got " + std::to_string(digit));
  }
  return strokes;
}

float dist_to_segment(float px, float py, Point a, Point b) {
  const float dx = b.x - a.x;
  const float dy = b.y - a.y;
  const float len2 = dx * dx + dy * dy;
  float t = 0.0f;
  if (len2 > 0) t = std::clamp(((px - a.x) * dx + (py - a.y) * dy) / len2, 0.0f, 1.0f);
  const float cx = a.x + t * dx - px;
  const float cy = a.y + t * dy - py;
  return std::sqrt(cx * cx + cy * cy);
}

}  // namespace

void render_digit(int digit, const DigitConfig& config, util::Rng& rng,
                  float* out) {
  DEEPPHI_CHECK_MSG(config.image_size >= 8, "image_size too small: "
                                                << config.image_size);
  std::vector<Polyline> strokes = digit_strokes(digit);

  // Per-image affine jitter: small shift and scale wobble around the center.
  const float sx = 1.0f + 0.12f * static_cast<float>(rng.normal());
  const float sy = 1.0f + 0.12f * static_cast<float>(rng.normal());
  const float tx = 0.05f * static_cast<float>(rng.normal());
  const float ty = 0.05f * static_cast<float>(rng.normal());
  for (auto& line : strokes) {
    for (auto& p : line) {
      // Control-point jitter gives each image its own "handwriting".
      p.x += config.jitter * static_cast<float>(rng.normal());
      p.y += config.jitter * static_cast<float>(rng.normal());
      p.x = 0.5f + (p.x - 0.5f) * sx + tx;
      p.y = 0.5f + (p.y - 0.5f) * sy + ty;
    }
  }

  const Index s = config.image_size;
  const float w = config.stroke_width;
  for (Index r = 0; r < s; ++r) {
    for (Index c = 0; c < s; ++c) {
      const float px = (static_cast<float>(c) + 0.5f) / s;
      const float py = (static_cast<float>(r) + 0.5f) / s;
      float d = 1e9f;
      for (const auto& line : strokes)
        for (std::size_t i = 0; i + 1 < line.size(); ++i)
          d = std::min(d, dist_to_segment(px, py, line[i], line[i + 1]));
      // Soft pen profile: full ink inside the pen radius, smooth falloff
      // over a quarter radius beyond it.
      float v = std::clamp((w - d) / (0.25f * w) + 1.0f, 0.0f, 1.0f);
      v += config.noise * (2.0f * rng.uniform_float() - 1.0f);
      out[r * s + c] = std::clamp(v, 0.0f, 1.0f);
    }
  }
}

Dataset make_digit_images(Index count, const DigitConfig& config,
                          std::uint64_t seed, std::vector<int>* labels_out) {
  DEEPPHI_CHECK_MSG(count >= 0, "negative count");
  Dataset set(count, config.image_size * config.image_size);
  util::Rng base(seed, /*stream=*/0xd19175u);
  if (labels_out) labels_out->resize(static_cast<std::size_t>(count));
  // Every image draws from its own substream, so rendering parallelizes
  // without changing the output.
#pragma omp parallel for if (count >= 64) schedule(dynamic, 16)
  for (Index i = 0; i < count; ++i) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(i));
    const int digit = static_cast<int>(rng.uniform_index(10));
    if (labels_out) (*labels_out)[static_cast<std::size_t>(i)] = digit;
    render_digit(digit, config, rng, set.example(i));
  }
  return set;
}

}  // namespace deepphi::data
