#include "data/natural.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace deepphi::data {

namespace {

// In-place separable box blur with the given radius (two passes per axis
// approximate a Gaussian well enough for texture synthesis).
void box_blur(std::vector<float>& img, Index s, int radius) {
  if (radius <= 0) return;
  std::vector<float> tmp(img.size());
  const float inv = 1.0f / (2 * radius + 1);
  // Horizontal.
  for (Index r = 0; r < s; ++r) {
    const float* row = img.data() + r * s;
    float* out = tmp.data() + r * s;
    float acc = 0;
    for (int c = -radius; c <= radius; ++c)
      acc += row[std::clamp<Index>(c, 0, s - 1)];
    for (Index c = 0; c < s; ++c) {
      out[c] = acc * inv;
      const Index add = std::clamp<Index>(c + radius + 1, 0, s - 1);
      const Index del = std::clamp<Index>(c - radius, 0, s - 1);
      acc += row[add] - row[del];
    }
  }
  // Vertical.
  for (Index c = 0; c < s; ++c) {
    float acc = 0;
    for (int r = -radius; r <= radius; ++r)
      acc += tmp[std::clamp<Index>(r, 0, s - 1) * s + c];
    for (Index r = 0; r < s; ++r) {
      img[r * s + c] = acc * inv;
      const Index add = std::clamp<Index>(r + radius + 1, 0, s - 1);
      const Index del = std::clamp<Index>(r - radius, 0, s - 1);
      acc += tmp[add * s + c] - tmp[del * s + c];
    }
  }
}

}  // namespace

void render_natural(const NaturalConfig& config, util::Rng& rng, float* out) {
  const Index s = config.image_size;
  DEEPPHI_CHECK_MSG(s >= 8, "image_size too small: " << s);
  DEEPPHI_CHECK_MSG(config.octaves >= 1, "need at least one octave");
  const std::size_t n = static_cast<std::size_t>(s * s);

  std::vector<float> acc(n, 0.0f);
  std::vector<float> octave(n);

  // Octaves of smoothed white noise: radius doubles, amplitude halves —
  // a discrete 1/f spectrum.
  float amplitude = 1.0f;
  int radius = 1;
  for (int o = 0; o < config.octaves; ++o) {
    for (auto& v : octave) v = 2.0f * rng.uniform_float() - 1.0f;
    box_blur(octave, s, radius);
    box_blur(octave, s, radius);
    // Blur shrinks variance; renormalize the octave to unit-ish amplitude so
    // `amplitude` alone controls the spectrum.
    float maxabs = 1e-6f;
    for (const auto& v : octave) maxabs = std::max(maxabs, std::fabs(v));
    const float scale = amplitude / maxabs;
    for (std::size_t i = 0; i < n; ++i) acc[i] += octave[i] * scale;
    amplitude *= 0.5f;
    radius *= 2;
  }

  // Soft oriented edges: random half-plane with a smooth luminance step —
  // the occlusion boundaries that give natural scenes their oriented
  // structure.
  for (int e = 0; e < config.edges; ++e) {
    const float theta = static_cast<float>(rng.uniform(0.0, 2.0 * 3.14159265358979));
    const float nx = std::cos(theta);
    const float ny = std::sin(theta);
    const float offset = static_cast<float>(rng.uniform(0.25, 0.75));
    const float sharp = static_cast<float>(rng.uniform(6.0, 24.0));
    const float sign = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    for (Index r = 0; r < s; ++r) {
      for (Index c = 0; c < s; ++c) {
        const float px = (static_cast<float>(c) + 0.5f) / s;
        const float py = (static_cast<float>(r) + 0.5f) / s;
        const float d = nx * px + ny * py - offset;
        acc[r * s + c] +=
            sign * config.edge_strength * std::tanh(sharp * d);
      }
    }
  }

  // Normalize to mean 0.5 and a comfortable contrast inside [0, 1].
  double mean = 0;
  for (const auto& v : acc) mean += v;
  mean /= static_cast<double>(n);
  double var = 0;
  for (const auto& v : acc) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  const float inv_std = var > 1e-12 ? 1.0f / (3.0f * std::sqrt(static_cast<float>(var)))
                                    : 1.0f;
  for (std::size_t i = 0; i < n; ++i)
    out[i] = std::clamp(0.5f + (acc[i] - static_cast<float>(mean)) * inv_std,
                        0.0f, 1.0f);
}

Dataset make_natural_images(Index count, const NaturalConfig& config,
                            std::uint64_t seed) {
  DEEPPHI_CHECK_MSG(count >= 0, "negative count");
  Dataset set(count, config.image_size * config.image_size);
  util::Rng base(seed, /*stream=*/0x7a7c4a1u);
  // Per-image substreams: parallel rendering is output-identical.
#pragma omp parallel for if (count >= 32) schedule(dynamic, 8)
  for (Index i = 0; i < count; ++i) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(i));
    render_natural(config, rng, set.example(i));
  }
  return set;
}

}  // namespace deepphi::data
