#include "data/shuffle.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace deepphi::data {

WindowShuffle::WindowShuffle(Index rows, Index window, std::uint64_t seed)
    : rows_(rows), window_(window), seed_(seed) {
  DEEPPHI_CHECK_MSG(rows >= 0, "WindowShuffle: negative row count " << rows);
  DEEPPHI_CHECK_MSG(window >= 1, "WindowShuffle: window must be >= 1, got "
                                     << window);
}

void WindowShuffle::materialize(Index w) const {
  const Index begin = w * window_;
  const Index len = std::min(window_, rows_ - begin);
  cache_.resize(static_cast<std::size_t>(len));
  for (Index i = 0; i < len; ++i) cache_[static_cast<std::size_t>(i)] = i;
  // One independent stream per window: the permutation of window w never
  // depends on how many earlier positions were consumed or in what chunks.
  util::Rng rng = util::Rng(seed_, /*stream=*/0xda7a5eedULL).split(
      static_cast<std::uint64_t>(w));
  for (Index i = len - 1; i > 0; --i) {
    const Index j = static_cast<Index>(
        rng.uniform_index(static_cast<std::uint64_t>(i) + 1));
    std::swap(cache_[static_cast<std::size_t>(i)],
              cache_[static_cast<std::size_t>(j)]);
  }
  cached_window_ = w;
}

Index WindowShuffle::index(Index pos) const {
  DEEPPHI_CHECK_MSG(pos >= 0 && pos < rows_,
                    "shuffle position " << pos << " out of " << rows_);
  const Index w = pos / window_;
  if (w != cached_window_) materialize(w);
  return w * window_ + cache_[static_cast<std::size_t>(pos - w * window_)];
}

void WindowShuffle::indices(Index begin, Index count,
                            std::vector<Index>& out) const {
  DEEPPHI_CHECK_MSG(begin >= 0 && count >= 0 && begin + count <= rows_,
                    "shuffle range [" << begin << ", " << begin + count
                                      << ") out of " << rows_);
  out.resize(static_cast<std::size_t>(count));
  for (Index k = 0; k < count; ++k)
    out[static_cast<std::size_t>(k)] = index(begin + k);
}

}  // namespace deepphi::data
