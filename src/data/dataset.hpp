// In-memory training set: n examples of dimension d stored as an n×d matrix
// (one example per row) — the layout every batched kernel consumes directly.
#pragma once

#include <utility>
#include <vector>

#include "la/matrix.hpp"

namespace deepphi::data {

using la::Index;

class Dataset {
 public:
  Dataset() = default;
  /// n examples of dimension d, zero-initialized.
  Dataset(Index n, Index dim);
  /// Adopts an existing matrix (rows = examples).
  explicit Dataset(la::Matrix m);

  Index size() const { return data_.rows(); }
  Index dim() const { return data_.cols(); }
  bool empty() const { return size() == 0; }

  float* example(Index i) { return data_.row(i); }
  const float* example(Index i) const { return data_.row(i); }

  la::Matrix& matrix() { return data_; }
  const la::Matrix& matrix() const { return data_; }

  /// Copies rows [begin, begin+count) into `out` (count×dim; shapes checked).
  void copy_batch(Index begin, Index count, la::Matrix& out) const;

  /// Copies the listed rows into `out` (indices.size()×dim).
  void copy_batch(const std::vector<Index>& indices, la::Matrix& out) const;

  /// Per-element mean / min / max over the whole set (sanity checks, tests).
  float mean() const;
  float min() const;
  float max() const;

  /// Splits into (first `count` examples, rest) — the usual train/test cut
  /// for i.i.d. synthetic data. `count` must be in [0, size()].
  std::pair<Dataset, Dataset> split(Index count) const;

 private:
  la::Matrix data_;
};

}  // namespace deepphi::data
