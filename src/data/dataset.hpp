// In-memory training set: n examples of dimension d stored as an n×d matrix
// (one example per row) — the layout every batched kernel consumes directly.
// Implements StreamingSource, so the chunk ring and trainers consume it
// through the same seam as out-of-core ShardedDataset backings.
#pragma once

#include <utility>
#include <vector>

#include "data/streaming_source.hpp"
#include "la/matrix.hpp"

namespace deepphi::data {

using la::Index;

class Dataset : public StreamingSource {
 public:
  Dataset() = default;
  /// n examples of dimension d, zero-initialized.
  Dataset(Index n, Index dim);
  /// Adopts an existing matrix (rows = examples).
  explicit Dataset(la::Matrix m);

  Index size() const { return data_.rows(); }
  bool empty() const { return size() == 0; }

  // StreamingSource interface.
  Index rows() const override { return data_.rows(); }
  Index dim() const override { return data_.cols(); }
  void copy_rows(Index begin, Index count, la::Matrix& out) const override {
    copy_batch(begin, count, out);
  }
  void copy_rows(const std::vector<Index>& indices,
                 la::Matrix& out) const override {
    copy_batch(indices, out);
  }
  SourceInfo info() const override;

  float* example(Index i) { return data_.row(i); }
  const float* example(Index i) const { return data_.row(i); }

  la::Matrix& matrix() { return data_; }
  const la::Matrix& matrix() const { return data_; }

  /// Copies rows [begin, begin+count) into `out` (count×dim; shapes checked).
  void copy_batch(Index begin, Index count, la::Matrix& out) const;

  /// Copies the listed rows into `out` (indices.size()×dim).
  void copy_batch(const std::vector<Index>& indices, la::Matrix& out) const;

  /// Per-element mean / min / max over the whole set (sanity checks, tests).
  float mean() const;
  float min() const;
  float max() const;

  /// Splits into (first `count` examples, rest) — the usual train/test cut
  /// for i.i.d. synthetic data. `count` must be in [0, size()].
  std::pair<Dataset, Dataset> split(Index count) const;

 private:
  la::Matrix data_;
};

}  // namespace deepphi::data
