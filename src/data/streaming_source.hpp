// Uniform read interface over training-data backings — the seam that lets
// one Fig. 5 chunk ring serve both the in-memory data::Dataset and the
// out-of-core mmap'd data::ShardedDataset (and any future backing) without
// the trainers knowing which is underneath.
//
// A StreamingSource is a read-only table of `rows()` examples of `dim()`
// float32 features. The pipeline pulls rows by contiguous range (in-order
// streaming) or by index list (windowed shuffle); `prefetch` is a readahead
// hint the IO stage issues for rows it will decode shortly (no-op for
// memory-backed sources, madvise(WILLNEED) for mmap'd ones). `info()`
// reports provenance — backing kind, on-media dtype, payload bytes — which
// the telemetry run header records so streamed and in-memory runs are
// distinguishable in JSONL output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace deepphi::data {

using la::Index;

/// Provenance of a source's backing store, recorded in run telemetry.
struct SourceInfo {
  std::string kind;         ///< "memory" | "sharded"
  std::string format;       ///< on-media payload dtype: "f32" | "u8"
  std::uint64_t bytes = 0;  ///< payload bytes backing the source
};

class StreamingSource {
 public:
  virtual ~StreamingSource() = default;

  virtual Index rows() const = 0;
  virtual Index dim() const = 0;
  bool empty() const { return rows() == 0; }

  /// Decodes rows [begin, begin+count) as float32 into `out` (count×dim;
  /// shapes checked).
  virtual void copy_rows(Index begin, Index count, la::Matrix& out) const = 0;

  /// Decodes the listed rows in order into `out` (indices.size()×dim) — the
  /// gather the shuffle stage uses. The default loops single-row
  /// copy_rows calls; backings override with a fused decode.
  virtual void copy_rows(const std::vector<Index>& indices,
                         la::Matrix& out) const;

  /// Readahead hint: rows [begin, begin+count) will be decoded soon.
  /// Default no-op; out-of-core sources start IO for the byte range.
  virtual void prefetch(Index begin, Index count) const;

  virtual SourceInfo info() const = 0;
};

}  // namespace deepphi::data
