#include "data/patches.hpp"

#include <algorithm>
#include <cmath>

#include "data/digits.hpp"
#include "data/natural.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace deepphi::data {

namespace {

void normalize_patches(Dataset& patches, const PatchConfig& config) {
  if (config.norm == PatchNorm::kNone) return;
  const Index n = patches.size();
  const Index d = patches.dim();

  // Per-patch mean removal.
  for (Index i = 0; i < n; ++i) {
    float* p = patches.example(i);
    double mean = 0;
    for (Index j = 0; j < d; ++j) mean += p[j];
    mean /= static_cast<double>(d);
    for (Index j = 0; j < d; ++j) p[j] -= static_cast<float>(mean);
  }
  if (config.norm == PatchNorm::kZeroMean) return;

  // Global std over the whole set, truncation, and [0.1, 0.9] mapping.
  double var = 0;
  for (Index i = 0; i < n; ++i) {
    const float* p = patches.example(i);
    for (Index j = 0; j < d; ++j) var += static_cast<double>(p[j]) * p[j];
  }
  var /= std::max<Index>(1, n * d);
  const float bound = config.trunc_sigma * static_cast<float>(std::sqrt(var));
  if (bound <= 0) return;
  for (Index i = 0; i < n; ++i) {
    float* p = patches.example(i);
    for (Index j = 0; j < d; ++j) {
      const float t = std::clamp(p[j], -bound, bound) / bound;  // [-1, 1]
      p[j] = 0.5f + 0.4f * t;                                   // [0.1, 0.9]
    }
  }
}

}  // namespace

Dataset extract_patches(const Dataset& images, Index image_size, Index count,
                        const PatchConfig& config, std::uint64_t seed) {
  DEEPPHI_CHECK_MSG(!images.empty(), "no images to extract patches from");
  DEEPPHI_CHECK_MSG(images.dim() == image_size * image_size,
                    "image dim " << images.dim() << " != " << image_size << "^2");
  DEEPPHI_CHECK_MSG(config.patch_size >= 1 && config.patch_size <= image_size,
                    "patch_size " << config.patch_size << " out of [1, "
                                  << image_size << "]");
  const Index p = config.patch_size;
  Dataset patches(count, p * p);
  util::Rng rng(seed, /*stream=*/0x9a7c4e5u);
  const Index max_off = image_size - p;
  for (Index i = 0; i < count; ++i) {
    const Index img =
        static_cast<Index>(rng.uniform_index(static_cast<std::uint64_t>(images.size())));
    const Index r0 = max_off == 0
                         ? 0
                         : static_cast<Index>(rng.uniform_index(
                               static_cast<std::uint64_t>(max_off + 1)));
    const Index c0 = max_off == 0
                         ? 0
                         : static_cast<Index>(rng.uniform_index(
                               static_cast<std::uint64_t>(max_off + 1)));
    const float* src = images.example(img);
    float* dst = patches.example(i);
    for (Index r = 0; r < p; ++r)
      for (Index c = 0; c < p; ++c)
        dst[r * p + c] = src[(r0 + r) * image_size + (c0 + c)];
  }
  normalize_patches(patches, config);
  return patches;
}

Dataset make_digit_patch_dataset(Index count, Index patch_size,
                                 std::uint64_t seed) {
  DigitConfig dc;
  // Enough distinct source images that patches don't repeat; patches per
  // image grows with the requested count but is capped to bound memory.
  const Index images = std::clamp<Index>(count / 16, 64, 4096);
  Dataset imgs = make_digit_images(images, dc, seed);
  PatchConfig pc;
  pc.patch_size = patch_size;
  return extract_patches(imgs, dc.image_size, count, pc, seed ^ 0x5eedULL);
}

Dataset make_natural_patch_dataset(Index count, Index patch_size,
                                   std::uint64_t seed) {
  NaturalConfig nc;
  const Index images = std::clamp<Index>(count / 32, 32, 2048);
  Dataset imgs = make_natural_images(images, nc, seed);
  PatchConfig pc;
  pc.patch_size = patch_size;
  return extract_patches(imgs, nc.image_size, count, pc, seed ^ 0x5eedULL);
}

}  // namespace deepphi::data
