// Procedural handwritten-digit-like image generator — the substitution for
// the paper's handwritten digit image corpus. Each digit class is a set of
// stroke segments/arcs in the unit square; rendering jitters the control
// points, rasterizes with a soft pen profile (anti-aliased distance field),
// and adds pixel noise. The result is a dense float image in [0, 1] with the
// bright-stroke-on-dark-background statistics the sparse-coding experiments
// expect.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace deepphi::data {

struct DigitConfig {
  Index image_size = 32;      // square canvas side in pixels
  float stroke_width = 0.07f; // pen radius as a fraction of the canvas
  float jitter = 0.04f;       // control-point displacement (fraction)
  float noise = 0.02f;        // additive uniform pixel noise amplitude
};

/// Renders one image of `digit` (0–9) into `out` (image_size² floats).
void render_digit(int digit, const DigitConfig& config, util::Rng& rng,
                  float* out);

/// `count` images of uniformly random digit classes. When `labels_out` is
/// non-null it receives the digit class (0-9) of each image — the labeled
/// form feeds the classification example (the "subsequent work" the paper's
/// unsupervised features exist for).
Dataset make_digit_images(Index count, const DigitConfig& config,
                          std::uint64_t seed,
                          std::vector<int>* labels_out = nullptr);

}  // namespace deepphi::data
