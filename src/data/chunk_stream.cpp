#include "data/chunk_stream.hpp"

#include "util/error.hpp"

namespace deepphi::data {

ChunkStream::ChunkStream(const Dataset& dataset, ChunkStreamConfig config)
    : dataset_(dataset), config_(config) {
  DEEPPHI_CHECK_MSG(config_.chunk_examples >= 1,
                    "chunk_examples must be >= 1, got " << config_.chunk_examples);
  if (config_.background) {
    pipeline_ = std::make_unique<par::ChunkPipeline<la::Matrix>>(
        config_.ring_chunks, [this] { return produce(); });
  }
}

ChunkStream::~ChunkStream() = default;

std::optional<la::Matrix> ChunkStream::produce() {
  // Runs on the loading thread in background mode, or inline otherwise.
  const Index n = dataset_.size();
  if (cursor_ >= n) return std::nullopt;
  const Index count = std::min(config_.chunk_examples, n - cursor_);
  la::Matrix chunk = la::Matrix::uninitialized(count, dataset_.dim());
  dataset_.copy_batch(cursor_, count, chunk);
  cursor_ += count;
  return chunk;
}

std::optional<la::Matrix> ChunkStream::next() {
  if (pipeline_) return pipeline_->pop();
  return produce();
}

Index ChunkStream::total_chunks() const {
  return (dataset_.size() + config_.chunk_examples - 1) / config_.chunk_examples;
}

}  // namespace deepphi::data
