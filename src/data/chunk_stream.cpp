#include "data/chunk_stream.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace deepphi::data {

namespace {

using Clock = std::chrono::steady_clock;

double since_s(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::int64_t since_ns(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

}  // namespace

std::vector<RowShard> shard_rows(Index rows, int shards) {
  DEEPPHI_CHECK_MSG(rows >= 0, "shard_rows: negative row count " << rows);
  DEEPPHI_CHECK_MSG(shards >= 1, "shard_rows: shards must be >= 1, got " << shards);
  std::vector<RowShard> out(static_cast<std::size_t>(shards));
  const Index base = rows / shards;
  const Index extra = rows % shards;
  Index begin = 0;
  for (int s = 0; s < shards; ++s) {
    const Index count = base + (static_cast<Index>(s) < extra ? 1 : 0);
    out[static_cast<std::size_t>(s)] = RowShard{begin, count};
    begin += count;
  }
  return out;
}

ChunkStream::ChunkStream(const StreamingSource& source, ChunkStreamConfig config)
    : source_(source), config_(config) {
  DEEPPHI_CHECK_MSG(config_.chunk_examples >= 1,
                    "chunk_examples must be >= 1, got " << config_.chunk_examples);
  DEEPPHI_CHECK_MSG(
      config_.shuffle_window == 0 ||
          config_.shuffle_window >= config_.chunk_examples,
      "shuffle_window must be 0 (off) or >= chunk_examples ("
          << config_.chunk_examples << "), got " << config_.shuffle_window);
  DEEPPHI_CHECK_MSG(config_.prefetch_chunks >= 0,
                    "prefetch_chunks must be >= 0, got "
                        << config_.prefetch_chunks);
  if (config_.shuffle_window > 0)
    shuffle_.emplace(source_.rows(), config_.shuffle_window,
                     config_.shuffle_seed);
  if (config_.background) {
    DEEPPHI_DEBUG() << "chunk stream: background loading thread, ring of "
                    << config_.ring_chunks << " x " << config_.chunk_examples
                    << "-example chunks"
                    << (shuffle_ ? ", shuffled" : ", in-order");
    pipeline_ = std::make_unique<par::ChunkPipeline<la::Matrix>>(
        config_.ring_chunks, [this] { return produce(); });
  }
}

ChunkStream::~ChunkStream() {
  // Join the Fig. 5 loader thread before anything else is torn down: its
  // produce() -> acquire() path locks pool_mutex_ and pops pool_, so those
  // members must outlive the pipeline even when the consumer abandons the
  // stream with the loader still running ahead.
  pipeline_.reset();
}

la::Matrix ChunkStream::acquire(Index rows) {
  if (rows == config_.chunk_examples) {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      la::Matrix buf = std::move(pool_.back());
      pool_.pop_back();
      return buf;
    }
  }
  return la::Matrix::uninitialized(rows, source_.dim());
}

void ChunkStream::recycle(la::Matrix buffer) {
  // Only full-size buffers re-enter the pool: the ragged tail (at most one
  // per pass) would otherwise poison every later acquire with a short chunk.
  if (buffer.rows() != config_.chunk_examples ||
      buffer.cols() != source_.dim())
    return;
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_.size() < config_.ring_chunks + 2)
    pool_.push_back(std::move(buffer));
}

std::optional<la::Matrix> ChunkStream::produce() {
  // Runs on the loading thread in background mode, or inline otherwise.
  const Index n = source_.rows();
  if (cursor_ >= n) return std::nullopt;
  const Index count = std::min(config_.chunk_examples, n - cursor_);

  static obs::Histogram& io_hist = obs::histogram("data.stage.io");
  static obs::Histogram& shuffle_hist = obs::histogram("data.stage.shuffle");
  static obs::Histogram& decode_hist = obs::histogram("data.stage.decode");

  // io: hint the NEXT prefetch_chunks chunks' rows so the kernel's readahead
  // overlaps their page-in with this chunk's decode + the consumer's compute.
  // Shuffled stream positions gather from anywhere in their window, so the
  // hint is rounded out to window boundaries — the full windows overlapping
  // the upcoming span cover every row those gathers will touch.
  if (config_.prefetch_chunks > 0) {
    const auto t0 = Clock::now();
    Index ahead_begin = cursor_ + count;
    Index ahead_end = std::min(
        n, ahead_begin + config_.prefetch_chunks * config_.chunk_examples);
    if (shuffle_ && ahead_end > ahead_begin) {
      const Index w = shuffle_->window();
      ahead_begin = (ahead_begin / w) * w;
      ahead_end = std::min(n, ((ahead_end + w - 1) / w) * w);
    }
    if (ahead_end > ahead_begin)
      source_.prefetch(ahead_begin, ahead_end - ahead_begin);
    io_hist.record(since_s(t0));
  }

  // shuffle: plan this chunk's source rows. Depends only on
  // (rows, window, seed) — identical for every backing.
  if (shuffle_) {
    const auto t0 = Clock::now();
    shuffle_->indices(cursor_, count, index_buf_);
    shuffle_hist.record(since_s(t0));
  }

  // decode: materialize float32 rows into a pooled buffer.
  const auto t0 = Clock::now();
  la::Matrix chunk = acquire(count);
  if (shuffle_)
    source_.copy_rows(index_buf_, chunk);
  else
    source_.copy_rows(cursor_, count, chunk);
  decode_hist.record(since_s(t0));

  cursor_ += count;
  return chunk;
}

std::optional<la::Matrix> ChunkStream::next() {
  DEEPPHI_PROFILE_SCOPE("chunk_stream.next");
  std::optional<la::Matrix> chunk;
  if (pipeline_) {
    // Blocking wait is accounted inside the ring's pop (see
    // consumer_wait_seconds), so uncontended pops cost the metric nothing.
    chunk = pipeline_->pop();
  } else {
    const auto t0 = Clock::now();
    chunk = produce();
    consumer_wait_ns_.fetch_add(since_ns(t0), std::memory_order_relaxed);
  }
  if (chunk) {
    static obs::Counter& loaded = obs::counter("data.chunks_loaded");
    loaded.add();
    static obs::Gauge& occupancy = obs::gauge("data.ring_occupancy");
    occupancy.set(static_cast<double>(buffered()));
  }
  return chunk;
}

std::size_t ChunkStream::buffered() const {
  return pipeline_ ? pipeline_->buffered() : 0;
}

double ChunkStream::consumer_wait_seconds() const {
  const double sync_s = static_cast<double>(consumer_wait_ns_.load(
                            std::memory_order_relaxed)) *
                        1e-9;
  return sync_s + (pipeline_ ? pipeline_->consumer_wait_seconds() : 0.0);
}

Index ChunkStream::total_chunks() const {
  return (source_.rows() + config_.chunk_examples - 1) / config_.chunk_examples;
}

}  // namespace deepphi::data
