#include "data/chunk_stream.hpp"

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace deepphi::data {

std::vector<RowShard> shard_rows(Index rows, int shards) {
  DEEPPHI_CHECK_MSG(rows >= 0, "shard_rows: negative row count " << rows);
  DEEPPHI_CHECK_MSG(shards >= 1, "shard_rows: shards must be >= 1, got " << shards);
  std::vector<RowShard> out(static_cast<std::size_t>(shards));
  const Index base = rows / shards;
  const Index extra = rows % shards;
  Index begin = 0;
  for (int s = 0; s < shards; ++s) {
    const Index count = base + (static_cast<Index>(s) < extra ? 1 : 0);
    out[static_cast<std::size_t>(s)] = RowShard{begin, count};
    begin += count;
  }
  return out;
}

ChunkStream::ChunkStream(const Dataset& dataset, ChunkStreamConfig config)
    : dataset_(dataset), config_(config) {
  DEEPPHI_CHECK_MSG(config_.chunk_examples >= 1,
                    "chunk_examples must be >= 1, got " << config_.chunk_examples);
  if (config_.background) {
    DEEPPHI_DEBUG() << "chunk stream: background loading thread, ring of "
                    << config_.ring_chunks << " x " << config_.chunk_examples
                    << "-example chunks";
    pipeline_ = std::make_unique<par::ChunkPipeline<la::Matrix>>(
        config_.ring_chunks, [this] { return produce(); });
  }
}

ChunkStream::~ChunkStream() = default;

std::optional<la::Matrix> ChunkStream::produce() {
  // Runs on the loading thread in background mode, or inline otherwise.
  const Index n = dataset_.size();
  if (cursor_ >= n) return std::nullopt;
  const Index count = std::min(config_.chunk_examples, n - cursor_);
  la::Matrix chunk = la::Matrix::uninitialized(count, dataset_.dim());
  dataset_.copy_batch(cursor_, count, chunk);
  cursor_ += count;
  return chunk;
}

std::optional<la::Matrix> ChunkStream::next() {
  DEEPPHI_PROFILE_SCOPE("chunk_stream.next");
  std::optional<la::Matrix> chunk = pipeline_ ? pipeline_->pop() : produce();
  if (chunk) {
    static obs::Counter& loaded = obs::counter("data.chunks_loaded");
    loaded.add();
  }
  return chunk;
}

std::size_t ChunkStream::buffered() const {
  return pipeline_ ? pipeline_->buffered() : 0;
}

Index ChunkStream::total_chunks() const {
  return (dataset_.size() + config_.chunk_examples - 1) / config_.chunk_examples;
}

}  // namespace deepphi::data
