#include "data/idx_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "data/io_util.hpp"
#include "util/error.hpp"

namespace deepphi::data {

namespace {

std::uint32_t read_be32(std::ifstream& in, const std::string& path) {
  unsigned char b[4];
  detail::read_exact(in, b, 4, path, "IDX header");
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | b[3];
}

void write_be32(std::ofstream& out, std::uint32_t v) {
  const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                              static_cast<unsigned char>(v >> 16),
                              static_cast<unsigned char>(v >> 8),
                              static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

}  // namespace

Dataset load_idx_images(const std::string& path, Index* rows_out,
                        Index* cols_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot open '" + path + "'");
  const std::uint32_t magic = read_be32(in, path);
  DEEPPHI_CHECK_MSG(magic == 0x00000803,
                    "'" << path << "' is not an IDX3 u8 image file (magic 0x"
                        << std::hex << magic << ")");
  const std::uint32_t n = read_be32(in, path);
  const std::uint32_t rows = read_be32(in, path);
  const std::uint32_t cols = read_be32(in, path);
  DEEPPHI_CHECK_MSG(rows > 0 && cols > 0 && rows < 65536 && cols < 65536,
                    "'" << path << "' has implausible geometry " << rows << "x"
                        << cols);
  Dataset set(static_cast<Index>(n), static_cast<Index>(rows * cols));
  std::vector<unsigned char> row_buf(rows * cols);
  for (std::uint32_t i = 0; i < n; ++i) {
    detail::read_exact(in, row_buf.data(), row_buf.size(), path,
                       "IDX image " + std::to_string(i) + " of " +
                           std::to_string(n));
    float* dst = set.example(static_cast<Index>(i));
    for (std::size_t j = 0; j < row_buf.size(); ++j)
      dst[j] = static_cast<float>(row_buf[j]) / 255.0f;
  }
  if (rows_out) *rows_out = static_cast<Index>(rows);
  if (cols_out) *cols_out = static_cast<Index>(cols);
  return set;
}

std::vector<int> load_idx_labels(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot open '" + path + "'");
  const std::uint32_t magic = read_be32(in, path);
  DEEPPHI_CHECK_MSG(magic == 0x00000801,
                    "'" << path << "' is not an IDX1 u8 label file");
  const std::uint32_t n = read_be32(in, path);
  std::vector<unsigned char> buf(n);
  if (n > 0) detail::read_exact(in, buf.data(), n, path, "IDX labels");
  return std::vector<int>(buf.begin(), buf.end());
}

void save_idx_images(const Dataset& images, Index side, const std::string& path) {
  DEEPPHI_CHECK_MSG(side * side == images.dim(),
                    "side² (" << side * side << ") != dim (" << images.dim()
                              << ")");
  std::ofstream out(path, std::ios::binary);
  DEEPPHI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_be32(out, 0x00000803);
  write_be32(out, static_cast<std::uint32_t>(images.size()));
  write_be32(out, static_cast<std::uint32_t>(side));
  write_be32(out, static_cast<std::uint32_t>(side));
  std::vector<unsigned char> row_buf(static_cast<std::size_t>(images.dim()));
  for (Index i = 0; i < images.size(); ++i) {
    const float* src = images.example(i);
    for (Index j = 0; j < images.dim(); ++j) {
      const float v = std::clamp(src[j], 0.0f, 1.0f);
      row_buf[static_cast<std::size_t>(j)] =
          static_cast<unsigned char>(std::lround(v * 255.0f));
    }
    out.write(reinterpret_cast<const char*>(row_buf.data()),
              static_cast<std::streamsize>(row_buf.size()));
  }
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

void save_idx_labels(const std::vector<int>& labels, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DEEPPHI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_be32(out, 0x00000801);
  write_be32(out, static_cast<std::uint32_t>(labels.size()));
  for (int label : labels) {
    DEEPPHI_CHECK_MSG(label >= 0 && label <= 255, "label " << label
                                                           << " out of u8 range");
    const unsigned char b = static_cast<unsigned char>(label);
    out.write(reinterpret_cast<const char*>(&b), 1);
  }
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace deepphi::data
