// Binary dataset serialization: a tiny fixed little-endian format so large
// synthetic sets can be generated once and streamed by the benches.
//
//   offset 0: magic "DPDS" (4 bytes)
//   offset 4: version u32 = 1
//   offset 8: n u64, dim u64
//   offset 24: n*dim f32, row-major
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace deepphi::data {

/// Writes `set` to `path`; throws util::Error on I/O failure.
void save_dataset(const Dataset& set, const std::string& path);

/// Reads a dataset; throws util::Error on missing/corrupt/truncated files.
Dataset load_dataset(const std::string& path);

}  // namespace deepphi::data
