// Chunked data feeding (paper Fig. 5): the training set is consumed in large
// chunks; with a background loading thread the next chunk is materialized
// (and, on the simulated device, transferred) while the current one trains.
//
// The functional side is real: in background mode a par::ChunkPipeline runs
// an actual loader thread that copies chunk matrices ahead of the consumer.
// The simulated-timing side lives in phi::Offload; the Trainer couples both.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "data/dataset.hpp"
#include "parallel/pipeline.hpp"

namespace deepphi::data {

/// One contiguous row range of a chunk, owned by one data-parallel slot.
struct RowShard {
  Index begin = 0;  // first row (inclusive)
  Index rows = 0;   // row count (0 = this slot sits out the ragged tail)

  Index end() const { return begin + rows; }
};

/// Deterministic split of `rows` chunk rows into `shards` disjoint,
/// covering, contiguous row ranges, in row order. Row counts are balanced:
/// the first rows % shards shards take one extra row, so the split depends
/// only on (rows, shards) — never on thread counts or replica placement.
/// This is what lets one Fig. 5 ring buffer feed every replica: the trainer
/// pops one chunk and hands each replica its shard of it by row range.
/// When rows < shards the trailing shards are empty (rows == 0).
std::vector<RowShard> shard_rows(Index rows, int shards);

struct ChunkStreamConfig {
  Index chunk_examples = 10000;  // examples per chunk
  bool background = true;        // Fig. 5 loading thread on/off
  std::size_t ring_chunks = 4;   // pipeline depth in chunks
};

class ChunkStream {
 public:
  /// Streams `dataset` once, front to back, in chunks of chunk_examples
  /// (final chunk may be short). The dataset must outlive the stream.
  ChunkStream(const Dataset& dataset, ChunkStreamConfig config);
  ~ChunkStream();

  ChunkStream(const ChunkStream&) = delete;
  ChunkStream& operator=(const ChunkStream&) = delete;

  /// Next chunk (rows×dim matrix) or nullopt when the pass is done.
  std::optional<la::Matrix> next();

  /// Chunks buffered ahead of the consumer by the Fig. 5 loading thread
  /// (0 in synchronous mode) — the ring occupancy telemetry records.
  std::size_t buffered() const;

  Index chunk_examples() const { return config_.chunk_examples; }
  Index total_chunks() const;

 private:
  std::optional<la::Matrix> produce();

  const Dataset& dataset_;
  ChunkStreamConfig config_;
  Index cursor_ = 0;
  std::unique_ptr<par::ChunkPipeline<la::Matrix>> pipeline_;
};

}  // namespace deepphi::data
