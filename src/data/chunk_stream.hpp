// Chunked data feeding (paper Fig. 5): the training set is consumed in large
// chunks; with a background loading thread the next chunk is materialized
// (and, on the simulated device, transferred) while the current one trains.
//
// The loader runs a staged pipeline per chunk, in order:
//
//   io      — readahead hint for the rows the NEXT prefetch_chunks chunks
//             will decode (madvise(WILLNEED) on mmap'd shards, no-op for
//             memory sources; rounded out to shuffle-window boundaries so
//             gathers near window edges are covered too), so page faults
//             overlap with compute;
//   shuffle — deterministic windowed shuffle plan (data::WindowShuffle;
//             off when shuffle_window == 0, preserving in-order feeding);
//   decode  — materialize the chunk as float32 into a pooled buffer
//             (contiguous copy in-order, index gather when shuffled).
//
// Stage timings feed obs::histogram("data.stage.io"/"shuffle"/"decode") and
// ring occupancy feeds the "data.ring_occupancy" gauge. Consumers return
// finished chunk buffers via recycle(), so the steady state re-uses
// ring_chunks + 2 full-size buffers instead of allocating per chunk (the
// ragged tail chunk, at most one per pass, still allocates fresh).
//
// The functional side is real: in background mode a par::ChunkPipeline runs
// an actual loader thread that stages chunks ahead of the consumer. The
// simulated-timing side lives in phi::Offload; the Trainer couples both.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "data/shuffle.hpp"
#include "data/streaming_source.hpp"
#include "parallel/pipeline.hpp"

namespace deepphi::data {

/// One contiguous row range of a chunk, owned by one data-parallel slot.
struct RowShard {
  Index begin = 0;  // first row (inclusive)
  Index rows = 0;   // row count (0 = this slot sits out the ragged tail)

  Index end() const { return begin + rows; }
};

/// Deterministic split of `rows` chunk rows into `shards` disjoint,
/// covering, contiguous row ranges, in row order. Row counts are balanced:
/// the first rows % shards shards take one extra row, so the split depends
/// only on (rows, shards) — never on thread counts or replica placement.
/// This is what lets one Fig. 5 ring buffer feed every replica: the trainer
/// pops one chunk and hands each replica its shard of it by row range.
/// When rows < shards the trailing shards are empty (rows == 0).
std::vector<RowShard> shard_rows(Index rows, int shards);

struct ChunkStreamConfig {
  Index chunk_examples = 10000;  // examples per chunk
  bool background = true;        // Fig. 5 loading thread on/off
  std::size_t ring_chunks = 4;   // pipeline depth in chunks
  /// Windowed-shuffle span in examples; 0 = stream in source order. Must be
  /// >= chunk_examples otherwise, so a chunk draws from <= 2 windows. The
  /// plan depends only on (rows, window, seed) — never on the backing.
  Index shuffle_window = 0;
  std::uint64_t shuffle_seed = 0;
  /// Chunks of readahead the io stage hints to the source each produce.
  Index prefetch_chunks = 2;
};

class ChunkStream {
 public:
  /// Streams `source` once, front to back (or window-shuffled), in chunks of
  /// chunk_examples (final chunk may be short). `source` must outlive the
  /// stream.
  ChunkStream(const StreamingSource& source, ChunkStreamConfig config);
  ~ChunkStream();

  ChunkStream(const ChunkStream&) = delete;
  ChunkStream& operator=(const ChunkStream&) = delete;

  /// Next chunk (rows×dim matrix) or nullopt when the pass is done.
  std::optional<la::Matrix> next();

  /// Hands a consumed chunk's buffer back for re-use by the decode stage.
  /// Optional (dropping the matrix is correct too, just re-allocates); only
  /// full-size chunk buffers are pooled.
  void recycle(la::Matrix buffer);

  /// Chunks buffered ahead of the consumer by the Fig. 5 loading thread
  /// (0 in synchronous mode) — the ring occupancy telemetry records.
  std::size_t buffered() const;

  /// Total seconds next() spent blocked waiting for data — in background
  /// mode the time parked on an empty ring (uncontended pops count as zero),
  /// in synchronous mode the full staging cost. Feeds the run summary's
  /// overlap_efficiency.
  double consumer_wait_seconds() const;

  Index chunk_examples() const { return config_.chunk_examples; }
  Index total_chunks() const;

 private:
  std::optional<la::Matrix> produce();
  la::Matrix acquire(Index rows);

  const StreamingSource& source_;
  ChunkStreamConfig config_;
  Index cursor_ = 0;
  std::optional<WindowShuffle> shuffle_;
  std::vector<Index> index_buf_;  // loader-thread scratch for gather plans

  // Buffer pool: consumed full-size chunks come back via recycle() and the
  // decode stage re-uses them (bounded at ring_chunks + 2 — ring plus one in
  // flight on each side — so an over-eager consumer cannot grow it).
  mutable std::mutex pool_mutex_;
  std::vector<la::Matrix> pool_;

  std::atomic<std::int64_t> consumer_wait_ns_{0};

  // Declared last (and reset first in ~ChunkStream): the loader thread runs
  // produce(), which touches every member above, so it must be joined before
  // any of them is destroyed — including when the consumer abandons the
  // stream mid-pass with the loader still ahead.
  std::unique_ptr<par::ChunkPipeline<la::Matrix>> pipeline_;
};

}  // namespace deepphi::data
