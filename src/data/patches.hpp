// Random patch extraction + normalization — the paper's "we obtain the
// training examples by randomly extracting patches of required sizes from
// these images". Normalization follows the standard sparse-autoencoder
// recipe: remove the patch mean, truncate to ±k standard deviations
// (computed over the whole patch set), and squash into [0.1, 0.9] so sigmoid
// reconstructions can represent every value.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace deepphi::data {

enum class PatchNorm {
  kNone,       // raw pixel values
  kZeroMean,   // per-patch mean removal only
  kUnitRange,  // mean removal + truncate + map to [0.1, 0.9] (default)
};

struct PatchConfig {
  Index patch_size = 8;  // square patch side; dim = patch_size²
  PatchNorm norm = PatchNorm::kUnitRange;
  float trunc_sigma = 3.0f;  // truncation for kUnitRange
};

/// Extracts `count` patches at uniformly random positions from uniformly
/// random images of `images` (each row an image_size×image_size image).
Dataset extract_patches(const Dataset& images, Index image_size, Index count,
                        const PatchConfig& config, std::uint64_t seed);

/// Convenience: patches of digit-like images, ready for training.
Dataset make_digit_patch_dataset(Index count, Index patch_size,
                                 std::uint64_t seed);

/// Convenience: patches of natural-image proxies, ready for training.
Dataset make_natural_patch_dataset(Index count, Index patch_size,
                                   std::uint64_t seed);

}  // namespace deepphi::data
