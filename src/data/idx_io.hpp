// IDX file I/O — the format MNIST ships in — so users with the real
// handwritten-digit corpus can feed it directly (the paper's dataset is
// "a large [set] of handwritten digit images").
//
// IDX layout (big-endian):
//   u32 magic: 0x0000080v (08 = unsigned byte data, v = rank)
//   u32 dims[rank]
//   payload bytes
//
// load_idx_images accepts rank-3 (n × rows × cols) u8 tensors and returns a
// Dataset of n examples of dim rows·cols, scaled to [0, 1].
// load_idx_labels accepts rank-1 u8 tensors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace deepphi::data {

/// Loads an IDX3 u8 image tensor as floats in [0, 1]; throws util::Error on
/// malformed/truncated files. `rows_out`/`cols_out` (optional) receive the
/// image geometry.
Dataset load_idx_images(const std::string& path, Index* rows_out = nullptr,
                        Index* cols_out = nullptr);

/// Loads an IDX1 u8 label vector.
std::vector<int> load_idx_labels(const std::string& path);

/// Writes a dataset of side×side images as an IDX3 u8 tensor (values
/// clamped to [0,1] and scaled to 0-255). Round-trip partner for tests and
/// for exporting synthetic corpora in MNIST-compatible form.
void save_idx_images(const Dataset& images, Index side, const std::string& path);

/// Writes labels as an IDX1 u8 vector.
void save_idx_labels(const std::vector<int>& labels, const std::string& path);

}  // namespace deepphi::data
