// Shared dataset-file IO checking: a typed error class and exact-read
// helpers, so every dataset format (DPDS, IDX, sharded manifests) reports
// short reads and truncated files the same way model_io reports corrupt
// checkpoints — naming the path, what was being read, and the expected vs
// actual byte counts — instead of a bare stream-state failure.
#pragma once

#include <cstddef>
#include <istream>
#include <string>

#include "util/error.hpp"

namespace deepphi::data {

/// Thrown for unreadable, malformed, truncated, or corrupt dataset files.
/// Derives util::Error, so existing catch sites keep working.
class IoError : public util::Error {
 public:
  explicit IoError(const std::string& what) : util::Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_truncated(const std::string& path,
                                         const std::string& what,
                                         std::size_t expected,
                                         std::size_t actual) {
  throw IoError("'" + path + "' truncated in " + what + ": expected " +
                std::to_string(expected) + " bytes, got " +
                std::to_string(actual));
}

/// Reads exactly `bytes` bytes into `dst`; throws IoError naming `path`,
/// `what`, and expected/actual counts on a short read or stream failure.
inline void read_exact(std::istream& in, void* dst, std::size_t bytes,
                       const std::string& path, const std::string& what) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
  const std::size_t got = static_cast<std::size_t>(in.gcount());
  if (got != bytes) throw_truncated(path, what, bytes, got);
  if (in.bad())
    throw IoError("'" + path + "' read failed in " + what +
                  " (stream error after " + std::to_string(got) + " bytes)");
}

}  // namespace detail
}  // namespace deepphi::data
