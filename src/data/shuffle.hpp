// Deterministic windowed shuffle for the streaming pipeline (Bengio's
// practical recommendation: large training sets should be streamed in
// shuffled order, but a full-corpus permutation of an out-of-core set would
// defeat sequential IO). The row stream is cut into consecutive windows of
// `window` rows; each window is permuted independently by a seeded
// Fisher–Yates draw, so:
//
//   - the permutation depends ONLY on (rows, window, seed) — never on the
//     backing store, chunk size, thread counts, or replica placement, which
//     is what keeps sharded-vs-in-memory training bitwise identical;
//   - rows of one window stay within one contiguous `window`-row span of
//     the underlying source, so window-aligned readahead over the upcoming
//     spans covers every gather the decode stage performs.
//
// With window >= chunk_examples every chunk draws from at most two windows,
// bounding the gather's working set to ~2 windows of pages.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace deepphi::data {

using la::Index;

class WindowShuffle {
 public:
  /// Shuffles `rows` stream positions in independent windows of `window`
  /// rows (the final window may be short). window must be >= 1.
  WindowShuffle(Index rows, Index window, std::uint64_t seed);

  Index rows() const { return rows_; }
  Index window() const { return window_; }

  /// Writes the source row ids for stream positions [begin, begin+count)
  /// into `out` (resized to count). Positions must lie in [0, rows).
  void indices(Index begin, Index count, std::vector<Index>& out) const;

  /// The source row id at stream position `pos` (test/debug convenience).
  Index index(Index pos) const;

 private:
  // Fills cache_ with window w's permutation (local row offsets).
  void materialize(Index w) const;

  Index rows_ = 0;
  Index window_ = 0;
  std::uint64_t seed_ = 0;
  // Sequential consumers walk windows in order, so a one-window permutation
  // cache makes indices() O(count) amortized instead of O(window) per call.
  mutable Index cached_window_ = -1;
  mutable std::vector<Index> cache_;
};

}  // namespace deepphi::data
