// Mini-batch iteration over a Dataset: sequential or epoch-shuffled order,
// yielding batches as dense matrices ready for the batched kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace deepphi::data {

class BatchIterator {
 public:
  /// Iterates `dataset` in batches of `batch_size`. When `shuffle` is set the
  /// example order is re-permuted at the start of every epoch (Fisher–Yates
  /// with a deterministic per-epoch stream of `seed`). The final short batch
  /// of an epoch is yielded as-is.
  BatchIterator(const Dataset& dataset, Index batch_size, bool shuffle,
                std::uint64_t seed = 1);

  /// Fills `out` with the next batch and returns its row count; returns 0 at
  /// the end of an epoch (the next call starts a new epoch). `out` is resized
  /// as needed.
  Index next(la::Matrix& out);

  /// Restarts the current epoch from its beginning (same permutation).
  void rewind();

  Index batch_size() const { return batch_size_; }
  Index batches_per_epoch() const;
  std::uint64_t epoch() const { return epoch_; }

 private:
  void reshuffle();

  const Dataset& dataset_;
  Index batch_size_;
  bool shuffle_;
  util::Rng rng_;
  std::vector<Index> order_;
  Index cursor_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace deepphi::data
