#include "data/batch_iterator.hpp"

#include <numeric>

#include "util/error.hpp"

namespace deepphi::data {

BatchIterator::BatchIterator(const Dataset& dataset, Index batch_size,
                             bool shuffle, std::uint64_t seed)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed, /*stream=*/0xba7c4ULL) {
  DEEPPHI_CHECK_MSG(batch_size >= 1, "batch_size must be >= 1, got " << batch_size);
  order_.resize(static_cast<std::size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), Index{0});
  if (shuffle_) reshuffle();
}

void BatchIterator::reshuffle() {
  // Fisher–Yates on a fresh substream per epoch: replaying a seed replays
  // the exact batch sequence.
  util::Rng r = rng_.split(epoch_);
  for (std::size_t i = order_.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(r.uniform_index(static_cast<std::uint64_t>(i)));
    std::swap(order_[i - 1], order_[j]);
  }
}

Index BatchIterator::next(la::Matrix& out) {
  const Index n = dataset_.size();
  if (cursor_ >= n) {
    cursor_ = 0;
    ++epoch_;
    if (shuffle_) reshuffle();
    return 0;
  }
  const Index count = std::min(batch_size_, n - cursor_);
  if (out.rows() != count || out.cols() != dataset_.dim())
    out = la::Matrix::uninitialized(count, dataset_.dim());
  std::vector<Index> idx(order_.begin() + cursor_,
                         order_.begin() + cursor_ + count);
  dataset_.copy_batch(idx, out);
  cursor_ += count;
  return count;
}

void BatchIterator::rewind() { cursor_ = 0; }

Index BatchIterator::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace deepphi::data
