#include "data/streaming_source.hpp"

#include <cstring>

#include "util/error.hpp"

namespace deepphi::data {

void StreamingSource::copy_rows(const std::vector<Index>& indices,
                                la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(out.rows() == static_cast<Index>(indices.size()) &&
                        out.cols() == dim(),
                    "gather target must be " << indices.size() << "x" << dim()
                                             << ", got " << out.rows() << "x"
                                             << out.cols());
  la::Matrix row_buf = la::Matrix::uninitialized(1, dim());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const Index i = indices[r];
    DEEPPHI_CHECK_MSG(i >= 0 && i < rows(),
                      "example index " << i << " out of " << rows());
    copy_rows(i, 1, row_buf);
    std::memcpy(out.row(static_cast<Index>(r)), row_buf.data(),
                sizeof(float) * static_cast<std::size_t>(dim()));
  }
}

void StreamingSource::prefetch(Index, Index) const {}

}  // namespace deepphi::data
