// Out-of-core datasets: memory-mapped binary shard files described by a
// sample-list manifest (ROADMAP item 4, after LBANN's sample-list readers).
//
// A sharded dataset is a directory of raw little-endian shard files plus a
// JSON manifest (`deepphi.manifest.v1`):
//
//   {"schema": "deepphi.manifest.v1", "rows": N, "dim": D, "dtype": "f32",
//    "shards": [{"path": "shard-0000.bin", "rows": n, "offset": 0,
//                "bytes": n*D*4, "checksum": "fnv1a64-hex"}, ...]}
//
// Shard payloads are plain row-major example rows (no per-file header —
// the manifest is the header), either "f32" (float32, decoded by memcpy) or
// "u8" (bytes scaled to [0,1] exactly like the IDX loader, so MNIST-style
// corpora shard without inflating 4x on disk). `offset`/`bytes` give each
// shard's payload byte range, so several shards may also slice one big file.
//
// ShardedDataset mmaps every shard read-only and implements StreamingSource:
// the Fig. 5 chunk ring decodes rows straight out of the page cache, the
// prefetch stage turns into madvise(WILLNEED) readahead, and datasets
// 10-100x the 8 GB device arena stream at page-cache cost instead of being
// materialized. All open/validate errors are data::IoError naming the path
// and expected vs actual byte counts (docs/data_pipeline.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/streaming_source.hpp"

namespace deepphi::data {

class Dataset;

/// On-media element type of a shard payload.
enum class ShardDtype { kF32, kU8 };

const char* dtype_name(ShardDtype dtype);
ShardDtype parse_dtype(const std::string& name);  // throws on unknown names
std::size_t dtype_size(ShardDtype dtype);

/// FNV-1a 64-bit running hash — the manifest's shard checksum.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t state = kFnvOffsetBasis);

struct ShardEntry {
  std::string path;            ///< relative to the manifest's directory
  Index rows = 0;              ///< examples in this shard
  std::uint64_t offset = 0;    ///< payload byte offset within the file
  std::uint64_t bytes = 0;     ///< payload bytes = rows * dim * dtype_size
  std::uint64_t checksum = 0;  ///< FNV-1a 64 of the payload bytes
};

struct Manifest {
  Index rows = 0;
  Index dim = 0;
  ShardDtype dtype = ShardDtype::kF32;
  std::vector<ShardEntry> shards;

  std::uint64_t total_bytes() const;
};

inline constexpr const char* kManifestSchema = "deepphi.manifest.v1";

/// Parses a manifest file; throws IoError on unreadable/malformed manifests
/// (schema, geometry, shard-row coverage are validated; shard files are not
/// touched — ShardedDataset::open does that).
Manifest read_manifest(const std::string& path);

/// Writes `manifest` as deepphi.manifest.v1 JSON.
void write_manifest(const Manifest& manifest, const std::string& path);

class ShardedDataset : public StreamingSource {
 public:
  struct OpenOptions {
    /// Re-hash every shard payload against the manifest checksum at open
    /// (full read — O(bytes); off by default for out-of-core sets).
    bool verify_checksums = false;
  };

  /// Opens manifest + mmaps every shard. Throws IoError when a shard file
  /// is missing, shorter than its declared byte range, or (with
  /// verify_checksums) fails its checksum.
  static ShardedDataset open(const std::string& manifest_path,
                             OpenOptions options);
  static ShardedDataset open(const std::string& manifest_path) {
    return open(manifest_path, OpenOptions{});
  }

  ShardedDataset(ShardedDataset&&) noexcept = default;
  ShardedDataset& operator=(ShardedDataset&&) noexcept = default;
  ~ShardedDataset() override = default;

  Index rows() const override { return manifest_.rows; }
  Index dim() const override { return manifest_.dim; }
  void copy_rows(Index begin, Index count, la::Matrix& out) const override;
  void copy_rows(const std::vector<Index>& indices,
                 la::Matrix& out) const override;
  void prefetch(Index begin, Index count) const override;
  SourceInfo info() const override;

  const Manifest& manifest() const { return manifest_; }
  const std::string& manifest_path() const { return manifest_path_; }
  int shard_count() const { return static_cast<int>(manifest_.shards.size()); }

 private:
  class MappedFile;
  ShardedDataset() = default;

  // Decodes `count` rows starting at shard-local row `local` of shard `s`
  // into dst (row-major, dim floats per row).
  void decode_span(std::size_t s, Index local, Index count, float* dst) const;
  std::size_t shard_of(Index row) const;

  Manifest manifest_;
  std::string manifest_path_;
  std::vector<std::shared_ptr<MappedFile>> maps_;  // one per shard entry
  std::vector<const unsigned char*> payload_;      // shard payload base ptrs
  std::vector<Index> row_begin_;  // cumulative rows, size shards+1
};

/// Shard-writer options. rows_per_shard bounds each shard file; dtype picks
/// the on-media encoding ("u8" stores clamp(v,0,1)*255 rounded — exact for
/// data that came from u8, lossy otherwise).
struct ShardWriteOptions {
  Index rows_per_shard = 8192;
  ShardDtype dtype = ShardDtype::kF32;
};

/// Writes `source` as shard files plus manifest.json under `dir` (created
/// if missing); returns the manifest path. Streams through a bounded row
/// buffer, so the source is never materialized whole.
std::string write_sharded(const StreamingSource& source, const std::string& dir,
                          ShardWriteOptions options = {});

}  // namespace deepphi::data
