#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>

namespace deepphi::data {

Dataset::Dataset(Index n, Index dim) : data_(n, dim) {}

Dataset::Dataset(la::Matrix m) : data_(std::move(m)) {}

void Dataset::copy_batch(Index begin, Index count, la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(begin >= 0 && count >= 0 && begin + count <= size(),
                    "batch [" << begin << ", " << begin + count << ") out of "
                              << size() << " examples");
  DEEPPHI_CHECK_MSG(out.rows() == count && out.cols() == dim(),
                    "batch target must be " << count << "x" << dim() << ", got "
                                            << out.rows() << "x" << out.cols());
  if (count > 0)
    std::memcpy(out.data(), data_.row(begin),
                sizeof(float) * static_cast<std::size_t>(count * dim()));
}

void Dataset::copy_batch(const std::vector<Index>& indices, la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(out.rows() == static_cast<Index>(indices.size()) &&
                        out.cols() == dim(),
                    "batch target must be " << indices.size() << "x" << dim()
                                            << ", got " << out.rows() << "x"
                                            << out.cols());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const Index i = indices[r];
    DEEPPHI_CHECK_MSG(i >= 0 && i < size(), "example index " << i << " out of "
                                                             << size());
    std::memcpy(out.row(static_cast<Index>(r)), data_.row(i),
                sizeof(float) * static_cast<std::size_t>(dim()));
  }
}

SourceInfo Dataset::info() const {
  SourceInfo info;
  info.kind = "memory";
  info.format = "f32";
  info.bytes = sizeof(float) * static_cast<std::uint64_t>(data_.size());
  return info;
}

std::pair<Dataset, Dataset> Dataset::split(Index count) const {
  DEEPPHI_CHECK_MSG(count >= 0 && count <= size(),
                    "split count " << count << " out of [0, " << size() << "]");
  Dataset head(count, dim());
  Dataset tail(size() - count, dim());
  if (count > 0) copy_batch(0, count, head.matrix());
  if (size() - count > 0) copy_batch(count, size() - count, tail.matrix());
  return {std::move(head), std::move(tail)};
}

float Dataset::mean() const {
  if (data_.size() == 0) return 0.0f;
  double acc = 0;
  for (Index i = 0; i < data_.size(); ++i) acc += data_.data()[i];
  return static_cast<float>(acc / static_cast<double>(data_.size()));
}

float Dataset::min() const {
  if (data_.size() == 0) return 0.0f;
  return *std::min_element(data_.data(), data_.data() + data_.size());
}

float Dataset::max() const {
  if (data_.size() == 0) return 0.0f;
  return *std::max_element(data_.data(), data_.data() + data_.size());
}

}  // namespace deepphi::data
