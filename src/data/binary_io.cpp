#include "data/binary_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace deepphi::data {

namespace {
constexpr char kMagic[4] = {'D', 'P', 'D', 'S'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_dataset(const Dataset& set, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DEEPPHI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out.write(kMagic, 4);
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t n = static_cast<std::uint64_t>(set.size());
  const std::uint64_t dim = static_cast<std::uint64_t>(set.dim());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(set.matrix().data()),
            static_cast<std::streamsize>(sizeof(float) * n * dim));
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DEEPPHI_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  char magic[4];
  in.read(magic, 4);
  DEEPPHI_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                    "'" << path << "' is not a DPDS dataset (bad magic)");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  DEEPPHI_CHECK_MSG(in.good() && version == kVersion,
                    "'" << path << "' has unsupported version " << version);
  std::uint64_t n = 0, dim = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  DEEPPHI_CHECK_MSG(in.good(), "'" << path << "' truncated in header");
  DEEPPHI_CHECK_MSG(n < (1ULL << 40) && dim < (1ULL << 32),
                    "'" << path << "' header implausible: n=" << n
                        << " dim=" << dim);
  Dataset set(static_cast<Index>(n), static_cast<Index>(dim));
  in.read(reinterpret_cast<char*>(set.matrix().data()),
          static_cast<std::streamsize>(sizeof(float) * n * dim));
  DEEPPHI_CHECK_MSG(in.good() || (n * dim == 0),
                    "'" << path << "' truncated in payload");
  return set;
}

}  // namespace deepphi::data
