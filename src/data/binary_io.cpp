#include "data/binary_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "data/io_util.hpp"
#include "util/error.hpp"

namespace deepphi::data {

namespace {
constexpr char kMagic[4] = {'D', 'P', 'D', 'S'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_dataset(const Dataset& set, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) throw IoError("cannot open '" + path + "' for writing");
  out.write(kMagic, 4);
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t n = static_cast<std::uint64_t>(set.size());
  const std::uint64_t dim = static_cast<std::uint64_t>(set.dim());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(set.matrix().data()),
            static_cast<std::streamsize>(sizeof(float) * n * dim));
  if (!out.good()) throw IoError("write to '" + path + "' failed");
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot open '" + path + "'");
  char magic[4];
  detail::read_exact(in, magic, 4, path, "DPDS magic");
  if (std::memcmp(magic, kMagic, 4) != 0)
    throw IoError("'" + path + "' is not a DPDS dataset (bad magic)");
  std::uint32_t version = 0;
  detail::read_exact(in, &version, sizeof(version), path, "DPDS header");
  if (version != kVersion)
    throw IoError("'" + path + "' has unsupported version " +
                  std::to_string(version));
  std::uint64_t n = 0, dim = 0;
  detail::read_exact(in, &n, sizeof(n), path, "DPDS header");
  detail::read_exact(in, &dim, sizeof(dim), path, "DPDS header");
  if (!(n < (1ULL << 40) && dim < (1ULL << 32)))
    throw IoError("'" + path + "' header implausible: n=" + std::to_string(n) +
                  " dim=" + std::to_string(dim));
  Dataset set(static_cast<Index>(n), static_cast<Index>(dim));
  if (n * dim > 0)
    detail::read_exact(in, set.matrix().data(), sizeof(float) * n * dim, path,
                       "DPDS payload");
  return set;
}

}  // namespace deepphi::data
