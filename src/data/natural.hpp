// Natural-image proxy generator — the substitution for the paper's natural
// image corpus (Olshausen-style whitened scenes). Real natural images have a
// ~1/f amplitude spectrum plus oriented structure; we synthesize that with
// (a) multi-scale smoothed noise (octaves of box-blurred white noise, each
// octave at half amplitude) and (b) a few soft oriented edges per image.
// Patches cut from these images give sparse-coding-friendly statistics:
// local correlations, oriented gradients, heavy-tailed derivative
// distributions.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace deepphi::data {

struct NaturalConfig {
  Index image_size = 64;  // square canvas side in pixels
  int octaves = 4;        // noise octaves (each blurred 2x more, half amp)
  int edges = 3;          // soft oriented edges per image
  float edge_strength = 0.5f;
};

/// Renders one image into `out` (image_size² floats, mean ≈ 0.5, in [0,1]).
void render_natural(const NaturalConfig& config, util::Rng& rng, float* out);

/// `count` synthetic natural images.
Dataset make_natural_images(Index count, const NaturalConfig& config,
                            std::uint64_t seed);

}  // namespace deepphi::data
