#include "serve/model_registry.hpp"

#include <utility>

#include "core/quantized_encoder.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace deepphi::serve {

namespace {

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void publish_version_gauge(const std::string& name, std::uint64_t version) {
  obs::gauge("serve.model." + name + ".version")
      .set(static_cast<double>(version));
}

}  // namespace

const char* encoder_precision(const core::Encoder& model) {
  return dynamic_cast<const core::QuantizedEncoder*>(&model) != nullptr
             ? "int8"
             : "fp32";
}

std::uint64_t ModelRegistry::add(const std::string& name,
                                 model_io::LoadedModel loaded,
                                 double budget_s) {
  DEEPPHI_CHECK_MSG(loaded.model != nullptr,
                    "registry add '" << name << "': null model");
  std::shared_ptr<const core::Encoder> model = std::move(loaded.model);
  std::lock_guard<std::mutex> lock(mutex_);
  return add_locked(name, std::move(model), budget_s, std::move(loaded.magic),
                    std::move(loaded.precision), loaded.file_bytes);
}

std::uint64_t ModelRegistry::add_shared(
    const std::string& name, std::shared_ptr<const core::Encoder> model,
    double budget_s, std::string magic, std::string precision,
    std::uint64_t file_bytes) {
  DEEPPHI_CHECK_MSG(model != nullptr,
                    "registry add '" << name << "': null model");
  std::lock_guard<std::mutex> lock(mutex_);
  return add_locked(name, std::move(model), budget_s, std::move(magic),
                    std::move(precision), file_bytes);
}

std::uint64_t ModelRegistry::publish(const std::string& name,
                                     model_io::LoadedModel loaded) {
  DEEPPHI_CHECK_MSG(loaded.model != nullptr,
                    "registry publish '" << name << "': null model");
  std::shared_ptr<const core::Encoder> model = std::move(loaded.model);
  std::lock_guard<std::mutex> lock(mutex_);
  return publish_locked(name, std::move(model), std::move(loaded.magic),
                        std::move(loaded.precision), loaded.file_bytes);
}

std::uint64_t ModelRegistry::publish_shared(
    const std::string& name, std::shared_ptr<const core::Encoder> model,
    std::string magic, std::string precision, std::uint64_t file_bytes) {
  DEEPPHI_CHECK_MSG(model != nullptr,
                    "registry publish '" << name << "': null model");
  std::lock_guard<std::mutex> lock(mutex_);
  return publish_locked(name, std::move(model), std::move(magic),
                        std::move(precision), file_bytes);
}

std::uint64_t ModelRegistry::add_locked(
    const std::string& name, std::shared_ptr<const core::Encoder> model,
    double budget_s, std::string magic, std::string precision,
    std::uint64_t file_bytes) {
  DEEPPHI_CHECK_MSG(valid_name(name),
                    "invalid model name '"
                        << name << "' (use [A-Za-z0-9_-], max 128 chars)");
  DEEPPHI_CHECK_MSG(entries_.count(name) == 0,
                    "model '" << name << "' is already registered");
  DEEPPHI_CHECK_MSG(budget_s >= 0, "model '" << name
                                             << "': budget must be >= 0, got "
                                             << budget_s);
  Entry e;
  e.info.name = name;
  e.info.version = 1;
  e.info.magic = std::move(magic);
  e.info.precision =
      precision.empty() ? encoder_precision(*model) : std::move(precision);
  e.info.file_bytes = file_bytes;
  e.info.input_dim = model->input_dim();
  e.info.output_dim = model->output_dim();
  e.info.description = model->describe();
  e.info.budget_s = budget_s;
  e.current.model = std::move(model);
  e.current.version = 1;
  entries_.emplace(name, std::move(e));
  publish_version_gauge(name, 1);
  return 1;
}

std::uint64_t ModelRegistry::publish_locked(
    const std::string& name, std::shared_ptr<const core::Encoder> model,
    std::string magic, std::string precision, std::uint64_t file_bytes) {
  auto it = entries_.find(name);
  DEEPPHI_CHECK_MSG(it != entries_.end(),
                    "cannot publish to unknown model '" << name << "'");
  Entry& e = it->second;
  DEEPPHI_CHECK_MSG(
      model->input_dim() == e.info.input_dim,
      "publish to '" << name << "': input dim " << model->input_dim()
                     << " != serving input dim " << e.info.input_dim
                     << " (queued requests were validated against it)");
  e.info.version += 1;
  e.info.magic = std::move(magic);
  e.info.precision =
      precision.empty() ? encoder_precision(*model) : std::move(precision);
  e.info.file_bytes = file_bytes;
  e.info.output_dim = model->output_dim();
  e.info.description = model->describe();
  // The swap: new batches snapshot the new pointer; in-flight batches hold
  // their own shared_ptr copies and finish on the version they collected
  // under. The old Encoder is destroyed when the last such copy drops.
  e.current.model = std::move(model);
  e.current.version = e.info.version;
  publish_version_gauge(name, e.info.version);
  return e.info.version;
}

ModelVersion ModelRegistry::current(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  DEEPPHI_CHECK_MSG(it != entries_.end(), "unknown model '" << name << "'");
  return it->second.current;
}

ModelInfo ModelRegistry::info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  DEEPPHI_CHECK_MSG(it != entries_.end(), "unknown model '" << name << "'");
  return it->second.info;
}

std::vector<ModelInfo> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ModelInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(e.info);
  return out;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(name);
  return out;
}

bool ModelRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace deepphi::serve
