#include "serve/request_queue.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace deepphi::serve {

RequestQueue::RequestQueue(std::size_t capacity, std::string depth_gauge)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      depth_gauge_(obs::gauge(depth_gauge)) {}

bool RequestQueue::try_push(Request&& r) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(r));
    peak_ = std::max(peak_, items_.size());
    depth_gauge_.set(static_cast<double>(items_.size()));
  }
  nonempty_.notify_one();
  return true;
}

std::vector<Request> RequestQueue::collect(std::size_t max_batch,
                                           double max_delay_s) {
  max_batch = std::max<std::size_t>(max_batch, 1);
  std::unique_lock<std::mutex> lock(mutex_);
  nonempty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return {};  // closed and drained

  // Size-or-deadline wait: the deadline is anchored to the OLDEST request so
  // a trickle of arrivals cannot postpone the flush indefinitely.
  if (items_.size() < max_batch && !closed_ && max_delay_s > 0) {
    const auto deadline =
        items_.front().enqueue_tp +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(max_delay_s));
    nonempty_.wait_until(lock, deadline, [&] {
      return closed_ || items_.size() >= max_batch;
    });
  }

  const std::size_t n = std::min(max_batch, items_.size());
  std::vector<Request> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  depth_gauge_.set(static_cast<double>(items_.size()));
  return batch;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  nonempty_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::peak_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

}  // namespace deepphi::serve
