#include "serve/inference_server.hpp"

#include <cstring>
#include <memory>
#include <utility>

#include "core/quantized_encoder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace deepphi::serve {

namespace {

/// Serving telemetry schema tag (run records live alongside the training
/// records of deepphi.telemetry.v1 in one JSONL file).
constexpr const char* kServeSchema = "deepphi.serve.v1";

void fail(std::promise<std::vector<float>>& p, const std::string& what) {
  p.set_exception(std::make_exception_ptr(util::Error(what)));
}

}  // namespace

InferenceServer::InferenceServer(const core::Encoder& model, ServeConfig config)
    : model_(model),
      config_(config),
      queue_(config.queue_capacity),
      pool_(std::max(1u, config.workers)),
      max_inflight_(static_cast<int>(std::max(1u, config.workers)) + 1) {
  DEEPPHI_CHECK_MSG(config_.max_batch >= 1,
                    "max_batch must be >= 1, got " << config_.max_batch);
  DEEPPHI_CHECK_MSG(config_.max_delay_s >= 0,
                    "max_delay_s must be >= 0, got " << config_.max_delay_s);
  if (config_.telemetry) {
    using obs::TelemetryField;
    config_.telemetry->emit(
        "serve_config",
        {TelemetryField::str("schema", kServeSchema),
         TelemetryField::str("model", model_.describe()),
         TelemetryField::str("precision", precision()),
         TelemetryField::integer("input_dim", model_.input_dim()),
         TelemetryField::integer("output_dim", model_.output_dim()),
         TelemetryField::integer("max_batch", config_.max_batch),
         TelemetryField::num("max_delay_s", config_.max_delay_s),
         TelemetryField::integer(
             "queue_capacity",
             static_cast<std::int64_t>(config_.queue_capacity)),
         TelemetryField::integer("workers", pool_.size())});
  }
  batcher_ = std::thread([this] {
    obs::set_thread_name("serve-batcher");
    batcher_loop();
  });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<std::vector<float>> InferenceServer::submit(
    std::vector<float> input) {
  DEEPPHI_CHECK_MSG(
      static_cast<la::Index>(input.size()) == model_.input_dim(),
      "request dim " << input.size() << " != model input dim "
                     << model_.input_dim());
  Request r;
  r.input = std::move(input);
  r.enqueue_s = obs::Profiler::now_s();
  r.enqueue_tp = std::chrono::steady_clock::now();
  std::future<std::vector<float>> fut = r.result.get_future();

  if (shutdown_started_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    fail(r.result, "inference server is shutting down");
    return fut;
  }
  // Keep the promise alive across the push attempt: the queue never touches
  // it on rejection.
  std::promise<std::vector<float>>* promise = &r.result;
  if (!queue_.try_push(std::move(r))) {
    // try_push only moves on success, so `promise` is still ours here.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& rejected = obs::counter("serve.rejected");
    rejected.add();
    fail(*promise,
         queue_.closed() ? "inference server is shutting down"
                         : "inference server overloaded: request queue full");
    return fut;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& requests = obs::counter("serve.requests");
  requests.add();
  return fut;
}

std::future<std::vector<float>> InferenceServer::submit(const float* row,
                                                        la::Index dim) {
  return submit(std::vector<float>(row, row + dim));
}

void InferenceServer::batcher_loop() {
  for (;;) {
    {
      // Throttle: never hold more than max_inflight_ coalesced batches in
      // the pool — bounds gathered-matrix memory under overload.
      std::unique_lock<std::mutex> lock(inflight_mutex_);
      inflight_cv_.wait(lock, [&] { return inflight_ < max_inflight_; });
    }
    std::vector<Request> batch;
    const double collect_start = obs::Profiler::now_s();
    {
      DEEPPHI_PROFILE_SCOPE("serve.collect");
      batch = queue_.collect(static_cast<std::size_t>(config_.max_batch),
                             config_.max_delay_s);
    }
    if (batch.empty()) return;  // queue closed and drained
    // Stage histogram: how long assembling this batch took (blocking for the
    // first arrival plus the size-or-deadline wait).
    static obs::Histogram& collect_hist =
        obs::histogram("serve.stage.collect");
    collect_hist.record(obs::Profiler::now_s() - collect_start);

    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      ++inflight_;
      static obs::Gauge& inflight = obs::gauge("serve.inflight_batches");
      inflight.set(inflight_);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& batches = obs::counter("serve.batches");
    batches.add();

    // std::function needs a copyable callable; Request holds a move-only
    // promise, so the batch rides in a shared_ptr.
    auto shared = std::make_shared<std::vector<Request>>(std::move(batch));
    pool_.submit([this, shared] { run_batch(std::move(*shared)); });
  }
}

void InferenceServer::run_batch(std::vector<Request> batch) {
  struct InflightSlot {
    InferenceServer* s;
    ~InflightSlot() {
      {
        std::lock_guard<std::mutex> lock(s->inflight_mutex_);
        --s->inflight_;
        static obs::Gauge& inflight = obs::gauge("serve.inflight_batches");
        inflight.set(s->inflight_);
      }
      s->inflight_cv_.notify_one();
    }
  } slot{this};

  const la::Index rows = static_cast<la::Index>(batch.size());
  const double batch_start = obs::Profiler::now_s();
  // FIFO collect: front is the oldest request, so this is the worst queue
  // wait in the batch.
  const double queue_wait = batch_start - batch.front().enqueue_s;

  // Per-request queue wait: every request's own submit -> batch-start time
  // (the oldest-only aggregate above feeds the legacy summary fields).
  static obs::Histogram& queue_wait_hist =
      obs::histogram("serve.stage.queue_wait");
  for (const Request& r : batch)
    queue_wait_hist.record(batch_start - r.enqueue_s);

  la::Matrix x = la::Matrix::uninitialized(rows, model_.input_dim());
  {
    DEEPPHI_PROFILE_SCOPE("serve.gather");
    for (la::Index r = 0; r < rows; ++r)
      std::memcpy(x.row(r), batch[static_cast<std::size_t>(r)].input.data(),
                  sizeof(float) * static_cast<std::size_t>(x.cols()));
  }

  la::Matrix out;
  double compute_s = 0;
  try {
    DEEPPHI_PROFILE_SCOPE("serve.encode");
    const double t0 = obs::Profiler::now_s();
    model_.encode(x, out);
    compute_s = obs::Profiler::now_s() - t0;
    static obs::Histogram& compute_hist =
        obs::histogram("serve.stage.compute");
    compute_hist.record(compute_s);
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    for (Request& r : batch) r.result.set_exception(err);
    failed_.fetch_add(rows, std::memory_order_relaxed);
    return;
  }

  {
    DEEPPHI_PROFILE_SCOPE("serve.scatter");
    const double scatter_start = obs::Profiler::now_s();
    static obs::Histogram& e2e_hist = obs::histogram("serve.latency");
    for (la::Index r = 0; r < rows; ++r) {
      Request& req = batch[static_cast<std::size_t>(r)];
      std::vector<float> result(out.row(r), out.row(r) + out.cols());
      const double e2e = obs::Profiler::now_s() - req.enqueue_s;
      latency_.record(e2e);
      e2e_hist.record(e2e);
      req.result.set_value(std::move(result));
    }
    static obs::Histogram& scatter_hist =
        obs::histogram("serve.stage.scatter");
    scatter_hist.record(obs::Profiler::now_s() - scatter_start);
  }
  completed_.fetch_add(rows, std::memory_order_relaxed);
  compute_s_.fetch_add(compute_s, std::memory_order_relaxed);
  queue_wait_s_.fetch_add(queue_wait, std::memory_order_relaxed);
  static obs::Counter& coalesced = obs::counter("serve.coalesced_rows");
  coalesced.add(rows);
  static obs::Gauge& batch_rows = obs::gauge("serve.batch_rows");
  batch_rows.set(static_cast<double>(rows));

  if (config_.telemetry) {
    using obs::TelemetryField;
    config_.telemetry->emit(
        "serve_batch",
        {TelemetryField::integer("batch",
                                 batches_.load(std::memory_order_relaxed)),
         TelemetryField::integer("coalesced", rows),
         TelemetryField::num("queue_wait_s", queue_wait),
         TelemetryField::num("compute_s", compute_s),
         TelemetryField::num("batch_wall_s",
                             obs::Profiler::now_s() - batch_start)});
  }
}

void InferenceServer::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shutdown_done_) return;
  shutdown_started_.store(true, std::memory_order_release);
  queue_.close();  // admission off; collect() drains without deadline waits
  if (batcher_.joinable()) batcher_.join();
  pool_.wait_idle();
  emit_summary();
  shutdown_done_ = true;
}

void InferenceServer::emit_summary() {
  if (!config_.telemetry) return;
  const ServerStats s = stats();
  using obs::TelemetryField;
  config_.telemetry->emit_metrics(
      "serve_summary",
      {TelemetryField::str("schema", kServeSchema),
       TelemetryField::integer("submitted", s.submitted),
       TelemetryField::integer("rejected", s.rejected),
       TelemetryField::integer("completed", s.completed),
       TelemetryField::integer("failed", s.failed),
       TelemetryField::integer("batches", s.batches),
       TelemetryField::num("mean_batch_size", s.mean_batch_size),
       TelemetryField::integer(
           "peak_queue_depth",
           static_cast<std::int64_t>(s.peak_queue_depth)),
       TelemetryField::num("total_compute_s", s.total_compute_s),
       TelemetryField::num("latency_mean_s", s.latency.mean_s),
       TelemetryField::num("latency_p50_s", s.latency.p50_s),
       TelemetryField::num("latency_p95_s", s.latency.p95_s),
       TelemetryField::num("latency_p99_s", s.latency.p99_s),
       TelemetryField::num("latency_max_s", s.latency.max_s)});
}

const char* InferenceServer::precision() const {
  return dynamic_cast<const core::QuantizedEncoder*>(&model_) != nullptr
             ? "int8"
             : "fp32";
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
          : 0;
  s.peak_queue_depth = queue_.peak_size();
  s.total_compute_s = compute_s_.load(std::memory_order_relaxed);
  s.total_queue_wait_s = queue_wait_s_.load(std::memory_order_relaxed);
  s.latency = latency_.summary();
  return s;
}

}  // namespace deepphi::serve
