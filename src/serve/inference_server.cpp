#include "serve/inference_server.hpp"

#include <cstring>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace deepphi::serve {

namespace {

/// Serving telemetry schema tag (run records live alongside the training
/// records of deepphi.telemetry.v1 in one JSONL file).
constexpr const char* kServeSchema = "deepphi.serve.v1";

constexpr std::size_t kNoShed = std::numeric_limits<std::size_t>::max();

void fail(std::promise<Reply>& p, const std::string& what) {
  p.set_exception(std::make_exception_ptr(util::Error(what)));
}

}  // namespace

ModelServeConfig ServeConfig::lane_defaults() const {
  ModelServeConfig m;
  m.min_batch = min_batch;
  m.max_batch = max_batch;
  m.max_delay_s = max_delay_s;
  m.delay_cap_s = delay_cap_s;
  m.queue_capacity = queue_capacity;
  m.shed_fraction = shed_fraction;
  m.adaptive = adaptive;
  return m;
}

/// One served model: its queue, batcher thread, policy, rolling windows, and
/// both metric surfaces — the process-global serve.model.<name>.* registry
/// entries (exposition) and per-server-instance recorders (stats(), windows;
/// fresh per server so parallel test servers cannot bleed into each other).
struct InferenceServer::Lane {
  Lane(std::string lane_name, ModelServeConfig lane_cfg, double budget,
       la::Index in_dim, double window_interval_s, std::size_t window_intervals)
      : name(std::move(lane_name)),
        cfg(lane_cfg),
        input_dim(in_dim),
        queue(lane_cfg.queue_capacity, "serve.model." + name + ".queue_depth"),
        policy(BatchPolicy{lane_cfg.min_batch, lane_cfg.max_batch,
                           lane_cfg.max_delay_s, lane_cfg.delay_cap_s, budget,
                           lane_cfg.adaptive}),
        e2e_window(latency.histogram(), window_interval_s, window_intervals),
        compute_window(compute_src, window_interval_s, window_intervals),
        latency_hist(obs::histogram("serve.model." + name + ".latency")),
        compute_hist(obs::histogram("serve.model." + name + ".compute")),
        queue_wait_hist(obs::histogram("serve.model." + name + ".queue_wait")),
        requests_ctr(obs::counter("serve.model." + name + ".requests")),
        rejected_ctr(obs::counter("serve.model." + name + ".rejected")),
        shed_ctr(obs::counter("serve.model." + name + ".shed")),
        batches_ctr(obs::counter("serve.model." + name + ".batches")),
        coalesced_ctr(obs::counter("serve.model." + name + ".coalesced_rows")),
        decided_batch_g(obs::gauge("serve.model." + name + ".decided_batch")),
        decided_delay_g(
            obs::gauge("serve.model." + name + ".decided_delay_ms")),
        budget_g(obs::gauge("serve.model." + name + ".budget_ms")),
        shed_threshold(lane_cfg.shed_fraction < 1.0
                           ? static_cast<std::size_t>(
                                 lane_cfg.shed_fraction *
                                 static_cast<double>(lane_cfg.queue_capacity))
                           : kNoShed),
        last_decision{lane_cfg.max_batch, lane_cfg.max_delay_s} {
    budget_g.set(budget * 1e3);
  }

  const std::string name;
  const ModelServeConfig cfg;
  const la::Index input_dim;
  RequestQueue queue;
  const AdaptiveBatcher policy;

  // Per-instance recorders: `latency` feeds stats(name) and the e2e window;
  // `compute_src` exists only to drive the compute window. Both also mirror
  // into the registered serve.model.<name>.* histograms below.
  LatencyRecorder latency;
  obs::Histogram compute_src;
  // Windows are advanced and read only by this lane's batcher thread
  // (RollingWindow is not thread-safe).
  obs::RollingWindow e2e_window;
  obs::RollingWindow compute_window;

  obs::Histogram& latency_hist;
  obs::Histogram& compute_hist;
  obs::Histogram& queue_wait_hist;
  obs::Counter& requests_ctr;
  obs::Counter& rejected_ctr;
  obs::Counter& shed_ctr;
  obs::Counter& batches_ctr;
  obs::Counter& coalesced_ctr;
  obs::Gauge& decided_batch_g;
  obs::Gauge& decided_delay_g;
  obs::Gauge& budget_g;

  const std::size_t shed_threshold;  // kNoShed disables the early shed

  std::atomic<std::int64_t> submitted{0};
  std::atomic<std::int64_t> rejected{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> batches{0};
  std::atomic<double> compute_s{0};
  std::atomic<double> queue_wait_s{0};

  mutable std::mutex decision_mutex;
  BatchDecision last_decision;

  std::thread batcher;
};

InferenceServer::InferenceServer(ModelRegistry& registry, ServeConfig config)
    : registry_(&registry),
      config_(std::move(config)),
      pool_(std::max(1u, config_.workers)) {
  init_lanes();
}

InferenceServer::InferenceServer(const core::Encoder& model, ServeConfig config)
    : owned_registry_(std::make_unique<ModelRegistry>()),
      registry_(owned_registry_.get()),
      config_(std::move(config)),
      pool_(std::max(1u, config_.workers)) {
  // Borrowed, not owned: the aliasing constructor makes a non-owning
  // shared_ptr, preserving the PR-3 contract that `model` outlives the
  // server.
  owned_registry_->add_shared(
      "default",
      std::shared_ptr<const core::Encoder>(std::shared_ptr<void>(), &model));
  init_lanes();
}

void InferenceServer::init_lanes() {
  DEEPPHI_CHECK_MSG(config_.max_batch >= 1,
                    "max_batch must be >= 1, got " << config_.max_batch);
  DEEPPHI_CHECK_MSG(config_.max_delay_s >= 0,
                    "max_delay_s must be >= 0, got " << config_.max_delay_s);
  DEEPPHI_CHECK_MSG(config_.window_interval_s > 0 &&
                        config_.window_intervals >= 1,
                    "rolling-window geometry must be positive");
  const std::vector<std::string> names = registry_->names();
  DEEPPHI_CHECK_MSG(!names.empty(),
                    "cannot serve from an empty model registry");
  for (const auto& [name, cfg] : config_.per_model) {
    (void)cfg;
    DEEPPHI_CHECK_MSG(registry_->contains(name),
                      "per_model config for unregistered model '" << name
                                                                  << "'");
  }
  for (const std::string& name : names) {
    const auto it = config_.per_model.find(name);
    const ModelServeConfig cfg =
        it != config_.per_model.end() ? it->second : config_.lane_defaults();
    const ModelInfo info = registry_->info(name);
    auto lane = std::make_unique<Lane>(name, cfg, info.budget_s,
                                       info.input_dim, config_.window_interval_s,
                                       config_.window_intervals);
    emit_lane_config(*lane);
    lanes_.emplace(name, std::move(lane));
  }
  max_inflight_ =
      static_cast<int>(std::max(1u, config_.workers)) +
      static_cast<int>(lanes_.size());
  for (auto& [name, lane] : lanes_) {
    Lane* l = lane.get();
    l->batcher = std::thread([this, l] {
      obs::set_thread_name("serve-" + l->name);
      batcher_loop(*l);
    });
  }
}

void InferenceServer::emit_lane_config(const Lane& lane) {
  if (!config_.telemetry) return;
  const ModelInfo info = registry_->info(lane.name);
  using obs::TelemetryField;
  config_.telemetry->emit(
      "serve_config",
      {TelemetryField::str("schema", kServeSchema),
       TelemetryField::str("name", lane.name),
       TelemetryField::str("model", info.description),
       TelemetryField::str("precision", info.precision),
       TelemetryField::integer("version",
                               static_cast<std::int64_t>(info.version)),
       TelemetryField::integer("input_dim", info.input_dim),
       TelemetryField::integer("output_dim", info.output_dim),
       TelemetryField::integer("max_batch", lane.cfg.max_batch),
       TelemetryField::num("max_delay_s", lane.cfg.max_delay_s),
       TelemetryField::integer(
           "queue_capacity",
           static_cast<std::int64_t>(lane.cfg.queue_capacity)),
       TelemetryField::integer("workers", pool_.size()),
       TelemetryField::num("budget_ms", info.budget_s * 1e3),
       TelemetryField::integer("adaptive",
                               lane.policy.adaptive() ? 1 : 0)});
}

InferenceServer::~InferenceServer() { shutdown(); }

InferenceServer::Lane& InferenceServer::lane(const std::string& model) const {
  const auto it = lanes_.find(model);
  DEEPPHI_CHECK_MSG(it != lanes_.end(),
                    "server does not serve a model named '" << model << "'");
  return *it->second;
}

std::future<Reply> InferenceServer::submit(const std::string& model,
                                           std::vector<float> input) {
  Lane& l = lane(model);
  DEEPPHI_CHECK_MSG(static_cast<la::Index>(input.size()) == l.input_dim,
                    "request dim " << input.size() << " != model '" << model
                                   << "' input dim " << l.input_dim);
  Request r;
  r.input = std::move(input);
  r.enqueue_s = obs::Profiler::now_s();
  r.enqueue_tp = std::chrono::steady_clock::now();
  std::future<Reply> fut = r.result.get_future();

  if (shutdown_started_.load(std::memory_order_acquire)) {
    l.rejected.fetch_add(1, std::memory_order_relaxed);
    fail(r.result, "inference server is shutting down");
    return fut;
  }
  static obs::Counter& rejected_all = obs::counter("serve.rejected");
  // Admission control: shed by queue depth before capacity does, so under a
  // sustained overload the queue keeps headroom for bursts instead of
  // sitting pinned at its memory bound.
  if (l.shed_threshold != kNoShed && l.queue.size() >= l.shed_threshold) {
    l.rejected.fetch_add(1, std::memory_order_relaxed);
    l.shed.fetch_add(1, std::memory_order_relaxed);
    l.rejected_ctr.add();
    l.shed_ctr.add();
    rejected_all.add();
    fail(r.result, "inference server overloaded: load shed for model '" +
                       model + "' (queue depth at admission threshold)");
    return fut;
  }
  // Keep the promise alive across the push attempt: the queue never touches
  // it on rejection.
  std::promise<Reply>* promise = &r.result;
  if (!l.queue.try_push(std::move(r))) {
    // try_push only moves on success, so `promise` is still ours here.
    l.rejected.fetch_add(1, std::memory_order_relaxed);
    l.rejected_ctr.add();
    rejected_all.add();
    fail(*promise,
         l.queue.closed() ? "inference server is shutting down"
                          : "inference server overloaded: request queue full");
    return fut;
  }
  l.submitted.fetch_add(1, std::memory_order_relaxed);
  l.requests_ctr.add();
  static obs::Counter& requests_all = obs::counter("serve.requests");
  requests_all.add();
  return fut;
}

std::future<Reply> InferenceServer::submit(std::vector<float> input) {
  DEEPPHI_CHECK_MSG(lanes_.size() == 1,
                    "submit() without a model name needs a single-model "
                    "server; this one serves "
                        << lanes_.size() << " — use submit(name, input)");
  return submit(lanes_.begin()->first, std::move(input));
}

std::future<Reply> InferenceServer::submit(const float* row, la::Index dim) {
  return submit(std::vector<float>(row, row + dim));
}

void InferenceServer::batcher_loop(Lane& lane) {
  for (;;) {
    {
      // Throttle: never hold more than max_inflight_ coalesced batches in
      // the pool — bounds gathered-matrix memory under overload.
      std::unique_lock<std::mutex> lock(inflight_mutex_);
      inflight_cv_.wait(lock, [&] { return inflight_ < max_inflight_; });
    }
    // Re-decide the flush parameters from the live windows before every
    // collect; the static policy returns the configured pair unchanged.
    BatchDecision decision;
    if (lane.policy.adaptive()) {
      const double now = obs::Profiler::now_s();
      lane.e2e_window.advance(now);
      lane.compute_window.advance(now);
      decision = lane.policy.decide(lane.e2e_window.window(),
                                    lane.compute_window.window(),
                                    lane.e2e_window.rate_per_s());
      lane.decided_batch_g.set(static_cast<double>(decision.max_batch));
      lane.decided_delay_g.set(decision.max_delay_s * 1e3);
      std::lock_guard<std::mutex> lock(lane.decision_mutex);
      lane.last_decision = decision;
    } else {
      decision = lane.policy.decide({}, {}, 0);
    }

    std::vector<Request> batch;
    const double collect_start = obs::Profiler::now_s();
    {
      DEEPPHI_PROFILE_SCOPE("serve.collect");
      batch = lane.queue.collect(static_cast<std::size_t>(decision.max_batch),
                                 decision.max_delay_s);
    }
    if (batch.empty()) return;  // queue closed and drained
    // Stage histogram: how long assembling this batch took (blocking for the
    // first arrival plus the size-or-deadline wait).
    static obs::Histogram& collect_hist =
        obs::histogram("serve.stage.collect");
    collect_hist.record(obs::Profiler::now_s() - collect_start);

    // The hot-swap pivot: one registry snapshot per batch, taken after
    // collection. Every row in this batch computes on exactly this version,
    // however many publishes land while it runs.
    ModelVersion version = registry_->current(lane.name);

    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      ++inflight_;
      static obs::Gauge& inflight = obs::gauge("serve.inflight_batches");
      inflight.set(inflight_);
    }
    lane.batches.fetch_add(1, std::memory_order_relaxed);
    lane.batches_ctr.add();
    static obs::Counter& batches_all = obs::counter("serve.batches");
    batches_all.add();

    // std::function needs a copyable callable; Request holds a move-only
    // promise, so the batch rides in a shared_ptr.
    auto shared = std::make_shared<std::vector<Request>>(std::move(batch));
    Lane* l = &lane;
    pool_.submit([this, l, version, shared] {
      run_batch(*l, version, std::move(*shared));
    });
  }
}

void InferenceServer::run_batch(Lane& lane, ModelVersion version,
                                std::vector<Request> batch) {
  struct InflightSlot {
    InferenceServer* s;
    ~InflightSlot() {
      {
        std::lock_guard<std::mutex> lock(s->inflight_mutex_);
        --s->inflight_;
        static obs::Gauge& inflight = obs::gauge("serve.inflight_batches");
        inflight.set(s->inflight_);
      }
      s->inflight_cv_.notify_one();
    }
  } slot{this};

  const core::Encoder& model = *version.model;
  const la::Index rows = static_cast<la::Index>(batch.size());
  const double batch_start = obs::Profiler::now_s();
  // FIFO collect: front is the oldest request, so this is the worst queue
  // wait in the batch.
  const double queue_wait = batch_start - batch.front().enqueue_s;

  // Per-request queue wait: every request's own submit -> batch-start time
  // (the oldest-only aggregate above feeds the legacy summary fields).
  static obs::Histogram& queue_wait_hist =
      obs::histogram("serve.stage.queue_wait");
  for (const Request& r : batch) {
    const double wait = batch_start - r.enqueue_s;
    queue_wait_hist.record(wait);
    lane.queue_wait_hist.record(wait);
  }

  la::Matrix x = la::Matrix::uninitialized(rows, model.input_dim());
  {
    DEEPPHI_PROFILE_SCOPE("serve.gather");
    for (la::Index r = 0; r < rows; ++r)
      std::memcpy(x.row(r), batch[static_cast<std::size_t>(r)].input.data(),
                  sizeof(float) * static_cast<std::size_t>(x.cols()));
  }

  la::Matrix out;
  double compute_s = 0;
  try {
    DEEPPHI_PROFILE_SCOPE("serve.encode");
    const double t0 = obs::Profiler::now_s();
    model.encode(x, out);
    compute_s = obs::Profiler::now_s() - t0;
    static obs::Histogram& compute_hist =
        obs::histogram("serve.stage.compute");
    compute_hist.record(compute_s);
    lane.compute_hist.record(compute_s);
    lane.compute_src.record(compute_s);
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    for (Request& r : batch) r.result.set_exception(err);
    lane.failed.fetch_add(rows, std::memory_order_relaxed);
    return;
  }

  {
    DEEPPHI_PROFILE_SCOPE("serve.scatter");
    const double scatter_start = obs::Profiler::now_s();
    static obs::Histogram& e2e_hist = obs::histogram("serve.latency");
    for (la::Index r = 0; r < rows; ++r) {
      Request& req = batch[static_cast<std::size_t>(r)];
      Reply reply;
      reply.row.assign(out.row(r), out.row(r) + out.cols());
      reply.version = version.version;
      const double e2e = obs::Profiler::now_s() - req.enqueue_s;
      latency_.record(e2e);
      lane.latency.record(e2e);
      lane.latency_hist.record(e2e);
      e2e_hist.record(e2e);
      req.result.set_value(std::move(reply));
    }
    static obs::Histogram& scatter_hist =
        obs::histogram("serve.stage.scatter");
    scatter_hist.record(obs::Profiler::now_s() - scatter_start);
  }
  lane.completed.fetch_add(rows, std::memory_order_relaxed);
  lane.compute_s.fetch_add(compute_s, std::memory_order_relaxed);
  lane.queue_wait_s.fetch_add(queue_wait, std::memory_order_relaxed);
  lane.coalesced_ctr.add(rows);
  static obs::Counter& coalesced = obs::counter("serve.coalesced_rows");
  coalesced.add(rows);
  static obs::Gauge& batch_rows = obs::gauge("serve.batch_rows");
  batch_rows.set(static_cast<double>(rows));

  if (config_.telemetry) {
    using obs::TelemetryField;
    config_.telemetry->emit(
        "serve_batch",
        {TelemetryField::str("name", lane.name),
         TelemetryField::integer("version",
                                 static_cast<std::int64_t>(version.version)),
         TelemetryField::integer(
             "batch", lane.batches.load(std::memory_order_relaxed)),
         TelemetryField::integer("coalesced", rows),
         TelemetryField::num("queue_wait_s", queue_wait),
         TelemetryField::num("compute_s", compute_s),
         TelemetryField::num("batch_wall_s",
                             obs::Profiler::now_s() - batch_start)});
  }
}

void InferenceServer::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shutdown_done_) return;
  shutdown_started_.store(true, std::memory_order_release);
  // Admission off everywhere first, then drain: collect() skips deadline
  // waits after close, so the lanes finish their backlogs promptly.
  for (auto& [name, lane] : lanes_) lane->queue.close();
  for (auto& [name, lane] : lanes_)
    if (lane->batcher.joinable()) lane->batcher.join();
  pool_.wait_idle();
  emit_summary();
  shutdown_done_ = true;
}

void InferenceServer::emit_summary() {
  if (!config_.telemetry) return;
  using obs::TelemetryField;
  for (const auto& [name, lane] : lanes_) {
    const ServerStats s = stats(name);
    const ModelInfo info = registry_->info(name);
    const bool has_budget = info.budget_s > 0;
    config_.telemetry->emit(
        "serve_model_summary",
        {TelemetryField::str("schema", kServeSchema),
         TelemetryField::str("name", name),
         TelemetryField::integer("version",
                                 static_cast<std::int64_t>(info.version)),
         TelemetryField::integer("submitted", s.submitted),
         TelemetryField::integer("rejected", s.rejected),
         TelemetryField::integer("shed", s.shed),
         TelemetryField::integer("completed", s.completed),
         TelemetryField::integer("failed", s.failed),
         TelemetryField::integer("batches", s.batches),
         TelemetryField::num("mean_batch_size", s.mean_batch_size),
         TelemetryField::num("budget_ms", info.budget_s * 1e3),
         TelemetryField::num("latency_p99_ms", s.latency.p99_s * 1e3),
         TelemetryField::integer(
             "slo_met",
             has_budget ? (s.latency.p99_s <= info.budget_s ? 1 : 0) : 1)});
  }
  const ServerStats s = stats();
  config_.telemetry->emit_metrics(
      "serve_summary",
      {TelemetryField::str("schema", kServeSchema),
       TelemetryField::integer("submitted", s.submitted),
       TelemetryField::integer("rejected", s.rejected),
       TelemetryField::integer("shed", s.shed),
       TelemetryField::integer("completed", s.completed),
       TelemetryField::integer("failed", s.failed),
       TelemetryField::integer("batches", s.batches),
       TelemetryField::num("mean_batch_size", s.mean_batch_size),
       TelemetryField::integer(
           "peak_queue_depth",
           static_cast<std::int64_t>(s.peak_queue_depth)),
       TelemetryField::num("total_compute_s", s.total_compute_s),
       TelemetryField::num("latency_mean_s", s.latency.mean_s),
       TelemetryField::num("latency_p50_s", s.latency.p50_s),
       TelemetryField::num("latency_p95_s", s.latency.p95_s),
       TelemetryField::num("latency_p99_s", s.latency.p99_s),
       TelemetryField::num("latency_max_s", s.latency.max_s)});
}

const char* InferenceServer::precision() const {
  const char* agreed = nullptr;
  for (const auto& [name, lane] : lanes_) {
    const std::string p = registry_->info(name).precision;
    const char* lit = p == "int8" ? "int8" : "fp32";
    if (agreed == nullptr) agreed = lit;
    if (agreed != lit) return "mixed";
  }
  return agreed == nullptr ? "fp32" : agreed;
}

ServerStats InferenceServer::stats(const std::string& model) const {
  const Lane& l = lane(model);
  ServerStats s;
  s.submitted = l.submitted.load(std::memory_order_relaxed);
  s.rejected = l.rejected.load(std::memory_order_relaxed);
  s.shed = l.shed.load(std::memory_order_relaxed);
  s.completed = l.completed.load(std::memory_order_relaxed);
  s.failed = l.failed.load(std::memory_order_relaxed);
  s.batches = l.batches.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
          : 0;
  s.peak_queue_depth = l.queue.peak_size();
  s.total_compute_s = l.compute_s.load(std::memory_order_relaxed);
  s.total_queue_wait_s = l.queue_wait_s.load(std::memory_order_relaxed);
  s.latency = l.latency.summary();
  return s;
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  for (const auto& [name, lane] : lanes_) {
    s.submitted += lane->submitted.load(std::memory_order_relaxed);
    s.rejected += lane->rejected.load(std::memory_order_relaxed);
    s.shed += lane->shed.load(std::memory_order_relaxed);
    s.completed += lane->completed.load(std::memory_order_relaxed);
    s.failed += lane->failed.load(std::memory_order_relaxed);
    s.batches += lane->batches.load(std::memory_order_relaxed);
    s.peak_queue_depth = std::max(s.peak_queue_depth, lane->queue.peak_size());
    s.total_compute_s += lane->compute_s.load(std::memory_order_relaxed);
    s.total_queue_wait_s += lane->queue_wait_s.load(std::memory_order_relaxed);
  }
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
          : 0;
  s.latency = latency_.summary();
  return s;
}

std::vector<std::string> InferenceServer::models() const {
  std::vector<std::string> out;
  out.reserve(lanes_.size());
  for (const auto& [name, lane] : lanes_) out.push_back(name);
  return out;
}

std::size_t InferenceServer::queue_depth() const {
  DEEPPHI_CHECK_MSG(lanes_.size() == 1,
                    "queue_depth() without a model name needs a single-model "
                    "server — use queue_depth(name)");
  return lanes_.begin()->second->queue.size();
}

std::size_t InferenceServer::queue_depth(const std::string& model) const {
  return lane(model).queue.size();
}

BatchDecision InferenceServer::last_decision(const std::string& model) const {
  const Lane& l = lane(model);
  std::lock_guard<std::mutex> lock(l.decision_mutex);
  return l.last_decision;
}

}  // namespace deepphi::serve
