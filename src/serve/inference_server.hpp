// Multi-model batched inference serving engine.
//
// The paper's central performance lesson (Fig. 9, §IV) is that many-core
// throughput only materializes when work arrives in GEMM-friendly
// mini-batches; single-example inference wastes the machine exactly the way
// tiny training batches do. InferenceServer applies that lesson to serving,
// for every model in a ModelRegistry at once:
//
//   clients ── submit(model, row) ──► per-model RequestQueue (bounded)
//                                         │ collect(batch, delay) — decided
//                                    per-model batcher thread     — per batch
//                                         │ one la::Matrix + a ModelVersion
//                                         │ snapshot from the registry
//                                    shared par::ThreadPool — encode()
//                                         │ rows scattered to futures as
//                                         │ Reply{row, serving version}
//                                    client futures become ready
//
// Properties:
//  * One registry, many lanes: each registered model gets its own bounded
//    queue, batcher thread, and `serve.model.<name>.*` metrics, while all
//    lanes share one compute pool — N models cost N queues, not N machines.
//  * Zero-downtime hot swap: a batch computes on the ModelVersion snapshot
//    taken at collect time, so ModelRegistry::publish() never drops or
//    blocks a request; in-flight batches finish on the old version (its
//    shared_ptr keeps it alive) and every Reply names the version that
//    served it. Served rows stay bitwise identical to direct single-example
//    encode() on that version (the GEMM's k-accumulation order is
//    independent of batch row count — see la/gemm.hpp).
//  * SLO-aware batching: with a per-model latency budget the flush deadline
//    and batch cap are re-decided per batch from live rolling-window
//    p95/p99 evidence (serve/adaptive_batcher.hpp); without one the classic
//    static size-or-deadline flush applies unchanged.
//  * Bounded everywhere: queues reject at capacity, admission control can
//    shed by queue depth before that (shed_fraction), and at most
//    workers + lanes coalesced batches are in flight at once, so overload
//    degrades into fast rejections instead of OOM.
//  * Observability reuses the obs:: stack: the process-wide serve.* metrics
//    of the single-model era keep recording (aggregated over lanes), plus
//    per-model histograms/counters/gauges under serve.model.<name>.*, and
//    JSONL telemetry under the "deepphi.serve.v1" schema (docs/serving.md).
//  * Graceful shutdown: shutdown() stops admission, drains every queued
//    request through the normal batch path, and joins all threads; the
//    destructor does the same.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/encoder.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/adaptive_batcher.hpp"
#include "serve/latency_recorder.hpp"
#include "serve/model_registry.hpp"
#include "serve/request_queue.hpp"

namespace deepphi::serve {

/// Per-model serving knobs. ServeConfig's top-level fields provide the
/// defaults for every lane; a per_model entry overrides them for one name.
struct ModelServeConfig {
  la::Index min_batch = 1;
  la::Index max_batch = 64;
  double max_delay_s = 2e-3;
  double delay_cap_s = 0.02;
  std::size_t queue_capacity = 1024;
  /// Queue-depth admission threshold as a fraction of capacity: submits are
  /// shed once depth reaches `shed_fraction * capacity`. 1.0 disables the
  /// early shed (the queue still rejects at capacity).
  double shed_fraction = 1.0;
  /// False pins the static size-or-deadline policy even when the model has
  /// a latency budget.
  bool adaptive = true;
};

struct ServeConfig {
  /// Largest coalesced batch (rows per Encoder::encode call).
  la::Index max_batch = 64;
  /// Deadline flush: a request waits at most this long in the queue before
  /// its batch is dispatched, full or not. 0 flushes immediately (batching
  /// then only coalesces requests that are already waiting). With a
  /// per-model budget and adaptive batching this is only the cold-start
  /// value — the adaptive batcher re-decides it per batch.
  double max_delay_s = 2e-3;
  /// Queue slots per model; try_push beyond this rejects (backpressure).
  std::size_t queue_capacity = 1024;
  /// Compute workers shared by every lane. 1 already pipelines compute with
  /// batch collection; more lets independent batches overlap (each encode()
  /// call runs its own OpenMP region, so large counts oversubscribe cores).
  unsigned workers = 1;
  /// Optional JSONL sink for per-batch and summary records
  /// (schema "deepphi.serve.v1"). Must outlive the server.
  obs::TelemetrySink* telemetry = nullptr;

  // Adaptive-batching defaults (see ModelServeConfig / BatchPolicy).
  la::Index min_batch = 1;
  double delay_cap_s = 0.02;
  double shed_fraction = 1.0;
  bool adaptive = true;
  /// Rolling-window geometry feeding the adaptive decisions.
  double window_interval_s = 0.25;
  std::size_t window_intervals = 8;

  /// Per-model overrides by registry name (copy lane_defaults() and edit).
  std::map<std::string, ModelServeConfig> per_model;

  /// The ModelServeConfig the top-level fields imply.
  ModelServeConfig lane_defaults() const;
};

/// Aggregate view of a server's (or one lane's) lifetime, cheap to snapshot
/// at any point.
struct ServerStats {
  std::int64_t submitted = 0;   // admitted requests
  std::int64_t rejected = 0;    // refused (shed, queue full, post-shutdown)
  std::int64_t shed = 0;        // of rejected: depth-based admission control
  std::int64_t completed = 0;   // futures fulfilled with a result
  std::int64_t failed = 0;      // futures failed by a compute error
  std::int64_t batches = 0;     // coalesced batches dispatched
  double mean_batch_size = 0;   // completed / batches
  std::size_t peak_queue_depth = 0;
  double total_compute_s = 0;   // sum of per-batch encode wall time
  double total_queue_wait_s = 0;  // sum over batches of oldest-request wait
  LatencySummary latency;       // end-to-end submit -> result-ready
};

class InferenceServer {
 public:
  /// Serves every model registered in `registry`, which must outlive the
  /// server. Models may be added to the registry only before construction
  /// (lanes are fixed); publish() works at any time.
  InferenceServer(ModelRegistry& registry, ServeConfig config);

  /// Single-model convenience (the PR-3 API): wraps `model` in an internal
  /// registry under the name "default". `model` is shared and read-only; it
  /// must outlive the server and its encode() must be thread-safe (every
  /// core::Encoder in this repo is).
  InferenceServer(const core::Encoder& model, ServeConfig config);

  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Submits one example to `model` (input size must equal that model's
  /// input_dim(); anything else throws immediately — a caller bug, not
  /// load). The future yields the encoded row plus the registry version
  /// that served it, or throws util::Error if the server rejected the
  /// request (shed / queue full / shutting down) or the model failed.
  std::future<Reply> submit(const std::string& model, std::vector<float> input);

  /// Single-lane convenience: routes to the only served model; throws when
  /// the server lanes more than one.
  std::future<Reply> submit(std::vector<float> input);

  /// Convenience overload: copies `row[0..dim)` (single-lane servers).
  std::future<Reply> submit(const float* row, la::Index dim);

  /// Stops admission, drains every queued request through the batch path,
  /// waits for in-flight compute, emits the telemetry summary, and joins all
  /// threads. Idempotent; called by the destructor.
  void shutdown();

  /// Lifetime stats aggregated over every lane.
  ServerStats stats() const;
  /// One lane's lifetime stats; throws for unknown names.
  ServerStats stats(const std::string& model) const;

  /// Served model names, sorted.
  std::vector<std::string> models() const;

  /// The registry this server serves from (the admin swap endpoint
  /// publishes through this).
  ModelRegistry& registry() { return *registry_; }
  const ModelRegistry& registry() const { return *registry_; }

  const ServeConfig& config() const { return config_; }

  /// "fp32" or "int8" when every lane agrees, "mixed" otherwise — recorded
  /// in telemetry and surfaced by the serving CLI/bench.
  const char* precision() const;

  /// Requests currently waiting (single-lane convenience / by name).
  std::size_t queue_depth() const;
  std::size_t queue_depth(const std::string& model) const;

  /// The most recent adaptive decision a lane's batcher made (tests, CLI).
  BatchDecision last_decision(const std::string& model) const;

 private:
  struct Lane;

  void init_lanes();
  void batcher_loop(Lane& lane);
  void run_batch(Lane& lane, ModelVersion version, std::vector<Request> batch);
  void emit_lane_config(const Lane& lane);
  void emit_summary();
  Lane& lane(const std::string& model) const;

  // Set only by the legacy single-model constructor, which needs a registry
  // of its own to wrap the borrowed Encoder.
  std::unique_ptr<ModelRegistry> owned_registry_;
  ModelRegistry* registry_ = nullptr;
  const ServeConfig config_;
  std::map<std::string, std::unique_ptr<Lane>> lanes_;
  par::ThreadPool pool_;
  LatencyRecorder latency_;  // aggregate end-to-end, all lanes

  // In-flight batch throttle: collection stops while `max_inflight_` batches
  // are queued or running on the pool, bounding the memory pinned by
  // gathered-but-uncomputed matrices (workers + one per lane).
  int max_inflight_ = 2;
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  int inflight_ = 0;

  std::atomic<bool> shutdown_started_{false};
  std::mutex shutdown_mutex_;
  bool shutdown_done_ = false;
};

}  // namespace deepphi::serve
