// Multi-threaded batched inference serving engine.
//
// The paper's central performance lesson (Fig. 9, §IV) is that many-core
// throughput only materializes when work arrives in GEMM-friendly
// mini-batches; single-example inference wastes the machine exactly the way
// tiny training batches do. InferenceServer applies that lesson to serving:
//
//   clients ── submit() ──► RequestQueue (bounded; rejects when full)
//                               │ collect(max_batch, max_delay)
//                          batcher thread — coalesces waiting requests
//                               │ one la::Matrix of up-to-max_batch rows
//                          par::ThreadPool — Encoder::encode on the batch,
//                               │ rows scattered back to per-request futures
//                          client futures become ready
//
// Properties:
//  * One shared read-only core::Encoder: any checkpoint loaded through
//    model_io::load_any serves through this same code path, and the batch
//    rows are bitwise identical to direct single-example encode() calls
//    (the GEMM's k-accumulation order is independent of the batch row
//    count — see la/gemm.hpp).
//  * Bounded everywhere: the queue rejects at capacity (backpressure), and
//    at most workers+1 coalesced batches are in flight at once, so overload
//    degrades into fast rejections instead of OOM.
//  * Tail latency is bounded by the size-or-deadline flush: a lone request
//    waits at most max_delay before it rides a (possibly singleton) batch.
//  * Observability reuses the obs:: stack: queue-depth/in-flight gauges and
//    request/batch counters in the metrics registry, DEEPPHI_PROFILE_SCOPE
//    spans per stage, and per-batch + summary JSONL telemetry records under
//    the "deepphi.serve.v1" schema (see docs/serving.md).
//  * Graceful shutdown: shutdown() stops admission, drains every queued
//    request through the normal batch path, and joins all threads; the
//    destructor does the same.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/encoder.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/latency_recorder.hpp"
#include "serve/request_queue.hpp"

namespace deepphi::serve {

struct ServeConfig {
  /// Largest coalesced batch (rows per Encoder::encode call).
  la::Index max_batch = 64;
  /// Deadline flush: a request waits at most this long in the queue before
  /// its batch is dispatched, full or not. 0 flushes immediately (batching
  /// then only coalesces requests that are already waiting).
  double max_delay_s = 2e-3;
  /// Queue slots; try_push beyond this rejects (backpressure).
  std::size_t queue_capacity = 1024;
  /// Compute workers. 1 already pipelines compute with batch collection;
  /// more lets independent batches overlap (each encode() call runs its own
  /// OpenMP region, so large worker counts oversubscribe cores).
  unsigned workers = 1;
  /// Optional JSONL sink for per-batch and summary records
  /// (schema "deepphi.serve.v1"). Must outlive the server.
  obs::TelemetrySink* telemetry = nullptr;
};

/// Aggregate view of a server's lifetime, cheap to snapshot at any point.
struct ServerStats {
  std::int64_t submitted = 0;   // admitted requests
  std::int64_t rejected = 0;    // refused by backpressure (or post-shutdown)
  std::int64_t completed = 0;   // futures fulfilled with a result
  std::int64_t failed = 0;      // futures failed by a compute error
  std::int64_t batches = 0;     // coalesced batches dispatched
  double mean_batch_size = 0;   // completed / batches
  std::size_t peak_queue_depth = 0;
  double total_compute_s = 0;   // sum of per-batch encode wall time
  double total_queue_wait_s = 0;  // sum over batches of oldest-request wait
  LatencySummary latency;       // end-to-end submit -> result-ready
};

class InferenceServer {
 public:
  /// `model` is shared and read-only; it must outlive the server and its
  /// encode() must be thread-safe (every core::Encoder in this repo is).
  InferenceServer(const core::Encoder& model, ServeConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Submits one example (size must equal model.input_dim(); anything else
  /// throws immediately — that is a caller bug, not load). The future yields
  /// the encoded row, or throws util::Error if the server rejected the
  /// request (queue full / shutting down) or the model failed.
  std::future<std::vector<float>> submit(std::vector<float> input);

  /// Convenience overload: copies `row[0..dim)`.
  std::future<std::vector<float>> submit(const float* row, la::Index dim);

  /// Stops admission, drains every queued request through the batch path,
  /// waits for in-flight compute, emits the telemetry summary, and joins all
  /// threads. Idempotent; called by the destructor.
  void shutdown();

  ServerStats stats() const;
  const ServeConfig& config() const { return config_; }
  const core::Encoder& model() const { return model_; }

  /// "int8" when the served model is a QuantizedEncoder, else "fp32" —
  /// recorded in the serve_config telemetry record and surfaced by the
  /// serving CLI/bench so snapshots are self-describing.
  const char* precision() const;

  /// Requests currently waiting in the queue (tests, monitoring).
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  void batcher_loop();
  void run_batch(std::vector<Request> batch);
  void emit_summary();

  const core::Encoder& model_;
  const ServeConfig config_;
  RequestQueue queue_;
  par::ThreadPool pool_;
  LatencyRecorder latency_;

  // In-flight batch throttle: the batcher stops collecting while
  // `max_inflight_` batches are queued or running on the pool, bounding the
  // memory pinned by gathered-but-uncomputed matrices.
  const int max_inflight_;
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  int inflight_ = 0;

  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<double> compute_s_{0};
  std::atomic<double> queue_wait_s_{0};

  std::atomic<bool> shutdown_started_{false};
  std::mutex shutdown_mutex_;
  bool shutdown_done_ = false;
  std::thread batcher_;
};

}  // namespace deepphi::serve
