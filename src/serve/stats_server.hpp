// Live stats endpoint for the inference server: a util::HttpListener that
// renders the process metrics registry on demand.
//
// Routes:
//  * /metrics     — Prometheus text format (obs::prometheus_text()).
//  * /stats.json  — one `deepphi.stats.v1` record: schema, uptime, server
//                   info, a rolling-window view of serve.latency, and the
//                   full registry (counters/gauges/histograms with
//                   p50/p95/p99 summaries).
//
// Each scrape also advances the rolling window and publishes its live view
// as gauges (serve.window.p50_s/p95_s/p99_s/rate_rps), so a Prometheus
// scraper gets the windowed quantiles too, not just the cumulative ones.
// Rendering runs on the listener's accept thread under a small mutex; the
// serving hot path never blocks on it (histogram record() is lock-free).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/histogram.hpp"
#include "util/http_listener.hpp"

namespace deepphi::serve {

struct StatsServerConfig {
  int port = 0;                   ///< 0 = kernel-assigned (see port()).
  double window_interval_s = 1.0; ///< rolling-window tick width
  int window_intervals = 10;      ///< ticks retained (10 × 1s = last ~10s)
};

class StatsServer {
 public:
  explicit StatsServer(const StatsServerConfig& config = {});
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// The bound port.
  int port() const { return listener_->port(); }

  /// HTTP requests answered so far.
  std::int64_t requests_served() const { return listener_->requests_served(); }

  /// Stops the listener thread. Idempotent; also run by the destructor.
  void stop() { listener_->stop(); }

  /// Render the endpoint bodies directly (tests, shutdown summaries).
  /// Both advance the rolling window first, like a real scrape.
  std::string render_metrics();
  std::string render_stats_json();

 private:
  util::HttpListener::Response handle(const std::string& path);
  /// Advances the window to now and refreshes serve.window.* gauges.
  /// Returns the current windowed view. Caller holds mutex_.
  obs::HistogramSnapshot advance_window_locked();

  StatsServerConfig config_;
  double start_s_;
  std::mutex mutex_;  ///< serializes window advance + rendering
  obs::RollingWindow window_;
  std::unique_ptr<util::HttpListener> listener_;
};

}  // namespace deepphi::serve
