// Live stats + admin endpoint for the inference server: a util::HttpListener
// that renders the process metrics registry on demand and (when attached to
// a server) drives the model registry's hot-swap control plane.
//
// Routes:
//  * /metrics       — Prometheus text format (obs::prometheus_text()).
//  * /stats.json    — one `deepphi.stats.v1` record: schema, uptime, server
//                     info, a rolling-window view of serve.latency, and the
//                     full registry (counters/gauges/histograms with
//                     p50/p95/p99 summaries).
//  * /admin/models  — JSON list of every registered model's metadata and
//                     lifetime serving stats (needs an attached server).
//  * /admin/swap?model=NAME&path=/abs/ckpt
//                   — loads the checkpoint and publishes it to NAME,
//                     bumping the version; in-flight batches finish on the
//                     old version, responses report which version served
//                     them. Errors (unknown model, bad checkpoint, input-dim
//                     mismatch) come back as 400 with the reason.
//
// Each scrape also advances the rolling window and publishes its live view
// as gauges (serve.window.p50_s/p95_s/p99_s/rate_rps), so a Prometheus
// scraper gets the windowed quantiles too, not just the cumulative ones.
// Rendering and swaps run on the listener's accept thread under a small
// mutex; the serving hot path never blocks on either (histogram record() is
// lock-free, and publish() is one mutex hop the batcher takes per batch).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/histogram.hpp"
#include "util/http_listener.hpp"

namespace deepphi::serve {

class InferenceServer;

struct StatsServerConfig {
  int port = 0;                   ///< 0 = kernel-assigned (see port()).
  double window_interval_s = 1.0; ///< rolling-window tick width
  int window_intervals = 10;      ///< ticks retained (10 × 1s = last ~10s)
  /// Attaching the server enables the /admin routes (model list, hot swap).
  /// Must outlive the StatsServer.
  InferenceServer* server = nullptr;
};

class StatsServer {
 public:
  explicit StatsServer(const StatsServerConfig& config = {});
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// The bound port.
  int port() const { return listener_->port(); }

  /// HTTP requests answered so far.
  std::int64_t requests_served() const { return listener_->requests_served(); }

  /// Stops the listener thread. Idempotent; also run by the destructor.
  void stop() { listener_->stop(); }

  /// Render the endpoint bodies directly (tests, shutdown summaries).
  /// Both advance the rolling window first, like a real scrape.
  std::string render_metrics();
  std::string render_stats_json();

  /// The /admin/models body (requires an attached server; throws otherwise).
  std::string render_models_json();

 private:
  util::HttpListener::Response handle(const std::string& target);
  util::HttpListener::Response handle_swap(
      const std::map<std::string, std::string>& params);
  /// Advances the window to now and refreshes serve.window.* gauges.
  /// Returns the current windowed view. Caller holds mutex_.
  obs::HistogramSnapshot advance_window_locked();

  StatsServerConfig config_;
  double start_s_;
  std::mutex mutex_;  ///< serializes window advance + rendering + swaps
  obs::RollingWindow window_;
  std::unique_ptr<util::HttpListener> listener_;
};

}  // namespace deepphi::serve
