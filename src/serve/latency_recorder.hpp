// Thread-safe end-to-end latency accounting for the serving engine.
//
// Every completed request records one sample (submit → result-ready, on the
// profiler's monotonic clock); summary() sorts a copy and reports the tail
// quantiles the serving SLO argument is made in (p50/p95/p99). Kept separate
// from obs::metrics because quantiles need the raw samples, not a gauge.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace deepphi::serve {

struct LatencySummary {
  std::int64_t count = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
};

class LatencyRecorder {
 public:
  /// Caps memory for long-running servers: once `max_samples` is reached,
  /// new samples overwrite uniformly-spaced old slots (keeps the summary
  /// representative without unbounded growth). 0 means unbounded.
  explicit LatencyRecorder(std::size_t max_samples = 1 << 20);

  void record(double seconds);

  /// Samples recorded so far (monotonic, unaffected by the cap).
  std::int64_t count() const;

  LatencySummary summary() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::size_t max_samples_;
  std::int64_t total_ = 0;
  double sum_s_ = 0;
  double max_s_ = 0;
};

}  // namespace deepphi::serve
