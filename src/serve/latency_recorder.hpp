// Thread-safe end-to-end latency accounting for the serving engine, backed
// by obs::Histogram.
//
// Historically this buffered up to 2^20 raw samples and sorted a copy under
// a mutex in summary() — which meant every worker's record() stalled behind
// any summary poll, the exact failure mode a live stats endpoint would
// institutionalize. record() is now a lock-free histogram update (no mutex
// anywhere in the per-request hot path) and summary() is an O(buckets) scan;
// quantiles are bucket-resolved within ~1% relative error (see
// obs/histogram.hpp) while count/mean/max stay exact. The API is unchanged
// so existing callers and tests keep compiling.
#pragma once

#include <cstdint>

#include "obs/histogram.hpp"

namespace deepphi::serve {

struct LatencySummary {
  std::int64_t count = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
};

class LatencyRecorder {
 public:
  /// `max_samples` is a vestige of the raw-sample implementation, kept so
  /// existing call sites compile; the histogram is fixed-size regardless.
  explicit LatencyRecorder(std::size_t max_samples = 0);

  /// Lock-free (a handful of relaxed atomic ops); safe from any thread.
  void record(double seconds) { histogram_.record(seconds); }

  /// Samples recorded so far.
  std::int64_t count() const { return histogram_.count(); }

  /// p50/p95/p99 are histogram quantiles (≤ ~1% relative error);
  /// count/mean/max are exact.
  LatencySummary summary() const;

  /// The underlying histogram (rolling windows, exposition, tests).
  const obs::Histogram& histogram() const { return histogram_; }

 private:
  obs::Histogram histogram_;
};

/// Summary of an arbitrary snapshot — shared by LatencyRecorder, the serving
/// CLI's per-stage shutdown report, and the stats endpoint.
LatencySummary summarize(const obs::HistogramSnapshot& snapshot);

}  // namespace deepphi::serve
