#include "serve/stats_server.hpp"

#include <sstream>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/json_writer.hpp"

namespace deepphi::serve {

StatsServer::StatsServer(const StatsServerConfig& config)
    : config_(config),
      start_s_(obs::Profiler::now_s()),
      window_(obs::histogram("serve.latency"), config.window_interval_s,
              static_cast<std::size_t>(config.window_intervals)) {
  window_.advance(start_s_);
  listener_ = std::make_unique<util::HttpListener>(
      config.port,
      [this](const std::string& path) { return handle(path); });
}

StatsServer::~StatsServer() { stop(); }

obs::HistogramSnapshot StatsServer::advance_window_locked() {
  window_.advance(obs::Profiler::now_s());
  const obs::HistogramSnapshot w = window_.window();
  // Publish the windowed view as plain gauges so /metrics scrapers see the
  // live tail, not just since-boot cumulative quantiles.
  static obs::Gauge& p50 = obs::gauge("serve.window.p50_s");
  static obs::Gauge& p95 = obs::gauge("serve.window.p95_s");
  static obs::Gauge& p99 = obs::gauge("serve.window.p99_s");
  static obs::Gauge& rate = obs::gauge("serve.window.rate_rps");
  p50.set(w.quantile(0.50));
  p95.set(w.quantile(0.95));
  p99.set(w.quantile(0.99));
  rate.set(window_.rate_per_s());
  return w;
}

std::string StatsServer::render_metrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  advance_window_locked();
  return obs::prometheus_text();
}

std::string StatsServer::render_stats_json() {
  std::lock_guard<std::mutex> lock(mutex_);
  const obs::HistogramSnapshot w = advance_window_locked();

  std::ostringstream os;
  util::JsonWriter writer(os);
  writer.begin_object();
  writer.member("schema", obs::kStatsSchema);
  writer.member("uptime_s", obs::Profiler::now_s() - start_s_);
  writer.key("server");
  writer.begin_object();
  writer.member("port", listener_ ? listener_->port() : config_.port);
  writer.member("requests_served",
                listener_ ? listener_->requests_served() : std::int64_t{0});
  writer.end_object();
  writer.key("window");
  writer.begin_object();
  writer.member("interval_s", window_.interval_seconds());
  writer.member("intervals",
                static_cast<std::int64_t>(window_.intervals()));
  writer.member("covered_s", window_.covered_seconds());
  writer.member("count", w.count);
  writer.member("rate_rps", window_.rate_per_s());
  writer.member("p50_s", w.quantile(0.50));
  writer.member("p95_s", w.quantile(0.95));
  writer.member("p99_s", w.quantile(0.99));
  writer.end_object();
  obs::write_registry_stats(writer);
  writer.end_object();
  os << "\n";
  return os.str();
}

util::HttpListener::Response StatsServer::handle(const std::string& path) {
  util::HttpListener::Response resp;
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = render_metrics();
  } else if (path == "/stats.json") {
    resp.content_type = "application/json";
    resp.body = render_stats_json();
  } else if (path == "/" || path == "/healthz") {
    resp.body = "deepphi stats endpoint: /metrics /stats.json\n";
  } else {
    resp.status = 404;
    resp.body = "not found; try /metrics or /stats.json\n";
  }
  return resp;
}

}  // namespace deepphi::serve
