#include "serve/stats_server.hpp"

#include <sstream>

#include "core/model_io.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "serve/inference_server.hpp"
#include "util/error.hpp"
#include "util/json_writer.hpp"

namespace deepphi::serve {

StatsServer::StatsServer(const StatsServerConfig& config)
    : config_(config),
      start_s_(obs::Profiler::now_s()),
      window_(obs::histogram("serve.latency"), config.window_interval_s,
              static_cast<std::size_t>(config.window_intervals)) {
  window_.advance(start_s_);
  listener_ = std::make_unique<util::HttpListener>(
      config.port,
      [this](const std::string& target) { return handle(target); });
}

StatsServer::~StatsServer() { stop(); }

obs::HistogramSnapshot StatsServer::advance_window_locked() {
  window_.advance(obs::Profiler::now_s());
  const obs::HistogramSnapshot w = window_.window();
  // Publish the windowed view as plain gauges so /metrics scrapers see the
  // live tail, not just since-boot cumulative quantiles.
  static obs::Gauge& p50 = obs::gauge("serve.window.p50_s");
  static obs::Gauge& p95 = obs::gauge("serve.window.p95_s");
  static obs::Gauge& p99 = obs::gauge("serve.window.p99_s");
  static obs::Gauge& rate = obs::gauge("serve.window.rate_rps");
  p50.set(w.quantile(0.50));
  p95.set(w.quantile(0.95));
  p99.set(w.quantile(0.99));
  rate.set(window_.rate_per_s());
  return w;
}

std::string StatsServer::render_metrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  advance_window_locked();
  return obs::prometheus_text();
}

std::string StatsServer::render_stats_json() {
  std::lock_guard<std::mutex> lock(mutex_);
  const obs::HistogramSnapshot w = advance_window_locked();

  std::ostringstream os;
  util::JsonWriter writer(os);
  writer.begin_object();
  writer.member("schema", obs::kStatsSchema);
  writer.member("uptime_s", obs::Profiler::now_s() - start_s_);
  writer.key("server");
  writer.begin_object();
  writer.member("port", listener_ ? listener_->port() : config_.port);
  writer.member("requests_served",
                listener_ ? listener_->requests_served() : std::int64_t{0});
  writer.end_object();
  writer.key("window");
  writer.begin_object();
  writer.member("interval_s", window_.interval_seconds());
  writer.member("intervals",
                static_cast<std::int64_t>(window_.intervals()));
  writer.member("covered_s", window_.covered_seconds());
  writer.member("count", w.count);
  writer.member("rate_rps", window_.rate_per_s());
  writer.member("p50_s", w.quantile(0.50));
  writer.member("p95_s", w.quantile(0.95));
  writer.member("p99_s", w.quantile(0.99));
  writer.end_object();
  obs::write_registry_stats(writer);
  writer.end_object();
  os << "\n";
  return os.str();
}

std::string StatsServer::render_models_json() {
  DEEPPHI_CHECK_MSG(config_.server != nullptr,
                    "/admin/models needs an attached InferenceServer");
  std::ostringstream os;
  util::JsonWriter writer(os);
  writer.begin_object();
  writer.key("models");
  writer.begin_array();
  for (const ModelInfo& info : config_.server->registry().list()) {
    const ServerStats s = config_.server->stats(info.name);
    writer.begin_object();
    writer.member("name", info.name);
    writer.member("version", static_cast<std::int64_t>(info.version));
    writer.member("magic", info.magic);
    writer.member("precision", info.precision);
    writer.member("file_bytes", static_cast<std::int64_t>(info.file_bytes));
    writer.member("input_dim", static_cast<std::int64_t>(info.input_dim));
    writer.member("output_dim", static_cast<std::int64_t>(info.output_dim));
    writer.member("description", info.description);
    writer.member("budget_ms", info.budget_s * 1e3);
    writer.member("submitted", s.submitted);
    writer.member("rejected", s.rejected);
    writer.member("shed", s.shed);
    writer.member("completed", s.completed);
    writer.member("failed", s.failed);
    writer.member("batches", s.batches);
    writer.member("queue_depth", static_cast<std::int64_t>(
                                     config_.server->queue_depth(info.name)));
    writer.member("latency_p99_s", s.latency.p99_s);
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  os << "\n";
  return os.str();
}

util::HttpListener::Response StatsServer::handle_swap(
    const std::map<std::string, std::string>& params) {
  util::HttpListener::Response resp;
  resp.content_type = "application/json";
  const auto fail = [&resp](int status, const std::string& why) {
    std::ostringstream os;
    util::JsonWriter writer(os);
    writer.begin_object();
    writer.member("error", why);
    writer.end_object();
    os << "\n";
    resp.status = status;
    resp.body = os.str();
    return resp;
  };
  if (config_.server == nullptr)
    return fail(404, "hot swap needs an attached inference server");
  const auto model_it = params.find("model");
  const auto path_it = params.find("path");
  if (model_it == params.end() || model_it->second.empty() ||
      path_it == params.end() || path_it->second.empty())
    return fail(400, "usage: /admin/swap?model=NAME&path=/abs/checkpoint");
  const std::string& name = model_it->second;
  const std::string& path = path_it->second;
  try {
    ModelRegistry& registry = config_.server->registry();
    const std::uint64_t old_version = registry.info(name).version;
    // Load OUTSIDE any serving lock: a slow disk delays this swap, never a
    // batch. publish() is the only registry touch, one mutex hop.
    model_io::LoadedModel loaded = model_io::load_any(path);
    const std::uint64_t new_version = registry.publish(name, std::move(loaded));
    const ModelInfo info = registry.info(name);
    std::ostringstream os;
    util::JsonWriter writer(os);
    writer.begin_object();
    writer.member("model", name);
    writer.member("path", path);
    writer.member("old_version", static_cast<std::int64_t>(old_version));
    writer.member("new_version", static_cast<std::int64_t>(new_version));
    writer.member("magic", info.magic);
    writer.member("precision", info.precision);
    writer.member("file_bytes", static_cast<std::int64_t>(info.file_bytes));
    writer.end_object();
    os << "\n";
    resp.body = os.str();
    return resp;
  } catch (const std::exception& e) {
    return fail(400, e.what());
  }
}

util::HttpListener::Response StatsServer::handle(const std::string& target) {
  const auto [path, query] = util::split_target(target);
  util::HttpListener::Response resp;
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = render_metrics();
  } else if (path == "/stats.json") {
    resp.content_type = "application/json";
    resp.body = render_stats_json();
  } else if (path == "/admin/models" && config_.server != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    resp.content_type = "application/json";
    resp.body = render_models_json();
  } else if (path == "/admin/swap") {
    std::lock_guard<std::mutex> lock(mutex_);
    resp = handle_swap(util::parse_query(query));
  } else if (path == "/" || path == "/healthz") {
    resp.body =
        "deepphi stats endpoint: /metrics /stats.json /admin/models "
        "/admin/swap\n";
  } else {
    resp.status = 404;
    resp.body = "not found; try /metrics or /stats.json\n";
  }
  return resp;
}

}  // namespace deepphi::serve
