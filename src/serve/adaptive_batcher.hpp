// SLO-aware adaptive batching policy — picks the size-or-deadline flush
// parameters per model from live tail-latency evidence instead of a static
// config.
//
// The static batcher spends a FIXED max_delay coalescing, whatever the
// model's latency budget or current compute cost. That wastes the budget
// both ways: a fast model under a tight SLO burns headroom waiting for peers
// that a shorter deadline would have served comfortably, and a slow model
// under a loose SLO flushes thin GEMM-starved batches a longer wait would
// have filled (the paper's Fig. 9 lesson: many-core throughput only
// materializes in batches).
//
// decide() is a PURE function of its inputs — two rolling-window histogram
// snapshots (end-to-end latency and per-batch compute time) and the arrival
// rate — so tests pin exact decisions from synthetic windows. The policy:
//
//   slack  = budget − compute_p95(window)     // what waiting may spend
//   delay  = clamp(slack / 2, 0, delay_cap)   // spend half, keep margin
//   if e2e_p99(window) > budget:              // SLO already missed: brake
//       delay *= clamp(budget / p99, 1/4, 1)
//   batch  = clamp(ceil(rate · delay · 2) + 1, min_batch, max_batch)
//
// Halving the slack leaves room for queue wait, gather/scatter, and compute
// variance; the rate-matched batch cap makes light traffic flush by size
// instead of always sleeping out the deadline; the proportional brake
// reacts within one window turn when the tail blows through the budget.
// With no budget (or adaptivity off) decide() returns the static config
// unchanged, so the classic size-or-deadline server is the degenerate case.
#pragma once

#include "la/matrix.hpp"
#include "obs/histogram.hpp"

namespace deepphi::serve {

/// Per-model batching policy knobs (defaults reproduce the static PR-3
/// batcher exactly).
struct BatchPolicy {
  la::Index min_batch = 1;     ///< floor for the adaptive batch cap
  la::Index max_batch = 64;    ///< ceiling (and the static batch cap)
  double max_delay_s = 2e-3;   ///< static flush deadline
  double delay_cap_s = 0.02;   ///< adaptive deadline never exceeds this
  double budget_s = 0;         ///< end-to-end latency SLO; 0 disables
  bool adaptive = true;        ///< false pins the static policy
};

/// What the batcher thread feeds RequestQueue::collect() for the next batch.
struct BatchDecision {
  la::Index max_batch = 64;
  double max_delay_s = 2e-3;
};

class AdaptiveBatcher {
 public:
  explicit AdaptiveBatcher(BatchPolicy policy);

  /// Deterministic: the decision for the next collect() given the current
  /// rolling windows. `e2e` is the end-to-end latency window, `compute` the
  /// per-batch encode-time window, `arrival_rate_rps` the window's request
  /// rate (requests/s). Empty windows (cold start) behave as p95 = 0 /
  /// rate = 0: spend half the budget waiting with the batch cap wide open.
  BatchDecision decide(const obs::HistogramSnapshot& e2e,
                       const obs::HistogramSnapshot& compute,
                       double arrival_rate_rps) const;

  const BatchPolicy& policy() const { return policy_; }

  /// True when decide() actually adapts (policy.adaptive && budget_s > 0).
  bool adaptive() const;

 private:
  BatchPolicy policy_;
};

}  // namespace deepphi::serve
