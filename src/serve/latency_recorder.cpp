#include "serve/latency_recorder.hpp"

#include <algorithm>

namespace deepphi::serve {

namespace {

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

LatencyRecorder::LatencyRecorder(std::size_t max_samples)
    : max_samples_(max_samples) {}

void LatencyRecorder::record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  sum_s_ += seconds;
  max_s_ = std::max(max_s_, seconds);
  if (max_samples_ == 0 || samples_.size() < max_samples_) {
    samples_.push_back(seconds);
  } else {
    // Deterministic stride-overwrite: cheap, and keeps a spread of old and
    // new samples rather than only the most recent window.
    samples_[static_cast<std::size_t>(total_) % max_samples_] = seconds;
  }
}

std::int64_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

LatencySummary LatencyRecorder::summary() const {
  std::vector<double> sorted;
  LatencySummary s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = samples_;
    s.count = total_;
    s.mean_s = total_ > 0 ? sum_s_ / static_cast<double>(total_) : 0;
    s.max_s = max_s_;
  }
  std::sort(sorted.begin(), sorted.end());
  s.p50_s = quantile(sorted, 0.50);
  s.p95_s = quantile(sorted, 0.95);
  s.p99_s = quantile(sorted, 0.99);
  return s;
}

}  // namespace deepphi::serve
