#include "serve/latency_recorder.hpp"

namespace deepphi::serve {

LatencyRecorder::LatencyRecorder(std::size_t max_samples) {
  (void)max_samples;  // compatibility no-op, see header
}

LatencySummary summarize(const obs::HistogramSnapshot& snapshot) {
  LatencySummary s;
  s.count = snapshot.count;
  s.mean_s = snapshot.mean();
  s.p50_s = snapshot.quantile(0.50);
  s.p95_s = snapshot.quantile(0.95);
  s.p99_s = snapshot.quantile(0.99);
  s.max_s = snapshot.max;
  return s;
}

LatencySummary LatencyRecorder::summary() const {
  return summarize(histogram_.snapshot());
}

}  // namespace deepphi::serve
