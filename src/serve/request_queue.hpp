// Bounded MPMC queue of pending inference requests — the admission point of
// the serving engine, and the place its two load-shaping policies live:
//
//  * Backpressure: try_push() refuses when the queue is at capacity (or the
//    server is shutting down), so overload turns into fast rejections the
//    client can retry against, instead of unbounded memory growth.
//  * Dynamic micro-batching: collect() blocks for work, then keeps waiting
//    until either `max_batch` requests are queued or the OLDEST waiting
//    request has aged `max_delay` — the classic size-or-deadline flush that
//    bounds tail latency while still coalescing bursts into GEMM-friendly
//    batches (the paper's Fig. 9 lesson applied to inference).
//
// Producers are client threads calling try_push; consumers are batcher
// threads calling collect. Both sides are safe to run concurrently from any
// number of threads (one mutex, two condition variables).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace deepphi::serve {

/// What a completed request resolves to: the encoded row plus the registry
/// version of the model that actually served it — under a hot swap,
/// in-flight batches finish on the version they were collected under, and
/// the version field is how callers (and the hot-swap tests) know which
/// model's direct encode() a response must be bitwise equal to. Servers
/// built directly on an Encoder (no registry) report version 1.
struct Reply {
  std::vector<float> row;
  std::uint64_t version = 1;
};

/// One in-flight inference request: the input row, the promise its caller
/// holds the future of, and its admission timestamps (profiler clock for
/// stats, steady_clock for the deadline wait).
struct Request {
  std::vector<float> input;
  std::promise<Reply> result;
  double enqueue_s = 0;
  std::chrono::steady_clock::time_point enqueue_tp{};
};

class RequestQueue {
 public:
  /// `depth_gauge` names the registry gauge tracking this queue's depth —
  /// per-model queues pass "serve.model.<name>.queue_depth".
  explicit RequestQueue(std::size_t capacity,
                        std::string depth_gauge = "serve.queue_depth");

  /// Admits `r` unless the queue is full or closed; returns whether it was
  /// admitted (the caller fails the promise on rejection — the queue never
  /// touches it).
  bool try_push(Request&& r);

  /// Blocks until at least one request is queued (or the queue is closed),
  /// then waits until `max_batch` requests are available OR the oldest
  /// request has waited `max_delay_s`, and pops up to `max_batch` requests
  /// in FIFO order. After close() the deadline wait is skipped: remaining
  /// requests drain immediately. An empty result means closed-and-drained —
  /// the consumer's signal to exit.
  std::vector<Request> collect(std::size_t max_batch, double max_delay_s);

  /// Stops admission (try_push fails from now on) and wakes all collectors
  /// so queued requests drain. Idempotent.
  void close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

  /// Peak queue depth observed at push time (for the run summary).
  std::size_t peak_size() const;

 private:
  const std::size_t capacity_;
  obs::Gauge& depth_gauge_;
  mutable std::mutex mutex_;
  std::condition_variable nonempty_;
  std::deque<Request> items_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace deepphi::serve
