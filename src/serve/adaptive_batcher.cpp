#include "serve/adaptive_batcher.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace deepphi::serve {

AdaptiveBatcher::AdaptiveBatcher(BatchPolicy policy) : policy_(policy) {
  DEEPPHI_CHECK_MSG(policy_.min_batch >= 1,
                    "min_batch must be >= 1, got " << policy_.min_batch);
  DEEPPHI_CHECK_MSG(
      policy_.max_batch >= policy_.min_batch,
      "max_batch " << policy_.max_batch << " < min_batch " << policy_.min_batch);
  DEEPPHI_CHECK_MSG(policy_.max_delay_s >= 0,
                    "max_delay_s must be >= 0, got " << policy_.max_delay_s);
  DEEPPHI_CHECK_MSG(policy_.delay_cap_s >= 0,
                    "delay_cap_s must be >= 0, got " << policy_.delay_cap_s);
  DEEPPHI_CHECK_MSG(policy_.budget_s >= 0,
                    "budget_s must be >= 0, got " << policy_.budget_s);
}

bool AdaptiveBatcher::adaptive() const {
  return policy_.adaptive && policy_.budget_s > 0;
}

BatchDecision AdaptiveBatcher::decide(const obs::HistogramSnapshot& e2e,
                                      const obs::HistogramSnapshot& compute,
                                      double arrival_rate_rps) const {
  if (!adaptive()) return {policy_.max_batch, policy_.max_delay_s};

  // Whatever the budget leaves after a typical batch's compute is what a
  // request can afford to spend waiting to be coalesced. Spending half of it
  // keeps margin for queue wait, gather/scatter, and compute variance; an
  // empty compute window (cold start) spends half the whole budget.
  const double compute_p95 = compute.count > 0 ? compute.quantile(0.95) : 0.0;
  const double slack = policy_.budget_s - compute_p95;
  double delay = slack > 0 ? 0.5 * slack : 0.0;

  // Proportional brake: the live tail already exceeds the budget, so shrink
  // the wait by how far over it is (floored at 1/4 — a near-zero deadline
  // still coalesces the backlog, and full recovery takes one window turn).
  if (e2e.count > 0) {
    const double p99 = e2e.quantile(0.99);
    if (p99 > policy_.budget_s) {
      const double scale = std::max(0.25, policy_.budget_s / p99);
      delay *= scale;
    }
  }
  delay = std::min(delay, policy_.delay_cap_s);

  // Rate-matched batch cap: roughly what arrives within the wait, with 2x
  // headroom for bursts plus the anchor request already holding the queue.
  // Light traffic then flushes by size the moment its cohort is in, instead
  // of sleeping out the full deadline; with no rate evidence the cap stays
  // wide open and the deadline alone governs.
  la::Index batch = policy_.max_batch;
  if (arrival_rate_rps > 0 && delay > 0) {
    const double expected = std::ceil(arrival_rate_rps * delay * 2.0) + 1.0;
    batch = static_cast<la::Index>(
        std::clamp(expected, static_cast<double>(policy_.min_batch),
                   static_cast<double>(policy_.max_batch)));
  }
  return {batch, delay};
}

}  // namespace deepphi::serve
