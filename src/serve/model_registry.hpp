// Versioned model registry — the control plane of the multi-model serving
// tier.
//
// One process serves many Encoders: each registered name owns a
// `shared_ptr<const core::Encoder>` that publish() swaps RCU-style under a
// version bump. Readers (the per-model batcher threads) take a cheap
// ModelVersion snapshot per coalesced batch, so an in-flight batch always
// finishes on the exact version it was collected under while new batches
// pick up the published model immediately — zero-downtime hot swap with no
// reader-side locking beyond one shared_ptr copy. The old version is freed
// when the last in-flight batch drops its snapshot.
//
// The registry also carries the serving metadata the data plane and the
// stats endpoint want without re-opening checkpoints: format magic, numeric
// precision, checkpoint size, dims, and the per-model latency budget the
// adaptive batcher spends (see serve/adaptive_batcher.hpp).
//
// Thread-safety: every method is safe from any thread (one mutex; the
// per-batch read path is a map lookup + shared_ptr copy, never a model
// load). Checkpoint loading happens OUTSIDE the registry — callers pass a
// model_io::LoadedModel — so a slow disk never blocks serving.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/model_io.hpp"

namespace deepphi::serve {

/// One immutable (model, version) pair — what a batch computes on. Copies
/// share ownership of the Encoder, so a snapshot outlives any concurrent
/// publish().
struct ModelVersion {
  std::shared_ptr<const core::Encoder> model;
  std::uint64_t version = 0;
};

/// Registry metadata for one model name (current version).
struct ModelInfo {
  std::string name;
  std::uint64_t version = 0;
  std::string magic;      ///< checkpoint magic, or "mem" for in-memory models
  std::string precision;  ///< "fp32" or "int8"
  std::uint64_t file_bytes = 0;
  la::Index input_dim = 0;
  la::Index output_dim = 0;
  std::string description;
  /// End-to-end latency budget (SLO) the adaptive batcher spends; 0 = none.
  double budget_s = 0;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers a freshly loaded checkpoint under `name` at version 1.
  /// Names must be non-empty and use only [A-Za-z0-9_-] so the per-model
  /// metric names they mint stay parseable. Throws util::Error on a
  /// duplicate or invalid name. Returns the version (1).
  std::uint64_t add(const std::string& name, model_io::LoadedModel loaded,
                    double budget_s = 0);

  /// Same, for a model the caller already owns elsewhere (tests, the legacy
  /// single-model server path). `model` must be thread-safe for encode().
  std::uint64_t add_shared(const std::string& name,
                           std::shared_ptr<const core::Encoder> model,
                           double budget_s = 0, std::string magic = "mem",
                           std::string precision = "",
                           std::uint64_t file_bytes = 0);

  /// Swaps `name` to the new model and bumps the version. The new model must
  /// keep the input dimension (queued requests were validated against it);
  /// the output dimension may change — responses carry the serving version.
  /// Throws util::Error for unknown names or an input_dim mismatch. Returns
  /// the new version.
  std::uint64_t publish(const std::string& name, model_io::LoadedModel loaded);

  /// publish() for an externally owned model (tests, in-memory swaps).
  std::uint64_t publish_shared(const std::string& name,
                               std::shared_ptr<const core::Encoder> model,
                               std::string magic = "mem",
                               std::string precision = "",
                               std::uint64_t file_bytes = 0);

  /// The current (model, version) for `name` — one mutex hop and one
  /// shared_ptr copy. Throws util::Error for unknown names.
  ModelVersion current(const std::string& name) const;

  /// Current metadata for `name`; throws for unknown names.
  ModelInfo info(const std::string& name) const;

  /// Metadata for every registered model, sorted by name.
  std::vector<ModelInfo> list() const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  bool contains(const std::string& name) const;
  std::size_t size() const;

 private:
  struct Entry {
    ModelVersion current;
    ModelInfo info;
  };

  std::uint64_t add_locked(const std::string& name,
                           std::shared_ptr<const core::Encoder> model,
                           double budget_s, std::string magic,
                           std::string precision, std::uint64_t file_bytes);
  std::uint64_t publish_locked(const std::string& name,
                               std::shared_ptr<const core::Encoder> model,
                               std::string magic, std::string precision,
                               std::uint64_t file_bytes);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// "int8" when `model` is a QuantizedEncoder, else "fp32".
const char* encoder_precision(const core::Encoder& model);

}  // namespace deepphi::serve
