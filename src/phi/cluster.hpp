// A rack of simulated Xeon Phi cards in one host (docs/cluster.md): N
// phi::Device timelines joined by an InterconnectSpec. Like the single
// Device, the Cluster never computes anything — the trainer runs the real
// kernels on the host, then charges each card's measured KernelStats and the
// collective's communication schedule here to learn what the step *would
// have cost* on the modeled machines.
//
// Timeline model of one global step:
//   per card:  h2d shard transfer (DMA) -> card compute (its replicas'
//              gradient work + its share of the combine), starting no
//              earlier than the previous step's barrier;
//   barrier:   the slowest card's compute completion;
//   collective: the inter-card all-reduce occupies [barrier, barrier+comm)
//              on the interconnect and becomes the next step's barrier.
// Collective occupancy is recorded in a cluster-level trace (DMA resource)
// so benches can read the communication share straight off the timeline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "phi/device.hpp"
#include "phi/interconnect.hpp"

namespace deepphi::phi {

struct ClusterConfig {
  int cards = 1;
  InterconnectSpec interconnect;  // default-constructed = pcie-p2p numbers
  /// Hardware threads per card; 0 selects each card's maximum.
  int threads_per_card = 0;
};

/// Accumulated interconnect activity across all steps.
struct ClusterCommStats {
  double seconds = 0;
  double wire_bytes = 0;
  long long rounds = 0;
  long long collectives = 0;
};

class Cluster {
 public:
  Cluster(MachineSpec card_spec, ClusterConfig config);

  int cards() const { return static_cast<int>(devices_.size()); }
  Device& device(int card) { return *devices_.at(static_cast<std::size_t>(card)); }
  const Device& device(int card) const {
    return *devices_.at(static_cast<std::size_t>(card));
  }
  const InterconnectSpec& interconnect() const { return config_.interconnect; }
  int threads_per_card() const { return devices_.front()->threads(); }

  /// Advances every card through one global step (a step may batch a whole
  /// chunk's worth of updates): card c DMAs `per_card_h2d_bytes[c]` (not
  /// before `transfer_ready_s`), computes `per_card_stats[c]` (not before
  /// the previous step's barrier), and the accumulated collective activity
  /// of `comm_seconds` / `comm_wire_bytes` / `comm_rounds` /
  /// `comm_collectives` runs after the slowest card. Returns the new
  /// barrier (simulated completion).
  double submit_step(const std::string& name,
                     const std::vector<KernelStats>& per_card_stats,
                     const std::vector<double>& per_card_h2d_bytes,
                     double comm_seconds, double comm_wire_bytes,
                     long long comm_rounds, long long comm_collectives,
                     double transfer_ready_s = 0.0);

  /// Simulated completion time of the last collective (0 before any step).
  double barrier_s() const { return barrier_s_; }

  /// Simulated cluster wall time: the latest of any card's resources and
  /// the last collective.
  double elapsed_s() const;

  const ClusterCommStats& comm() const { return comm_; }

  /// Fraction of elapsed_s() the interconnect was the critical path.
  double comm_share() const;

  /// Collective occupancy on the interconnect, one event per step.
  const Trace& comm_trace() const { return comm_trace_; }

  /// Resets every card's timeline plus the barrier/comm accounting.
  void reset_timeline();

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Device>> devices_;
  double barrier_s_ = 0;
  ClusterCommStats comm_;
  Trace comm_trace_;
};

}  // namespace deepphi::phi
