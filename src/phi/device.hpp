// Simulated Xeon Phi coprocessor (the substitution for discontinued
// silicon). A Device owns
//  * a global-memory accounting arena with the card's 8 GB capacity — the
//    paper keeps all parameters and temporaries resident in device memory,
//    and this arena enforces that the simulated working set actually fits;
//  * a two-resource simulated timeline (compute + DMA) driven by the cost
//    model: submitting a KernelStats bundle or a transfer advances the
//    corresponding resource and records a trace event.
//
// The Device never computes anything: functional execution happens in the
// library's real kernels on the host; the Device decides what time those
// kernels *would have taken* on the modeled machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phi/cost_model.hpp"
#include "phi/machine_spec.hpp"
#include "phi/trace.hpp"

namespace deepphi::phi {

class Device {
 public:
  /// `threads` = 0 selects the machine's maximum hardware threads.
  explicit Device(MachineSpec spec, int threads = 0);

  const MachineSpec& spec() const { return model_.machine(); }
  const CostModel& cost_model() const { return model_; }

  int threads() const { return threads_; }
  void set_threads(int threads);

  // --- global memory arena (accounting) ---

  using BufferId = std::size_t;

  /// Reserves `bytes` of device global memory; throws util::Error when the
  /// card's capacity would be exceeded (the paper's 8 GB is a real constraint
  /// at the large network sizes of Fig. 7).
  BufferId alloc(const std::string& name, double bytes);

  /// Releases a buffer. Double-free throws.
  void free(BufferId id);

  double used_bytes() const { return used_bytes_; }
  double capacity_bytes() const { return spec().device_mem_gb * 1e9; }
  double free_bytes() const { return capacity_bytes() - used_bytes_; }

  // --- simulated timeline ---

  /// Schedules `stats` on the compute resource, not before `ready_at_s`.
  /// Returns the simulated completion time.
  double submit_compute(const std::string& name, const KernelStats& stats,
                        double ready_at_s = 0.0);

  /// Schedules a host↔device transfer of `bytes` on the DMA resource, not
  /// before `ready_at_s`. `use_chunk_path` selects the calibrated
  /// chunk-loading bandwidth (training data) vs raw PCIe (parameter copies).
  /// Returns the simulated completion time.
  double submit_transfer(const std::string& name, double bytes,
                         double ready_at_s = 0.0, bool use_chunk_path = true);

  double compute_busy_until() const { return compute_until_s_; }
  double dma_busy_until() const { return dma_until_s_; }

  /// Simulated wall time so far: the later of the two resources.
  double elapsed_s() const;

  /// Resets the timeline and trace (memory accounting is preserved).
  void reset_timeline();

  const Trace& trace() const { return trace_; }

 private:
  struct Buffer {
    std::string name;
    double bytes = 0;
    bool live = false;
  };

  CostModel model_;
  int threads_ = 1;
  std::vector<Buffer> buffers_;
  double used_bytes_ = 0;
  double compute_until_s_ = 0;
  double dma_until_s_ = 0;
  Trace trace_;
};

}  // namespace deepphi::phi
