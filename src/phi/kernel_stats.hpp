// KernelStats is the contract between the compute library and the Xeon Phi
// cost model: every kernel records *what work it did* (categorized flops,
// bytes, launches, barriers, transfers); the cost model later converts a
// stats bundle into simulated seconds for a given machine/thread
// configuration.
//
// Recording is scope-based: a StatsScope installs a thread-local collector;
// kernels call record(...) once per invocation with stat contributions
// computed purely from their shapes. That purity is what makes the analytic
// "model" mode (core/cost_accounting) reproduce measured stats exactly —
// a property pinned by tests.
#pragma once

#include <cstdint>
#include <string>

namespace deepphi::phi {

/// Number of GEMM size buckets (by the smallest of m, n, k). Small GEMMs
/// cannot saturate a many-core chip — the effect behind the paper's Fig. 9
/// batch-size sweep — so flops are bucketed and machines apply a per-bucket
/// occupancy factor.
inline constexpr int kGemmBuckets = 4;

/// Bucket of a GEMM whose smallest dimension is `min_dim`:
/// 0: <64, 1: <256, 2: <1024, 3: >=1024.
int gemm_bucket(std::int64_t min_dim);

/// Work accounting for a region of execution. All quantities are additive.
struct KernelStats {
  /// Flops executed inside blocked/packed/SIMD GEMM kernels ("MKL" class).
  double gemm_flops = 0;
  /// The same flops, bucketed by the GEMM's smallest dimension (sums to
  /// gemm_flops).
  double gemm_flops_bucket[kGemmBuckets] = {0, 0, 0, 0};
  /// Flops in vectorizable elementwise / reduction loops (sigmoid, axpy,
  /// sampling, column sums, ...).
  double loop_flops = 0;
  /// Flops on naive scalar paths: triple-loop matrix products and unfused
  /// scalar loops of the baseline implementations.
  double naive_flops = 0;

  /// Memory traffic of the loop-class kernels (the bandwidth-bound ones).
  double bytes_read = 0;
  double bytes_written = 0;

  /// Number of parallel kernels launched (each costs one fork/join on the
  /// simulated machine).
  std::int64_t kernel_launches = 0;
  /// Extra synchronization barriers beyond the implicit end-of-kernel join.
  std::int64_t barriers = 0;
  /// Elementwise epilogues fused into a GEMM's write-back. Their flops are in
  /// loop_flops but they launch no kernel of their own and touch no C memory
  /// beyond the GEMM's — the fusion win the counter makes visible.
  std::int64_t fused_epilogues = 0;

  /// Host→device / device→host transfer traffic (PCIe model).
  double h2d_bytes = 0;
  double d2h_bytes = 0;
  std::int64_t transfers = 0;

  KernelStats& operator+=(const KernelStats& o);
  KernelStats operator+(const KernelStats& o) const;
  /// Scales all additive quantities (used to extrapolate one step → many).
  KernelStats scaled(double factor) const;

  double total_flops() const { return gemm_flops + loop_flops + naive_flops; }
  double total_bytes() const { return bytes_read + bytes_written; }

  /// True when all fields match within a relative tolerance (flops/bytes) and
  /// exactly (counters). Used by model==measure property tests.
  bool approx_equal(const KernelStats& o, double rtol = 1e-9) const;

  std::string to_string() const;
};

/// Installs `sink` as the current thread's collector for the scope lifetime;
/// restores the previous collector on destruction (scopes nest).
class StatsScope {
 public:
  explicit StatsScope(KernelStats& sink);
  ~StatsScope();
  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

 private:
  KernelStats* prev_;
};

/// Adds `contribution` to the current thread's collector; no-op when no
/// StatsScope is active (so production use of the kernels costs one branch).
void record(const KernelStats& contribution);

/// Returns the active collector or nullptr.
KernelStats* current_stats();

// --- Shape-only stat builders shared by kernels and the analytic model. ---

/// C(m×n) += op(A)·op(B) with inner dimension k: 2mnk flops in GEMM class.
KernelStats gemm_contribution(std::int64_t m, std::int64_t n, std::int64_t k);

/// Naive triple-loop product of the same shape: same flops, naive class.
KernelStats naive_gemm_contribution(std::int64_t m, std::int64_t n, std::int64_t k);

/// Elementwise/reduction loop over n elements with `flops_per_elem` flops,
/// reading r and writing w floats per element.
KernelStats loop_contribution(std::int64_t n, double flops_per_elem,
                              double floats_read_per_elem,
                              double floats_written_per_elem);

/// Same shape of work on the naive/scalar path.
KernelStats naive_loop_contribution(std::int64_t n, double flops_per_elem,
                                    double floats_read_per_elem,
                                    double floats_written_per_elem);

/// Elementwise epilogue fused into a GEMM write-back over n elements:
/// loop-class flops, no kernel launch of its own, and no C traffic (the tile
/// is cache-hot) — only `floats_read_per_elem` for streamed side operands
/// (e.g. the activation matrix of a dsigmoid epilogue). Bumps
/// fused_epilogues by one.
KernelStats epilogue_contribution(std::int64_t n, double flops_per_elem,
                                  double floats_read_per_elem);

/// One host→device transfer of `bytes`.
KernelStats h2d_contribution(double bytes);
/// One device→host transfer of `bytes`.
KernelStats d2h_contribution(double bytes);

}  // namespace deepphi::phi
