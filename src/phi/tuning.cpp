#include "phi/tuning.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace deepphi::phi {

ThreadTuneResult tune_threads(const CostModel& model, const KernelStats& stats,
                              std::vector<int> candidates) {
  const int max_threads = model.machine().max_threads();
  if (candidates.empty()) {
    for (int t = 1; t <= max_threads; t *= 2) candidates.push_back(t);
    // Full core multiples (1, 2, 3, 4 threads per core).
    for (int per_core = 1; per_core <= model.machine().threads_per_core;
         ++per_core) {
      const int t = model.machine().cores * per_core;
      if (t <= max_threads) candidates.push_back(t);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }
  DEEPPHI_CHECK_MSG(!candidates.empty(), "no thread candidates");

  ThreadTuneResult result;
  result.best_time_s = 1e300;
  for (int t : candidates) {
    if (t < 1 || t > max_threads) continue;
    const double time = model.evaluate(stats, t).compute_s();
    result.curve.emplace_back(t, time);
    if (time < result.best_time_s) {
      result.best_time_s = time;
      result.best_threads = t;
    }
  }
  DEEPPHI_CHECK_MSG(!result.curve.empty(), "no valid thread candidates");
  return result;
}

HybridSplitResult tune_hybrid_split(
    const CostModel& phi_model, int phi_threads, const CostModel& host_model,
    int host_threads, const std::function<KernelStats(long long)>& batch_stats,
    long long batch_rows, double param_bytes, double step) {
  DEEPPHI_CHECK_MSG(step > 0 && step <= 0.5, "fraction step out of (0, 0.5]");
  DEEPPHI_CHECK_MSG(batch_rows >= 1, "batch_rows must be >= 1");

  // Per-batch parameter/gradient exchange: the host needs the Phi partial
  // gradient and the Phi needs the combined update (or vice versa).
  const double pcie = phi_model.machine().pcie_gb_s;
  const double exchange_s =
      pcie > 0 ? 2.0 * param_bytes / (pcie * 1e9) +
                     2.0 * phi_model.machine().pcie_latency_us * 1e-6
               : 0.0;

  HybridSplitResult result;
  result.best_time_s = 1e300;
  for (double f = 0.0; f <= 1.0 + 1e-9; f += step) {
    const long long phi_rows =
        static_cast<long long>(std::llround(f * static_cast<double>(batch_rows)));
    const long long host_rows = batch_rows - phi_rows;
    const double phi_s =
        phi_rows > 0
            ? phi_model.evaluate(batch_stats(phi_rows), phi_threads).compute_s()
            : 0.0;
    const double host_s =
        host_rows > 0 ? host_model.evaluate(batch_stats(host_rows), host_threads)
                            .compute_s()
                      : 0.0;
    // Exchange only happens when both sides hold part of the batch.
    const double overhead = (phi_rows > 0 && host_rows > 0) ? exchange_s : 0.0;
    // The two devices work concurrently; the slower one governs. Pure-host
    // splits still ship the batch nowhere, so no transfer either way.
    const double total = std::max(phi_s, host_s) + overhead;

    result.curve.emplace_back(f, total);
    if (total < result.best_time_s) {
      result.best_time_s = total;
      result.best_fraction = f;
    }
    if (phi_rows == batch_rows) result.phi_only_s = total;
    if (phi_rows == 0) result.host_only_s = total;
  }
  return result;
}

}  // namespace deepphi::phi
