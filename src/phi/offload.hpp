// Offload engine: the paper's Fig. 5 chunked data-feeding design on the
// simulated device timeline.
//
// The training set lives on the host; the device holds a ring of chunk
// buffers in global memory. With async loading (the paper's loading thread),
// the transfer of chunk i+1 proceeds on the DMA resource while chunk i is
// being trained on; without it, every transfer serializes with compute —
// the configuration the paper measures as "about 17% of the total time".
//
// process_chunks() runs the discrete-event simulation at chunk granularity
// and returns both the aggregate simulated time and per-chunk timings (used
// by tests to assert the overlap really happens).
#pragma once

#include <string>
#include <vector>

#include "phi/device.hpp"

namespace deepphi::phi {

struct OffloadConfig {
  /// Fig. 5 loading thread: transfers overlap training of prior chunks.
  bool async_loading = true;
  /// Device-side loading-buffer depth in chunks ("we set its size as several
  /// times as that of a data chunk").
  int ring_chunks = 4;
};

struct ChunkTiming {
  double transfer_start_s = 0;
  double transfer_end_s = 0;
  double compute_start_s = 0;
  double compute_end_s = 0;
};

struct OffloadReport {
  std::vector<ChunkTiming> chunks;
  double total_s = 0;          // simulated end-to-end time
  double compute_busy_s = 0;   // total compute-resource busy time
  double transfer_busy_s = 0;  // total DMA-resource busy time
  /// Fraction of end-to-end time that is transfer not hidden by compute.
  double exposed_transfer_fraction() const;
};

class Offload {
 public:
  Offload(Device& device, OffloadConfig config);

  const OffloadConfig& config() const { return config_; }

  /// Reserves the ring buffer in device memory (ring_chunks × chunk_bytes);
  /// throws on device OOM. Optional — process_chunks() also works without
  /// an explicit reservation (benches that only need the timeline).
  void reserve_ring(double chunk_bytes);
  /// Releases the ring reservation.
  void release_ring();

  /// Simulates feeding and training `n_chunks` chunks, each `chunk_bytes` of
  /// training data costing `per_chunk_stats` of compute. The device timeline
  /// is advanced; the report carries per-chunk timings.
  OffloadReport process_chunks(int n_chunks, double chunk_bytes,
                               const KernelStats& per_chunk_stats);

 private:
  Device& device_;
  OffloadConfig config_;
  std::vector<Device::BufferId> ring_buffers_;
};

}  // namespace deepphi::phi
