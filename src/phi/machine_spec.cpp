#include "phi/machine_spec.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace deepphi::phi {

double MachineSpec::effective_cores(int threads) const {
  DEEPPHI_CHECK_MSG(threads >= 1, "threads must be >= 1, got " << threads);
  const int t = std::min(threads, max_threads());
  const int fill = std::max(1, threads_to_fill_core);
  return std::min(static_cast<double>(cores),
                  static_cast<double>(t) / static_cast<double>(fill));
}

double MachineSpec::vector_peak_gflops(int threads) const {
  return effective_cores(threads) * freq_ghz * simd_lanes_f32 *
         flops_per_lane_cycle;
}

double MachineSpec::parallel_efficiency(int threads) const {
  const double e = effective_cores(threads);
  return 1.0 / (1.0 + parallel_alpha * std::max(0.0, e - 1.0));
}

std::string MachineSpec::to_string() const {
  std::ostringstream os;
  os << name << ": " << cores << " cores x " << threads_per_core << " threads @ "
     << freq_ghz << " GHz, " << simd_lanes_f32 << "-lane f32 SIMD, "
     << vector_peak_gflops() << " GF/s peak, " << mem_bw_gb_s << " GB/s DRAM";
  if (pcie_gb_s > 0) os << ", " << pcie_gb_s << " GB/s PCIe";
  return os.str();
}

MachineSpec xeon_phi_5110p() { return xeon_phi_5110p(60); }

MachineSpec xeon_phi_5110p(int active_cores) {
  DEEPPHI_CHECK_MSG(active_cores >= 1 && active_cores <= 60,
                    "5110P has 60 cores, asked for " << active_cores);
  MachineSpec m;
  m.name = "xeon-phi-5110p-" + std::to_string(active_cores) + "c";
  m.cores = active_cores;
  m.threads_per_core = 4;
  m.freq_ghz = 1.053;
  m.simd_lanes_f32 = 16;
  m.flops_per_lane_cycle = 2.0;  // FMA
  m.mem_bw_gb_s = 320.0;         // GDDR5 theoretical
  m.mem_efficiency = 0.55;       // ~176 GB/s, STREAM-class achieved on KNC
  m.device_mem_gb = 8.0;
  // Calibrated against the paper's Table I ladder (see EXPERIMENTS.md):
  // batch-sized (not huge-square) SGEMM on KNC lands well under peak.
  m.gemm_efficiency = 0.26;
  m.gemm_occupancy[0] = 0.12;
  m.gemm_occupancy[1] = 0.38;
  m.gemm_occupancy[2] = 0.80;
  m.gemm_occupancy[3] = 1.0;
  m.loop_efficiency = 0.08;
  // Per filled core, scalar code: icc auto-vectorizes some of the naive
  // loops, landing between pure-scalar and SIMD (calibrated to Table I's
  // Baseline and OpenMP rows).
  m.scalar_flops_per_cycle = 1.9;
  m.threads_to_fill_core = 2;  // KNC needs >= 2 threads/core to issue every cycle
  m.parallel_alpha = 0.0146;   // fits Table I's 60-core vs 30-core ratio
  // 240-thread fork/join on KNC costs tens of microseconds.
  m.fork_join_us_base = 3.0;
  m.fork_join_us_per_thread = 0.09;
  m.barrier_us_base = 1.5;
  m.barrier_us_per_thread = 0.045;
  m.pcie_gb_s = 6.0;
  m.pcie_latency_us = 15.0;
  return m;
}

MachineSpec modern_avx512_server() {
  MachineSpec m;
  m.name = "modern-avx512-server";
  m.cores = 32;
  m.threads_per_core = 2;
  m.freq_ghz = 2.8;
  m.simd_lanes_f32 = 16;  // AVX-512
  m.flops_per_lane_cycle = 4.0;  // two FMA ports
  m.mem_bw_gb_s = 200.0;
  m.mem_efficiency = 0.8;
  m.device_mem_gb = 256.0;
  m.gemm_efficiency = 0.85;
  m.gemm_occupancy[0] = 0.4;
  m.gemm_occupancy[1] = 0.8;
  m.gemm_occupancy[2] = 1.0;
  m.gemm_occupancy[3] = 1.0;
  m.loop_efficiency = 0.45;
  m.scalar_flops_per_cycle = 3.0;  // wide out-of-order core
  m.parallel_alpha = 0.004;
  m.fork_join_us_base = 0.6;
  m.fork_join_us_per_thread = 0.03;
  m.barrier_us_base = 0.3;
  m.barrier_us_per_thread = 0.015;
  return m;
}

MachineSpec xeon_phi_5110p_paper_loading() {
  MachineSpec m = xeon_phi_5110p();
  m.name += "-paper-loading";
  m.chunk_load_gb_s = 0.0126;  // the paper's measured chunk-loading path
  return m;
}

MachineSpec xeon_e5620() {
  MachineSpec m;
  m.name = "xeon-e5620";
  m.cores = 4;
  m.threads_per_core = 2;  // HyperThreading
  m.freq_ghz = 2.4;
  m.simd_lanes_f32 = 4;          // SSE
  m.flops_per_lane_cycle = 2.0;  // separate mul + add ports
  m.mem_bw_gb_s = 25.6;
  m.mem_efficiency = 0.7;
  m.device_mem_gb = 48.0;  // host DRAM; effectively unbounded here
  m.gemm_efficiency = 0.85;  // mature MKL on an out-of-order core
  m.gemm_occupancy[0] = 0.5;
  m.gemm_occupancy[1] = 0.85;
  m.gemm_occupancy[2] = 1.0;
  m.gemm_occupancy[3] = 1.0;
  m.loop_efficiency = 0.4;
  m.scalar_flops_per_cycle = 1.8;  // OoO superscalar scalar code
  m.parallel_alpha = 0.02;
  m.fork_join_us_base = 0.8;
  m.fork_join_us_per_thread = 0.15;
  m.barrier_us_base = 0.4;
  m.barrier_us_per_thread = 0.08;
  return m;
}

MachineSpec xeon_e5620_single_core() {
  MachineSpec m = xeon_e5620();
  m.name = "xeon-e5620-1core";
  m.cores = 1;
  m.threads_per_core = 1;
  // One core cannot stream the whole socket's bandwidth.
  m.mem_bw_gb_s = 8.0;
  return m;
}

MachineSpec matlab_host() {
  MachineSpec m = xeon_e5620();
  m.name = "matlab-r2012a-on-e5620";
  // Matrix products go to the bundled multithreaded BLAS — but Matlab
  // computes in double precision (half the SIMD lanes, twice the traffic),
  // so the single-precision-equivalent efficiency is well under the native
  // sgemm figure. Everything else pays interpreter dispatch and temporary
  // traffic (each elementwise op materializes a full temporary array).
  m.gemm_efficiency = 0.26;
  m.loop_efficiency = 0.12;
  m.scalar_flops_per_cycle = 0.05;  // interpreted scalar loops
  m.software_overhead = 3.0;
  m.dispatch_us = 80.0;
  return m;
}

}  // namespace deepphi::phi
