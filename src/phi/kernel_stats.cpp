#include "phi/kernel_stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace deepphi::phi {

namespace {
thread_local KernelStats* t_current = nullptr;

bool close(double a, double b, double rtol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= rtol * scale;
}
}  // namespace

int gemm_bucket(std::int64_t min_dim) {
  if (min_dim < 64) return 0;
  if (min_dim < 256) return 1;
  if (min_dim < 1024) return 2;
  return 3;
}

KernelStats& KernelStats::operator+=(const KernelStats& o) {
  gemm_flops += o.gemm_flops;
  for (int b = 0; b < kGemmBuckets; ++b)
    gemm_flops_bucket[b] += o.gemm_flops_bucket[b];
  loop_flops += o.loop_flops;
  naive_flops += o.naive_flops;
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  kernel_launches += o.kernel_launches;
  barriers += o.barriers;
  fused_epilogues += o.fused_epilogues;
  h2d_bytes += o.h2d_bytes;
  d2h_bytes += o.d2h_bytes;
  transfers += o.transfers;
  return *this;
}

KernelStats KernelStats::operator+(const KernelStats& o) const {
  KernelStats s = *this;
  s += o;
  return s;
}

KernelStats KernelStats::scaled(double factor) const {
  KernelStats s = *this;
  s.gemm_flops *= factor;
  for (int b = 0; b < kGemmBuckets; ++b) s.gemm_flops_bucket[b] *= factor;
  s.loop_flops *= factor;
  s.naive_flops *= factor;
  s.bytes_read *= factor;
  s.bytes_written *= factor;
  s.kernel_launches = static_cast<std::int64_t>(std::llround(kernel_launches * factor));
  s.barriers = static_cast<std::int64_t>(std::llround(barriers * factor));
  s.fused_epilogues = static_cast<std::int64_t>(std::llround(fused_epilogues * factor));
  s.h2d_bytes *= factor;
  s.d2h_bytes *= factor;
  s.transfers = static_cast<std::int64_t>(std::llround(transfers * factor));
  return s;
}

bool KernelStats::approx_equal(const KernelStats& o, double rtol) const {
  for (int b = 0; b < kGemmBuckets; ++b)
    if (!close(gemm_flops_bucket[b], o.gemm_flops_bucket[b], rtol)) return false;
  return close(gemm_flops, o.gemm_flops, rtol) &&
         close(loop_flops, o.loop_flops, rtol) &&
         close(naive_flops, o.naive_flops, rtol) &&
         close(bytes_read, o.bytes_read, rtol) &&
         close(bytes_written, o.bytes_written, rtol) &&
         kernel_launches == o.kernel_launches && barriers == o.barriers &&
         fused_epilogues == o.fused_epilogues &&
         close(h2d_bytes, o.h2d_bytes, rtol) && close(d2h_bytes, o.d2h_bytes, rtol) &&
         transfers == o.transfers;
}

std::string KernelStats::to_string() const {
  std::ostringstream os;
  os << "KernelStats{gemm=" << gemm_flops << " loop=" << loop_flops
     << " naive=" << naive_flops << " rd=" << bytes_read << " wr=" << bytes_written
     << " launches=" << kernel_launches << " barriers=" << barriers
     << " fused=" << fused_epilogues
     << " h2d=" << h2d_bytes << " d2h=" << d2h_bytes << " xfers=" << transfers
     << "}";
  return os.str();
}

StatsScope::StatsScope(KernelStats& sink) : prev_(t_current) { t_current = &sink; }

StatsScope::~StatsScope() { t_current = prev_; }

void record(const KernelStats& contribution) {
  if (t_current != nullptr) *t_current += contribution;
}

KernelStats* current_stats() { return t_current; }

KernelStats gemm_contribution(std::int64_t m, std::int64_t n, std::int64_t k) {
  KernelStats s;
  s.gemm_flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                 static_cast<double>(k);
  s.gemm_flops_bucket[gemm_bucket(std::min({m, n, k}))] = s.gemm_flops;
  // GEMM cache traffic is folded into the machine's gemm_efficiency; the
  // bytes fields carry only the bandwidth-bound loop/naive traffic so the
  // cost model's memory roofline applies to the right kernels.
  s.kernel_launches = 1;
  return s;
}

KernelStats naive_gemm_contribution(std::int64_t m, std::int64_t n, std::int64_t k) {
  KernelStats s;
  s.naive_flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                  static_cast<double>(k);
  s.kernel_launches = 1;
  return s;
}

KernelStats loop_contribution(std::int64_t n, double flops_per_elem,
                              double floats_read_per_elem,
                              double floats_written_per_elem) {
  KernelStats s;
  s.loop_flops = static_cast<double>(n) * flops_per_elem;
  s.bytes_read = 4.0 * static_cast<double>(n) * floats_read_per_elem;
  s.bytes_written = 4.0 * static_cast<double>(n) * floats_written_per_elem;
  s.kernel_launches = 1;
  return s;
}

KernelStats naive_loop_contribution(std::int64_t n, double flops_per_elem,
                                    double floats_read_per_elem,
                                    double floats_written_per_elem) {
  // The scalar rate of the naive class already reflects memory slowness, so
  // naive work carries no separate byte traffic (the bytes fields feed the
  // loop-class roofline only). The read/write parameters are accepted for
  // call-site symmetry with loop_contribution.
  (void)floats_read_per_elem;
  (void)floats_written_per_elem;
  KernelStats s;
  s.naive_flops = static_cast<double>(n) * flops_per_elem;
  s.kernel_launches = 1;
  return s;
}

KernelStats epilogue_contribution(std::int64_t n, double flops_per_elem,
                                  double floats_read_per_elem) {
  KernelStats s;
  s.loop_flops = static_cast<double>(n) * flops_per_elem;
  s.bytes_read = 4.0 * static_cast<double>(n) * floats_read_per_elem;
  s.fused_epilogues = 1;
  return s;
}

KernelStats h2d_contribution(double bytes) {
  KernelStats s;
  s.h2d_bytes = bytes;
  s.transfers = 1;
  return s;
}

KernelStats d2h_contribution(double bytes) {
  KernelStats s;
  s.d2h_bytes = bytes;
  s.transfers = 1;
  return s;
}

}  // namespace deepphi::phi
