#include "phi/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/json_writer.hpp"

namespace deepphi::phi {

void Trace::add(TraceEvent event) {
  DEEPPHI_CHECK_MSG(event.end_s >= event.start_s,
                    "trace event '" << event.name << "' ends before it starts");
  events_.push_back(std::move(event));
}

void Trace::clear() { events_.clear(); }

double Trace::span_s() const {
  double span = 0;
  for (const auto& e : events_) span = std::max(span, e.end_s);
  return span;
}

double Trace::busy_s(TraceEvent::Resource resource) const {
  // Events on one resource never overlap each other (the timeline serializes
  // per resource), so busy time is the plain sum.
  double busy = 0;
  for (const auto& e : events_)
    if (e.resource == resource) busy += e.duration_s();
  return busy;
}

double Trace::overlap_s() const {
  // Pairwise interval intersection between the two resources. Event counts
  // are small (one per chunk), so the quadratic sweep is fine.
  double overlap = 0;
  for (const auto& a : events_) {
    if (a.resource != TraceEvent::Resource::kCompute) continue;
    for (const auto& b : events_) {
      if (b.resource != TraceEvent::Resource::kDma) continue;
      const double lo = std::max(a.start_s, b.start_s);
      const double hi = std::min(a.end_s, b.end_s);
      if (hi > lo) overlap += hi - lo;
    }
  }
  return overlap;
}

std::string Trace::to_string(std::size_t max_events) const {
  std::ostringstream os;
  os << "trace: " << events_.size() << " events, span " << span_s() << "s\n";
  std::size_t shown = 0;
  for (const auto& e : events_) {
    if (shown++ >= max_events) {
      os << "  ... (" << events_.size() - max_events << " more)\n";
      break;
    }
    os << "  [" << (e.resource == TraceEvent::Resource::kCompute ? "compute" : "dma    ")
       << "] " << e.start_s << " - " << e.end_s << "  " << e.name << "\n";
  }
  return os.str();
}

std::string Trace::to_chrome_json() const {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_array();
  for (const auto& e : events_) {
    w.begin_object();
    w.member("name", e.name);  // JsonWriter escapes quotes/backslashes
    w.member("ph", "X");
    w.member("pid", 1);
    w.member("tid", e.resource == TraceEvent::Resource::kCompute ? 1 : 2);
    w.member("ts", e.start_s * 1e6);
    w.member("dur", e.duration_s() * 1e6);
    w.end_object();
  }
  // Name the tracks.
  if (!events_.empty()) {
    for (int tid = 1; tid <= 2; ++tid) {
      w.begin_object();
      w.member("name", "thread_name").member("ph", "M").member("pid", 1);
      w.member("tid", tid);
      w.key("args").begin_object();
      w.member("name", tid == 1 ? "compute" : "dma");
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  return os.str();
}

void Trace::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  DEEPPHI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_chrome_json();
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace deepphi::phi
