// Inter-card interconnect model for phi::Cluster: how two simulated 5110P
// cards in one host exchange a message, charged in seconds the same way the
// cost model charges kernels and phi::Offload charges chunk loads.
//
// Two calibrated paths exist on the paper-era platform:
//  * PCIe peer-to-peer — cards DMA directly into each other's global memory
//    through the PCIe switch. One hop; disjoint card pairs transfer
//    concurrently (the switch routes them independently).
//  * host-staged — a d2h copy into a host bounce buffer followed by an h2d
//    copy into the destination card. Two hops, and every message crosses the
//    single host link, so concurrent messages of a collective round
//    serialize on it (shared_medium below) — the configuration that makes
//    latency-light algorithms win even at large message sizes.
#pragma once

#include <string>

namespace deepphi::phi {

struct InterconnectSpec {
  std::string name;
  /// Per-hop link bandwidth (raw PCIe copy rate of the testbed).
  double link_gb_s = 6.0;
  /// Per-hop setup latency (DMA descriptor + doorbell).
  double link_latency_us = 15.0;
  /// Hops a message crosses: 1 = peer-to-peer DMA, 2 = staged through host.
  int hops = 1;
  /// True when all messages share one medium (the host link): a round's
  /// concurrent messages serialize instead of proceeding in parallel.
  bool shared_medium = false;

  /// Modeled seconds of ONE point-to-point message of `bytes`.
  double message_time_s(double bytes) const;

  std::string to_string() const;
};

/// Direct PCIe peer-to-peer DMA between cards (one hop, concurrent pairs).
InterconnectSpec pcie_p2p_interconnect();

/// Transfer staged through a host bounce buffer (two hops, shared medium).
InterconnectSpec host_staged_interconnect();

/// "pcie" / "p2p" / "pcie-p2p" → peer-to-peer, "host" / "host-staged" →
/// staged; throws util::Error on anything else.
InterconnectSpec parse_interconnect(const std::string& name);

}  // namespace deepphi::phi
