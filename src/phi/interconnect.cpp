#include "phi/interconnect.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace deepphi::phi {

double InterconnectSpec::message_time_s(double bytes) const {
  const double per_hop =
      link_latency_us * 1e-6 +
      (link_gb_s > 0 ? bytes / (link_gb_s * 1e9) : 0.0);
  return hops * per_hop;
}

std::string InterconnectSpec::to_string() const {
  std::ostringstream os;
  os << name << ": " << link_gb_s << " GB/s per hop, " << link_latency_us
     << " us latency, " << hops << (hops == 1 ? " hop" : " hops")
     << (shared_medium ? ", shared medium" : ", concurrent links");
  return os.str();
}

InterconnectSpec pcie_p2p_interconnect() {
  InterconnectSpec ic;
  ic.name = "pcie-p2p";
  // The testbed's raw PCIe copy path (machine_spec.cpp pins 6 GB/s / 15 us
  // for host<->card); peer DMA adds switch routing on top of the doorbell.
  ic.link_gb_s = 6.0;
  ic.link_latency_us = 25.0;
  ic.hops = 1;
  ic.shared_medium = false;
  return ic;
}

InterconnectSpec host_staged_interconnect() {
  InterconnectSpec ic;
  ic.name = "host-staged";
  ic.link_gb_s = 6.0;
  ic.link_latency_us = 15.0;
  ic.hops = 2;  // d2h into the bounce buffer, then h2d to the peer
  ic.shared_medium = true;
  return ic;
}

InterconnectSpec parse_interconnect(const std::string& name) {
  const std::string v = util::to_lower(name);
  if (v == "pcie" || v == "p2p" || v == "pcie-p2p")
    return pcie_p2p_interconnect();
  if (v == "host" || v == "host-staged") return host_staged_interconnect();
  throw util::Error("unknown interconnect '" + name +
                    "' (pcie-p2p | host-staged)");
}

}  // namespace deepphi::phi
