#include "phi/cost_model.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace deepphi::phi {

std::string CostBreakdown::to_string() const {
  std::ostringstream os;
  os << "gemm=" << gemm_s << "s loop=" << loop_s << "s naive=" << naive_s
     << "s sync=" << sync_s << "s transfer=" << transfer_s
     << "s | serialized=" << total_serialized_s()
     << "s overlapped=" << total_overlapped_s() << "s";
  return os.str();
}

CostModel::CostModel(MachineSpec spec) : spec_(std::move(spec)) {
  DEEPPHI_CHECK_MSG(spec_.cores >= 1 && spec_.threads_per_core >= 1,
                    "machine '" << spec_.name << "' has no cores");
}

double CostModel::gemm_rate_gflops(int threads) const {
  return spec_.vector_peak_gflops(threads) * spec_.gemm_efficiency *
         spec_.parallel_efficiency(threads);
}

double CostModel::loop_rate_gflops(int threads) const {
  return spec_.vector_peak_gflops(threads) * spec_.loop_efficiency *
         spec_.parallel_efficiency(threads);
}

double CostModel::naive_rate_gflops(int threads) const {
  // Scalar code scales with the same core-equivalents as vector code: the
  // in-order pipeline is shared by a core's threads. scalar_flops_per_cycle
  // is per filled core.
  return spec_.effective_cores(threads) * spec_.freq_ghz *
         spec_.scalar_flops_per_cycle * spec_.parallel_efficiency(threads);
}

double CostModel::achieved_mem_gb_s() const {
  return spec_.mem_bw_gb_s * spec_.mem_efficiency;
}

double CostModel::sync_time_s(const KernelStats& stats, int threads) const {
  const int t = std::min(threads, spec_.max_threads());
  const double fork_join_us =
      spec_.fork_join_us_base + spec_.fork_join_us_per_thread * t;
  const double barrier_us =
      spec_.barrier_us_base + spec_.barrier_us_per_thread * t;
  const double us = stats.kernel_launches * (fork_join_us + spec_.dispatch_us) +
                    stats.barriers * barrier_us;
  return us * 1e-6;
}

double CostModel::transfer_time_s(const KernelStats& stats) const {
  const double bytes = stats.h2d_bytes + stats.d2h_bytes;
  if (bytes <= 0 && stats.transfers == 0) return 0;
  const double gb_s =
      spec_.chunk_load_gb_s > 0 ? spec_.chunk_load_gb_s : spec_.pcie_gb_s;
  if (gb_s <= 0) return 0;  // host machine: data is already local
  return bytes / (gb_s * 1e9) + stats.transfers * spec_.pcie_latency_us * 1e-6;
}

CostBreakdown CostModel::evaluate(const KernelStats& stats, int threads) const {
  DEEPPHI_CHECK_MSG(threads >= 1, "threads must be >= 1, got " << threads);
  CostBreakdown b;
  const double gemm_rate = gemm_rate_gflops(threads) * 1e9;
  if (stats.gemm_flops > 0) {
    // Bucketed: small GEMMs run at a fraction of the large-GEMM rate.
    for (int bucket = 0; bucket < kGemmBuckets; ++bucket) {
      const double flops = stats.gemm_flops_bucket[bucket];
      if (flops > 0)
        b.gemm_s += flops / (gemm_rate * spec_.gemm_occupancy[bucket]);
    }
    // Flops recorded without bucket detail (hand-built stats) run at the
    // nominal rate.
    const double unbucketed =
        stats.gemm_flops - (stats.gemm_flops_bucket[0] + stats.gemm_flops_bucket[1] +
                            stats.gemm_flops_bucket[2] + stats.gemm_flops_bucket[3]);
    if (unbucketed > 0) b.gemm_s += unbucketed / gemm_rate;
  }

  if (stats.loop_flops > 0 || stats.total_bytes() > 0) {
    const double loop_rate = loop_rate_gflops(threads) * 1e9;
    const double flop_time = stats.loop_flops / loop_rate;
    // The elementwise kernels are stream kernels: whichever of the compute
    // and memory rooflines is slower governs.
    const double bw_time = stats.total_bytes() / (achieved_mem_gb_s() * 1e9);
    b.loop_s = std::max(flop_time, bw_time) * spec_.software_overhead;
  }

  if (stats.naive_flops > 0) {
    b.naive_s = stats.naive_flops / (naive_rate_gflops(threads) * 1e9) *
                spec_.software_overhead;
  }

  b.sync_s = sync_time_s(stats, threads);
  b.transfer_s = transfer_time_s(stats);
  return b;
}

}  // namespace deepphi::phi
