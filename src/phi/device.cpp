#include "phi/device.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace deepphi::phi {

Device::Device(MachineSpec spec, int threads) : model_(std::move(spec)) {
  set_threads(threads == 0 ? this->spec().max_threads() : threads);
  DEEPPHI_DEBUG() << "device ready: " << this->spec().name << ", "
                  << threads_ << " threads";
}

void Device::set_threads(int threads) {
  DEEPPHI_CHECK_MSG(threads >= 1 && threads <= spec().max_threads(),
                    "threads " << threads << " out of [1, " << spec().max_threads()
                               << "] for " << spec().name);
  threads_ = threads;
}

Device::BufferId Device::alloc(const std::string& name, double bytes) {
  DEEPPHI_CHECK_MSG(bytes >= 0, "negative allocation for '" << name << "'");
  DEEPPHI_CHECK_MSG(used_bytes_ + bytes <= capacity_bytes(),
                    "device OOM allocating '"
                        << name << "' (" << bytes << " B): " << used_bytes_
                        << " of " << capacity_bytes() << " B already in use on "
                        << spec().name);
  buffers_.push_back(Buffer{name, bytes, true});
  used_bytes_ += bytes;
  return buffers_.size() - 1;
}

void Device::free(BufferId id) {
  DEEPPHI_CHECK_MSG(id < buffers_.size(), "bad buffer id " << id);
  DEEPPHI_CHECK_MSG(buffers_[id].live, "double free of device buffer '"
                                           << buffers_[id].name << "'");
  buffers_[id].live = false;
  used_bytes_ -= buffers_[id].bytes;
}

double Device::submit_compute(const std::string& name, const KernelStats& stats,
                              double ready_at_s) {
  const CostBreakdown cost = model_.evaluate(stats, threads_);
  const double start = std::max(compute_until_s_, ready_at_s);
  const double end = start + cost.compute_s();
  compute_until_s_ = end;
  trace_.add(TraceEvent{name, TraceEvent::Resource::kCompute, start, end});
  return end;
}

double Device::submit_transfer(const std::string& name, double bytes,
                               double ready_at_s, bool use_chunk_path) {
  DEEPPHI_CHECK_MSG(bytes >= 0, "negative transfer '" << name << "'");
  const MachineSpec& m = spec();
  double gb_s = use_chunk_path && m.chunk_load_gb_s > 0 ? m.chunk_load_gb_s
                                                        : m.pcie_gb_s;
  double duration = 0;
  if (gb_s > 0) duration = bytes / (gb_s * 1e9) + m.pcie_latency_us * 1e-6;
  const double start = std::max(dma_until_s_, ready_at_s);
  const double end = start + duration;
  dma_until_s_ = end;
  trace_.add(TraceEvent{name, TraceEvent::Resource::kDma, start, end});
  return end;
}

double Device::elapsed_s() const {
  return std::max(compute_until_s_, dma_until_s_);
}

void Device::reset_timeline() {
  compute_until_s_ = 0;
  dma_until_s_ = 0;
  trace_.clear();
}

}  // namespace deepphi::phi
