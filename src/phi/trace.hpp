// Event trace of the simulated device timeline: every kernel batch and DMA
// transfer lands here with its simulated start/end, so benches and tests can
// inspect overlap (did the loading thread actually hide the transfers?).
#pragma once

#include <string>
#include <vector>

namespace deepphi::phi {

struct TraceEvent {
  enum class Resource { kCompute, kDma };
  std::string name;
  Resource resource = Resource::kCompute;
  double start_s = 0;
  double end_s = 0;

  double duration_s() const { return end_s - start_s; }
};

class Trace {
 public:
  void add(TraceEvent event);
  void clear();

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Simulated span covered by the trace (max end over all events).
  double span_s() const;

  /// Total busy time on one resource.
  double busy_s(TraceEvent::Resource resource) const;

  /// Seconds during which both resources were simultaneously busy — the
  /// overlap the Fig. 5 loading thread buys.
  double overlap_s() const;

  /// Multi-line listing (debugging / examples).
  std::string to_string(std::size_t max_events = 50) const;

  /// Chrome tracing (catapult) JSON: load the result in chrome://tracing or
  /// https://ui.perfetto.dev to see the compute/DMA overlap visually.
  /// Timestamps are microseconds of simulated time; the two resources appear
  /// as two tracks.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; throws util::Error on I/O failure.
  void write_chrome_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace deepphi::phi
