// Machine descriptions for the cost model. A MachineSpec captures the
// handful of hardware terms the paper's analysis turns on: core/thread
// counts, clock, SIMD width, achievable efficiencies per code class, memory
// and PCIe bandwidth, and synchronization costs.
//
// Presets model the paper's testbed:
//  * Intel Xeon Phi 5110P — 60 in-order cores @ 1.053 GHz, 4 hardware threads
//    per core, 512-bit VPU (16 f32 lanes, FMA), 8 GB GDDR5. The paper quotes
//    30 GB/s sustained memory bandwidth for their system configuration; we
//    keep their number so the reproduction matches their balance point.
//  * Intel Xeon E5620 — 4 cores @ 2.4 GHz, SSE (4 f32 lanes), the host CPU.
//  * "Matlab host" — the E5620 running Matlab R2012a: multithreaded BLAS for
//    matrix ops but interpreter dispatch and temporary-heavy elementwise code.
//
// Efficiency constants are calibrated so the model reproduces the paper's
// measured ratios (Table I ladder, Fig. 7–10 shapes); see EXPERIMENTS.md.
#pragma once

#include <string>

namespace deepphi::phi {

struct MachineSpec {
  std::string name;

  // --- raw hardware ---
  int cores = 1;
  int threads_per_core = 1;
  double freq_ghz = 1.0;
  int simd_lanes_f32 = 1;            // f32 lanes per vector unit
  double flops_per_lane_cycle = 2.0; // 2 with FMA
  double mem_bw_gb_s = 10.0;         // sustainable DRAM bandwidth
  double device_mem_gb = 8.0;        // global memory capacity (Phi: 8 GB)

  // --- achieved efficiency per code class (fractions of the class peak) ---
  double gemm_efficiency = 0.7;   // blocked/packed GEMM vs vector peak
  // Occupancy multiplier on gemm_efficiency per GEMM size bucket (smallest
  // dimension <64, <256, <1024, >=1024): small GEMMs cannot fill a many-core
  // chip — the effect behind the paper's batch-size sweep (Fig. 9).
  double gemm_occupancy[4] = {1.0, 1.0, 1.0, 1.0};
  double loop_efficiency = 0.35;  // vectorizable elementwise loops vs peak
  double scalar_flops_per_cycle = 1.0;  // naive scalar code rate (per thread)
  double mem_efficiency = 0.8;    // achieved fraction of mem_bw_gb_s

  // --- scaling and synchronization ---
  // Hardware threads needed to saturate one core's issue pipeline (2 on the
  // in-order KNC, 1 on out-of-order hosts).
  int threads_to_fill_core = 1;
  // Parallel efficiency versus the number of core-equivalents in use:
  // eff = 1 / (1 + parallel_alpha * (effective_cores - 1)).
  double parallel_alpha = 0.003;
  // One parallel-region fork/join: base + per_thread · t microseconds.
  double fork_join_us_base = 1.0;
  double fork_join_us_per_thread = 0.02;
  // One extra barrier inside a region.
  double barrier_us_base = 0.5;
  double barrier_us_per_thread = 0.01;

  // --- host link (only meaningful for coprocessors) ---
  double pcie_gb_s = 0.0;       // raw PCIe copy bandwidth; 0 = no host link
  double pcie_latency_us = 0.0;
  // Effective bandwidth of the *training-chunk loading path* when it is
  // slower than raw PCIe (host-side fetch + preparation + PCIe). 0 = use
  // pcie_gb_s. The paper's §IV.A measurement (10,000×4096 f32 samples —
  // ≈164 MB — in 13 s ⇒ ≈0.0126 GB/s end to end) is reproduced by the
  // xeon_phi_5110p_paper_loading() preset; the default preset uses the raw
  // PCIe figure, since the paper's own results (Figs. 7–10) are only
  // consistent with a loading path that the Fig. 5 thread can hide.
  double chunk_load_gb_s = 0.0;

  // --- software environment ---
  // Multiplier >= 1 applied to loop/naive-class time (interpreter dispatch,
  // temporary traffic). 1 for native code.
  double software_overhead = 1.0;
  // Extra per-kernel-launch cost in microseconds (interpreted dispatch).
  double dispatch_us = 0.0;

  int max_threads() const { return cores * threads_per_core; }

  /// Peak f32 GFLOP/s of the whole chip's vector units.
  double vector_peak_gflops() const {
    return cores * freq_ghz * simd_lanes_f32 * flops_per_lane_cycle;
  }

  /// Core-equivalents `threads` threads can drive: min(cores,
  /// threads / threads_to_fill_core), fractional below one filled core.
  double effective_cores(int threads) const;

  /// Peak f32 GFLOP/s available to `threads` threads (a core's vector unit
  /// needs threads_to_fill_core threads to saturate).
  double vector_peak_gflops(int threads) const;

  /// eff = 1 / (1 + parallel_alpha · max(0, effective_cores(t) − 1)).
  double parallel_efficiency(int threads) const;

  std::string to_string() const;
};

/// Xeon Phi 5110P with all 60 cores active.
MachineSpec xeon_phi_5110p();

/// Xeon Phi 5110P restricted to `cores` active cores (Table I's 30-core
/// column).
MachineSpec xeon_phi_5110p(int cores);

/// Host Xeon E5620 (4 cores, SSE).
MachineSpec xeon_e5620();

/// One core of the host Xeon (the paper's "single CPU core" comparator).
MachineSpec xeon_e5620_single_core();

/// The E5620 running Matlab R2012a (multithreaded BLAS, interpreted glue).
MachineSpec matlab_host();

/// A present-day AVX-512 server socket (32 cores @ 2.8 GHz, 16 f32 lanes,
/// FMA, ~200 GB/s DRAM) — not part of the paper's testbed; included so users
/// can put the 2013 coprocessor's numbers in today's terms.
MachineSpec modern_avx512_server();

/// The 5110P with the chunk-loading path pinned to the paper's §IV.A
/// measurement (13 s per 10,000×4096-sample chunk ⇒ 0.0126 GB/s) — used by
/// the loading-thread overlap reproduction.
MachineSpec xeon_phi_5110p_paper_loading();

}  // namespace deepphi::phi
