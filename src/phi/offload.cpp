#include "phi/offload.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace deepphi::phi {

double OffloadReport::exposed_transfer_fraction() const {
  if (total_s <= 0) return 0;
  // Whatever part of the span is not covered by compute is exposed transfer
  // (pipeline fill, or every transfer when loading is synchronous).
  return std::max(0.0, total_s - compute_busy_s) / total_s;
}

Offload::Offload(Device& device, OffloadConfig config)
    : device_(device), config_(config) {
  DEEPPHI_CHECK_MSG(config_.ring_chunks >= 1,
                    "ring_chunks must be >= 1, got " << config_.ring_chunks);
}

void Offload::reserve_ring(double chunk_bytes) {
  DEEPPHI_CHECK_MSG(ring_buffers_.empty(), "ring already reserved");
  for (int i = 0; i < config_.ring_chunks; ++i)
    ring_buffers_.push_back(
        device_.alloc("chunk-ring[" + std::to_string(i) + "]", chunk_bytes));
}

void Offload::release_ring() {
  for (Device::BufferId id : ring_buffers_) device_.free(id);
  ring_buffers_.clear();
}

OffloadReport Offload::process_chunks(int n_chunks, double chunk_bytes,
                                      const KernelStats& per_chunk_stats) {
  DEEPPHI_PROFILE_SCOPE("offload.process_chunks");
  DEEPPHI_CHECK_MSG(n_chunks >= 0, "negative chunk count");
  OffloadReport report;
  report.chunks.reserve(static_cast<std::size_t>(n_chunks));

  // slot_free[s]: simulated time at which ring slot s may be overwritten
  // (its previous occupant has been consumed by training).
  std::vector<double> slot_free(static_cast<std::size_t>(config_.ring_chunks), 0.0);
  double last_compute_end = 0.0;

  for (int i = 0; i < n_chunks; ++i) {
    const std::size_t slot =
        static_cast<std::size_t>(i % config_.ring_chunks);
    double transfer_ready = slot_free[slot];
    if (!config_.async_loading) {
      // No loading thread: the host only starts feeding the next chunk once
      // training of the previous one finished.
      transfer_ready = std::max(transfer_ready, last_compute_end);
    }
    const std::string tag = "chunk[" + std::to_string(i) + "]";
    const double t_end =
        device_.submit_transfer(tag + " h2d", chunk_bytes, transfer_ready,
                                /*use_chunk_path=*/true);
    const double c_end = device_.submit_compute(tag + " train", per_chunk_stats,
                                                /*ready_at_s=*/t_end);
    last_compute_end = c_end;
    slot_free[slot] = c_end;

    const auto& events = device_.trace().events();
    const auto& dma_event = events[events.size() - 2];
    const auto& compute_event = events[events.size() - 1];
    report.chunks.push_back(ChunkTiming{dma_event.start_s, dma_event.end_s,
                                        compute_event.start_s,
                                        compute_event.end_s});
  }

  report.total_s = device_.elapsed_s();
  report.compute_busy_s = device_.trace().busy_s(TraceEvent::Resource::kCompute);
  report.transfer_busy_s = device_.trace().busy_s(TraceEvent::Resource::kDma);
  return report;
}

}  // namespace deepphi::phi
