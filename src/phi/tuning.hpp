// The paper's future-work items, made concrete on the simulator:
//
//  #1 "a balance should be found between parallelism and synchronization.
//      For now, we need to adjust the number of threads manually" —
//      tune_threads() searches thread counts for the one minimizing the
//      simulated time of a given workload (small workloads prefer fewer
//      threads because fork/join costs grow with the team size).
//
//  #2 "a further combination between Xeon and Intel Xeon Phi can bring us
//      higher efficiency" — tune_hybrid_split() splits every mini-batch
//      between the host CPU and the coprocessor, modelling the per-batch
//      gradient exchange over PCIe, and finds the split fraction minimizing
//      the step time.
#pragma once

#include <functional>
#include <vector>

#include "phi/cost_model.hpp"

namespace deepphi::phi {

struct ThreadTuneResult {
  int best_threads = 1;
  double best_time_s = 0;
  /// (threads, simulated seconds) for every candidate evaluated.
  std::vector<std::pair<int, double>> curve;
};

/// Finds the thread count minimizing the simulated compute time of `stats`
/// on `model`'s machine. `candidates` defaults to 1, 2, 4, ... plus full
/// multiples of the core count.
ThreadTuneResult tune_threads(const CostModel& model, const KernelStats& stats,
                              std::vector<int> candidates = {});

struct HybridSplitResult {
  double best_fraction = 1.0;  // share of each batch sent to the Phi
  double best_time_s = 0;      // per-batch step time at the best split
  double phi_only_s = 0;       // fraction = 1
  double host_only_s = 0;      // fraction = 0
  /// (fraction, per-batch seconds) for every candidate evaluated.
  std::vector<std::pair<double, double>> curve;
};

/// Sweeps the Phi share of each mini-batch. The per-step time at fraction f
/// is max(phi_time(f·B), host_time((1−f)·B)) + exchange, where exchange is
/// the per-batch gradient/parameter traffic (2 × param_bytes) over PCIe —
/// both sides must agree on the updated parameters before the next batch.
/// Fractions are swept in steps of `step` over [0, 1].
HybridSplitResult tune_hybrid_split(
    const CostModel& phi_model, int phi_threads, const CostModel& host_model,
    int host_threads, const std::function<KernelStats(long long)>& batch_stats,
    long long batch_rows, double param_bytes, double step = 0.05);

}  // namespace deepphi::phi
