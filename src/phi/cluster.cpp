#include "phi/cluster.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace deepphi::phi {

Cluster::Cluster(MachineSpec card_spec, ClusterConfig config)
    : config_(std::move(config)) {
  DEEPPHI_CHECK_MSG(config_.cards >= 1,
                    "cluster needs >= 1 card, got " << config_.cards);
  devices_.reserve(static_cast<std::size_t>(config_.cards));
  for (int c = 0; c < config_.cards; ++c)
    devices_.push_back(
        std::make_unique<Device>(card_spec, config_.threads_per_card));
}

double Cluster::submit_step(const std::string& name,
                            const std::vector<KernelStats>& per_card_stats,
                            const std::vector<double>& per_card_h2d_bytes,
                            double comm_seconds, double comm_wire_bytes,
                            long long comm_rounds, long long comm_collectives,
                            double transfer_ready_s) {
  DEEPPHI_CHECK_MSG(
      per_card_stats.size() == devices_.size(),
      "submit_step: " << per_card_stats.size() << " stat bundles for "
                      << devices_.size() << " cards");
  DEEPPHI_CHECK_MSG(
      per_card_h2d_bytes.size() == devices_.size(),
      "submit_step: " << per_card_h2d_bytes.size() << " h2d sizes for "
                      << devices_.size() << " cards");
  double compute_done = barrier_s_;
  for (std::size_t c = 0; c < devices_.size(); ++c) {
    Device& dev = *devices_[c];
    double ready = transfer_ready_s;
    if (per_card_h2d_bytes[c] > 0)
      ready = dev.submit_transfer(name + "/h2d", per_card_h2d_bytes[c],
                                  transfer_ready_s);
    const double done = dev.submit_compute(
        name, per_card_stats[c], std::max(ready, barrier_s_));
    compute_done = std::max(compute_done, done);
  }
  barrier_s_ = compute_done + comm_seconds;
  if (cards() > 1 && (comm_seconds > 0 || comm_rounds > 0)) {
    TraceEvent ev;
    ev.name = name + "/allreduce";
    ev.resource = TraceEvent::Resource::kDma;
    ev.start_s = compute_done;
    ev.end_s = barrier_s_;
    comm_trace_.add(ev);
    comm_.seconds += comm_seconds;
    comm_.wire_bytes += comm_wire_bytes;
    comm_.rounds += comm_rounds;
    comm_.collectives += comm_collectives;
  }
  return barrier_s_;
}

double Cluster::elapsed_s() const {
  double t = barrier_s_;
  for (const auto& dev : devices_) t = std::max(t, dev->elapsed_s());
  return t;
}

double Cluster::comm_share() const {
  const double total = elapsed_s();
  return total > 0 ? comm_.seconds / total : 0.0;
}

void Cluster::reset_timeline() {
  for (auto& dev : devices_) dev->reset_timeline();
  barrier_s_ = 0;
  comm_ = ClusterCommStats{};
  comm_trace_.clear();
}

}  // namespace deepphi::phi
