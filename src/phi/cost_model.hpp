// Analytic cost model: KernelStats × (MachineSpec, threads) → simulated
// seconds. This is the substitution for running on real Xeon Phi silicon
// (discontinued hardware): the terms are exactly those the paper's analysis
// turns on — per-class achievable flop rates, a memory-bandwidth roofline on
// the elementwise kernels, fork/join + barrier synchronization scaling with
// the thread count, and the host↔device transfer path.
#pragma once

#include <string>

#include "phi/kernel_stats.hpp"
#include "phi/machine_spec.hpp"

namespace deepphi::phi {

/// Per-class simulated time for one stats bundle, in seconds.
struct CostBreakdown {
  double gemm_s = 0;      // optimized-GEMM class
  double loop_s = 0;      // vectorizable elementwise/reduction class
  double naive_s = 0;     // scalar/naive class
  double sync_s = 0;      // fork/join + barriers + dispatch
  double transfer_s = 0;  // host↔device traffic

  double compute_s() const { return gemm_s + loop_s + naive_s + sync_s; }
  /// Transfers fully serialized with compute (no loading thread).
  double total_serialized_s() const { return compute_s() + transfer_s; }
  /// Idealized full overlap (loading thread + deep enough ring buffer);
  /// the Offload timeline computes the exact pipelined value.
  double total_overlapped_s() const {
    return compute_s() > transfer_s ? compute_s() : transfer_s;
  }

  std::string to_string() const;
};

class CostModel {
 public:
  explicit CostModel(MachineSpec spec);

  const MachineSpec& machine() const { return spec_; }

  /// Simulated time of `stats` executed with `threads` threads.
  CostBreakdown evaluate(const KernelStats& stats, int threads) const;

  // --- class rates (exposed for tests and reports) ---

  /// Achieved GEMM GFLOP/s at `threads` threads.
  double gemm_rate_gflops(int threads) const;
  /// Achieved elementwise-loop GFLOP/s at `threads` threads (before the
  /// memory roofline, which is applied on bytes in evaluate()).
  double loop_rate_gflops(int threads) const;
  /// Achieved scalar/naive GFLOP/s at `threads` threads.
  double naive_rate_gflops(int threads) const;
  /// Achieved DRAM bandwidth in GB/s.
  double achieved_mem_gb_s() const;

  /// Synchronization time of `stats` at `threads` threads, seconds.
  double sync_time_s(const KernelStats& stats, int threads) const;

  /// Host↔device transfer time, seconds. Uses the calibrated chunk-loading
  /// path when the machine has one, else raw PCIe; returns 0 for host
  /// machines (no link).
  double transfer_time_s(const KernelStats& stats) const;

 private:
  MachineSpec spec_;
};

}  // namespace deepphi::phi
