// The optimization ladder of the paper's Table I, as real code paths (not
// model constants):
//
//   kBaseline   — loop-form training step, single thread, no SIMD hints, no
//                 optimized GEMM ("The baseline code did not use Intel MKL
//                 packages or any other speedup methods").
//   kOpenMp     — the same loop-form step with every loop wrapped in its own
//                 OpenMP parallel region ("We then used OpenMP to parallelize
//                 all the loops").
//   kOpenMpMkl  — matrix-form step: optimized blocked GEMM for the products,
//                 separate parallel elementwise kernels for the rest.
//   kImproved   — matrix-form with fused elementwise kernels ("we combined
//                 some loops to reduce synchronization cost").
#pragma once

#include <string>

namespace deepphi::core {

enum class OptLevel { kBaseline, kOpenMp, kOpenMpMkl, kImproved };

inline const char* to_string(OptLevel level) {
  switch (level) {
    case OptLevel::kBaseline: return "baseline";
    case OptLevel::kOpenMp: return "openmp";
    case OptLevel::kOpenMpMkl: return "openmp+mkl";
    case OptLevel::kImproved: return "improved";
  }
  return "?";
}

/// True for the matrix-form (GEMM-based) levels.
inline bool is_matrix_form(OptLevel level) {
  return level == OptLevel::kOpenMpMkl || level == OptLevel::kImproved;
}

/// True when elementwise kernels are fused.
inline bool is_fused(OptLevel level) { return level == OptLevel::kImproved; }

/// Threads the level is meant to run with on a machine exposing
/// `machine_threads` (Baseline is sequential by definition).
inline int level_threads(OptLevel level, int machine_threads) {
  return level == OptLevel::kBaseline ? 1 : machine_threads;
}

/// How the training loop feeds data (paper Fig. 5).
enum class ExecPolicy {
  kHost,        // train in-process, foreground chunk loading
  kPhiOffload,  // background loading thread + device-side chunk ring
};

}  // namespace deepphi::core
