#include "core/cost_accounting.hpp"

#include "data/chunk_stream.hpp"
#include "util/error.hpp"

namespace deepphi::core {

namespace {

using phi::KernelStats;
using phi::epilogue_contribution;
using phi::gemm_contribution;
using phi::loop_contribution;
using phi::naive_gemm_contribution;
using phi::naive_loop_contribution;

// One Optimizer::update call on an n-element parameter (matrix-form levels).
KernelStats optimizer_update(la::Index n, OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd: return loop_contribution(n, 2.0, 2.0, 1.0);
    case OptimizerKind::kMomentum: return loop_contribution(n, 4.0, 3.0, 2.0);
    case OptimizerKind::kAdagrad: return loop_contribution(n, 6.0, 3.0, 2.0);
  }
  return {};
}

// --- SAE, matrix form (mirrors SparseAutoencoder::gradient) ---
KernelStats sae_matrix_gradient(const SaeShape& s, bool fused) {
  const la::Index b = s.batch, v = s.visible, h = s.hidden;
  KernelStats k;
  // forward: y = sigmoid(x·W1ᵀ + b1)
  k += gemm_contribution(b, h, v);
  if (fused) {
    k += epilogue_contribution(b * h, 9.0, 0.0);  // bias_sigmoid epilogue
  } else {
    k += naive_loop_contribution(b * h, 1.0, 1, 1);    // add_row_broadcast
    k += naive_loop_contribution(b * h, 400.0, 1, 1);  // sigmoid_inplace (scalar exp)
  }
  // forward: z = sigmoid(y·W2ᵀ + b2)
  k += gemm_contribution(b, v, h);
  if (fused) {
    k += epilogue_contribution(b * v, 9.0, 0.0);
  } else {
    k += naive_loop_contribution(b * v, 1.0, 1, 1);
    k += naive_loop_contribution(b * v, 400.0, 1, 1);
  }
  // cost pieces
  k += loop_contribution(b * h, 1.0, 1.0, 0.0);  // col_mean (via col_sum)
  k += loop_contribution(b * v, 3.0, 2.0, 0.0);  // sum_sq_diff
  k += loop_contribution(h * v, 2.0, 1.0, 0.0);  // nrm2sq(W1)
  k += loop_contribution(v * h, 2.0, 1.0, 0.0);  // nrm2sq(W2)
  k += loop_contribution(h, 12.0, 1.0, 0.0);     // kl_divergence
  // output delta
  if (fused) {
    k += loop_contribution(b * v, 4.0, 2.0, 1.0);  // output_delta
  } else {
    k += naive_loop_contribution(b * v, 1.0, 2, 1);  // sub
    k += naive_loop_contribution(b * v, 3.0, 2, 1);  // dsigmoid_mul
  }
  // W2/b2 gradients
  k += gemm_contribution(v, h, b);
  k += loop_contribution(v * h, 2.0, 2.0, 1.0);  // axpy(λ·W2)
  k += loop_contribution(b * v, 1.0, 1.0, 0.0);  // col_sum
  k += loop_contribution(v, 1.0, 1.0, 1.0);      // scal
  // hidden delta
  k += gemm_contribution(b, h, v);               // delta2·W2
  k += loop_contribution(h, 6.0, 1.0, 1.0);      // sparsity_delta
  if (fused) {
    k += epilogue_contribution(b * h, 4.0, 1.0);  // bias_dsigmoid_mul (reads y)
  } else {
    k += naive_loop_contribution(b * h, 1.0, 1, 1);  // add_row_broadcast
    k += naive_loop_contribution(b * h, 3.0, 2, 1);  // dsigmoid_mul
  }
  // W1/b1 gradients
  k += gemm_contribution(h, v, b);
  k += loop_contribution(h * v, 2.0, 2.0, 1.0);
  k += loop_contribution(b * h, 1.0, 1.0, 0.0);
  k += loop_contribution(h, 1.0, 1.0, 1.0);
  if (s.tied_weights) {
    k += loop_contribution(v * h, 0.0, 1.0, 1.0);  // transpose g_w2
    k += loop_contribution(h * v, 2.0, 2.0, 1.0);  // axpy combine
    k += loop_contribution(h * v, 0.0, 1.0, 1.0);  // transpose back
  }
  return k;
}

// --- SAE, loop form (mirrors sae_gradient_loops) ---
KernelStats sae_loop_gradient(const SaeShape& s) {
  const la::Index b = s.batch, v = s.visible, h = s.hidden;
  KernelStats k;
  k += naive_gemm_contribution(b, h, v);          // matmul_nt
  k += naive_loop_contribution(b * h, 1.0, 1, 1); // add_bias
  k += naive_loop_contribution(b * h, 400.0, 1, 1);  // sigmoid (scalar exp)
  k += naive_gemm_contribution(b, v, h);
  k += naive_loop_contribution(b * v, 1.0, 1, 1);
  k += naive_loop_contribution(b * v, 400.0, 1, 1);
  k += naive_loop_contribution(b * h, 1.0, 1, 0); // col_mean
  k += naive_loop_contribution(b * v, 3.0, 2, 0); // sum_sq_diff
  k += naive_loop_contribution(h * v, 2.0, 1, 0); // nrm2sq(W1)
  k += naive_loop_contribution(v * h, 2.0, 1, 0); // nrm2sq(W2)
  k += naive_loop_contribution(h, 12.0, 1, 0);    // kl
  k += naive_loop_contribution(b * v, 1.0, 2, 1); // sub
  k += naive_loop_contribution(b * v, 3.0, 2, 1); // dsigmoid
  k += naive_gemm_contribution(v, h, b);          // matmul_tn
  k += naive_loop_contribution(v * h, 2.0, 2, 1); // axpy(λW2)
  k += naive_loop_contribution(b * v, 1.0, 1, 0); // col_sum_scaled
  k += naive_gemm_contribution(b, h, v);          // matmul_nn
  k += naive_loop_contribution(h, 6.0, 1, 1);     // sparsity
  k += naive_loop_contribution(b * h, 1.0, 1, 1); // add_bias(sparse)
  k += naive_loop_contribution(b * h, 3.0, 2, 1); // dsigmoid
  k += naive_gemm_contribution(h, v, b);
  k += naive_loop_contribution(h * v, 2.0, 2, 1);
  k += naive_loop_contribution(b * h, 1.0, 1, 0);
  return k;
}

KernelStats sae_loop_update(const SaeShape& s) {
  const la::Index v = s.visible, h = s.hidden;
  KernelStats k;
  k += naive_loop_contribution(h * v, 2.0, 2, 1);
  k += naive_loop_contribution(h, 2.0, 2, 1);
  k += naive_loop_contribution(v * h, 2.0, 2, 1);
  k += naive_loop_contribution(v, 2.0, 2, 1);
  return k;
}

// --- RBM, matrix form (mirrors Rbm::gradient) ---
KernelStats rbm_matrix_gradient(const RbmShape& s, bool fused) {
  const la::Index b = s.batch, v = s.visible, h = s.hidden;
  KernelStats k;
  // positive phase
  k += gemm_contribution(b, h, v);
  if (fused) {
    k += loop_contribution(b * h, 20.0, 1.0, 2.0);  // bias_sigmoid_sample
  } else {
    k += naive_loop_contribution(b * h, 1.0, 1, 1);
    k += naive_loop_contribution(b * h, 400.0, 1, 1);
    k += naive_loop_contribution(b * h, 100.0, 1, 1);  // sample (scalar RNG)
  }
  // Gibbs chain
  for (int step = 0; step < s.cd_k; ++step) {
    k += gemm_contribution(b, v, h);  // v2 pre-activation
    if (s.gaussian_visible) {
      if (fused) {
        k += epilogue_contribution(b * v, 1.0, 0.0);  // bias_add epilogue
      } else {
        k += loop_contribution(b * v, 1.0, 1.0, 1.0);  // add_row_broadcast_vec
      }
      if (s.sample_visible) k += loop_contribution(b * v, 15.0, 1.0, 1.0);
    } else {
      if (fused) {
        k += epilogue_contribution(b * v, 9.0, 0.0);
      } else {
        k += naive_loop_contribution(b * v, 1.0, 1, 1);
        k += naive_loop_contribution(b * v, 400.0, 1, 1);
      }
      if (s.sample_visible) k += naive_loop_contribution(b * v, 100.0, 1, 1);
    }

    k += gemm_contribution(b, h, v);  // h2 pre-activation
    if (step + 1 < s.cd_k) {
      if (fused) {
        k += loop_contribution(b * h, 20.0, 1.0, 2.0);
      } else {
        k += naive_loop_contribution(b * h, 1.0, 1, 1);
        k += naive_loop_contribution(b * h, 400.0, 1, 1);
        k += naive_loop_contribution(b * h, 100.0, 1, 1);
      }
    } else {
      if (fused) {
        k += epilogue_contribution(b * h, 9.0, 0.0);
      } else {
        k += naive_loop_contribution(b * h, 1.0, 1, 1);
        k += naive_loop_contribution(b * h, 400.0, 1, 1);
      }
    }
  }
  // statistics
  k += gemm_contribution(h, v, b);  // positive
  k += gemm_contribution(h, v, b);  // negative
  k += loop_contribution(b * v, 1.0, 1.0, 0.0);  // col_sum(v1)
  k += loop_contribution(b * v, 1.0, 1.0, 0.0);  // col_sum(v2)
  k += loop_contribution(v, 2.0, 2.0, 1.0);      // axpy
  k += loop_contribution(v, 1.0, 1.0, 1.0);      // scal
  k += loop_contribution(b * h, 1.0, 1.0, 0.0);  // col_sum(h1)
  k += loop_contribution(b * h, 1.0, 1.0, 0.0);  // col_sum(h2)
  k += loop_contribution(h, 2.0, 2.0, 1.0);
  k += loop_contribution(h, 1.0, 1.0, 1.0);
  k += loop_contribution(b * v, 3.0, 2.0, 0.0);  // recon error
  return k;
}

// --- RBM, Fig. 6 task graph (mirrors RbmTaskGraphStep) ---
KernelStats rbm_taskgraph_gradient(const RbmShape& s) {
  const la::Index b = s.batch, v = s.visible, h = s.hidden;
  KernelStats k;
  k += loop_contribution(b * v, 1.0, 1.0, 0.0);   // gb_pos
  k += gemm_contribution(b, h, v);                // h1 gemm
  k += loop_contribution(b * h, 20.0, 1.0, 2.0);  // h1 bias_sigmoid_sample
  k += gemm_contribution(h, v, b);                // gw_pos
  k += loop_contribution(b * h, 1.0, 1.0, 0.0);   // gc_pos
  k += gemm_contribution(b, v, h);                // v2 gemm
  k += epilogue_contribution(b * v, 9.0, 0.0);    // v2 bias_sigmoid epilogue
  k += loop_contribution(b * v, 1.0, 1.0, 0.0);   // gb_neg
  k += loop_contribution(b * v, 3.0, 2.0, 0.0);   // recon
  k += gemm_contribution(b, h, v);                // h2 gemm
  k += epilogue_contribution(b * h, 9.0, 0.0);    // h2 bias_sigmoid epilogue
  k += gemm_contribution(h, v, b);                // gw_neg
  k += loop_contribution(b * h, 1.0, 1.0, 0.0);   // gc_neg
  // combine: axpy+scal per parameter
  k += loop_contribution(h * v, 2.0, 2.0, 1.0);
  k += loop_contribution(h * v, 1.0, 1.0, 1.0);
  k += loop_contribution(v, 2.0, 2.0, 1.0);
  k += loop_contribution(v, 1.0, 1.0, 1.0);
  k += loop_contribution(h, 2.0, 2.0, 1.0);
  k += loop_contribution(h, 1.0, 1.0, 1.0);
  return k;
}

// --- RBM, loop form (mirrors rbm_gradient_loops) ---
KernelStats rbm_loop_gradient(const RbmShape& s) {
  const la::Index b = s.batch, v = s.visible, h = s.hidden;
  KernelStats k;
  k += naive_gemm_contribution(b, h, v);
  k += naive_loop_contribution(b * h, 1.0, 1, 1);
  k += naive_loop_contribution(b * h, 400.0, 1, 1);
  k += naive_loop_contribution(b * h, 100.0, 1, 1);  // sample
  for (int step = 0; step < s.cd_k; ++step) {
    k += naive_gemm_contribution(b, v, h);
    k += naive_loop_contribution(b * v, 1.0, 1, 1);
    k += naive_loop_contribution(b * v, 400.0, 1, 1);
    if (s.sample_visible) k += naive_loop_contribution(b * v, 100.0, 1, 1);
    k += naive_gemm_contribution(b, h, v);
    k += naive_loop_contribution(b * h, 1.0, 1, 1);
    k += naive_loop_contribution(b * h, 400.0, 1, 1);
    if (step + 1 < s.cd_k) k += naive_loop_contribution(b * h, 100.0, 1, 1);
  }
  k += naive_gemm_contribution(h, v, b);  // matmul_tn_acc (pos)
  k += naive_gemm_contribution(h, v, b);  // matmul_tn_acc (neg)
  k += naive_loop_contribution(b * v, 1.0, 1, 0);
  k += naive_loop_contribution(b * v, 1.0, 1, 0);
  k += naive_loop_contribution(v, 2.0, 2, 1);  // diff_scale
  k += naive_loop_contribution(b * h, 1.0, 1, 0);
  k += naive_loop_contribution(b * h, 1.0, 1, 0);
  k += naive_loop_contribution(h, 2.0, 2, 1);
  k += naive_loop_contribution(b * v, 3.0, 2, 0);  // recon
  return k;
}

KernelStats rbm_loop_update(const RbmShape& s) {
  KernelStats k;
  k += naive_loop_contribution(s.hidden * s.visible, 2.0, 2, 1);
  k += naive_loop_contribution(s.visible, 2.0, 2, 1);
  k += naive_loop_contribution(s.hidden, 2.0, 2, 1);
  return k;
}

template <typename PerBatch>
KernelStats train_stats_impl(const TrainShape& run, PerBatch&& per_batch) {
  DEEPPHI_CHECK_MSG(run.examples >= 1 && run.batch >= 1 && run.chunk >= run.batch,
                    "bad TrainShape");
  KernelStats k;
  for (int epoch = 0; epoch < run.epochs; ++epoch) {
    for (la::Index begin = 0; begin < run.examples; begin += run.chunk) {
      const la::Index chunk_rows = std::min(run.chunk, run.examples - begin);
      k += phi::h2d_contribution(4.0 * static_cast<double>(chunk_rows) *
                                 1.0);  // dim factored in by caller
      for (la::Index b0 = 0; b0 < chunk_rows; b0 += run.batch) {
        const la::Index rows = std::min(run.batch, chunk_rows - b0);
        k += per_batch(rows);
      }
    }
  }
  return k;
}

}  // namespace

phi::KernelStats sae_batch_stats(const SaeShape& shape, OptLevel level,
                                 OptimizerKind opt) {
  const la::Index v = shape.visible, h = shape.hidden;
  DEEPPHI_CHECK_MSG(!shape.tied_weights || is_matrix_form(level),
                    "tied weights are matrix-form only");
  if (is_matrix_form(level)) {
    KernelStats k = sae_matrix_gradient(shape, is_fused(level));
    k += optimizer_update(h * v, opt);
    k += optimizer_update(h, opt);
    k += optimizer_update(v * h, opt);
    k += optimizer_update(v, opt);
    return k;
  }
  return sae_loop_gradient(shape) + sae_loop_update(shape);
}

phi::KernelStats rbm_batch_stats(const RbmShape& shape, OptLevel level,
                                 OptimizerKind opt, bool taskgraph) {
  const la::Index v = shape.visible, h = shape.hidden;
  DEEPPHI_CHECK_MSG(!shape.gaussian_visible || is_matrix_form(level),
                    "Gaussian visibles are matrix-form only");
  DEEPPHI_CHECK_MSG(!shape.gaussian_visible || !taskgraph,
                    "the Fig. 6 graph models the binary RBM");
  if (is_matrix_form(level)) {
    KernelStats k = taskgraph ? rbm_taskgraph_gradient(shape)
                              : rbm_matrix_gradient(shape, is_fused(level));
    k += optimizer_update(h * v, opt);
    k += optimizer_update(v, opt);
    k += optimizer_update(h, opt);
    return k;
  }
  DEEPPHI_CHECK_MSG(!taskgraph, "task graph requires a matrix-form level");
  return rbm_loop_gradient(shape) + rbm_loop_update(shape);
}

std::int64_t train_batches(const TrainShape& run) {
  std::int64_t batches = 0;
  for (int epoch = 0; epoch < run.epochs; ++epoch)
    for (la::Index begin = 0; begin < run.examples; begin += run.chunk) {
      const la::Index chunk_rows = std::min(run.chunk, run.examples - begin);
      batches += (chunk_rows + run.batch - 1) / run.batch;
    }
  return batches;
}

std::int64_t train_chunks(const TrainShape& run) {
  const std::int64_t per_epoch = (run.examples + run.chunk - 1) / run.chunk;
  return per_epoch * run.epochs;
}

phi::KernelStats sae_train_stats(const TrainShape& run, const SaeShape& shape,
                                 OptLevel level, OptimizerKind opt) {
  KernelStats k = train_stats_impl(run, [&](la::Index rows) {
    SaeShape s = shape;
    s.batch = rows;
    return sae_batch_stats(s, level, opt);
  });
  // train_stats_impl charges 4 B per example; scale transfers by the example
  // dimensionality.
  k.h2d_bytes *= static_cast<double>(shape.visible);
  return k;
}

phi::KernelStats rbm_train_stats(const TrainShape& run, const RbmShape& shape,
                                 OptLevel level, OptimizerKind opt,
                                 bool taskgraph) {
  KernelStats k = train_stats_impl(run, [&](la::Index rows) {
    RbmShape s = shape;
    s.batch = rows;
    return rbm_batch_stats(s, level, opt, taskgraph);
  });
  k.h2d_bytes *= static_cast<double>(shape.visible);
  return k;
}

phi::KernelStats sae_gradient_stats(const SaeShape& shape, OptLevel level) {
  DEEPPHI_CHECK_MSG(is_matrix_form(level),
                    "per-slot gradient stats are matrix-form only");
  return sae_matrix_gradient(shape, is_fused(level));
}

phi::KernelStats rbm_gradient_stats(const RbmShape& shape, OptLevel level) {
  DEEPPHI_CHECK_MSG(is_matrix_form(level),
                    "per-slot gradient stats are matrix-form only");
  return rbm_matrix_gradient(shape, is_fused(level));
}

phi::KernelStats optimizer_update_stats(la::Index n, OptimizerKind kind) {
  return optimizer_update(n, kind);
}

phi::KernelStats dp_combine_stats(const std::vector<la::Index>& buffer_sizes,
                                  int live_slots) {
  DEEPPHI_CHECK_MSG(live_slots >= 1, "live_slots must be >= 1");
  KernelStats k;
  if (live_slots == 1) return k;
  for (const la::Index n : buffer_sizes) {
    for (int edge = 0; edge < live_slots - 1; ++edge)
      k += loop_contribution(n, 2.0, 2.0, 1.0);  // tree axpy
    k += loop_contribution(n, 1.0, 1.0, 1.0);    // mean scal
  }
  return k;
}

namespace {

// Replays DataParallelTrainer's chunk / group / shard structure: per chunk
// one h2d transfer, per group of up to S·batch rows one gradient per live
// slot (shard sizes from data::shard_rows, exactly as the trainer computes
// them), the tree combine, and one optimizer update over `buffers`.
template <typename GradFn>
KernelStats dp_train_stats_impl(const TrainShape& run,
                                const DataParallelShape& dp,
                                const std::vector<la::Index>& buffers,
                                OptimizerKind opt, GradFn&& slot_gradient) {
  DEEPPHI_CHECK_MSG(
      run.examples >= 1 && run.batch >= 1 && run.chunk >= run.batch,
      "bad TrainShape");
  const int S = dp.slots();
  DEEPPHI_CHECK_MSG(dp.replicas >= 1 && dp.accumulation_steps >= 1,
                    "bad DataParallelShape");
  const la::Index group_capacity = static_cast<la::Index>(S) * run.batch;
  KernelStats k;
  for (int epoch = 0; epoch < run.epochs; ++epoch) {
    for (la::Index begin = 0; begin < run.examples; begin += run.chunk) {
      const la::Index chunk_rows = std::min(run.chunk, run.examples - begin);
      k += phi::h2d_contribution(4.0 * static_cast<double>(chunk_rows) *
                                 1.0);  // dim factored in by caller
      for (la::Index b0 = 0; b0 < chunk_rows; b0 += group_capacity) {
        const la::Index rows = std::min(group_capacity, chunk_rows - b0);
        const std::vector<data::RowShard> shards = data::shard_rows(rows, S);
        int live = 0;
        for (const data::RowShard& shard : shards)
          if (shard.rows > 0) {
            k += slot_gradient(shard.rows);
            ++live;
          }
        k += dp_combine_stats(buffers, live);
        for (const la::Index n : buffers) k += optimizer_update(n, opt);
      }
    }
  }
  return k;
}

}  // namespace

phi::KernelStats sae_dp_train_stats(const TrainShape& run,
                                    const SaeShape& shape,
                                    const DataParallelShape& dp, OptLevel level,
                                    OptimizerKind opt) {
  const la::Index v = shape.visible, h = shape.hidden;
  KernelStats k = dp_train_stats_impl(
      run, dp, {h * v, h, v * h, v}, opt, [&](la::Index rows) {
        SaeShape s = shape;
        s.batch = rows;
        return sae_gradient_stats(s, level);
      });
  k.h2d_bytes *= static_cast<double>(shape.visible);
  return k;
}

phi::KernelStats rbm_dp_train_stats(const TrainShape& run,
                                    const RbmShape& shape,
                                    const DataParallelShape& dp, OptLevel level,
                                    OptimizerKind opt) {
  const la::Index v = shape.visible, h = shape.hidden;
  KernelStats k = dp_train_stats_impl(
      run, dp, {h * v, v, h}, opt, [&](la::Index rows) {
        RbmShape s = shape;
        s.batch = rows;
        return rbm_gradient_stats(s, level);
      });
  k.h2d_bytes *= static_cast<double>(shape.visible);
  return k;
}

phi::KernelStats quant_encode_stats(la::Index batch, la::Index inputs,
                                    la::Index units) {
  KernelStats k;
  // QuantizedActivations::quantize: range scan + code loop.
  k += loop_contribution(batch * inputs, 4.0, 1.0, 0.25);
  // la::quant::encode_sigmoid: int8 GEMM + fused a_scale epilogue.
  k += gemm_contribution(batch, units, inputs);
  k += epilogue_contribution(batch * units, 1.0, 0.0);
  // la::bias_sigmoid over the output.
  k += loop_contribution(batch * units, 9.0, 1.0, 1.0);
  return k;
}

phi::KernelStats quant_encode_stats(la::Index batch,
                                    const std::vector<la::Index>& dims) {
  DEEPPHI_CHECK_MSG(dims.size() >= 2,
                    "quantized chain needs >= 2 dims, got " << dims.size());
  KernelStats k;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    k += quant_encode_stats(batch, dims[i], dims[i + 1]);
  return k;
}

phi::KernelStats sae_cluster_train_stats(const TrainShape& run,
                                         const SaeShape& shape,
                                         const ClusterShape& cl, OptLevel level,
                                         OptimizerKind opt) {
  DEEPPHI_CHECK_MSG(cl.cards >= 1, "cards must be >= 1");
  return sae_dp_train_stats(run, shape, cl.as_data_parallel(), level, opt);
}

phi::KernelStats rbm_cluster_train_stats(const TrainShape& run,
                                         const RbmShape& shape,
                                         const ClusterShape& cl, OptLevel level,
                                         OptimizerKind opt) {
  DEEPPHI_CHECK_MSG(cl.cards >= 1, "cards must be >= 1");
  return rbm_dp_train_stats(run, shape, cl.as_data_parallel(), level, opt);
}

phi::KernelStats cluster_card_combine_stats(
    const std::vector<la::Index>& buffer_sizes, int card_live_slots,
    int global_live_slots, bool root, OptimizerKind opt) {
  DEEPPHI_CHECK_MSG(card_live_slots >= 0, "negative live slot count");
  DEEPPHI_CHECK_MSG(global_live_slots >= card_live_slots,
                    "card has more live slots than the whole step");
  KernelStats k;
  for (const la::Index n : buffer_sizes) {
    for (int edge = 0; edge < card_live_slots - 1; ++edge)
      k += loop_contribution(n, 2.0, 2.0, 1.0);  // local tree axpy
    if (root) {
      if (global_live_slots > 1)
        k += loop_contribution(n, 1.0, 1.0, 1.0);  // mean scal
      k += optimizer_update(n, opt);
    }
  }
  return k;
}

ClusterCommReplay cluster_comm_replay(const TrainShape& run,
                                      const ClusterShape& cl,
                                      double message_bytes,
                                      par::Collective algorithm,
                                      const phi::InterconnectSpec& link) {
  DEEPPHI_CHECK_MSG(algorithm != par::Collective::kAuto,
                    "cluster_comm_replay needs a concrete algorithm "
                    "(resolve_collective first)");
  ClusterCommReplay replay;
  if (cl.cards <= 1) return replay;  // nothing crosses a link
  const std::int64_t updates = dp_train_updates(run, cl.as_data_parallel());
  const par::CollectiveSchedule sched =
      par::all_reduce_schedule(algorithm, message_bytes, cl.cards);
  replay.seconds = static_cast<double>(updates) * sched.time_s(link);
  replay.wire_bytes = static_cast<double>(updates) * sched.wire_bytes;
  replay.rounds = updates * sched.rounds;
  replay.collectives = updates;
  return replay;
}

std::int64_t dp_train_updates(const TrainShape& run,
                              const DataParallelShape& dp) {
  const la::Index group_capacity =
      static_cast<la::Index>(dp.slots()) * run.batch;
  std::int64_t updates = 0;
  for (int epoch = 0; epoch < run.epochs; ++epoch)
    for (la::Index begin = 0; begin < run.examples; begin += run.chunk) {
      const la::Index chunk_rows = std::min(run.chunk, run.examples - begin);
      updates += (chunk_rows + group_capacity - 1) / group_capacity;
    }
  return updates;
}

}  // namespace deepphi::core
