#include "core/init.hpp"

#include <cmath>

namespace deepphi::core {

void init_weights_uniform(la::Matrix& w, la::Index fan_in, la::Index fan_out,
                          util::Rng& rng) {
  const float r = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out + 1));
  float* p = w.data();
  for (la::Index i = 0; i < w.size(); ++i)
    p[i] = static_cast<float>(rng.uniform(-r, r));
}

void init_weights_gaussian(la::Matrix& w, float sigma, util::Rng& rng) {
  float* p = w.data();
  for (la::Index i = 0; i < w.size(); ++i)
    p[i] = static_cast<float>(rng.normal(0.0, sigma));
}

}  // namespace deepphi::core
