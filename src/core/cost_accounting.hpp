// Analytic ("model mode") work accounting: produces the KernelStats a
// training run WOULD record, without executing it. This is what lets the
// benches evaluate paper-scale configurations (e.g. a 4096×16384 autoencoder
// over 10⁶ examples) that would take hours to execute functionally on the
// build machine.
//
// Every function here replays, contribution by contribution, the exact
// kernel sequence of the corresponding real code path (sparse_autoencoder /
// autoencoder_loops / rbm / rbm_loops / rbm_taskgraph / trainer). The
// model==measure property tests pin this equality at small sizes; if you
// change a kernel sequence, change its replay here and the tests will tell
// you whether you got it right.
#pragma once

#include "core/levels.hpp"
#include "core/optimizer.hpp"
#include "la/matrix.hpp"
#include "phi/kernel_stats.hpp"

namespace deepphi::core {

struct SaeShape {
  la::Index batch = 0;
  la::Index visible = 0;
  la::Index hidden = 0;
  bool tied_weights = false;  // matrix-form only
};

struct RbmShape {
  la::Index batch = 0;
  la::Index visible = 0;
  la::Index hidden = 0;
  int cd_k = 1;
  bool sample_visible = false;
  bool gaussian_visible = false;  // VisibleType::kGaussian
};

/// Work of one SAE gradient + parameter update at the given ladder level.
phi::KernelStats sae_batch_stats(const SaeShape& shape, OptLevel level,
                                 OptimizerKind opt = OptimizerKind::kSgd);

/// Work of one RBM CD-k gradient + update. `taskgraph` selects the Fig. 6
/// step (matrix-form, cd_k == 1 only).
phi::KernelStats rbm_batch_stats(const RbmShape& shape, OptLevel level,
                                 OptimizerKind opt = OptimizerKind::kSgd,
                                 bool taskgraph = false);

/// How a training run is shaped: dataset size, batch, chunking, passes.
struct TrainShape {
  la::Index examples = 0;
  la::Index batch = 1000;
  la::Index chunk = 10000;
  int epochs = 1;
};

/// Full-run stats (chunk h2d transfers + every batch step), replicating
/// Trainer::run_loop's chunk/batch structure including short tails.
phi::KernelStats sae_train_stats(const TrainShape& run, const SaeShape& shape,
                                 OptLevel level,
                                 OptimizerKind opt = OptimizerKind::kSgd);

phi::KernelStats rbm_train_stats(const TrainShape& run, const RbmShape& shape,
                                 OptLevel level,
                                 OptimizerKind opt = OptimizerKind::kSgd,
                                 bool taskgraph = false);

/// Number of gradient steps the run performs (for reporting).
std::int64_t train_batches(const TrainShape& run);
/// Number of chunks the run transfers.
std::int64_t train_chunks(const TrainShape& run);

}  // namespace deepphi::core
