// Analytic ("model mode") work accounting: produces the KernelStats a
// training run WOULD record, without executing it. This is what lets the
// benches evaluate paper-scale configurations (e.g. a 4096×16384 autoencoder
// over 10⁶ examples) that would take hours to execute functionally on the
// build machine.
//
// Every function here replays, contribution by contribution, the exact
// kernel sequence of the corresponding real code path (sparse_autoencoder /
// autoencoder_loops / rbm / rbm_loops / rbm_taskgraph / trainer). The
// model==measure property tests pin this equality at small sizes; if you
// change a kernel sequence, change its replay here and the tests will tell
// you whether you got it right.
#pragma once

#include <vector>

#include "core/levels.hpp"
#include "core/optimizer.hpp"
#include "la/matrix.hpp"
#include "parallel/collectives.hpp"
#include "phi/kernel_stats.hpp"

namespace deepphi::core {

struct SaeShape {
  la::Index batch = 0;
  la::Index visible = 0;
  la::Index hidden = 0;
  bool tied_weights = false;  // matrix-form only
};

struct RbmShape {
  la::Index batch = 0;
  la::Index visible = 0;
  la::Index hidden = 0;
  int cd_k = 1;
  bool sample_visible = false;
  bool gaussian_visible = false;  // VisibleType::kGaussian
};

/// Work of one SAE gradient + parameter update at the given ladder level.
phi::KernelStats sae_batch_stats(const SaeShape& shape, OptLevel level,
                                 OptimizerKind opt = OptimizerKind::kSgd);

/// Work of one RBM CD-k gradient + update. `taskgraph` selects the Fig. 6
/// step (matrix-form, cd_k == 1 only).
phi::KernelStats rbm_batch_stats(const RbmShape& shape, OptLevel level,
                                 OptimizerKind opt = OptimizerKind::kSgd,
                                 bool taskgraph = false);

/// How a training run is shaped: dataset size, batch, chunking, passes.
struct TrainShape {
  la::Index examples = 0;
  la::Index batch = 1000;
  la::Index chunk = 10000;
  int epochs = 1;
};

/// Full-run stats (chunk h2d transfers + every batch step), replicating
/// Trainer::run_loop's chunk/batch structure including short tails.
phi::KernelStats sae_train_stats(const TrainShape& run, const SaeShape& shape,
                                 OptLevel level,
                                 OptimizerKind opt = OptimizerKind::kSgd);

phi::KernelStats rbm_train_stats(const TrainShape& run, const RbmShape& shape,
                                 OptLevel level,
                                 OptimizerKind opt = OptimizerKind::kSgd,
                                 bool taskgraph = false);

/// Number of gradient steps the run performs (for reporting).
std::int64_t train_batches(const TrainShape& run);
/// Number of chunks the run transfers.
std::int64_t train_chunks(const TrainShape& run);

// --- data-parallel accounting (docs/data_parallel.md) ---

/// Gradient-only work of one micro-batch at a matrix-form level — the
/// per-slot work of a data-parallel global step (no optimizer update, which
/// a data-parallel run applies once per S slots, not once per slot).
phi::KernelStats sae_gradient_stats(const SaeShape& shape, OptLevel level);
phi::KernelStats rbm_gradient_stats(const RbmShape& shape, OptLevel level);

/// Work of one Optimizer::update call on an n-element parameter buffer
/// (matrix-form levels).
phi::KernelStats optimizer_update_stats(la::Index n, OptimizerKind kind);

/// Data-parallel geometry of a training run.
struct DataParallelShape {
  int replicas = 1;
  int accumulation_steps = 1;
  int slots() const { return replicas * accumulation_steps; }
};

/// Combine work of one data-parallel global step with `live_slots` non-empty
/// gradient slots over the model's gradient buffers (element counts in
/// `buffer_sizes`): live−1 axpy contributions per buffer (the binary tree)
/// plus one mean scal per buffer. Zero work when live_slots == 1 — the
/// single-slot path adds no kernels, which is what makes it bit-identical to
/// the single-team trainer.
phi::KernelStats dp_combine_stats(const std::vector<la::Index>& buffer_sizes,
                                  int live_slots);

/// Full data-parallel run stats, replaying DataParallelTrainer's
/// chunk / group / shard structure exactly (ragged chunk tails, empty
/// slots, one optimizer update per group). With slots() == 1 this equals
/// sae_train_stats / rbm_train_stats at the same matrix-form level.
phi::KernelStats sae_dp_train_stats(const TrainShape& run,
                                    const SaeShape& shape,
                                    const DataParallelShape& dp, OptLevel level,
                                    OptimizerKind opt = OptimizerKind::kSgd);
phi::KernelStats rbm_dp_train_stats(const TrainShape& run,
                                    const RbmShape& shape,
                                    const DataParallelShape& dp, OptLevel level,
                                    OptimizerKind opt = OptimizerKind::kSgd);

/// Number of optimizer updates a data-parallel run applies.
std::int64_t dp_train_updates(const TrainShape& run,
                              const DataParallelShape& dp);

// --- cluster accounting (docs/cluster.md) ---

/// Geometry of a multi-card run: S = replicas × accumulation_steps × cards
/// global gradient slots per step, card c owning the contiguous slot block
/// [c·R·A, (c+1)·R·A).
struct ClusterShape {
  int replicas = 1;
  int accumulation_steps = 1;
  int cards = 1;
  int global_slots() const { return replicas * accumulation_steps * cards; }
  /// The flat data-parallel view: the trainer's functional work depends only
  /// on the global slot count, never on the card split.
  DataParallelShape as_data_parallel() const {
    return DataParallelShape{replicas * cards, accumulation_steps};
  }
};

/// Host-side work of a cluster run — identical to the data-parallel replay
/// at S = global_slots(), because the trainer keeps the flat global combine
/// (cards change WHERE work is charged, not what runs; docs/cluster.md).
phi::KernelStats sae_cluster_train_stats(const TrainShape& run,
                                         const SaeShape& shape,
                                         const ClusterShape& cl, OptLevel level,
                                         OptimizerKind opt = OptimizerKind::kSgd);
phi::KernelStats rbm_cluster_train_stats(const TrainShape& run,
                                         const RbmShape& shape,
                                         const ClusterShape& cl, OptLevel level,
                                         OptimizerKind opt = OptimizerKind::kSgd);

/// One card's share of a global step's combine under the cluster charging
/// model: the card folds its own live slots with a local tree (live−1 axpy
/// contributions per buffer); the root card additionally applies the mean
/// scal (when any combining happened globally) and the optimizer update
/// after the inter-card all-reduce. Summed over cards plus the collective's
/// data movement, this accounts for the same reduction the flat tree runs.
phi::KernelStats cluster_card_combine_stats(
    const std::vector<la::Index>& buffer_sizes, int card_live_slots,
    int global_live_slots, bool root, OptimizerKind opt);

/// Modeled interconnect activity of a full cluster run: one all-reduce of
/// `message_bytes` per optimizer update, under `algorithm`'s schedule on
/// `link`. Pinned equal to phi::Cluster's measured accumulation by
/// tests/cluster_test.cpp.
struct ClusterCommReplay {
  double seconds = 0;
  double wire_bytes = 0;
  std::int64_t rounds = 0;
  std::int64_t collectives = 0;
};
ClusterCommReplay cluster_comm_replay(const TrainShape& run,
                                      const ClusterShape& cl,
                                      double message_bytes,
                                      par::Collective algorithm,
                                      const phi::InterconnectSpec& link);

// --- quantized inference accounting (docs/serving.md "Precision") ---

/// Work of one quantized layer forward on a batch — the exact contribution
/// sequence of la::quant: activation quantize loop, int8 GEMM with the fused
/// a_scale epilogue, then the bias_sigmoid pass.
phi::KernelStats quant_encode_stats(la::Index batch, la::Index inputs,
                                    la::Index units);

/// QuantizedEncoder::encode over a layer chain, dims = {input, h1, h2, ...}.
phi::KernelStats quant_encode_stats(la::Index batch,
                                    const std::vector<la::Index>& dims);

}  // namespace deepphi::core
