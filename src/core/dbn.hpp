// Deep Belief Network: a stack of RBMs pre-trained greedily (Hinton &
// Salakhutdinov 2006, the paper's reference [1]). Layer k's training data is
// the hidden mean activity of layer k−1 on its own training data (the
// standard mean-field up-pass).
#pragma once

#include <cstdint>
#include <vector>

#include "core/encoder.hpp"
#include "core/rbm.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"

namespace deepphi::core {

class Dbn : public Encoder {
 public:
  /// `layer_sizes` = {visible, h1, h2, ...}; proto carries cd_k /
  /// sample_visible / init_sigma for every layer. A Gaussian visible_type in
  /// `proto` applies to the BOTTOM layer only (upper layers see hidden
  /// probabilities in (0,1) and stay Bernoulli — the standard construction).
  Dbn(std::vector<la::Index> layer_sizes, const RbmConfig& proto,
      std::uint64_t seed);

  std::size_t layers() const { return layers_.size(); }
  Rbm& layer(std::size_t k) { return layers_[k]; }
  const Rbm& layer(std::size_t k) const { return layers_[k]; }
  const std::vector<la::Index>& layer_sizes() const { return sizes_; }

  /// Greedy layer-wise pre-training; one TrainReport per RBM.
  std::vector<TrainReport> pretrain(const data::Dataset& dataset,
                                    const TrainerConfig& config);

  /// Mean-field up-pass through every layer (the Encoder inference pass).
  void encode(const la::Matrix& x, la::Matrix& out) const override;

  // Encoder interface.
  la::Index input_dim() const override { return sizes_.front(); }
  la::Index output_dim() const override { return sizes_.back(); }
  std::string describe() const override;

 private:
  std::vector<la::Index> sizes_;
  std::vector<Rbm> layers_;
};

}  // namespace deepphi::core
