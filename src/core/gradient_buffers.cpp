#include "core/gradient_buffers.hpp"

namespace deepphi::core {

void AeGradients::ensure(la::Index visible, la::Index hidden) {
  if (g_w1.rows() != hidden || g_w1.cols() != visible)
    g_w1 = la::Matrix(hidden, visible);
  if (g_b1.size() != hidden) g_b1 = la::Vector(hidden);
  if (g_w2.rows() != visible || g_w2.cols() != hidden)
    g_w2 = la::Matrix(visible, hidden);
  if (g_b2.size() != visible) g_b2 = la::Vector(visible);
}

void AeGradients::zero() {
  g_w1.zero();
  g_b1.zero();
  g_w2.zero();
  g_b2.zero();
}

void RbmGradients::ensure(la::Index visible, la::Index hidden) {
  if (g_w.rows() != hidden || g_w.cols() != visible)
    g_w = la::Matrix(hidden, visible);
  if (g_b.size() != visible) g_b = la::Vector(visible);
  if (g_c.size() != hidden) g_c = la::Vector(hidden);
}

void RbmGradients::zero() {
  g_w.zero();
  g_b.zero();
  g_c.zero();
}

}  // namespace deepphi::core
