#include "core/encoder.hpp"

#include <sstream>

namespace deepphi::core {

std::string Encoder::describe() const {
  std::ostringstream os;
  os << "Encoder " << input_dim() << " -> " << output_dim();
  return os.str();
}

}  // namespace deepphi::core
