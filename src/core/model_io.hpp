// Model checkpointing: binary serialization of the building blocks and the
// stacked models. Format mirrors data/binary_io: a magic + version header,
// the config, then raw parameter payloads — fully self-describing, so a
// loaded model needs no side information.
//
//   "DPAE"/1 — SparseAutoencoder      "DPRB"/1 — Rbm
//   "DPSA"/1 — StackedAutoencoder     "DPDB"/1 — Dbn
#pragma once

#include <string>

#include "core/dbn.hpp"
#include "core/rbm.hpp"
#include "core/sparse_autoencoder.hpp"
#include "core/stacked_autoencoder.hpp"

namespace deepphi::core {

void save_model(const SparseAutoencoder& model, const std::string& path);
SparseAutoencoder load_sae(const std::string& path);

void save_model(const Rbm& model, const std::string& path);
Rbm load_rbm(const std::string& path);

void save_model(const StackedAutoencoder& model, const std::string& path);
StackedAutoencoder load_stacked_sae(const std::string& path);

void save_model(const Dbn& model, const std::string& path);
Dbn load_dbn(const std::string& path);

}  // namespace deepphi::core
