// Model checkpointing: binary serialization of the building blocks and the
// stacked models. Format mirrors data/binary_io: a magic + version header,
// the config, then raw parameter payloads — fully self-describing, so a
// loaded model needs no side information.
//
//   "DPAE"/1 — SparseAutoencoder      "DPRB"/1 — Rbm
//   "DPSA"/1 — StackedAutoencoder     "DPDB"/1 — Dbn
//   "DPQE"/1 — QuantizedEncoder (groupwise int8; header, then per layer the
//              dims, float bias, groupwise scales, and zero-padded codes —
//              group sums are derived and rebuilt on load)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/dbn.hpp"
#include "core/encoder.hpp"
#include "core/quantized_encoder.hpp"
#include "core/rbm.hpp"
#include "core/sparse_autoencoder.hpp"
#include "core/stacked_autoencoder.hpp"

namespace deepphi::core {

void save_model(const SparseAutoencoder& model, const std::string& path);
SparseAutoencoder load_sae(const std::string& path);

void save_model(const Rbm& model, const std::string& path);
Rbm load_rbm(const std::string& path);

void save_model(const StackedAutoencoder& model, const std::string& path);
StackedAutoencoder load_stacked_sae(const std::string& path);

void save_model(const Dbn& model, const std::string& path);
Dbn load_dbn(const std::string& path);

void save_model(const QuantizedEncoder& model, const std::string& path);
std::unique_ptr<QuantizedEncoder> load_quantized(const std::string& path);

}  // namespace deepphi::core

namespace deepphi::model_io {

/// The 4-byte magic of the checkpoint at `path` ("DPAE" / "DPRB" / "DPSA" /
/// "DPDB" / "DPQE"); throws util::Error when the file cannot be opened or is
/// too short to carry a header. Does not validate the version or payload.
std::string sniff_magic(const std::string& path);

/// A loaded checkpoint plus the metadata the serve-tier registry wants to
/// expose without re-opening the file: what format it was, which numeric
/// tier it runs, and how big the checkpoint was on disk.
struct LoadedModel {
  std::unique_ptr<core::Encoder> model;
  std::string magic;       ///< 4-byte checkpoint magic, e.g. "DPSA"
  std::string precision;   ///< "fp32" or "int8"
  std::uint64_t file_bytes = 0;
};

/// Loads ANY checkpoint as its inference interface: sniffs the magic and
/// dispatches to the matching typed loader, so callers (serving, eval) need
/// no per-type flags or switches. Throws util::Error for unknown magics,
/// unsupported versions, and truncated payloads. The typed core::load_*
/// functions remain as thin wrappers for callers that need the concrete
/// training type.
LoadedModel load_any(const std::string& path);

}  // namespace deepphi::model_io
