// The shared chunk-granular training loop behind both trainers (flat
// single-team core::Trainer and the replica-parallel
// core::DataParallelTrainer): Algorithm 1's outer structure — pop a chunk
// from the Fig. 5 ring, record its h2d transfer, time it, drive the
// simulated device timeline, emit per-chunk/epoch/run telemetry, apply the
// stop conditions — with the per-chunk gradient work supplied as a callback.
//
// Extracting this shell is what keeps the two trainers in lockstep: the
// single-team path and the data-parallel path differ ONLY in how a popped
// chunk is turned into gradient steps, so every chunk-level behavior
// (ring occupancy gauges, device events, telemetry schema, target_cost /
// max_batches stops) is shared by construction rather than by duplication.
#pragma once

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "core/trainer.hpp"
#include "data/chunk_stream.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "phi/cluster.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace deepphi::core::detail {

// Copies rows [begin, begin+count) of `chunk` into the reusable batch buffer.
// Host-side staging (pointer bookkeeping on the real device), so it is not
// recorded as kernel work.
inline void slice_batch(const la::Matrix& chunk, la::Index begin,
                        la::Index count, la::Matrix& batch) {
  if (batch.rows() != count || batch.cols() != chunk.cols())
    batch = la::Matrix::uninitialized(count, chunk.cols());
  std::memcpy(batch.data(), chunk.row(begin),
              sizeof(float) * static_cast<std::size_t>(count * chunk.cols()));
}

/// What one chunk of training produced, reported by the ChunkFn callback.
struct ChunkOutcome {
  double cost_sum = 0;       // Σ of per-micro-batch costs over the chunk
  std::int64_t batches = 0;  // micro-batch gradient evaluations
  std::int64_t updates = 0;  // optimizer steps applied
  double final_cost = 0;     // cost of the chunk's last micro-batch

  // Cluster charging (populated only when config.cluster drives the run):
  // per-card modeled compute and shard-transfer bytes for the chunk, plus
  // the chunk's accumulated collective schedule on the interconnect.
  std::vector<phi::KernelStats> card_stats;
  std::vector<double> card_h2d_bytes;
  double comm_seconds = 0;
  double comm_wire_bytes = 0;
  std::int64_t comm_rounds = 0;
  std::int64_t comm_collectives = 0;
};

// RAII over the device-arena reservations a monitored training run makes.
class DeviceReservation {
 public:
  DeviceReservation(phi::Device* device, double model_bytes,
                    double workspace_bytes, double ring_bytes)
      : device_(device) {
    if (!device_) return;
    try {
      ids_.push_back(device_->alloc("model+gradients", model_bytes));
      ids_.push_back(device_->alloc("workspace", workspace_bytes));
      ids_.push_back(device_->alloc("chunk-ring", ring_bytes));
    } catch (...) {
      // A partially constructed object gets no destructor call: release
      // whatever was reserved before the OOM, then rethrow.
      for (auto id : ids_) device_->free(id);
      throw;
    }
  }
  ~DeviceReservation() {
    if (device_)
      for (auto id : ids_) device_->free(id);
  }
  DeviceReservation(const DeviceReservation&) = delete;
  DeviceReservation& operator=(const DeviceReservation&) = delete;

 private:
  phi::Device* device_;
  std::vector<phi::Device::BufferId> ids_;
};

// Same, over every card of a cluster: each card reserves ITS copy of the
// model + its slot block's gradients, its replicas' workspaces, and its
// 1/cards share of the chunk ring (the loading thread scatters each chunk's
// shards to the cards that own them).
class ClusterReservation {
 public:
  ClusterReservation(phi::Cluster* cluster, double card_model_bytes,
                     double card_workspace_bytes, double card_ring_bytes)
      : cluster_(cluster) {
    if (!cluster_) return;
    try {
      for (int c = 0; c < cluster_->cards(); ++c) {
        phi::Device& dev = cluster_->device(c);
        ids_.emplace_back(c, dev.alloc("model+gradients", card_model_bytes));
        ids_.emplace_back(c, dev.alloc("workspace", card_workspace_bytes));
        ids_.emplace_back(c, dev.alloc("chunk-ring", card_ring_bytes));
      }
    } catch (...) {
      release();
      throw;
    }
  }
  ~ClusterReservation() { release(); }
  ClusterReservation(const ClusterReservation&) = delete;
  ClusterReservation& operator=(const ClusterReservation&) = delete;

 private:
  void release() {
    if (!cluster_) return;
    for (const auto& [card, id] : ids_) cluster_->device(card).free(id);
    ids_.clear();
  }

  phi::Cluster* cluster_;
  std::vector<std::pair<int, phi::Device::BufferId>> ids_;
};

/// Runs the chunked training loop over `dataset` (any StreamingSource —
/// in-memory Dataset or mmap'd ShardedDataset). `process(chunk)` performs
/// the chunk's gradient work (called inside a StatsScope that captures the
/// chunk's KernelStats) and returns its ChunkOutcome. `model_bytes` /
/// `workspace_bytes` size the device-arena reservation for a monitored run —
/// PER CARD when config.cluster drives the run, whole-run otherwise.
template <typename ChunkFn>
TrainReport run_train_loop(const TrainerConfig& config,
                           const data::StreamingSource& dataset, la::Index dim,
                           double model_bytes, double workspace_bytes,
                           ChunkFn&& process) {
  DEEPPHI_PROFILE_SCOPE("trainer.run");
  DEEPPHI_CHECK_MSG(dataset.dim() == dim,
                    "dataset dim " << dataset.dim() << " != model visible "
                                   << dim);
  DEEPPHI_CHECK_MSG(!dataset.empty(), "empty dataset");
  DEEPPHI_CHECK_MSG(!(config.device && config.cluster),
                    "config.device and config.cluster are mutually exclusive "
                    "(a cluster owns its per-card devices)");
  phi::Cluster* cluster = config.cluster;
  if (cluster)
    DEEPPHI_CHECK_MSG(cluster->cards() == config.cards,
                      "config.cards (" << config.cards
                                       << ") != cluster cards ("
                                       << cluster->cards() << ")");

  TrainReport report;
  report.chunk_bytes = 4.0 * static_cast<double>(config.chunk_examples) * dim;
  util::Timer timer;
  phi::StatsScope scope(report.stats);

  phi::Device* device = config.device;
  const double ring_bytes =
      static_cast<double>(config.ring_chunks) * report.chunk_bytes;
  DeviceReservation reservation(device, model_bytes, workspace_bytes,
                                ring_bytes);
  ClusterReservation cluster_reservation(
      cluster, model_bytes, workspace_bytes,
      cluster ? ring_bytes / cluster->cards() : 0.0);
  const bool async_loading = config.policy == ExecPolicy::kPhiOffload;
  std::vector<double> slot_free(config.ring_chunks, 0.0);
  double last_compute_end = 0.0;

  bool stop = false;
  for (int epoch = 0; epoch < config.epochs && !stop; ++epoch) {
    data::ChunkStreamConfig stream_cfg;
    stream_cfg.chunk_examples = config.chunk_examples;
    stream_cfg.background = async_loading;
    stream_cfg.ring_chunks = config.ring_chunks;
    stream_cfg.shuffle_window = config.shuffle_window;
    // A fresh shuffle per epoch, derived only from (config.seed, epoch), so
    // the visit order is bitwise-reproducible across backings, replica
    // factorizations, and resumed runs.
    stream_cfg.shuffle_seed =
        config.seed ^ (0x9e3779b97f4a7c15ULL *
                       (static_cast<std::uint64_t>(epoch) + 1));
    data::ChunkStream stream(dataset, stream_cfg);
    const std::int64_t epoch_first_chunk = report.chunks;
    const double epoch_start_s = timer.seconds();

    while (!stop) {
      auto chunk = stream.next();
      if (!chunk) break;
      DEEPPHI_PROFILE_SCOPE("trainer.chunk");
      // How far ahead the Fig. 5 loading thread is right after this pop.
      const std::size_t ring_buffered = stream.buffered();
      static obs::Gauge& ring_gauge = obs::gauge("train.ring_buffered");
      ring_gauge.set(static_cast<double>(ring_buffered));
      util::Timer chunk_timer;
      // The chunk crosses the host→device link (Fig. 5).
      const double chunk_bytes = 4.0 * static_cast<double>(chunk->size());
      phi::record(phi::h2d_contribution(chunk_bytes));
      double transfer_end = 0.0;
      if (device) {
        const std::size_t slot =
            static_cast<std::size_t>(report.chunks) % config.ring_chunks;
        double ready = slot_free[slot];
        if (!async_loading) ready = std::max(ready, last_compute_end);
        transfer_end = device->submit_transfer(
            "chunk[" + std::to_string(report.chunks) + "] h2d", chunk_bytes,
            ready);
      }

      ChunkOutcome outcome;
      phi::KernelStats chunk_stats;
      {
        phi::StatsScope chunk_scope(chunk_stats);
        outcome = process(*chunk);
      }
      phi::record(chunk_stats);  // merge the chunk's work into report.stats
      stream.recycle(std::move(*chunk));  // buffer returns to the decode pool
      report.final_cost = outcome.final_cost;
      if (device) {
        const double compute_end = device->submit_compute(
            "chunk[" + std::to_string(report.chunks) + "] train", chunk_stats,
            transfer_end);
        slot_free[static_cast<std::size_t>(report.chunks) %
                  config.ring_chunks] = compute_end;
        last_compute_end = compute_end;
      }
      if (cluster) {
        // The cluster analogue of the device branch: each card DMAs its
        // shards and computes its share, then the chunk's collectives occupy
        // the interconnect; the step barrier frees the ring slot.
        const std::size_t slot =
            static_cast<std::size_t>(report.chunks) % config.ring_chunks;
        double ready = slot_free[slot];
        if (!async_loading) ready = std::max(ready, last_compute_end);
        const double barrier = cluster->submit_step(
            "chunk[" + std::to_string(report.chunks) + "]", outcome.card_stats,
            outcome.card_h2d_bytes, outcome.comm_seconds,
            outcome.comm_wire_bytes, outcome.comm_rounds,
            outcome.comm_collectives, ready);
        slot_free[slot] = barrier;
        last_compute_end = barrier;
      }

      report.batches += outcome.batches;
      report.updates += outcome.updates;
      static obs::Counter& batches_counter = obs::counter("train.batches");
      batches_counter.add(outcome.batches);
      const double chunk_wall_s = chunk_timer.seconds();
      report.chunk_wall_seconds.push_back(chunk_wall_s);
      const double chunk_mean =
          outcome.cost_sum / static_cast<double>(outcome.batches);
      report.chunk_mean_costs.push_back(chunk_mean);
      if (config.telemetry) {
        using obs::TelemetryField;
        config.telemetry->emit(
            "chunk",
            {TelemetryField::integer("chunk", report.chunks),
             TelemetryField::integer("epoch", epoch),
             TelemetryField::integer("batches", outcome.batches),
             TelemetryField::num("mean_cost", chunk_mean),
             TelemetryField::num("wall_s", chunk_wall_s),
             TelemetryField::num("batches_per_s",
                                 chunk_wall_s > 0
                                     ? static_cast<double>(outcome.batches) /
                                           chunk_wall_s
                                     : 0.0),
             TelemetryField::num("gflops_per_s",
                                 chunk_wall_s > 0
                                     ? chunk_stats.total_flops() / chunk_wall_s /
                                           1e9
                                     : 0.0),
             TelemetryField::integer(
                 "ring_buffered", static_cast<std::int64_t>(ring_buffered))});
      }
      ++report.chunks;
      // Algorithm 1's stop condition.
      if (config.target_cost > 0 && chunk_mean <= config.target_cost)
        stop = true;
      if (config.max_batches > 0 && report.batches >= config.max_batches)
        stop = true;
    }

    report.load_stall_seconds += stream.consumer_wait_seconds();

    if (config.telemetry) {
      using obs::TelemetryField;
      const std::int64_t epoch_chunks = report.chunks - epoch_first_chunk;
      double epoch_cost = 0;
      for (std::int64_t k = epoch_first_chunk; k < report.chunks; ++k)
        epoch_cost += report.chunk_mean_costs[static_cast<std::size_t>(k)];
      config.telemetry->emit(
          "epoch",
          {TelemetryField::integer("epoch", epoch),
           TelemetryField::integer("chunks", epoch_chunks),
           TelemetryField::num("mean_cost",
                               epoch_chunks > 0
                                   ? epoch_cost /
                                         static_cast<double>(epoch_chunks)
                                   : 0.0),
           TelemetryField::num("wall_s", timer.seconds() - epoch_start_s)});
    }
  }

  report.wall_seconds = timer.seconds();
  if (config.telemetry) {
    using obs::TelemetryField;
    // Fraction of the run's wall time NOT spent waiting on the data
    // pipeline: 1.0 = loading fully overlapped compute (Fig. 5's goal).
    const double overlap =
        report.wall_seconds > 0
            ? std::clamp(1.0 - report.load_stall_seconds / report.wall_seconds,
                         0.0, 1.0)
            : 0.0;
    config.telemetry->emit_metrics(
        "run_summary",
        {TelemetryField::integer("chunks", report.chunks),
         TelemetryField::integer("batches", report.batches),
         TelemetryField::num("final_cost", report.final_cost),
         TelemetryField::num("wall_s", report.wall_seconds),
         TelemetryField::num("gflops_per_s",
                             report.wall_seconds > 0
                                 ? report.stats.total_flops() /
                                       report.wall_seconds / 1e9
                                 : 0.0),
         TelemetryField::num("load_stall_s", report.load_stall_seconds),
         TelemetryField::num("overlap_efficiency", overlap)});
  }
  return report;
}

}  // namespace deepphi::core::detail
