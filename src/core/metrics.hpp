// Evaluation metrics and inspection helpers for trained models.
#pragma once

#include <string>

#include "core/rbm.hpp"
#include "core/sparse_autoencoder.hpp"
#include "data/dataset.hpp"

namespace deepphi::core {

/// Mean per-example squared reconstruction error of the SAE over (a sample
/// of) `dataset` (at most `max_examples` rows, front of the set).
double reconstruction_error(const SparseAutoencoder& model,
                            const data::Dataset& dataset,
                            la::Index max_examples = 1000);

/// Mean per-example squared reconstruction error of the RBM (one mean-field
/// down-up pass).
double reconstruction_error(const Rbm& model, const data::Dataset& dataset,
                            la::Index max_examples = 1000);

/// Mean hidden activation of the SAE over the sample — should approach the
/// sparsity target ρ as training proceeds.
double mean_hidden_activation(const SparseAutoencoder& model,
                              const data::Dataset& dataset,
                              la::Index max_examples = 1000);

/// Renders hidden unit `unit`'s input weights as an ASCII heat map of the
/// given image side (for patch models: side² == visible). Useful for eyeballing
/// that features localize into edge/stroke detectors.
std::string ascii_filter(const la::Matrix& w, la::Index unit, la::Index side);

/// Fraction of hidden units whose weight vector is "localized": the top 25%
/// of absolute weights carry more than `mass_threshold` of the total mass.
/// A crude but monotone feature-quality signal used by examples/tests.
double localized_filter_fraction(const la::Matrix& w,
                                 double mass_threshold = 0.5);

}  // namespace deepphi::core
