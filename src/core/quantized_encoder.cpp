#include "core/quantized_encoder.hpp"

#include <sstream>
#include <utility>

#include "core/dbn.hpp"
#include "core/rbm.hpp"
#include "core/sparse_autoencoder.hpp"
#include "core/stacked_autoencoder.hpp"
#include "util/error.hpp"

namespace deepphi::core {

QuantizedEncoder::QuantizedEncoder(std::vector<Layer> layers)
    : layers_(std::move(layers)) {
  DEEPPHI_CHECK_MSG(!layers_.empty(), "quantized encoder needs >= 1 layer");
  const la::Index group = layers_.front().w.group();
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const Layer& l = layers_[k];
    DEEPPHI_CHECK_MSG(!l.w.empty(), "quantized layer " << k << " is empty");
    DEEPPHI_CHECK_MSG(l.bias.size() == l.w.rows(),
                      "layer " << k << " bias size " << l.bias.size()
                               << " != units " << l.w.rows());
    DEEPPHI_CHECK_MSG(l.w.group() == group,
                      "layer " << k << " group " << l.w.group()
                               << " != layer 0 group " << group);
    if (k > 0)
      DEEPPHI_CHECK_MSG(l.w.cols() == layers_[k - 1].w.rows(),
                        "layer " << k << " input dim " << l.w.cols()
                                 << " != layer " << k - 1 << " output dim "
                                 << layers_[k - 1].w.rows());
  }
}

std::unique_ptr<QuantizedEncoder> QuantizedEncoder::from(const Encoder& model,
                                                         la::Index group) {
  la::quant::check_group(group);
  std::vector<Layer> layers;
  auto push = [&](const la::Matrix& w, const la::Vector& bias) {
    Layer l;
    l.w = la::quant::QuantizedWeights::quantize(w, group);
    l.bias = bias;
    layers.push_back(std::move(l));
  };
  if (const auto* sae = dynamic_cast<const SparseAutoencoder*>(&model)) {
    push(sae->w1(), sae->b1());
  } else if (const auto* rbm = dynamic_cast<const Rbm*>(&model)) {
    push(rbm->w(), rbm->c());
  } else if (const auto* stack = dynamic_cast<const StackedAutoencoder*>(&model)) {
    for (std::size_t k = 0; k < stack->layers(); ++k)
      push(stack->layer(k).w1(), stack->layer(k).b1());
  } else if (const auto* dbn = dynamic_cast<const Dbn*>(&model)) {
    for (std::size_t k = 0; k < dbn->layers(); ++k)
      push(dbn->layer(k).w(), dbn->layer(k).c());
  } else if (dynamic_cast<const QuantizedEncoder*>(&model) != nullptr) {
    throw util::Error("model is already int8-quantized");
  } else {
    throw util::Error("cannot quantize encoder type: " + model.describe());
  }
  return std::make_unique<QuantizedEncoder>(std::move(layers));
}

void QuantizedEncoder::encode(const la::Matrix& x, la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(x.cols() == input_dim(),
                    "input dim " << x.cols() << " != " << input_dim());
  // Per-call workspaces keep encode() const and concurrently callable.
  la::quant::QuantizedActivations xq;
  la::Matrix current;
  const la::Matrix* in = &x;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const Layer& l = layers_[k];
    xq.quantize(*in, l.w.group());
    la::Matrix next;
    la::quant::encode_sigmoid(xq, l.w, l.bias, next);
    current = std::move(next);
    in = &current;
  }
  out = std::move(current);
}

std::string QuantizedEncoder::describe() const {
  std::ostringstream os;
  os << "Int8 Quantized Encoder " << input_dim();
  for (const Layer& l : layers_) os << " -> " << l.w.rows();
  os << " (" << layers_.size() << (layers_.size() == 1 ? " layer" : " layers")
     << ", group " << group() << ")";
  return os.str();
}

}  // namespace deepphi::core
