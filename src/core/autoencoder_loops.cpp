#include "core/autoencoder_loops.hpp"

#include <cmath>

#include "la/simd/vec_ops.hpp"
#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::core {

namespace {

using la::Index;
using la::Matrix;
using la::Vector;

// Shared library-wide sigmoid (la/simd/vec_ops.hpp) — keeps the loop-form
// path bitwise consistent with the dispatched kernels.
using la::simd::sigmoid_scalar;

// out(B×n) = a(B×k) · bᵀ(n×k) — naive triple loop over the row-major
// operands (the forward products x·W1ᵀ, y·W2ᵀ).
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out, bool parallel) {
  phi::record(phi::naive_gemm_contribution(a.rows(), b.rows(), a.cols()));
  const Index rows = a.rows(), cols = b.rows(), k = a.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    const float* ar = a.row(r);
    float* or_ = out.row(r);
    for (Index c = 0; c < cols; ++c) {
      const float* br = b.row(c);
      float acc = 0.0f;
      for (Index p = 0; p < k; ++p) acc += ar[p] * br[p];
      or_[c] = acc;
    }
  }
}

// out(m×n) = scale · aᵀ(B×m) · b(B×n) — the gradient products delta2ᵀ·y,
// backᵀ·x.
void matmul_tn(const Matrix& a, const Matrix& b, float scale, Matrix& out,
               bool parallel) {
  phi::record(phi::naive_gemm_contribution(a.cols(), b.cols(), a.rows()));
  const Index m = a.cols(), n = b.cols(), batch = a.rows();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < m; ++r) {
    float* or_ = out.row(r);
    for (Index c = 0; c < n; ++c) or_[c] = 0.0f;
    for (Index p = 0; p < batch; ++p) {
      const float av = a(p, r);
      const float* bp = b.row(p);
      for (Index c = 0; c < n; ++c) or_[c] += av * bp[c];
    }
    for (Index c = 0; c < n; ++c) or_[c] *= scale;
  }
}

// out(B×n) = a(B×m) · b(m×n) — the back-propagation product delta2·W2.
void matmul_nn(const Matrix& a, const Matrix& b, Matrix& out, bool parallel) {
  phi::record(phi::naive_gemm_contribution(a.rows(), b.cols(), a.cols()));
  const Index rows = a.rows(), cols = b.cols(), k = a.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    const float* ar = a.row(r);
    float* or_ = out.row(r);
    for (Index c = 0; c < cols; ++c) or_[c] = 0.0f;
    for (Index p = 0; p < k; ++p) {
      const float av = ar[p];
      const float* bp = b.row(p);
      for (Index c = 0; c < cols; ++c) or_[c] += av * bp[c];
    }
  }
}

void add_bias_loop(Matrix& m, const Vector& bias, bool parallel) {
  phi::record(phi::naive_loop_contribution(m.size(), 1.0, 1.0, 1.0));
  const Index rows = m.rows(), cols = m.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    float* row = m.row(r);
    for (Index c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void sigmoid_loop(Matrix& m, bool parallel) {
  phi::record(phi::naive_loop_contribution(m.size(), 400.0, 1.0, 1.0));
  float* p = m.data();
  const Index n = m.size();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i) p[i] = sigmoid_scalar(p[i]);
}

void col_mean_loop(const Matrix& m, Vector& out, bool parallel) {
  phi::record(phi::naive_loop_contribution(m.size(), 1.0, 1.0, 0.0));
  const Index rows = m.rows(), cols = m.cols();
  const float inv = 1.0f / static_cast<float>(rows);
#pragma omp parallel for if (parallel) schedule(static)
  for (Index c = 0; c < cols; ++c) {
    double acc = 0.0;
    for (Index r = 0; r < rows; ++r) acc += m(r, c);
    out[c] = static_cast<float>(acc) * inv;
  }
}

double sum_sq_diff_loop(const Matrix& a, const Matrix& b, bool parallel) {
  phi::record(phi::naive_loop_contribution(a.size(), 3.0, 2.0, 0.0));
  const Index n = a.size();
  const float* ap = a.data();
  const float* bp = b.data();
  double acc = 0.0;
#pragma omp parallel for if (parallel) schedule(static) reduction(+ : acc)
  for (Index i = 0; i < n; ++i) {
    const double d = static_cast<double>(ap[i]) - bp[i];
    acc += d * d;
  }
  return acc;
}

double nrm2sq_loop(const Matrix& m, bool parallel) {
  phi::record(phi::naive_loop_contribution(m.size(), 2.0, 1.0, 0.0));
  const Index n = m.size();
  const float* p = m.data();
  double acc = 0.0;
#pragma omp parallel for if (parallel) schedule(static) reduction(+ : acc)
  for (Index i = 0; i < n; ++i) acc += static_cast<double>(p[i]) * p[i];
  return acc;
}

double kl_loop(float rho, const Vector& rho_hat) {
  phi::record(phi::naive_loop_contribution(rho_hat.size(), 12.0, 1.0, 0.0));
  double acc = 0.0;
  for (Index j = 0; j < rho_hat.size(); ++j) {
    const double q = std::min(std::max(static_cast<double>(rho_hat[j]), 1e-6),
                              1.0 - 1e-6);
    acc += rho * std::log(rho / q) + (1.0 - rho) * std::log((1.0 - rho) / (1.0 - q));
  }
  return acc;
}

void sub_loop(const Matrix& a, const Matrix& b, Matrix& out, bool parallel) {
  phi::record(phi::naive_loop_contribution(a.size(), 1.0, 2.0, 1.0));
  const Index n = a.size();
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i) op[i] = ap[i] - bp[i];
}

void dsigmoid_mul_loop(Matrix& delta, const Matrix& act, bool parallel) {
  phi::record(phi::naive_loop_contribution(delta.size(), 3.0, 2.0, 1.0));
  const Index n = delta.size();
  float* dp = delta.data();
  const float* yp = act.data();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i) dp[i] *= yp[i] * (1.0f - yp[i]);
}

void axpy_loop(float alpha, const Matrix& a, Matrix& b, bool parallel) {
  phi::record(phi::naive_loop_contribution(a.size(), 2.0, 2.0, 1.0));
  const Index n = a.size();
  const float* ap = a.data();
  float* bp = b.data();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i) bp[i] += alpha * ap[i];
}

void axpy_loop(float alpha, const Vector& a, Vector& b, bool parallel) {
  phi::record(phi::naive_loop_contribution(a.size(), 2.0, 2.0, 1.0));
  const Index n = a.size();
  const float* ap = a.data();
  float* bp = b.data();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i) bp[i] += alpha * ap[i];
}

void col_sum_scaled_loop(const Matrix& m, float scale, Vector& out,
                         bool parallel) {
  phi::record(phi::naive_loop_contribution(m.size(), 1.0, 1.0, 0.0));
  const Index rows = m.rows(), cols = m.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index c = 0; c < cols; ++c) {
    double acc = 0.0;
    for (Index r = 0; r < rows; ++r) acc += m(r, c);
    out[c] = static_cast<float>(acc) * scale;
  }
}

void sparsity_loop(float rho, float beta, const Vector& rho_hat, Vector& out) {
  phi::record(phi::naive_loop_contribution(rho_hat.size(), 6.0, 1.0, 1.0));
  for (Index j = 0; j < rho_hat.size(); ++j) {
    const float q =
        std::min(std::max(rho_hat[j], 1e-6f), 1.0f - 1e-6f);
    out[j] = beta * (-rho / q + (1.0f - rho) / (1.0f - q));
  }
}

void add_bias_then_dsigmoid_loops(Matrix& back, const Vector& sparse,
                                  const Matrix& y, bool parallel) {
  // Two distinct loops (two launches), mirroring the unfused granularity.
  add_bias_loop(back, sparse, parallel);
  dsigmoid_mul_loop(back, y, parallel);
}

}  // namespace

double sae_gradient_loops(const SparseAutoencoder& model, const la::Matrix& x,
                          SparseAutoencoder::Workspace& ws, AeGradients& grads,
                          bool parallel) {
  const SaeConfig& cfg = model.config();
  DEEPPHI_CHECK_MSG(!cfg.tied_weights,
                    "the loop-form (Baseline/OpenMP) step models the paper's "
                    "untied autoencoder only");
  DEEPPHI_CHECK_MSG(x.cols() == cfg.visible,
                    "input dim " << x.cols() << " != visible " << cfg.visible);
  ws.ensure(x.rows(), cfg.visible, cfg.hidden);
  grads.ensure(cfg.visible, cfg.hidden);
  const Index m = x.rows();
  const float inv_m = 1.0f / static_cast<float>(m);

  // Forward.
  matmul_nt(x, model.w1(), ws.y, parallel);
  add_bias_loop(ws.y, model.b1(), parallel);
  sigmoid_loop(ws.y, parallel);
  matmul_nt(ws.y, model.w2(), ws.z, parallel);
  add_bias_loop(ws.z, model.b2(), parallel);
  sigmoid_loop(ws.z, parallel);

  // Cost.
  col_mean_loop(ws.y, ws.rho_hat, parallel);
  const double cost =
      sum_sq_diff_loop(ws.z, x, parallel) / (2.0 * m) +
      0.5 * cfg.lambda *
          (nrm2sq_loop(model.w1(), parallel) + nrm2sq_loop(model.w2(), parallel)) +
      cfg.beta * kl_loop(cfg.rho, ws.rho_hat);

  // Output layer.
  sub_loop(ws.z, x, ws.delta2, parallel);
  dsigmoid_mul_loop(ws.delta2, ws.z, parallel);
  matmul_tn(ws.delta2, ws.y, inv_m, grads.g_w2, parallel);
  axpy_loop(cfg.lambda, model.w2(), grads.g_w2, parallel);
  col_sum_scaled_loop(ws.delta2, inv_m, grads.g_b2, parallel);

  // Hidden layer.
  matmul_nn(ws.delta2, model.w2(), ws.back, parallel);
  sparsity_loop(cfg.rho, cfg.beta, ws.rho_hat, ws.sparse);
  add_bias_then_dsigmoid_loops(ws.back, ws.sparse, ws.y, parallel);
  matmul_tn(ws.back, x, inv_m, grads.g_w1, parallel);
  axpy_loop(cfg.lambda, model.w1(), grads.g_w1, parallel);
  col_sum_scaled_loop(ws.back, inv_m, grads.g_b1, parallel);

  return cost;
}

void sae_apply_update_loops(SparseAutoencoder& model, const AeGradients& grads,
                            float lr, bool parallel) {
  axpy_loop(-lr, grads.g_w1, model.w1(), parallel);
  axpy_loop(-lr, grads.g_b1, model.b1(), parallel);
  axpy_loop(-lr, grads.g_w2, model.w2(), parallel);
  axpy_loop(-lr, grads.g_b2, model.b2(), parallel);
}

}  // namespace deepphi::core
