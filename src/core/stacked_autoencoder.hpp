// Stacked Autoencoder (paper Fig. 1): greedy layer-wise unsupervised
// pre-training. Layer k is a Sparse Autoencoder trained on the hidden
// activations of layer k−1 ("The output dataset is then used as the input
// training set of the second Autoencoder"); after pre-training, encode()
// runs the full encoder stack.
#pragma once

#include <cstdint>
#include <vector>

#include "core/encoder.hpp"
#include "core/sparse_autoencoder.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"

namespace deepphi::core {

class StackedAutoencoder : public Encoder {
 public:
  /// `layer_sizes` = {visible, h1, h2, ...}: layer k is an SAE with
  /// visible=layer_sizes[k], hidden=layer_sizes[k+1]. The paper's Table I
  /// network is {1024, 512, 256, 128}. The SAE hyperparameters of `proto`
  /// (λ, ρ, β) apply to every layer.
  StackedAutoencoder(std::vector<la::Index> layer_sizes, const SaeConfig& proto,
                     std::uint64_t seed);

  std::size_t layers() const { return layers_.size(); }
  SparseAutoencoder& layer(std::size_t k) { return layers_[k]; }
  const SparseAutoencoder& layer(std::size_t k) const { return layers_[k]; }
  const std::vector<la::Index>& layer_sizes() const { return sizes_; }

  /// Greedy layer-wise pre-training: trains layer 0 on `dataset`, encodes
  /// the dataset through it, trains layer 1 on the encodings, and so on.
  /// Returns one TrainReport per layer.
  std::vector<TrainReport> pretrain(const data::Dataset& dataset,
                                    const TrainerConfig& config);

  /// Encodes x (batch×visible) through every layer into `out`
  /// (batch×layer_sizes.back()).
  void encode(const la::Matrix& x, la::Matrix& out) const override;

  // Encoder interface.
  la::Index input_dim() const override { return sizes_.front(); }
  la::Index output_dim() const override { return sizes_.back(); }
  std::string describe() const override;

 private:
  std::vector<la::Index> sizes_;
  std::vector<SparseAutoencoder> layers_;
};

}  // namespace deepphi::core
