// Loop-form Sparse Autoencoder training step — the bottom half of the
// Table I ladder. The math is identical to SparseAutoencoder::gradient but
// every operation is a naive scalar loop (triple-loop matrix products, one
// loop per elementwise op, no blocking, no packing, no SIMD pragmas):
//
//   parallel = false → the paper's "Baseline" (sequential) row;
//   parallel = true  → the paper's "OpenMP" row ("we used OpenMP to
//                      parallelize all the loops") — same loops, each wrapped
//                      in its own parallel region.
//
// Work is recorded in the naive KernelStats class so the cost model charges
// it at scalar rates.
#pragma once

#include "core/gradient_buffers.hpp"
#include "core/sparse_autoencoder.hpp"

namespace deepphi::core {

/// Forward + backprop via naive loops; fills `grads`, returns the batch cost.
double sae_gradient_loops(const SparseAutoencoder& model, const la::Matrix& x,
                          SparseAutoencoder::Workspace& ws, AeGradients& grads,
                          bool parallel);

/// θ ← θ − lr · g via naive loops.
void sae_apply_update_loops(SparseAutoencoder& model, const AeGradients& grads,
                            float lr, bool parallel);

}  // namespace deepphi::core
