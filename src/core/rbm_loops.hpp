// Loop-form RBM CD-k step — the Baseline / OpenMP rows of the Table I
// ladder, mirroring autoencoder_loops.hpp: identical math to Rbm::gradient
// but naive scalar loops recorded in the naive KernelStats class.
// Sampling uses the same (rng.split(phase)).split(row) stream convention as
// the optimized kernels, so all ladder levels produce bit-identical
// gradients — the parity tests rely on it.
#pragma once

#include "core/gradient_buffers.hpp"
#include "core/rbm.hpp"

namespace deepphi::core {

/// CD-k gradient via naive loops; fills `grads` (descent direction), returns
/// the mean squared reconstruction error.
double rbm_gradient_loops(const Rbm& model, const la::Matrix& v1,
                          Rbm::Workspace& ws, RbmGradients& grads,
                          const util::Rng& rng, bool parallel);

/// θ ← θ − lr · g via naive loops.
void rbm_apply_update_loops(Rbm& model, const RbmGradients& grads, float lr,
                            bool parallel);

}  // namespace deepphi::core
