#include "core/rbm_loops.hpp"

#include <cmath>

#include "la/simd/vec_ops.hpp"
#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::core {

namespace {

using la::Index;
using la::Matrix;
using la::Vector;

// The shared library-wide sigmoid: bitwise identical to the dispatched
// vector kernels, so loop-form and matrix-form Bernoulli draws (u < mean)
// can never disagree by a flipped sample.
using la::simd::sigmoid_scalar;

// out(B×h) = v(B×n) · wᵀ(h×n): the hidden pre-activation product.
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out, bool parallel) {
  phi::record(phi::naive_gemm_contribution(a.rows(), b.rows(), a.cols()));
  const Index rows = a.rows(), cols = b.rows(), k = a.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    const float* ar = a.row(r);
    float* or_ = out.row(r);
    for (Index c = 0; c < cols; ++c) {
      const float* br = b.row(c);
      float acc = 0.0f;
      for (Index p = 0; p < k; ++p) acc += ar[p] * br[p];
      or_[c] = acc;
    }
  }
}

// out(B×n) = h(B×m) · w(m×n): the visible pre-activation product.
void matmul_nn(const Matrix& a, const Matrix& b, Matrix& out, bool parallel) {
  phi::record(phi::naive_gemm_contribution(a.rows(), b.cols(), a.cols()));
  const Index rows = a.rows(), cols = b.cols(), k = a.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    const float* ar = a.row(r);
    float* or_ = out.row(r);
    for (Index c = 0; c < cols; ++c) or_[c] = 0.0f;
    for (Index p = 0; p < k; ++p) {
      const float av = ar[p];
      const float* bp = b.row(p);
      for (Index c = 0; c < cols; ++c) or_[c] += av * bp[c];
    }
  }
}

// out(m×n) = scale_a · aᵀ(B×m)·b(B×n) added into out pre-scaled by
// `scale_out` (the two-phase statistics accumulation).
void matmul_tn_acc(const Matrix& a, const Matrix& b, float scale_a,
                   float scale_out, Matrix& out, bool parallel) {
  phi::record(phi::naive_gemm_contribution(a.cols(), b.cols(), a.rows()));
  const Index m = a.cols(), n = b.cols(), batch = a.rows();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < m; ++r) {
    float* or_ = out.row(r);
    for (Index c = 0; c < n; ++c) or_[c] *= scale_out;
    for (Index p = 0; p < batch; ++p) {
      const float av = scale_a * a(p, r);
      const float* bp = b.row(p);
      for (Index c = 0; c < n; ++c) or_[c] += av * bp[c];
    }
  }
}

void add_bias_loop(Matrix& m, const Vector& bias, bool parallel) {
  phi::record(phi::naive_loop_contribution(m.size(), 1.0, 1.0, 1.0));
  const Index rows = m.rows(), cols = m.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    float* row = m.row(r);
    for (Index c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void sigmoid_loop(Matrix& m, bool parallel) {
  phi::record(phi::naive_loop_contribution(m.size(), 400.0, 1.0, 1.0));
  float* p = m.data();
  const Index n = m.size();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i) p[i] = sigmoid_scalar(p[i]);
}

// Per-row substreams (base.split(r)) — the same convention as
// la::sample_bernoulli, so loop-form and matrix-form draws coincide.
void sample_loop(const Matrix& mean, Matrix& out, const util::Rng& base,
                 bool parallel) {
  phi::record(phi::naive_loop_contribution(mean.size(), 100.0, 1.0, 1.0));
  const Index rows = mean.rows(), cols = mean.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(r));
    const float* mp = mean.row(r);
    float* op = out.row(r);
    for (Index c = 0; c < cols; ++c)
      op[c] = rng.uniform_float() < mp[c] ? 1.0f : 0.0f;
  }
}

// out[c] = scale · (Σ_r pos(r,c) − Σ_r neg(r,c)) — but loop-form mirrors the
// optimized path's two col_sums + axpy as three separate loops.
void col_sum_loop(const Matrix& m, Vector& out, bool parallel) {
  phi::record(phi::naive_loop_contribution(m.size(), 1.0, 1.0, 0.0));
  const Index rows = m.rows(), cols = m.cols();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index c = 0; c < cols; ++c) {
    double acc = 0.0;
    for (Index r = 0; r < rows; ++r) acc += m(r, c);
    out[c] = static_cast<float>(acc);
  }
}

void diff_scale_loop(const Vector& pos, Vector& neg_into_out, float scale,
                     bool parallel) {
  phi::record(phi::naive_loop_contribution(pos.size(), 2.0, 2.0, 1.0));
  const Index n = pos.size();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i)
    neg_into_out[i] = (neg_into_out[i] - pos[i]) * scale;
}

double sum_sq_diff_loop(const Matrix& a, const Matrix& b, bool parallel) {
  phi::record(phi::naive_loop_contribution(a.size(), 3.0, 2.0, 0.0));
  const Index n = a.size();
  const float* ap = a.data();
  const float* bp = b.data();
  double acc = 0.0;
#pragma omp parallel for if (parallel) schedule(static) reduction(+ : acc)
  for (Index i = 0; i < n; ++i) {
    const double d = static_cast<double>(ap[i]) - bp[i];
    acc += d * d;
  }
  return acc;
}

void axpy_loop(float alpha, const Matrix& a, Matrix& b, bool parallel) {
  phi::record(phi::naive_loop_contribution(a.size(), 2.0, 2.0, 1.0));
  const Index n = a.size();
  const float* ap = a.data();
  float* bp = b.data();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i) bp[i] += alpha * ap[i];
}

void axpy_loop(float alpha, const Vector& a, Vector& b, bool parallel) {
  phi::record(phi::naive_loop_contribution(a.size(), 2.0, 2.0, 1.0));
  const Index n = a.size();
  const float* ap = a.data();
  float* bp = b.data();
#pragma omp parallel for if (parallel) schedule(static)
  for (Index i = 0; i < n; ++i) bp[i] += alpha * ap[i];
}

}  // namespace

double rbm_gradient_loops(const Rbm& model, const la::Matrix& v1,
                          Rbm::Workspace& ws, RbmGradients& grads,
                          const util::Rng& rng, bool parallel) {
  const RbmConfig& cfg = model.config();
  DEEPPHI_CHECK_MSG(cfg.visible_type == VisibleType::kBernoulli,
                    "the loop-form (Baseline/OpenMP) RBM step models the "
                    "paper's binary RBM only");
  DEEPPHI_CHECK_MSG(v1.cols() == cfg.visible,
                    "input dim " << v1.cols() << " != visible " << cfg.visible);
  ws.ensure(v1.rows(), cfg.visible, cfg.hidden);
  grads.ensure(cfg.visible, cfg.hidden);
  const Index m = v1.rows();
  const float inv_m = 1.0f / static_cast<float>(m);

  // Positive phase.
  matmul_nt(v1, model.w(), ws.h1_mean, parallel);
  add_bias_loop(ws.h1_mean, model.c(), parallel);
  sigmoid_loop(ws.h1_mean, parallel);
  sample_loop(ws.h1_mean, ws.h1_sample, rng.split(0), parallel);

  // Gibbs chain.
  for (int step = 0; step < cfg.cd_k; ++step) {
    matmul_nn(ws.h1_sample, model.w(), ws.v2, parallel);
    add_bias_loop(ws.v2, model.b(), parallel);
    sigmoid_loop(ws.v2, parallel);
    if (cfg.sample_visible)
      sample_loop(ws.v2, ws.v2, rng.split(100 + step), parallel);

    matmul_nt(ws.v2, model.w(), ws.h2_mean, parallel);
    add_bias_loop(ws.h2_mean, model.c(), parallel);
    sigmoid_loop(ws.h2_mean, parallel);
    if (step + 1 < cfg.cd_k)
      sample_loop(ws.h2_mean, ws.h1_sample, rng.split(200 + step), parallel);
  }

  // Descent gradient: g_w = (h2ᵀv2 − h1ᵀv1)/m.
  matmul_tn_acc(ws.h1_mean, v1, -inv_m, 0.0f, grads.g_w, parallel);
  matmul_tn_acc(ws.h2_mean, ws.v2, inv_m, 1.0f, grads.g_w, parallel);

  col_sum_loop(v1, grads.g_b, parallel);
  col_sum_loop(ws.v2, ws.tmp_v, parallel);
  {
    // g_b = (Σv2 − Σv1)/m, written as the same diff-scale loop shape the
    // optimized path uses.
    diff_scale_loop(grads.g_b, ws.tmp_v, inv_m, parallel);
    grads.g_b.copy_from(ws.tmp_v);
  }

  col_sum_loop(ws.h1_mean, grads.g_c, parallel);
  col_sum_loop(ws.h2_mean, ws.tmp_h, parallel);
  {
    diff_scale_loop(grads.g_c, ws.tmp_h, inv_m, parallel);
    grads.g_c.copy_from(ws.tmp_h);
  }

  return sum_sq_diff_loop(v1, ws.v2, parallel) / static_cast<double>(m);
}

void rbm_apply_update_loops(Rbm& model, const RbmGradients& grads, float lr,
                            bool parallel) {
  axpy_loop(-lr, grads.g_w, model.w(), parallel);
  axpy_loop(-lr, grads.g_b, model.b(), parallel);
  axpy_loop(-lr, grads.g_c, model.c(), parallel);
}

}  // namespace deepphi::core
