// Sparse Autoencoder (paper §II.B.1): a three-layer sigmoid network trained
// to reconstruct its input under an L2 weight penalty and a KL sparsity
// penalty on the mean hidden activations,
//
//   J(W, b) = 1/(2m) Σᵢ ‖z⁽ⁱ⁾ − x⁽ⁱ⁾‖² + λ/2 (‖W1‖² + ‖W2‖²)
//             + β Σⱼ KL(ρ ‖ ρ̂ⱼ)                               (paper eqs. 3–6)
//
// All batched math is matrix-form over the optimized kernels; the fused flag
// selects the paper's "Improved" granularity (fused elementwise kernels).
// The loop-form twin for the Baseline/OpenMP ladder levels lives in
// autoencoder_loops.hpp.
#pragma once

#include <cstdint>

#include "core/encoder.hpp"
#include "core/gradient_buffers.hpp"
#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace deepphi::core {

struct SaeConfig {
  la::Index visible = 64;
  la::Index hidden = 25;
  float lambda = 1e-4f;  // weight decay λ
  float rho = 0.05f;     // sparsity target ρ
  float beta = 3.0f;     // sparsity weight β
  /// Tied weights: the decoder is the encoder's transpose (W2 ≡ W1ᵀ), halving
  /// the parameters — the classic weight-sharing autoencoder variant.
  /// Gradients are combined so that ANY per-buffer update rule (SGD,
  /// momentum, Adagrad) preserves the tie; matrix-form levels only.
  bool tied_weights = false;
};

class SparseAutoencoder : public Encoder {
 public:
  SparseAutoencoder(SaeConfig config, std::uint64_t seed);

  const SaeConfig& config() const { return config_; }
  la::Index visible() const { return config_.visible; }
  la::Index hidden() const { return config_.hidden; }

  // Encoder interface: the hidden code is the model's inference output.
  la::Index input_dim() const override { return config_.visible; }
  la::Index output_dim() const override { return config_.hidden; }
  std::string describe() const override;

  // Parameters, exposed for optimizers/tests. W1: hidden×visible,
  // W2: visible×hidden (a transposed-weight decoder; NOT tied weights).
  la::Matrix& w1() { return w1_; }
  la::Matrix& w2() { return w2_; }
  la::Vector& b1() { return b1_; }
  la::Vector& b2() { return b2_; }
  const la::Matrix& w1() const { return w1_; }
  const la::Matrix& w2() const { return w2_; }
  const la::Vector& b1() const { return b1_; }
  const la::Vector& b2() const { return b2_; }

  /// Per-batch temporaries, reusable across steps.
  struct Workspace {
    la::Matrix y;       // batch×hidden: hidden activations
    la::Matrix z;       // batch×visible: reconstructions
    la::Matrix delta2;  // batch×visible
    la::Matrix back;    // batch×hidden: back-propagated delta
    la::Vector rho_hat; // hidden: mean activations
    la::Vector sparse;  // hidden: sparsity delta term
    la::Matrix tied_scratch;  // hidden×visible (tied-weights combine only)
    void ensure(la::Index batch, la::Index visible, la::Index hidden);
  };

  /// Forward pass: fills ws.y and ws.z from x (batch×visible).
  void forward(const la::Matrix& x, Workspace& ws, bool fused) const;

  /// Hidden activations only (stacking, serving): y = sigmoid(x·W1ᵀ + b1).
  void encode(const la::Matrix& x, la::Matrix& y) const override;

  /// Full cost J on the batch currently in ws (after forward()).
  double cost(const la::Matrix& x, Workspace& ws) const;

  /// Forward + backprop: fills `grads` with ∂J/∂θ (descent direction) and
  /// returns the batch cost. `fused` selects the Improved kernel set.
  double gradient(const la::Matrix& x, Workspace& ws, AeGradients& grads,
                  bool fused) const;

  /// Denoising form: forward on `input` (e.g. a corrupted copy), cost and
  /// output deltas against `target` (the clean data). gradient(x, ...) is
  /// gradient(x, x, ...).
  double gradient(const la::Matrix& input, const la::Matrix& target,
                  Workspace& ws, AeGradients& grads, bool fused) const;

  /// θ ← θ − lr · g (plain SGD; richer rules live in Optimizer).
  void apply_update(const AeGradients& grads, float lr);

  // --- flattened-parameter view for the batch optimizers (L-BFGS / CG) ---
  la::Index param_count() const;
  void get_params(float* out) const;
  void set_params(const float* in);
  static void flatten(const AeGradients& grads, float* out);

 private:
  SaeConfig config_;
  la::Matrix w1_, w2_;
  la::Vector b1_, b2_;
};

}  // namespace deepphi::core
