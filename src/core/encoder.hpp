// The unified inference surface of every trained model in the repository.
//
// Training kept growing per-model entry points — SparseAutoencoder::encode,
// StackedAutoencoder::encode, the old Dbn up-pass, DeepAutoencoder::encode,
// SoftmaxClassifier::probabilities — which made a serving layer impossible to
// write without a switch over concrete types. Encoder collapses them: a
// forward pass is "rows in, rows out", batched, read-only, and thread-safe
// (no Encoder implementation may mutate model state from encode()).
//
// The batched shape is the point, not a convenience: the paper's Fig. 9
// batch-size sweep shows Phi-class throughput only materializes when work
// arrives in GEMM-friendly mini-batches, and serve::InferenceServer exists to
// coalesce single-example requests into exactly this call.
#pragma once

#include <string>

#include "la/matrix.hpp"

namespace deepphi::core {

class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Columns expected of the input matrix (one example per row).
  virtual la::Index input_dim() const = 0;

  /// Columns of the output matrix encode() produces.
  virtual la::Index output_dim() const = 0;

  /// Forward pass: x is batch×input_dim, out becomes batch×output_dim.
  /// Must be const in the strong sense — callable concurrently from many
  /// threads on one shared model instance.
  virtual void encode(const la::Matrix& x, la::Matrix& out) const = 0;

  /// One-line human description ("Sparse Autoencoder 64 -> 25"), used by the
  /// eval and serve CLIs.
  virtual std::string describe() const;
};

}  // namespace deepphi::core
