// Limited-memory BFGS with the standard two-loop recursion (Liu & Nocedal),
// one of the two batch methods the paper's related work proposes for
// parallel-friendly deep network training.
#pragma once

#include "core/batch_opt.hpp"

namespace deepphi::core {

struct LbfgsConfig {
  int max_iterations = 100;
  int history = 8;           // stored (s, y) pairs
  double grad_tolerance = 1e-5;
  /// Strong-Wolfe by default: the curvature condition keeps the (s, y)
  /// pairs well-scaled (plain Armijo roughly 10x-es the Rosenbrock
  /// iteration count).
  LineSearchConfig line_search{1.0, 0.5, 1e-4, 0.9, true, 25};
};

/// Minimizes `objective` starting from `params` (updated in place).
BatchOptReport lbfgs_minimize(const Objective& objective,
                              std::vector<float>& params,
                              const LbfgsConfig& config);

}  // namespace deepphi::core
