#include "core/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/gemm.hpp"
#include "la/reduce.hpp"
#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::core {

void jacobi_eigen_symmetric(std::vector<double>& a, la::Index n,
                            std::vector<double>& eigenvalues,
                            std::vector<double>& eigenvectors, int max_sweeps,
                            double tol) {
  DEEPPHI_CHECK_MSG(static_cast<la::Index>(a.size()) == n * n,
                    "matrix size mismatch");
  const std::size_t un = static_cast<std::size_t>(n);
  eigenvectors.assign(un * un, 0.0);
  for (std::size_t i = 0; i < un; ++i) eigenvectors[i * un + i] = 1.0;

  auto off_norm = [&] {
    double s = 0;
    for (std::size_t p = 0; p < un; ++p)
      for (std::size_t q = p + 1; q < un; ++q) s += a[p * un + q] * a[p * un + q];
    return std::sqrt(2 * s);
  };
  double scale = 0;
  for (std::size_t i = 0; i < un; ++i) scale += std::fabs(a[i * un + i]);
  scale = std::max(scale, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale) break;
    for (std::size_t p = 0; p < un; ++p) {
      for (std::size_t q = p + 1; q < un; ++q) {
        const double apq = a[p * un + q];
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = a[p * un + p];
        const double aqq = a[q * un + q];
        // Classic Jacobi rotation (Golub & Van Loan §8.5).
        const double theta = (aqq - app) / (2 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < un; ++k) {
          const double akp = a[k * un + p];
          const double akq = a[k * un + q];
          a[k * un + p] = c * akp - s * akq;
          a[k * un + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < un; ++k) {
          const double apk = a[p * un + k];
          const double aqk = a[q * un + k];
          a[p * un + k] = c * apk - s * aqk;
          a[q * un + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < un; ++k) {
          const double vkp = eigenvectors[k * un + p];
          const double vkq = eigenvectors[k * un + q];
          eigenvectors[k * un + p] = c * vkp - s * vkq;
          eigenvectors[k * un + q] = s * vkp + c * vkq;
        }
      }
    }
  }
  eigenvalues.resize(un);
  for (std::size_t i = 0; i < un; ++i) eigenvalues[i] = a[i * un + i];
}

Pca Pca::fit(const data::Dataset& data, la::Index components) {
  DEEPPHI_CHECK_MSG(!data.empty(), "PCA on an empty dataset");
  const la::Index n = data.size();
  const la::Index d = data.dim();
  DEEPPHI_CHECK_MSG(components >= 1 && components <= d,
                    "components " << components << " out of [1, " << d << "]");
  DEEPPHI_CHECK_MSG(n >= 2, "PCA needs at least 2 examples");
  const std::size_t ud = static_cast<std::size_t>(d);

  Pca pca;
  // Mean in double.
  std::vector<double> mean(ud, 0.0);
  for (la::Index i = 0; i < n; ++i) {
    const float* x = data.example(i);
    for (std::size_t j = 0; j < ud; ++j) mean[j] += x[j];
  }
  for (auto& m : mean) m /= static_cast<double>(n);

  // Covariance (upper triangle, then mirrored).
  phi::record(phi::loop_contribution(n * d * d / 2, 2.0, 1.0, 0.0));
  std::vector<double> cov(ud * ud, 0.0);
  std::vector<double> centered(ud);
  for (la::Index i = 0; i < n; ++i) {
    const float* x = data.example(i);
    for (std::size_t j = 0; j < ud; ++j) centered[j] = x[j] - mean[j];
    for (std::size_t p = 0; p < ud; ++p) {
      const double cp = centered[p];
      for (std::size_t q = p; q < ud; ++q) cov[p * ud + q] += cp * centered[q];
    }
  }
  const double inv = 1.0 / static_cast<double>(n - 1);
  for (std::size_t p = 0; p < ud; ++p)
    for (std::size_t q = p; q < ud; ++q) {
      cov[p * ud + q] *= inv;
      cov[q * ud + p] = cov[p * ud + q];
    }

  std::vector<double> eigenvalues, eigenvectors;
  jacobi_eigen_symmetric(cov, d, eigenvalues, eigenvectors);

  // Sort descending, keep top-k.
  std::vector<std::size_t> order(ud);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return eigenvalues[a] > eigenvalues[b];
  });
  double total = 0, kept = 0;
  for (double v : eigenvalues) total += std::max(v, 0.0);

  pca.mean_ = la::Vector(d);
  for (std::size_t j = 0; j < ud; ++j)
    pca.mean_[static_cast<la::Index>(j)] = static_cast<float>(mean[j]);
  pca.basis_ = la::Matrix(components, d);
  pca.eigenvalues_ = la::Vector(components);
  for (la::Index k = 0; k < components; ++k) {
    const std::size_t col = order[static_cast<std::size_t>(k)];
    pca.eigenvalues_[k] = static_cast<float>(eigenvalues[col]);
    kept += std::max(eigenvalues[col], 0.0);
    for (std::size_t j = 0; j < ud; ++j)
      pca.basis_(k, static_cast<la::Index>(j)) =
          static_cast<float>(eigenvectors[j * ud + col]);
  }
  pca.explained_ratio_ = total > 0 ? kept / total : 0.0;
  return pca;
}

void Pca::encode(const la::Matrix& x, la::Matrix& code) const {
  DEEPPHI_CHECK_MSG(x.cols() == dim(), "input dim " << x.cols() << " != " << dim());
  if (code.rows() != x.rows() || code.cols() != components())
    code = la::Matrix::uninitialized(x.rows(), components());
  phi::record(phi::loop_contribution(x.size(), 1.0, 1.0, 1.0));
  // Centered copy, then one GEMM against the basis.
  la::Matrix centered = x;
  for (la::Index r = 0; r < centered.rows(); ++r) {
    float* row = centered.row(r);
    for (la::Index c = 0; c < centered.cols(); ++c) row[c] -= mean_[c];
  }
  la::gemm_nt(1.0f, centered, basis_, 0.0f, code);
}

void Pca::decode(const la::Matrix& code, la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(code.cols() == components(),
                    "code dim " << code.cols() << " != " << components());
  if (out.rows() != code.rows() || out.cols() != dim())
    out = la::Matrix::uninitialized(code.rows(), dim());
  la::gemm_nn(1.0f, code, basis_, 0.0f, out);
  phi::record(phi::loop_contribution(out.size(), 1.0, 1.0, 1.0));
  for (la::Index r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (la::Index c = 0; c < out.cols(); ++c) row[c] += mean_[c];
  }
}

double Pca::reconstruction_error(const data::Dataset& data,
                                 la::Index max_examples) const {
  DEEPPHI_CHECK_MSG(data.dim() == dim(), "dataset dim mismatch");
  const la::Index n = std::min(max_examples, data.size());
  DEEPPHI_CHECK_MSG(n > 0, "empty dataset");
  la::Matrix x = la::Matrix::uninitialized(n, dim());
  data.copy_batch(0, n, x);
  la::Matrix code, recon;
  encode(x, code);
  decode(code, recon);
  return la::sum_sq_diff(recon, x) / static_cast<double>(n);
}

}  // namespace deepphi::core
