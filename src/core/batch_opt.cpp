#include "core/batch_opt.hpp"

#include <cmath>

#include "util/error.hpp"

namespace deepphi::core {

double l2_norm(const std::vector<float>& v) { return std::sqrt(dot(v, v)); }

double dot(const std::vector<float>& v, const std::vector<float>& w) {
  DEEPPHI_CHECK_MSG(v.size() == w.size(), "dot size mismatch");
  double acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    acc += static_cast<double>(v[i]) * w[i];
  return acc;
}

namespace {

// Evaluates phi(step) = f(x0 + step*d) into (x_out, grad_out); returns
// {cost, directional derivative}.
std::pair<double, double> eval_along(const Objective& objective,
                                     const std::vector<float>& x0,
                                     const std::vector<float>& direction,
                                     double step, std::vector<float>& x_out,
                                     std::vector<float>& grad_out) {
  for (std::size_t i = 0; i < x0.size(); ++i)
    x_out[i] = x0[i] + static_cast<float>(step) * direction[i];
  const double cost = objective(x_out.data(), grad_out.data());
  return {cost, dot(grad_out, direction)};
}

LineSearchResult armijo_backtracking(const Objective& objective,
                                     const std::vector<float>& x0, double cost0,
                                     double dir_deriv,
                                     const std::vector<float>& direction,
                                     const LineSearchConfig& config,
                                     std::vector<float>& x_out,
                                     std::vector<float>& grad_out) {
  LineSearchResult result;
  double step = config.initial_step;
  for (int e = 0; e < config.max_evals; ++e) {
    const auto [cost, deriv] =
        eval_along(objective, x0, direction, step, x_out, grad_out);
    (void)deriv;
    ++result.evals;
    if (cost <= cost0 + config.armijo_c1 * step * dir_deriv) {
      result.step = step;
      result.cost = cost;
      result.success = true;
      return result;
    }
    step *= config.backtrack;
  }
  return result;
}

// Strong-Wolfe search: bracketing phase (Nocedal & Wright alg. 3.5) followed
// by bisection zoom (alg. 3.6).
LineSearchResult strong_wolfe(const Objective& objective,
                              const std::vector<float>& x0, double cost0,
                              double dir_deriv,
                              const std::vector<float>& direction,
                              const LineSearchConfig& config,
                              std::vector<float>& x_out,
                              std::vector<float>& grad_out) {
  LineSearchResult result;
  const double c1 = config.armijo_c1;
  const double c2 = config.wolfe_c2;

  auto phi = [&](double step) {
    ++result.evals;
    return eval_along(objective, x0, direction, step, x_out, grad_out);
  };
  auto accept = [&](double step, double cost) {
    result.step = step;
    result.cost = cost;
    result.success = true;
  };

  // Zoom on a bracket [lo, hi] known to contain a Wolfe point.
  auto zoom = [&](double lo, double f_lo, double hi) {
    while (result.evals < config.max_evals) {
      const double mid = 0.5 * (lo + hi);
      const auto [f_mid, d_mid] = phi(mid);
      if (f_mid > cost0 + c1 * mid * dir_deriv || f_mid >= f_lo) {
        hi = mid;
      } else {
        if (std::fabs(d_mid) <= -c2 * dir_deriv) {
          accept(mid, f_mid);
          return;
        }
        if (d_mid * (hi - lo) >= 0) hi = lo;
        lo = mid;
        f_lo = f_mid;
      }
      if (std::fabs(hi - lo) < 1e-16) break;
    }
    // Bracket collapsed: take lo if it at least satisfies Armijo.
    const auto [f_lo2, d_lo2] = phi(lo);
    (void)d_lo2;
    if (f_lo2 <= cost0 + c1 * lo * dir_deriv && lo > 0) accept(lo, f_lo2);
  };

  double prev_step = 0.0;
  double prev_cost = cost0;
  double step = config.initial_step;
  while (result.evals < config.max_evals) {
    const auto [cost, deriv] = phi(step);
    if (cost > cost0 + c1 * step * dir_deriv ||
        (result.evals > 1 && cost >= prev_cost)) {
      zoom(prev_step, prev_cost, step);
      return result;
    }
    if (std::fabs(deriv) <= -c2 * dir_deriv) {
      accept(step, cost);
      return result;
    }
    if (deriv >= 0) {
      zoom(step, cost, prev_step);
      return result;
    }
    prev_step = step;
    prev_cost = cost;
    step *= 2.0;  // expand the bracket
  }
  return result;
}

}  // namespace

LineSearchResult line_search(const Objective& objective,
                             const std::vector<float>& x0, double cost0,
                             const std::vector<float>& grad0,
                             const std::vector<float>& direction,
                             const LineSearchConfig& config,
                             std::vector<float>& x_out,
                             std::vector<float>& grad_out) {
  LineSearchResult result;
  const double dir_deriv = dot(grad0, direction);
  DEEPPHI_CHECK_MSG(x0.size() == direction.size(), "line search size mismatch");
  if (dir_deriv >= 0) return result;  // not a descent direction
  x_out.resize(x0.size());
  grad_out.resize(x0.size());
  if (config.strong_wolfe)
    return strong_wolfe(objective, x0, cost0, dir_deriv, direction, config,
                        x_out, grad_out);
  return armijo_backtracking(objective, x0, cost0, dir_deriv, direction,
                             config, x_out, grad_out);
}

}  // namespace deepphi::core
