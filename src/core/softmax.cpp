#include "core/softmax.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/init.hpp"
#include "la/blas1.hpp"
#include "la/elementwise.hpp"
#include "la/gemm.hpp"
#include "la/reduce.hpp"
#include "phi/kernel_stats.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace deepphi::core {

namespace {

// Row-wise softmax in place (max-shifted for stability); records one loop
// kernel (exp + normalize ≈ 12 flops/element).
void softmax_rows(la::Matrix& m) {
  phi::record(phi::loop_contribution(m.size(), 12.0, 1.0, 1.0));
  const la::Index rows = m.rows();
  const la::Index cols = m.cols();
#pragma omp parallel for if (m.size() >= (1 << 14)) schedule(static)
  for (la::Index r = 0; r < rows; ++r) {
    float* row = m.row(r);
    float max = row[0];
    for (la::Index c = 1; c < cols; ++c) max = std::max(max, row[c]);
    double sum = 0;
    for (la::Index c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max);
      sum += row[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (la::Index c = 0; c < cols; ++c) row[c] *= inv;
  }
}

}  // namespace

SoftmaxClassifier::SoftmaxClassifier(SoftmaxConfig config, std::uint64_t seed)
    : config_(config), w_(config.classes, config.dim), b_(config.classes) {
  DEEPPHI_CHECK_MSG(config.dim >= 1 && config.classes >= 2,
                    "softmax needs dim >= 1 and classes >= 2, got "
                        << config.dim << "/" << config.classes);
  util::Rng rng(seed, /*stream=*/0x50f7ULL);
  init_weights_uniform(w_, config.dim, config.classes, rng);
}

std::string SoftmaxClassifier::describe() const {
  std::ostringstream os;
  os << "Softmax classifier " << config_.dim << " -> " << config_.classes
     << " classes";
  return os.str();
}

void SoftmaxClassifier::probabilities(const la::Matrix& x,
                                      la::Matrix& probs) const {
  DEEPPHI_CHECK_MSG(x.cols() == config_.dim,
                    "input dim " << x.cols() << " != " << config_.dim);
  if (probs.rows() != x.rows() || probs.cols() != config_.classes)
    probs = la::Matrix::uninitialized(x.rows(), config_.classes);
  la::gemm_nt(1.0f, x, w_, 0.0f, probs, la::GemmEpilogue::bias_add(b_));
  softmax_rows(probs);
}

double SoftmaxClassifier::gradient(const la::Matrix& x,
                                   const std::vector<int>& labels,
                                   Workspace& ws, Gradients& grads) const {
  DEEPPHI_CHECK_MSG(static_cast<la::Index>(labels.size()) == x.rows(),
                    "labels size " << labels.size() << " != batch " << x.rows());
  const la::Index m = x.rows();
  const float inv_m = 1.0f / static_cast<float>(m);

  probabilities(x, ws.logits);

  // NLL and the (P − Y) residual in one pass over the label entries.
  phi::record(phi::loop_contribution(m, 4.0, 1.0, 1.0));
  double nll = 0;
  for (la::Index r = 0; r < m; ++r) {
    const int y = labels[static_cast<std::size_t>(r)];
    DEEPPHI_CHECK_MSG(y >= 0 && y < config_.classes,
                      "label " << y << " out of [0, " << config_.classes << ")");
    const float p = std::max(ws.logits(r, y), 1e-12f);
    nll -= std::log(static_cast<double>(p));
    ws.logits(r, y) -= 1.0f;  // P - Y
  }

  if (grads.g_w.rows() != config_.classes || grads.g_w.cols() != config_.dim)
    grads.g_w = la::Matrix(config_.classes, config_.dim);
  if (grads.g_b.size() != config_.classes)
    grads.g_b = la::Vector(config_.classes);
  la::gemm_tn(inv_m, ws.logits, x, 0.0f, grads.g_w);
  la::axpy(config_.lambda, w_, grads.g_w);
  la::col_sum(ws.logits, grads.g_b);
  la::scal(inv_m, grads.g_b);

  return nll * inv_m + 0.5 * config_.lambda * la::nrm2sq(w_);
}

void SoftmaxClassifier::apply_update(const Gradients& grads, float lr) {
  la::axpy(-lr, grads.g_w, w_);
  la::axpy(-lr, grads.g_b, b_);
}

std::vector<int> SoftmaxClassifier::predict(const la::Matrix& x) const {
  la::Matrix probs;
  probabilities(x, probs);
  std::vector<int> out(static_cast<std::size_t>(x.rows()));
  for (la::Index r = 0; r < x.rows(); ++r) {
    const float* row = probs.row(r);
    out[static_cast<std::size_t>(r)] = static_cast<int>(
        std::max_element(row, row + probs.cols()) - row);
  }
  return out;
}

double SoftmaxClassifier::accuracy(const la::Matrix& x,
                                   const std::vector<int>& labels) const {
  DEEPPHI_CHECK_MSG(static_cast<la::Index>(labels.size()) == x.rows(),
                    "labels size mismatch");
  DEEPPHI_CHECK_MSG(x.rows() > 0, "empty evaluation batch");
  const std::vector<int> predicted = predict(x);
  la::Index correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (predicted[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(x.rows());
}

SoftmaxClassifier::TrainReport SoftmaxClassifier::train(
    const data::Dataset& dataset, const std::vector<int>& labels,
    const TrainConfig& config) {
  DEEPPHI_CHECK_MSG(dataset.size() == static_cast<la::Index>(labels.size()),
                    "dataset/labels size mismatch");
  DEEPPHI_CHECK_MSG(dataset.dim() == config_.dim, "dataset dim mismatch");
  DEEPPHI_CHECK_MSG(!dataset.empty(), "empty dataset");
  DEEPPHI_CHECK_MSG(config.batch_size >= 1 && config.epochs >= 1,
                    "bad train config");

  TrainReport report;
  Workspace ws;
  Gradients grads;
  la::Matrix batch;
  std::vector<int> batch_labels;
  std::vector<la::Index> order(static_cast<std::size_t>(dataset.size()));
  std::iota(order.begin(), order.end(), la::Index{0});
  util::Rng rng(config.seed, /*stream=*/0x50f7b17ULL);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher–Yates on a per-epoch substream (mirrors BatchIterator; done
    // here because labels must be permuted alongside the examples).
    util::Rng r = rng.split(static_cast<std::uint64_t>(epoch));
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    r.uniform_index(static_cast<std::uint64_t>(i)))]);

    double epoch_cost = 0;
    la::Index batches = 0;
    for (la::Index begin = 0; begin < dataset.size();
         begin += config.batch_size) {
      const la::Index count =
          std::min(config.batch_size, dataset.size() - begin);
      if (batch.rows() != count || batch.cols() != dataset.dim())
        batch = la::Matrix::uninitialized(count, dataset.dim());
      batch_labels.resize(static_cast<std::size_t>(count));
      std::vector<la::Index> idx(order.begin() + begin,
                                 order.begin() + begin + count);
      dataset.copy_batch(idx, batch);
      for (la::Index i = 0; i < count; ++i)
        batch_labels[static_cast<std::size_t>(i)] =
            labels[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
      epoch_cost += gradient(batch, batch_labels, ws, grads);
      apply_update(grads, config.lr);
      ++batches;
    }
    report.epoch_costs.push_back(epoch_cost / static_cast<double>(batches));
  }
  return report;
}

}  // namespace deepphi::core
