// Parameter initialization for the unsupervised building blocks.
#pragma once

#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace deepphi::core {

/// Uniform(-r, r) with r = sqrt(6 / (fan_in + fan_out + 1)) — the standard
/// sparse-autoencoder recipe for sigmoid units.
void init_weights_uniform(la::Matrix& w, la::Index fan_in, la::Index fan_out,
                          util::Rng& rng);

/// N(0, sigma) initialization — Hinton's practical-guide default for RBMs
/// (sigma = 0.01).
void init_weights_gaussian(la::Matrix& w, float sigma, util::Rng& rng);

}  // namespace deepphi::core
