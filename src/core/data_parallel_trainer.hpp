// Shared-memory data-parallel trainer (docs/data_parallel.md): the
// DistBelief-style replica pattern the paper's scale discussion points at,
// folded into one coprocessor's 240 threads instead of a parameter-server
// cluster. R replica workers (par::ReplicaGroup), each driving its own
// OpenMP team of ~T/R threads, evaluate gradient slots on disjoint
// micro-batches of the SAME chunk — one Fig. 5 ring buffer feeds everyone —
// and a deterministic binary-tree all-reduce combines the slots before one
// optimizer update.
//
// Determinism contract (tested in tests/data_parallel_test.cpp and
// tests/cluster_test.cpp):
//   - A global step has S = replicas × accumulation_steps × cards slots.
//     Slot row ranges come from data::shard_rows(group_rows, S), and a
//     slot's RNG stream is split(update_index·S + slot): both depend only on
//     the data and S, never on which replica or card ran the slot or with
//     how many threads.
//   - The combine is a fixed binary tree over the live (non-empty) slots in
//     ascending slot order, then a mean-scale — no atomics, no arrival
//     order. Kernels are thread-count invariant, so a fixed seed and fixed S
//     give bit-identical parameters for ANY (replicas, accumulation_steps)
//     factorization of S and any replica_threads setting.
//   - With S == 1 the slot degenerates to the single-team trainer's batch:
//     same kernel sequence, same RNG streams, zero combine work — the
//     trained parameters match core::Trainer bit for bit.
//   - cards > 1 (docs/cluster.md) only re-labels WHERE slots live — card c
//     owns the contiguous block [c·R·A, (c+1)·R·A) — and charges the
//     modeled inter-card all-reduce to the cluster's interconnect. The
//     functional combine stays the flat global tree, so any factorization
//     of S into replicas × accumulation_steps × cards trains bit-identical
//     parameters.
#pragma once

#include "core/trainer.hpp"

namespace deepphi::core {

/// Data-parallel twin of core::Trainer. Trainer::train delegates here when
/// config.replicas > 1, config.accumulation_steps > 1, or config.cards > 1;
/// constructing one directly also accepts S == 1 (used by the parity
/// tests). Requires a matrix-form level and no task graph.
class DataParallelTrainer {
 public:
  explicit DataParallelTrainer(TrainerConfig config);

  const TrainerConfig& config() const { return config_; }

  /// Gradient slots per global step (replicas × accumulation_steps × cards).
  int slots() const {
    return config_.replicas * config_.accumulation_steps * config_.cards;
  }

  TrainReport train(SparseAutoencoder& model,
                    const data::StreamingSource& dataset);
  TrainReport train(Rbm& model, const data::StreamingSource& dataset);

 private:
  TrainerConfig config_;
};

}  // namespace deepphi::core
