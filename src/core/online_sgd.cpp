#include "core/online_sgd.hpp"

#include <cmath>

#include "la/blas2.hpp"
#include "la/simd/vec_ops.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "phi/kernel_stats.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace deepphi::core {

OnlineSaeTrainer::OnlineSaeTrainer(SparseAutoencoder& model, Config config)
    : model_(model),
      config_(config),
      y_(model.hidden()),
      z_(model.visible()),
      d2_(model.visible()),
      d1_(model.hidden()),
      rho_hat_(model.hidden()) {
  DEEPPHI_CHECK_MSG(config.lr > 0, "learning rate must be positive");
  DEEPPHI_CHECK_MSG(config.rho_decay >= 0 && config.rho_decay < 1,
                    "rho_decay must be in [0, 1)");
  // Start the running estimate at the sparsity target so early updates are
  // not dominated by an uninformed penalty.
  rho_hat_.fill(model.config().rho);
}

double OnlineSaeTrainer::step(const float* x) {
  const SaeConfig& cfg = model_.config();
  const la::Index v = cfg.visible;
  const la::Index h = cfg.hidden;
  const float lr = config_.lr;

  // Wrap the raw example as a vector view-by-copy (BLAS-2 needs a Vector).
  la::Vector xin = la::Vector::uninitialized(v);
  for (la::Index j = 0; j < v; ++j) xin[j] = x[j];

  // Forward: y = σ(W1·x + b1), z = σ(W2·y + b2).
  y_.copy_from(model_.b1());
  la::gemv(1.0f, model_.w1(), xin, 1.0f, y_);
  phi::record(phi::loop_contribution(h, 8.0, 1.0, 1.0));
  for (la::Index i = 0; i < h; ++i) y_[i] = la::simd::sigmoid_scalar(y_[i]);

  z_.copy_from(model_.b2());
  la::gemv(1.0f, model_.w2(), y_, 1.0f, z_);
  phi::record(phi::loop_contribution(v, 8.0, 1.0, 1.0));
  for (la::Index j = 0; j < v; ++j) z_[j] = la::simd::sigmoid_scalar(z_[j]);

  // Running mean-activation estimate.
  phi::record(phi::loop_contribution(h, 4.0, 2.0, 1.0));
  const float decay = config_.rho_decay;
  for (la::Index i = 0; i < h; ++i)
    rho_hat_[i] = decay * rho_hat_[i] + (1.0f - decay) * y_[i];

  // Output delta and reconstruction error.
  phi::record(phi::loop_contribution(v, 5.0, 2.0, 1.0));
  double recon = 0;
  for (la::Index j = 0; j < v; ++j) {
    const float diff = z_[j] - xin[j];
    recon += static_cast<double>(diff) * diff;
    d2_[j] = diff * z_[j] * (1.0f - z_[j]);
  }

  // Hidden delta with the online sparsity term.
  la::gemv_t(1.0f, model_.w2(), d2_, 0.0f, d1_);
  phi::record(phi::loop_contribution(h, 10.0, 2.0, 1.0));
  for (la::Index i = 0; i < h; ++i) {
    const float q = std::min(std::max(rho_hat_[i], 1e-6f), 1.0f - 1e-6f);
    const float sparse =
        cfg.beta * (-cfg.rho / q + (1.0f - cfg.rho) / (1.0f - q));
    d1_[i] = (d1_[i] + sparse) * y_[i] * (1.0f - y_[i]);
  }

  // Updates: weight decay as a multiplicative shrink, then rank-1 updates.
  const float shrink = 1.0f - lr * cfg.lambda;
  phi::record(phi::loop_contribution(static_cast<la::Index>(2) * v * h, 1.0,
                                     1.0, 1.0));
  {
    float* w = model_.w2().data();
    for (la::Index i = 0; i < v * h; ++i) w[i] *= shrink;
    w = model_.w1().data();
    for (la::Index i = 0; i < h * v; ++i) w[i] *= shrink;
  }
  la::ger(-lr, d2_, y_, model_.w2());
  la::ger(-lr, d1_, xin, model_.w1());
  phi::record(phi::loop_contribution(v + h, 2.0, 2.0, 1.0));
  for (la::Index j = 0; j < v; ++j) model_.b2()[j] -= lr * d2_[j];
  for (la::Index i = 0; i < h; ++i) model_.b1()[i] -= lr * d1_[i];

  return recon;
}

double OnlineSaeTrainer::train_epoch(const data::Dataset& dataset) {
  DEEPPHI_PROFILE_SCOPE("online_sgd.epoch");
  DEEPPHI_CHECK_MSG(dataset.dim() == model_.visible(),
                    "dataset dim " << dataset.dim() << " != visible "
                                   << model_.visible());
  DEEPPHI_CHECK_MSG(!dataset.empty(), "empty dataset");
  util::Timer timer;
  double total = 0;
  for (la::Index i = 0; i < dataset.size(); ++i)
    total += step(dataset.example(i));
  const double mean = total / static_cast<double>(dataset.size());
  if (config_.telemetry) {
    using obs::TelemetryField;
    const double wall_s = timer.seconds();
    config_.telemetry->emit(
        "epoch",
        {TelemetryField::integer("epoch", epochs_run_++),
         TelemetryField::integer("examples",
                                 static_cast<std::int64_t>(dataset.size())),
         TelemetryField::num("mean_cost", mean),
         TelemetryField::num("wall_s", wall_s),
         TelemetryField::num(
             "examples_per_s",
             wall_s > 0 ? static_cast<double>(dataset.size()) / wall_s : 0.0)});
  }
  return mean;
}

}  // namespace deepphi::core
