#include "core/data_parallel_trainer.hpp"

#include <algorithm>
#include <vector>

#include "core/cost_accounting.hpp"
#include "core/train_loop.hpp"
#include "data/chunk_stream.hpp"
#include "la/blas1.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "parallel/collectives.hpp"
#include "parallel/replica_group.hpp"
#include "phi/cluster.hpp"
#include "phi/interconnect.hpp"
#include "util/error.hpp"

namespace deepphi::core {

namespace {

// Model-specific hooks for the shared replica loop. Each Ops type binds one
// building block's gradient call, gradient-buffer combine, and update order
// (the update order matches core::Trainer exactly — same Optimizer state
// sequence, so S == 1 reproduces it bit for bit).
struct SaeOps {
  using Grads = AeGradients;

  static void ensure(Grads& g, const SparseAutoencoder& m) {
    g.ensure(m.visible(), m.hidden());
  }
  static double gradient(SparseAutoencoder& m, const la::Matrix& batch,
                         SparseAutoencoder::Workspace& ws, Grads& g,
                         const util::Rng&, bool fused) {
    return m.gradient(batch, ws, g, fused);
  }
  static void combine(Grads& dst, const Grads& src) {
    la::axpy(1.0f, src.g_w1, dst.g_w1);
    la::axpy(1.0f, src.g_b1, dst.g_b1);
    la::axpy(1.0f, src.g_w2, dst.g_w2);
    la::axpy(1.0f, src.g_b2, dst.g_b2);
  }
  static void scale(Grads& g, float alpha) {
    la::scal(alpha, g.g_w1);
    la::scal(alpha, g.g_b1);
    la::scal(alpha, g.g_w2);
    la::scal(alpha, g.g_b2);
  }
  static void update(Optimizer& opt, SparseAutoencoder& m, const Grads& g) {
    opt.update(m.w1(), g.g_w1);
    opt.update(m.b1(), g.g_b1);
    opt.update(m.w2(), g.g_w2);
    opt.update(m.b2(), g.g_b2);
    opt.end_step();
  }
  static double model_bytes(const SparseAutoencoder& m) {
    return 4.0 * static_cast<double>(m.param_count());
  }
  static std::vector<la::Index> buffer_sizes(const SparseAutoencoder& m) {
    return {m.w1().size(), m.b1().size(), m.w2().size(), m.b2().size()};
  }
};

struct RbmOps {
  using Grads = RbmGradients;

  static void ensure(Grads& g, const Rbm& m) {
    g.ensure(m.visible(), m.hidden());
  }
  static double gradient(Rbm& m, const la::Matrix& batch, Rbm::Workspace& ws,
                         Grads& g, const util::Rng& rng, bool fused) {
    return m.gradient(batch, ws, g, rng, fused);
  }
  static void combine(Grads& dst, const Grads& src) {
    la::axpy(1.0f, src.g_w, dst.g_w);
    la::axpy(1.0f, src.g_b, dst.g_b);
    la::axpy(1.0f, src.g_c, dst.g_c);
  }
  static void scale(Grads& g, float alpha) {
    la::scal(alpha, g.g_w);
    la::scal(alpha, g.g_b);
    la::scal(alpha, g.g_c);
  }
  static void update(Optimizer& opt, Rbm& m, const Grads& g) {
    opt.update(m.w(), g.g_w);
    opt.update(m.b(), g.g_b);
    opt.update(m.c(), g.g_c);
    opt.end_step();
  }
  static double model_bytes(const Rbm& m) {
    return 4.0 * static_cast<double>(m.w().size() + m.b().size() +
                                     m.c().size());
  }
  static std::vector<la::Index> buffer_sizes(const Rbm& m) {
    return {m.w().size(), m.b().size(), m.c().size()};
  }
};

template <typename Ops, typename Model>
TrainReport run_dp(const TrainerConfig& config, Model& model,
                   const data::StreamingSource& dataset) {
  const int R = config.replicas;
  const int A = config.accumulation_steps;
  const int C = config.cards;
  const int S = R * A * C;
  phi::Cluster* cluster = config.cluster;
  const la::Index dim = model.visible();
  const bool fused = is_fused(config.level);

  par::ReplicaGroup group(
      par::ReplicaGroupConfig{R, config.replica_threads});
  std::vector<typename Ops::Grads> grads(static_cast<std::size_t>(S));
  for (auto& g : grads) Ops::ensure(g, model);
  std::vector<typename Model::Workspace> ws(static_cast<std::size_t>(R));
  std::vector<la::Matrix> staging(static_cast<std::size_t>(R));
  Optimizer optimizer(config.optimizer);
  util::Rng sampling_base(config.seed, /*stream=*/0x5a3bULL);
  std::int64_t update_index = 0;

  static obs::Gauge& slots_gauge = obs::gauge("dp.slots");
  slots_gauge.set(static_cast<double>(S));
  static obs::Counter& updates_counter = obs::counter("dp.updates");

  // One global step consumes up to S micro-batches of the chunk at once.
  const la::Index group_capacity =
      static_cast<la::Index>(S) * config.batch_size;
  // Arena (per card under a cluster): model + the card's R·A gradient
  // slots, R concurrent 4-matrix workspaces.
  const double model_bytes = Ops::model_bytes(model);
  const double arena_model_bytes =
      model_bytes * (1.0 + static_cast<double>(cluster ? R * A : S));
  const double workspace_bytes = 4.0 * 4.0 *
                                 static_cast<double>(config.batch_size) * dim *
                                 static_cast<double>(R);

  // The inter-card combine's modeled schedule: one all-reduce of the full
  // gradient per optimizer update, with the algorithm resolved ONCE for the
  // run from the gradient message size and the active interconnect (the
  // functional combine below never changes with it — docs/cluster.md).
  const std::vector<la::Index> buffer_sizes = Ops::buffer_sizes(model);
  par::CollectiveSchedule comm_schedule;
  double comm_step_s = 0.0;
  if (C > 1) {
    const phi::InterconnectSpec link =
        cluster ? cluster->interconnect() : phi::pcie_p2p_interconnect();
    const par::Collective algorithm =
        par::resolve_collective(config.collective, model_bytes, C, link);
    comm_schedule = par::all_reduce_schedule(algorithm, model_bytes, C);
    comm_step_s = comm_schedule.time_s(link);
  }

  std::vector<double> slot_cost(static_cast<std::size_t>(S), 0.0);
  // One stats sink per (card, replica) pair, indexed c·R + r.
  std::vector<phi::KernelStats> worker_stats(static_cast<std::size_t>(C * R));
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(S));

  return detail::run_train_loop(
      config, dataset, dim, arena_model_bytes, workspace_bytes,
      [&](const la::Matrix& chunk) {
        detail::ChunkOutcome outcome;
        if (cluster) {
          outcome.card_stats.assign(static_cast<std::size_t>(C),
                                    phi::KernelStats{});
          outcome.card_h2d_bytes.assign(static_cast<std::size_t>(C), 0.0);
        }
        for (la::Index begin = 0; begin < chunk.rows();
             begin += group_capacity) {
          const la::Index rows = std::min(group_capacity, chunk.rows() - begin);
          // Slot s owns shard s — a function of (rows, S) only. Shard 0 is
          // never empty, so the combined gradient always lands in slot 0.
          const std::vector<data::RowShard> shards = data::shard_rows(rows, S);
          std::fill(slot_cost.begin(), slot_cost.end(), 0.0);
          std::fill(worker_stats.begin(), worker_stats.end(),
                    phi::KernelStats{});
          group.run([&](int r) {
            auto& batch = staging[static_cast<std::size_t>(r)];
            auto& workspace = ws[static_cast<std::size_t>(r)];
            // Replica r sweeps the cards in order, computing slot
            // (c·R + r)·A + a of card c — so card c's slot block is the
            // contiguous [c·R·A, (c+1)·R·A) and C == 1 degenerates to the
            // original slot = r·A + a loop exactly.
            for (int c = 0; c < C; ++c) {
              // Per-(card, replica) stats sink: StatsScope is thread-local,
              // so each worker measures its share of each card into its own
              // KernelStats; the sinks merge below in (card, replica) order,
              // keeping the chunk record deterministic.
              phi::StatsScope sink(
                  worker_stats[static_cast<std::size_t>(c * R + r)]);
              for (int a = 0; a < A; ++a) {
                const int slot = (c * R + r) * A + a;
                const data::RowShard& shard =
                    shards[static_cast<std::size_t>(slot)];
                if (shard.rows == 0) continue;  // ragged tail: slot sits out
                DEEPPHI_PROFILE_SCOPE("trainer.batch");
                detail::slice_batch(chunk, begin + shard.begin, shard.rows,
                                    batch);
                const util::Rng slot_rng = sampling_base.split(
                    static_cast<std::uint64_t>(update_index) *
                        static_cast<std::uint64_t>(S) +
                    static_cast<std::uint64_t>(slot));
                slot_cost[static_cast<std::size_t>(slot)] = Ops::gradient(
                    model, batch, workspace,
                    grads[static_cast<std::size_t>(slot)], slot_rng, fused);
              }
            }
          });
          for (int i = 0; i < C * R; ++i)
            phi::record(worker_stats[static_cast<std::size_t>(i)]);

          live.clear();
          for (int s = 0; s < S; ++s)
            if (shards[static_cast<std::size_t>(s)].rows > 0) live.push_back(s);
          {
            // Binary-tree all-reduce over the live slots in ascending slot
            // order — pairing depends only on live.size(), so the combined
            // sum is associatively identical run to run. live.size() == 1
            // does no kernel work at all (the S == 1 parity path).
            DEEPPHI_PROFILE_SCOPE("dp.combine");
            for (std::size_t stride = 1; stride < live.size(); stride *= 2)
              for (std::size_t i = 0; i + stride < live.size(); i += 2 * stride)
                Ops::combine(
                    grads[static_cast<std::size_t>(live[i])],
                    grads[static_cast<std::size_t>(live[i + stride])]);
            if (live.size() > 1)
              Ops::scale(grads[static_cast<std::size_t>(live.front())],
                         1.0f / static_cast<float>(live.size()));
          }
          Ops::update(optimizer, model,
                      grads[static_cast<std::size_t>(live.front())]);
          ++update_index;
          updates_counter.add();
          ++outcome.updates;
          for (int s : live) {
            outcome.cost_sum += slot_cost[static_cast<std::size_t>(s)];
            ++outcome.batches;
            outcome.final_cost = slot_cost[static_cast<std::size_t>(s)];
          }
          if (cluster) {
            // Charge the step to the cards: card c's timeline gets its
            // replicas' measured gradient work plus its analytic combine
            // share (cost_accounting keeps this equal to what the flat tree
            // really ran), its shards' h2d bytes, and — per update — the
            // resolved collective schedule on the interconnect.
            for (int c = 0; c < C; ++c) {
              auto& card = outcome.card_stats[static_cast<std::size_t>(c)];
              for (int r = 0; r < R; ++r)
                card += worker_stats[static_cast<std::size_t>(c * R + r)];
              int card_live = 0;
              la::Index card_rows = 0;
              for (int s = c * R * A; s < (c + 1) * R * A; ++s) {
                const data::RowShard& shard =
                    shards[static_cast<std::size_t>(s)];
                if (shard.rows > 0) ++card_live;
                card_rows += shard.rows;
              }
              card += cluster_card_combine_stats(
                  buffer_sizes, card_live, static_cast<int>(live.size()),
                  /*root=*/c == 0, config.optimizer.kind);
              outcome.card_h2d_bytes[static_cast<std::size_t>(c)] +=
                  4.0 * static_cast<double>(card_rows) *
                  static_cast<double>(dim);
            }
            if (C > 1) {
              outcome.comm_seconds += comm_step_s;
              outcome.comm_wire_bytes += comm_schedule.wire_bytes;
              outcome.comm_rounds += comm_schedule.rounds;
              outcome.comm_collectives += 1;
            }
          }
        }
        return outcome;
      });
}

}  // namespace

DataParallelTrainer::DataParallelTrainer(TrainerConfig config)
    : config_(config) {
  DEEPPHI_CHECK_MSG(config.batch_size >= 1, "batch_size must be >= 1");
  DEEPPHI_CHECK_MSG(config.chunk_examples >= config.batch_size,
                    "chunk_examples (" << config.chunk_examples
                                       << ") must cover at least one batch ("
                                       << config.batch_size << ")");
  DEEPPHI_CHECK_MSG(config.epochs >= 1, "epochs must be >= 1");
  DEEPPHI_CHECK_MSG(config.ring_chunks >= 1, "ring_chunks must be >= 1");
  DEEPPHI_CHECK_MSG(config.replicas >= 1, "replicas must be >= 1");
  DEEPPHI_CHECK_MSG(config.replica_threads >= 0,
                    "replica_threads must be >= 0 (0 = auto)");
  DEEPPHI_CHECK_MSG(config.accumulation_steps >= 1,
                    "accumulation_steps must be >= 1");
  DEEPPHI_CHECK_MSG(config.cards >= 1, "cards must be >= 1");
  DEEPPHI_CHECK_MSG(is_matrix_form(config.level),
                    "data-parallel training requires a matrix-form level "
                    "(the loop-form ladder levels fuse update into gradient)");
  DEEPPHI_CHECK_MSG(!config.use_taskgraph,
                    "the Fig. 6 task graph cannot be combined with "
                    "data-parallel replicas");
}

TrainReport DataParallelTrainer::train(SparseAutoencoder& model,
                                       const data::StreamingSource& dataset) {
  return run_dp<SaeOps>(config_, model, dataset);
}

TrainReport DataParallelTrainer::train(Rbm& model,
                                       const data::StreamingSource& dataset) {
  return run_dp<RbmOps>(config_, model, dataset);
}

}  // namespace deepphi::core
