// Nonlinear conjugate gradient (Polak–Ribière+ with automatic restarts) —
// the second batch method from the paper's related work (Hestenes & Stiefel
// lineage).
#pragma once

#include "core/batch_opt.hpp"

namespace deepphi::core {

struct CgConfig {
  int max_iterations = 100;
  double grad_tolerance = 1e-5;
  int restart_every = 0;  // 0 = dimension-based restart (every n iterations)
  LineSearchConfig line_search;
};

/// Minimizes `objective` starting from `params` (updated in place).
BatchOptReport cg_minimize(const Objective& objective,
                           std::vector<float>& params, const CgConfig& config);

}  // namespace deepphi::core
