// Int8 quantized inference wrapper around any of the repo's encoders.
//
// A QuantizedEncoder is a stack of {groupwise int8 weights, float bias}
// layers, each applied as la::quant::encode_sigmoid — the quantized mirror
// of every float model's per-layer sigmoid(x * W^T + b) forward pass. It
// satisfies core::Encoder, so the serving engine, batcher, eval CLI, and
// model_io::load_any all take it unchanged; --precision in deepphi_serve is
// just a choice of which Encoder to stand up.
//
// Build one offline from a trained float model (QuantizedEncoder::from, the
// deepphi_quantize CLI) and save it as a .dpqe checkpoint, or load one
// directly. Per-row dynamic activation quantization happens inside encode()
// on per-call workspaces, so encode() stays const and concurrently callable
// — the Encoder thread-safety contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "la/quant.hpp"

namespace deepphi::core {

class QuantizedEncoder : public Encoder {
 public:
  struct Layer {
    la::quant::QuantizedWeights w;  // units x inputs (hidden x visible)
    la::Vector bias;                // units
  };

  /// Takes ownership of pre-built layers (model_io load path). Validates the
  /// chain: at least one layer, matching dims between consecutive layers,
  /// bias sizes, and one common group size.
  explicit QuantizedEncoder(std::vector<Layer> layers);

  /// Quantizes a trained float model's encode path layer by layer. Supports
  /// SparseAutoencoder, Rbm, StackedAutoencoder, and Dbn; throws util::Error
  /// for other encoder types (including an already-quantized model).
  static std::unique_ptr<QuantizedEncoder> from(
      const Encoder& model, la::Index group = la::quant::kDefaultGroup);

  la::Index input_dim() const override { return layers_.front().w.cols(); }
  la::Index output_dim() const override { return layers_.back().w.rows(); }
  void encode(const la::Matrix& x, la::Matrix& out) const override;
  std::string describe() const override;

  std::size_t layers() const { return layers_.size(); }
  const Layer& layer(std::size_t k) const { return layers_[k]; }
  la::Index group() const { return layers_.front().w.group(); }

 private:
  std::vector<Layer> layers_;
};

}  // namespace deepphi::core
