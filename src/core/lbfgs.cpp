#include "core/lbfgs.hpp"

#include <cmath>
#include <deque>

#include "util/error.hpp"

namespace deepphi::core {

BatchOptReport lbfgs_minimize(const Objective& objective,
                              std::vector<float>& params,
                              const LbfgsConfig& config) {
  DEEPPHI_CHECK_MSG(config.history >= 1, "history must be >= 1");
  DEEPPHI_CHECK(objective != nullptr);
  const std::size_t n = params.size();

  BatchOptReport report;
  std::vector<float> grad(n), new_x, new_grad, direction(n);
  double cost = objective(params.data(), grad.data());
  ++report.objective_evals;
  report.initial_cost = cost;
  report.cost_history.push_back(cost);

  struct Pair {
    std::vector<float> s, y;
    double rho;
  };
  std::deque<Pair> history;

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    if (l2_norm(grad) <= config.grad_tolerance) {
      report.converged = true;
      break;
    }

    // Two-loop recursion: direction = −H·grad.
    std::vector<float> q(grad);
    std::vector<double> alpha(history.size());
    for (std::size_t i = history.size(); i-- > 0;) {
      const Pair& h = history[i];
      alpha[i] = h.rho * dot(h.s, q);
      for (std::size_t j = 0; j < n; ++j)
        q[j] -= static_cast<float>(alpha[i]) * h.y[j];
    }
    // Initial Hessian scaling γ = sᵀy / yᵀy from the newest pair.
    double gamma = 1.0;
    if (!history.empty()) {
      const Pair& h = history.back();
      const double yy = dot(h.y, h.y);
      if (yy > 0) gamma = 1.0 / (h.rho * yy);
    }
    for (std::size_t j = 0; j < n; ++j)
      q[j] = static_cast<float>(gamma * q[j]);
    for (std::size_t i = 0; i < history.size(); ++i) {
      const Pair& h = history[i];
      const double beta = h.rho * dot(h.y, q);
      for (std::size_t j = 0; j < n; ++j)
        q[j] += static_cast<float>(alpha[i] - beta) * h.s[j];
    }
    for (std::size_t j = 0; j < n; ++j) direction[j] = -q[j];

    LineSearchResult ls = line_search(objective, params, cost, grad, direction,
                                      config.line_search, new_x, new_grad);
    report.objective_evals += ls.evals;
    if (!ls.success) {
      // Fall back to steepest descent once; if that fails too, stop.
      for (std::size_t j = 0; j < n; ++j) direction[j] = -grad[j];
      ls = line_search(objective, params, cost, grad, direction,
                       config.line_search, new_x, new_grad);
      report.objective_evals += ls.evals;
      if (!ls.success) break;
      history.clear();
    }

    // Curvature pair from the accepted step.
    Pair pair;
    pair.s.resize(n);
    pair.y.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      pair.s[j] = new_x[j] - params[j];
      pair.y[j] = new_grad[j] - grad[j];
    }
    const double sy = dot(pair.s, pair.y);
    if (sy > 1e-10) {
      pair.rho = 1.0 / sy;
      history.push_back(std::move(pair));
      if (static_cast<int>(history.size()) > config.history)
        history.pop_front();
    }

    params = new_x;
    grad = new_grad;
    cost = ls.cost;
    ++report.iterations;
    report.cost_history.push_back(cost);
  }

  report.final_cost = cost;
  return report;
}

}  // namespace deepphi::core
