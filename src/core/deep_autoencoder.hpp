// Unrolled deep autoencoder with end-to-end fine-tuning — the downstream
// use the paper's pre-training exists for (Hinton & Salakhutdinov 2006, the
// paper's reference [1]): the pre-trained encoder stack is unrolled into a
// symmetric encoder/decoder network and trained by full backpropagation on
// the reconstruction error.
//
//   encoder:  x → σ(W₁x+b₁) → … → code
//   decoder:  code → … → σ(W₂'·+b₂') → x̂
//
// Initialization comes from a pre-trained StackedAutoencoder (each layer
// donates its encoder AND decoder half) or a Dbn (each RBM donates W for the
// encoder and Wᵀ for the decoder — the standard unroll). Weight ties (tied
// stacks, DBN transposes) are deliberately NOT preserved during
// fine-tuning: the unrolled network unties, as in Hinton & Salakhutdinov's
// original procedure.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dbn.hpp"
#include "core/encoder.hpp"
#include "core/optimizer.hpp"
#include "core/stacked_autoencoder.hpp"
#include "data/dataset.hpp"

namespace deepphi::core {

class DeepAutoencoder : public Encoder {
 public:
  /// Unrolls a pre-trained stacked autoencoder (encoder halves forward,
  /// decoder halves mirrored).
  explicit DeepAutoencoder(const StackedAutoencoder& pretrained);

  /// Unrolls a pre-trained DBN (Wᵀ decoders, visible biases as decoder
  /// biases).
  explicit DeepAutoencoder(const Dbn& pretrained);

  /// Total layers in the unrolled network (2 × stack depth).
  std::size_t layers() const { return layers_.size(); }
  la::Index input_dim() const override { return layers_.front().w.cols(); }
  la::Index code_dim() const { return layers_[layers_.size() / 2 - 1].w.rows(); }

  // Encoder interface: inference produces the bottleneck code.
  la::Index output_dim() const override { return code_dim(); }
  std::string describe() const override;

  struct Layer {
    la::Matrix w;  // out×in
    la::Vector b;  // out
  };
  Layer& layer(std::size_t l) { return layers_[l]; }
  const Layer& layer(std::size_t l) const { return layers_[l]; }

  struct Workspace {
    // acts[0] = input alias is not stored; acts[l] = activation after layer l.
    std::vector<la::Matrix> acts;
    std::vector<la::Matrix> deltas;
  };

  struct Gradients {
    std::vector<la::Matrix> g_w;
    std::vector<la::Vector> g_b;
  };

  /// Forward through all layers; ws.acts.back() is the reconstruction.
  void forward(const la::Matrix& x, Workspace& ws) const;

  /// Reconstruction x̂ of x.
  void reconstruct(const la::Matrix& x, la::Matrix& out) const;

  /// The bottleneck code of x.
  void encode(const la::Matrix& x, la::Matrix& out) const override;

  /// Full backprop on J = ‖x̂ − x‖²/(2m) + λ/2 Σ‖W‖²; returns J.
  double gradient(const la::Matrix& x, Workspace& ws, Gradients& grads,
                  float lambda = 0.0f) const;

  /// θ ← θ − lr · g.
  void apply_update(const Gradients& grads, float lr);

  struct FinetuneConfig {
    la::Index batch_size = 128;
    int epochs = 5;
    float lambda = 0.0f;
    OptimizerConfig optimizer{};
    std::uint64_t seed = 1;
  };

  struct FinetuneReport {
    std::vector<double> epoch_costs;  // mean batch cost per epoch
    std::int64_t batches = 0;
  };

  /// Mini-batch fine-tuning over `dataset` (shuffled each epoch).
  FinetuneReport finetune(const data::Dataset& dataset,
                          const FinetuneConfig& config);

 private:
  std::vector<Layer> layers_;
};

}  // namespace deepphi::core
