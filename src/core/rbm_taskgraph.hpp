// The RBM CD-1 gradient step expressed as the dependency DAG of paper
// Fig. 6 and executed on a par::TaskGraph, so independent matrix operations
// really run concurrently:
//
//         v1 ──► h1 ──┬──► gw_pos
//                     ├──► gc_pos
//                     └──► v2 ──┬──► gb_neg
//          gb_pos (root)        ├──► recon-error
//                               └──► h2 ──┬──► gw_neg
//                                         └──► gc_neg
//                                  combine (after all statistics)
//
// "Once V1 is calculated, then we can only compute H1 ... After getting the
// result of H1, the computations of V2 and C can run in parallel" — here C
// corresponds to the positive hidden statistics (gc_pos/gw_pos), which
// overlap with the reconstruction V2.
//
// Per-node KernelStats are collected (each node runs under its own
// StatsScope and merges into a shared sink), and exposed together with the
// node's dependency level so the Fig. 6 ablation bench can compare
// serialized vs overlapped execution under the cost model.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "core/gradient_buffers.hpp"
#include "core/rbm.hpp"
#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"
#include "phi/kernel_stats.hpp"

namespace deepphi::core {

class RbmTaskGraphStep {
 public:
  /// Builds the Fig. 6 graph for `model` (requires cd_k == 1). The model and
  /// pool must outlive the step object.
  RbmTaskGraphStep(const Rbm& model, par::ThreadPool& pool);

  /// Executes one CD-1 gradient. Fills `grads` (descent direction), returns
  /// the mean squared reconstruction error. Equivalent to
  /// model.gradient(..., fused=true) up to floating-point summation order.
  double run(const la::Matrix& v1, Rbm::Workspace& ws, RbmGradients& grads,
             const util::Rng& rng);

  /// Peak node concurrency observed during the last run.
  int last_max_concurrency() const { return graph_.last_max_concurrency(); }

  struct NodeReport {
    std::string name;
    std::size_t level = 0;        // dependency depth (Fig. 6 column)
    phi::KernelStats stats;       // work done by this node in the last run
  };
  /// Per-node work of the last run, for the ablation's overlap model.
  std::vector<NodeReport> node_reports() const;

  const par::TaskGraph& graph() const { return graph_; }

 private:
  void build_graph();

  const Rbm& model_;
  par::ThreadPool& pool_;
  par::TaskGraph graph_;

  // Per-run wiring (set by run(), read by node lambdas).
  const la::Matrix* v1_ = nullptr;
  Rbm::Workspace* ws_ = nullptr;
  RbmGradients* grads_ = nullptr;
  util::Rng rng_{0};
  double recon_error_ = 0;

  // Phase-statistic buffers (positive/negative parts kept separate so nodes
  // never write shared memory).
  la::Matrix gw_pos_, gw_neg_;
  la::Vector b_pos_, b_neg_, c_pos_, c_neg_;

  // Per-node stats of the last run (index-aligned with graph node ids).
  mutable std::mutex stats_mutex_;
  std::vector<phi::KernelStats> node_stats_;
  std::vector<std::string> node_names_;
};

}  // namespace deepphi::core
