#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "la/reduce.hpp"
#include "util/error.hpp"

namespace deepphi::core {

namespace {
la::Matrix sample_matrix(const data::Dataset& dataset, la::Index max_examples) {
  const la::Index n = std::min(max_examples, dataset.size());
  DEEPPHI_CHECK_MSG(n > 0, "empty dataset");
  la::Matrix x = la::Matrix::uninitialized(n, dataset.dim());
  dataset.copy_batch(0, n, x);
  return x;
}
}  // namespace

double reconstruction_error(const SparseAutoencoder& model,
                            const data::Dataset& dataset,
                            la::Index max_examples) {
  la::Matrix x = sample_matrix(dataset, max_examples);
  SparseAutoencoder::Workspace ws;
  model.forward(x, ws, /*fused=*/true);
  return la::sum_sq_diff(ws.z, x) / static_cast<double>(x.rows());
}

double reconstruction_error(const Rbm& model, const data::Dataset& dataset,
                            la::Index max_examples) {
  la::Matrix x = sample_matrix(dataset, max_examples);
  la::Matrix h, v;
  model.hidden_mean(x, h);
  model.visible_mean(h, v);
  return la::sum_sq_diff(v, x) / static_cast<double>(x.rows());
}

double mean_hidden_activation(const SparseAutoencoder& model,
                              const data::Dataset& dataset,
                              la::Index max_examples) {
  la::Matrix x = sample_matrix(dataset, max_examples);
  SparseAutoencoder::Workspace ws;
  model.forward(x, ws, /*fused=*/true);
  return la::sum(ws.y) / static_cast<double>(ws.y.size());
}

std::string ascii_filter(const la::Matrix& w, la::Index unit, la::Index side) {
  DEEPPHI_CHECK_MSG(unit >= 0 && unit < w.rows(), "unit " << unit << " out of "
                                                          << w.rows());
  DEEPPHI_CHECK_MSG(side * side == w.cols(),
                    "side² (" << side * side << ") != visible (" << w.cols()
                              << ")");
  const float* row = w.row(unit);
  float lo = row[0], hi = row[0];
  for (la::Index i = 0; i < w.cols(); ++i) {
    lo = std::min(lo, row[i]);
    hi = std::max(hi, row[i]);
  }
  const float span = hi - lo > 1e-12f ? hi - lo : 1.0f;
  static const char shades[] = " .:-=+*#%@";
  std::ostringstream os;
  for (la::Index r = 0; r < side; ++r) {
    for (la::Index c = 0; c < side; ++c) {
      const float t = (row[r * side + c] - lo) / span;
      const int idx = std::clamp(static_cast<int>(t * 9.999f), 0, 9);
      os << shades[idx];
    }
    os << '\n';
  }
  return os.str();
}

double localized_filter_fraction(const la::Matrix& w, double mass_threshold) {
  DEEPPHI_CHECK_MSG(w.rows() > 0 && w.cols() > 0, "empty weight matrix");
  la::Index localized = 0;
  std::vector<float> mags(static_cast<std::size_t>(w.cols()));
  for (la::Index u = 0; u < w.rows(); ++u) {
    const float* row = w.row(u);
    double total = 0;
    for (la::Index i = 0; i < w.cols(); ++i) {
      mags[static_cast<std::size_t>(i)] = std::fabs(row[i]);
      total += mags[static_cast<std::size_t>(i)];
    }
    if (total <= 0) continue;
    const std::size_t top = std::max<std::size_t>(1, mags.size() / 4);
    std::nth_element(mags.begin(), mags.begin() + top - 1, mags.end(),
                     std::greater<float>());
    double top_mass = 0;
    for (std::size_t i = 0; i < top; ++i) top_mass += mags[i];
    if (top_mass / total > mass_threshold) ++localized;
  }
  return static_cast<double>(localized) / static_cast<double>(w.rows());
}

}  // namespace deepphi::core
