// Online (per-example) SGD for the Sparse Autoencoder — the paper's future
// work #3: "we need to make our algorithm more efficient to deal with mini
// batch because online SGD is more common in practical use".
//
// One example per update, all math in BLAS-2 (gemv/ger): no batching, no
// GEMM. The KL sparsity term needs a batch statistic (ρ̂), so the online
// form uses the standard exponentially-decayed running estimate
//   ρ̂ ← decay·ρ̂ + (1−decay)·y.
//
// The flip side — and the reason the paper batches — is arithmetic
// intensity: every update streams the full weight matrices four times for
// O(v·h) flops, so the step is memory-bound; bench_online_sgd quantifies it.
#pragma once

#include <cstdint>

#include "core/sparse_autoencoder.hpp"
#include "data/dataset.hpp"

namespace deepphi::obs {
class TelemetrySink;
}

namespace deepphi::core {

class OnlineSaeTrainer {
 public:
  struct Config {
    float lr = 0.1f;
    float rho_decay = 0.99f;  // running ρ̂ decay
    /// Optional JSONL sink: train_epoch() emits one "epoch" record
    /// (examples, mean cost, wall seconds, examples/s). Must outlive the
    /// trainer; null disables emission.
    obs::TelemetrySink* telemetry = nullptr;
  };

  /// Binds to `model` (must outlive the trainer).
  OnlineSaeTrainer(SparseAutoencoder& model, Config config);

  /// One online update on a single example (length = model.visible()).
  /// Returns the example's squared reconstruction error.
  double step(const float* x);

  /// One pass over `dataset` in order; returns the mean squared
  /// reconstruction error over the epoch.
  double train_epoch(const data::Dataset& dataset);

  /// The running mean-activation estimate.
  const la::Vector& rho_hat() const { return rho_hat_; }

 private:
  SparseAutoencoder& model_;
  Config config_;
  la::Vector y_, z_, d2_, d1_, rho_hat_;
  std::int64_t epochs_run_ = 0;
};

}  // namespace deepphi::core
