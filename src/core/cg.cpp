#include "core/cg.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace deepphi::core {

BatchOptReport cg_minimize(const Objective& objective,
                           std::vector<float>& params, const CgConfig& config) {
  DEEPPHI_CHECK(objective != nullptr);
  const std::size_t n = params.size();
  const int restart =
      config.restart_every > 0
          ? config.restart_every
          : std::max(1, static_cast<int>(std::min<std::size_t>(n, 1000)));

  BatchOptReport report;
  std::vector<float> grad(n), new_x, new_grad, direction(n);
  double cost = objective(params.data(), grad.data());
  ++report.objective_evals;
  report.initial_cost = cost;
  report.cost_history.push_back(cost);

  for (std::size_t j = 0; j < n; ++j) direction[j] = -grad[j];
  int since_restart = 0;

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    if (l2_norm(grad) <= config.grad_tolerance) {
      report.converged = true;
      break;
    }

    LineSearchResult ls = line_search(objective, params, cost, grad, direction,
                                      config.line_search, new_x, new_grad);
    report.objective_evals += ls.evals;
    if (!ls.success) {
      // Restart with steepest descent; stop if even that fails.
      for (std::size_t j = 0; j < n; ++j) direction[j] = -grad[j];
      since_restart = 0;
      ls = line_search(objective, params, cost, grad, direction,
                       config.line_search, new_x, new_grad);
      report.objective_evals += ls.evals;
      if (!ls.success) break;
    }

    // Polak–Ribière+ beta from the accepted gradient pair.
    double num = 0, den = 0;
    for (std::size_t j = 0; j < n; ++j) {
      num += static_cast<double>(new_grad[j]) * (new_grad[j] - grad[j]);
      den += static_cast<double>(grad[j]) * grad[j];
    }
    double beta = den > 0 ? std::max(0.0, num / den) : 0.0;
    ++since_restart;
    if (since_restart >= restart) {
      beta = 0.0;
      since_restart = 0;
    }

    for (std::size_t j = 0; j < n; ++j)
      direction[j] = -new_grad[j] + static_cast<float>(beta) * direction[j];

    params = new_x;
    grad = new_grad;
    cost = ls.cost;
    ++report.iterations;
    report.cost_history.push_back(cost);
  }

  report.final_cost = cost;
  return report;
}

}  // namespace deepphi::core
