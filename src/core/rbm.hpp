// Restricted Boltzmann Machine (paper §II.B.2): binary/binary energy model
//
//   E(v, h) = −bᵀv − cᵀh − hᵀWv                         (paper eq. 7)
//   p(h_i = 1 | v) = sigmoid(c_i + W_{i·} v)            (paper eq. 9)
//   p(v_j = 1 | h) = sigmoid(b_j + W_{·j}ᵀ h)           (paper eq. 8)
//
// trained by CD-k (Hinton's contrastive divergence, paper eqs. 10–13):
// positive statistics from the data, negative statistics after k steps of
// Gibbs sampling started at the data. Gradients are returned as a DESCENT
// direction on the (approximate) negative log-likelihood, so every
// optimizer in the repo uniformly does θ ← θ − lr·g.
//
// The fused flag selects the Improved kernel granularity (fused
// bias+sigmoid+sample); the loop-form twin for the Baseline/OpenMP levels
// lives in rbm_loops.hpp, and the Fig. 6 concurrent version in
// rbm_taskgraph.hpp.
#pragma once

#include <cstdint>

#include "core/encoder.hpp"
#include "core/gradient_buffers.hpp"
#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace deepphi::core {

/// Visible-unit family. Bernoulli (binary, sigmoid mean) is the paper's
/// model; Gaussian (linear mean, unit variance) extends it to continuous
/// data such as natural-image patches.
enum class VisibleType { kBernoulli, kGaussian };

struct RbmConfig {
  la::Index visible = 64;
  la::Index hidden = 25;
  int cd_k = 1;                 // Gibbs steps per gradient
  bool sample_visible = false;  // sample v during Gibbs (default: mean field)
  VisibleType visible_type = VisibleType::kBernoulli;
  float init_sigma = 0.01f;     // N(0, σ) weight init
};

class Rbm : public Encoder {
 public:
  Rbm(RbmConfig config, std::uint64_t seed);

  const RbmConfig& config() const { return config_; }
  la::Index visible() const { return config_.visible; }
  la::Index hidden() const { return config_.hidden; }

  // Encoder interface: inference is the deterministic mean-field up-pass
  // p(h|v) — no Gibbs noise, so serving stays reproducible.
  la::Index input_dim() const override { return config_.visible; }
  la::Index output_dim() const override { return config_.hidden; }
  void encode(const la::Matrix& x, la::Matrix& out) const override {
    hidden_mean(x, out);
  }
  std::string describe() const override;

  la::Matrix& w() { return w_; }   // hidden×visible
  la::Vector& b() { return b_; }   // visible bias
  la::Vector& c() { return c_; }   // hidden bias
  const la::Matrix& w() const { return w_; }
  const la::Vector& b() const { return b_; }
  const la::Vector& c() const { return c_; }

  struct Workspace {
    la::Matrix h1_mean;   // batch×hidden: p(h|v1)
    la::Matrix h1_sample; // batch×hidden: sampled h1
    la::Matrix v2;        // batch×visible: reconstruction (mean or sample)
    la::Matrix h2_mean;   // batch×hidden: p(h|v2)
    la::Vector tmp_v;     // visible-sized scratch
    la::Vector tmp_h;     // hidden-sized scratch
    void ensure(la::Index batch, la::Index visible, la::Index hidden);
  };

  /// p(h=1|v) into `h` (batch×hidden), always fused (inference path).
  void hidden_mean(const la::Matrix& v, la::Matrix& h) const;

  /// p(v=1|h) into `v` (batch×visible).
  void visible_mean(const la::Matrix& h, la::Matrix& v) const;

  /// One CD-k gradient on batch v1. `rng` supplies the Gibbs noise (pass a
  /// distinct substream per step for reproducibility). Returns the mean
  /// per-example squared reconstruction error ‖v1 − v2‖²/m.
  double gradient(const la::Matrix& v1, Workspace& ws, RbmGradients& grads,
                  const util::Rng& rng, bool fused) const;

  /// θ ← θ − lr · g.
  void apply_update(const RbmGradients& grads, float lr);

  /// Mean free energy over the batch — the standard monitoring quantity.
  /// Bernoulli: F(v) = −bᵀv − Σ_i softplus(c_i + W_{i·}v).
  /// Gaussian:  F(v) = ½‖v − b‖² − Σ_i softplus(c_i + W_{i·}v).
  double free_energy(const la::Matrix& v, Workspace& ws) const;

 private:
  RbmConfig config_;
  la::Matrix w_;
  la::Vector b_, c_;
};

}  // namespace deepphi::core
