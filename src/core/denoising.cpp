#include "core/denoising.hpp"

#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::core {

void mask_corrupt(const la::Matrix& clean, la::Matrix& corrupted,
                  float mask_prob, const util::Rng& base) {
  DEEPPHI_CHECK_MSG(mask_prob >= 0.0f && mask_prob < 1.0f,
                    "mask_prob must be in [0, 1), got " << mask_prob);
  if (corrupted.rows() != clean.rows() || corrupted.cols() != clean.cols())
    corrupted = la::Matrix::uninitialized(clean.rows(), clean.cols());
  phi::record(phi::loop_contribution(clean.size(), 12.0, 1.0, 1.0));
  const la::Index rows = clean.rows();
  const la::Index cols = clean.cols();
#pragma omp parallel for if (clean.size() >= (1 << 14)) schedule(static)
  for (la::Index r = 0; r < rows; ++r) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(r));
    const float* src = clean.row(r);
    float* dst = corrupted.row(r);
    for (la::Index c = 0; c < cols; ++c)
      dst[c] = rng.uniform_float() < mask_prob ? 0.0f : src[c];
  }
}

double sae_denoising_gradient(const SparseAutoencoder& model,
                              const la::Matrix& clean,
                              la::Matrix& corrupted_buf,
                              SparseAutoencoder::Workspace& ws,
                              AeGradients& grads, float mask_prob,
                              const util::Rng& rng, bool fused) {
  mask_corrupt(clean, corrupted_buf, mask_prob, rng);
  return model.gradient(corrupted_buf, clean, ws, grads, fused);
}

}  // namespace deepphi::core
