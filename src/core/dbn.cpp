#include "core/dbn.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace deepphi::core {

Dbn::Dbn(std::vector<la::Index> layer_sizes, const RbmConfig& proto,
         std::uint64_t seed)
    : sizes_(std::move(layer_sizes)) {
  DEEPPHI_CHECK_MSG(sizes_.size() >= 2, "need at least two layer sizes, got "
                                            << sizes_.size());
  for (std::size_t k = 0; k + 1 < sizes_.size(); ++k) {
    RbmConfig cfg = proto;
    cfg.visible = sizes_[k];
    cfg.hidden = sizes_[k + 1];
    // Gaussian visibles only make sense against raw data: upper layers train
    // on hidden probabilities and stay Bernoulli.
    if (k > 0) cfg.visible_type = VisibleType::kBernoulli;
    layers_.emplace_back(cfg, seed + k);
  }
}

std::vector<TrainReport> Dbn::pretrain(const data::Dataset& dataset,
                                       const TrainerConfig& config) {
  DEEPPHI_CHECK_MSG(dataset.dim() == sizes_.front(),
                    "dataset dim " << dataset.dim() << " != input layer "
                                   << sizes_.front());
  std::vector<TrainReport> reports;
  Trainer trainer(config);

  data::Dataset current;
  const data::Dataset* input = &dataset;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    reports.push_back(trainer.train(layers_[k], *input));
    if (k + 1 == layers_.size()) break;

    data::Dataset next(input->size(), layers_[k].hidden());
    const la::Index enc_batch = std::min<la::Index>(config.batch_size, 4096);
    la::Matrix in_batch, out_batch;
    for (la::Index begin = 0; begin < input->size(); begin += enc_batch) {
      const la::Index count = std::min(enc_batch, input->size() - begin);
      if (in_batch.rows() != count || in_batch.cols() != input->dim())
        in_batch = la::Matrix::uninitialized(count, input->dim());
      input->copy_batch(begin, count, in_batch);
      layers_[k].hidden_mean(in_batch, out_batch);
      for (la::Index r = 0; r < count; ++r)
        std::copy(out_batch.row(r), out_batch.row(r) + out_batch.cols(),
                  next.example(begin + r));
    }
    current = std::move(next);
    input = &current;
  }
  return reports;
}

std::string Dbn::describe() const {
  std::ostringstream os;
  os << "DBN";
  for (std::size_t k = 0; k < sizes_.size(); ++k)
    os << (k == 0 ? " " : " -> ") << sizes_[k];
  os << " (" << layers_.size() << " RBMs)";
  return os.str();
}

void Dbn::encode(const la::Matrix& x, la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(x.cols() == sizes_.front(),
                    "input dim " << x.cols() << " != " << sizes_.front());
  la::Matrix current = x;
  la::Matrix next;
  for (const auto& layer : layers_) {
    layer.hidden_mean(current, next);
    current = std::move(next);
    next = la::Matrix();
  }
  out = std::move(current);
}

}  // namespace deepphi::core
