#include "core/rbm_taskgraph.hpp"

#include "la/blas1.hpp"
#include "la/elementwise.hpp"
#include "la/gemm.hpp"
#include "la/reduce.hpp"
#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::core {

RbmTaskGraphStep::RbmTaskGraphStep(const Rbm& model, par::ThreadPool& pool)
    : model_(model), pool_(pool) {
  DEEPPHI_CHECK_MSG(model.config().cd_k == 1,
                    "the Fig. 6 graph is a CD-1 step; cd_k = "
                        << model.config().cd_k);
  DEEPPHI_CHECK_MSG(model.config().visible_type == VisibleType::kBernoulli,
                    "the Fig. 6 graph models the paper's binary RBM");
  gw_pos_ = la::Matrix(model.hidden(), model.visible());
  gw_neg_ = la::Matrix(model.hidden(), model.visible());
  b_pos_ = la::Vector(model.visible());
  b_neg_ = la::Vector(model.visible());
  c_pos_ = la::Vector(model.hidden());
  c_neg_ = la::Vector(model.hidden());
  build_graph();
}

void RbmTaskGraphStep::build_graph() {
  // Wraps a node body so its kernel stats land in node_stats_[id] (each pool
  // thread gets its own StatsScope; totals merge under the mutex).
  auto add = [this](const std::string& name, std::function<void()> body) {
    node_names_.push_back(name);
    const std::size_t idx = node_names_.size() - 1;
    return graph_.add(name, [this, idx, body = std::move(body)] {
      phi::KernelStats local;
      {
        phi::StatsScope scope(local);
        body();
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      node_stats_[idx] += local;
    });
  };

  const auto n_gb_pos = add("gb_pos: colsum(v1)", [this] {
    la::col_sum(*v1_, b_pos_);
  });
  const auto n_h1 = add("h1: sigmoid(v1*W^T+c), sample", [this] {
    la::gemm_nt(1.0f, *v1_, model_.w(), 0.0f, ws_->h1_mean);
    la::bias_sigmoid_sample(ws_->h1_mean, model_.c(), ws_->h1_sample,
                            rng_.split(0));
  });
  const auto n_gw_pos = add("gw_pos: h1^T*v1", [this] {
    la::gemm_tn(1.0f, ws_->h1_mean, *v1_, 0.0f, gw_pos_);
  });
  const auto n_gc_pos = add("gc_pos: colsum(h1)", [this] {
    la::col_sum(ws_->h1_mean, c_pos_);
  });
  const auto n_v2 = add("v2: sigmoid(h1s*W+b)", [this] {
    la::gemm_nn(1.0f, ws_->h1_sample, model_.w(), 0.0f, ws_->v2,
                la::GemmEpilogue::bias_sigmoid(model_.b()));
  });
  const auto n_gb_neg = add("gb_neg: colsum(v2)", [this] {
    la::col_sum(ws_->v2, b_neg_);
  });
  const auto n_recon = add("recon: ||v1-v2||^2", [this] {
    recon_error_ =
        la::sum_sq_diff(*v1_, ws_->v2) / static_cast<double>(v1_->rows());
  });
  const auto n_h2 = add("h2: sigmoid(v2*W^T+c)", [this] {
    la::gemm_nt(1.0f, ws_->v2, model_.w(), 0.0f, ws_->h2_mean,
                la::GemmEpilogue::bias_sigmoid(model_.c()));
  });
  const auto n_gw_neg = add("gw_neg: h2^T*v2", [this] {
    la::gemm_tn(1.0f, ws_->h2_mean, ws_->v2, 0.0f, gw_neg_);
  });
  const auto n_gc_neg = add("gc_neg: colsum(h2)", [this] {
    la::col_sum(ws_->h2_mean, c_neg_);
  });
  const auto n_combine = add("combine: g = (neg-pos)/m", [this] {
    const float inv_m = 1.0f / static_cast<float>(v1_->rows());
    grads_->g_w.copy_from(gw_neg_);
    la::axpy(-1.0f, gw_pos_, grads_->g_w);
    la::scal(inv_m, grads_->g_w);
    grads_->g_b.copy_from(b_neg_);
    la::axpy(-1.0f, b_pos_, grads_->g_b);
    la::scal(inv_m, grads_->g_b);
    grads_->g_c.copy_from(c_neg_);
    la::axpy(-1.0f, c_pos_, grads_->g_c);
    la::scal(inv_m, grads_->g_c);
  });

  graph_.depends(n_gw_pos, n_h1);
  graph_.depends(n_gc_pos, n_h1);
  graph_.depends(n_v2, n_h1);
  graph_.depends(n_gb_neg, n_v2);
  graph_.depends(n_recon, n_v2);
  graph_.depends(n_h2, n_v2);
  graph_.depends(n_gw_neg, n_h2);
  graph_.depends(n_gc_neg, n_h2);
  graph_.depends(n_combine, n_gb_pos);
  graph_.depends(n_combine, n_gw_pos);
  graph_.depends(n_combine, n_gc_pos);
  graph_.depends(n_combine, n_gb_neg);
  graph_.depends(n_combine, n_gw_neg);
  graph_.depends(n_combine, n_gc_neg);
}

double RbmTaskGraphStep::run(const la::Matrix& v1, Rbm::Workspace& ws,
                             RbmGradients& grads, const util::Rng& rng) {
  DEEPPHI_CHECK_MSG(v1.cols() == model_.visible(),
                    "input dim " << v1.cols() << " != visible "
                                 << model_.visible());
  ws.ensure(v1.rows(), model_.visible(), model_.hidden());
  grads.ensure(model_.visible(), model_.hidden());
  v1_ = &v1;
  ws_ = &ws;
  grads_ = &grads;
  rng_ = rng;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    node_stats_.assign(node_names_.size(), phi::KernelStats{});
  }

  graph_.run(pool_);

  // Merge per-node stats into the caller's active StatsScope (if any): the
  // pool threads had their own scopes, so the caller would otherwise see
  // nothing.
  phi::KernelStats total;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const auto& s : node_stats_) total += s;
  }
  phi::record(total);
  return recon_error_;
}

std::vector<RbmTaskGraphStep::NodeReport> RbmTaskGraphStep::node_reports() const {
  const auto levels = graph_.levels();
  std::vector<NodeReport> reports;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (std::size_t i = 0; i < node_names_.size(); ++i)
    reports.push_back(NodeReport{node_names_[i], levels[i], node_stats_[i]});
  return reports;
}

}  // namespace deepphi::core
