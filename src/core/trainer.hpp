// Mini-batch trainer implementing the paper's Algorithm 1:
//
//   while stop condition not satisfied:
//     get a chunk of data from the buffer area in global memory
//     split the chunk into many smaller training batches
//     for each small training batch:
//       compute the gradient; update the parameters
//
// The chunk feed follows Fig. 5 (background loading thread + ring buffer
// under ExecPolicy::kPhiOffload); the gradient step follows the Table I
// ladder level (core/levels.hpp). All work is recorded as KernelStats, so a
// finished TrainReport can be replayed on any simulated machine via
// simulate() — that replay is how the benches obtain Phi/CPU/Matlab times on
// hardware that no longer exists.
#pragma once

#include <cstdint>
#include <vector>

#include "core/levels.hpp"
#include "core/optimizer.hpp"
#include "core/rbm.hpp"
#include "core/sparse_autoencoder.hpp"
#include "data/dataset.hpp"
#include "parallel/collectives.hpp"
#include "phi/cost_model.hpp"
#include "phi/device.hpp"
#include "phi/offload.hpp"

namespace deepphi::obs {
class TelemetrySink;
}

namespace deepphi::phi {
class Cluster;
}

namespace deepphi::core {

struct TrainerConfig {
  la::Index batch_size = 1000;
  la::Index chunk_examples = 10000;
  int epochs = 1;
  /// Algorithm 1's "while stop condition is not satisfied": training also
  /// ends early once a chunk's mean cost falls to `target_cost` (0 = run all
  /// epochs) or after `max_batches` gradient steps (0 = unlimited).
  double target_cost = 0.0;
  std::int64_t max_batches = 0;
  OptLevel level = OptLevel::kImproved;
  ExecPolicy policy = ExecPolicy::kPhiOffload;
  /// Fig. 6 concurrent matrix ops for the RBM step (matrix-form levels only).
  bool use_taskgraph = false;
  int taskgraph_threads = 4;
  /// Shared-memory data parallelism (docs/data_parallel.md). A global step
  /// evaluates S = replicas × accumulation_steps gradient slots, each on one
  /// micro-batch of up to batch_size rows (slot row ranges come from
  /// data::shard_rows, so they depend only on the row count and S), combines
  /// them with a deterministic binary-tree reduction, and applies ONE
  /// optimizer update — an effective batch of up to S × batch_size examples.
  /// Replica r computes slots r·A+a concurrently with the other replicas on
  /// a private OpenMP team. With replicas == 1 and accumulation_steps == 1
  /// training takes the single-team path, unchanged. S > 1 requires a
  /// matrix-form level and is incompatible with use_taskgraph.
  int replicas = 1;
  /// OpenMP threads per replica's kernels; 0 = ambient threads / replicas.
  int replica_threads = 0;
  /// Gradient slots each replica evaluates sequentially per global step.
  int accumulation_steps = 1;
  /// Simulated cards the global step spreads over (docs/cluster.md). A
  /// global step then has S = replicas × accumulation_steps × cards slots;
  /// card c owns the contiguous block [c·R·A, (c+1)·R·A), computed by the
  /// same R replica workers sweeping the cards in order. The functional
  /// combine stays the flat global-slot tree, so trained parameters are
  /// bitwise invariant to ANY (replicas, accumulation_steps, cards)
  /// factorization of S — the inter-card all-reduce exists as a modeled
  /// communication schedule charged to the cluster's interconnect, never as
  /// a different summation order. cards > 1 has the same requirements as
  /// replicas > 1 (matrix-form level, no task graph).
  int cards = 1;
  /// All-reduce algorithm the modeled inter-card combine is charged as;
  /// kAuto picks the cheapest schedule for the gradient message size on the
  /// active interconnect. DEEPPHI_COLLECTIVE overrides either way.
  par::Collective collective = par::Collective::kAuto;
  /// Update rule for the matrix-form levels; the loop-form levels (Baseline /
  /// OpenMP) always use plain SGD at optimizer.lr, matching the paper's
  /// unoptimized code.
  OptimizerConfig optimizer{};
  std::uint64_t seed = 42;
  std::size_t ring_chunks = 4;
  /// Windowed-shuffle span in examples for the streaming pipeline
  /// (docs/data_pipeline.md). 0 = feed chunks in source order (the historic
  /// behavior); otherwise must be >= chunk_examples. The visit order is a
  /// pure function of (rows, shuffle_window, seed, epoch) — independent of
  /// the data backing and of the S factorization — so shuffled runs stay
  /// bitwise reproducible.
  la::Index shuffle_window = 0;
  /// Optional simulated coprocessor. When set, train() reserves the model,
  /// gradients, workspace and chunk ring in the device's 8 GB arena (throws
  /// on OOM — the paper's "keep all the parameters ... in our global memory
  /// permanently" is a real constraint), and drives the device timeline
  /// chunk by chunk as the real training executes: one DMA event per chunk
  /// load (overlapped per Fig. 5 under kPhiOffload, serialized under kHost)
  /// and one compute event per chunk of training. The populated trace is
  /// available on the device afterwards. The device must outlive train().
  phi::Device* device = nullptr;
  /// Optional simulated multi-card cluster (requires cards > 1 matching
  /// cluster->cards(); mutually exclusive with `device`). Each card's arena
  /// takes its share of the reservation, each card's timeline is driven by
  /// its replicas' measured work plus its analytic combine share, and the
  /// per-update collective schedule occupies the interconnect between
  /// steps. The cluster must outlive train().
  phi::Cluster* cluster = nullptr;
  /// Optional JSONL telemetry sink: train() emits one record per chunk
  /// (cost, batches/s, GF/s, ring occupancy, wall seconds), one per epoch,
  /// and a run_summary with the metrics-registry snapshot. The sink must
  /// outlive train(). Null disables emission at zero cost.
  obs::TelemetrySink* telemetry = nullptr;
};

struct TrainReport {
  double final_cost = 0;        // cost of the last batch
  std::vector<double> chunk_mean_costs;
  std::int64_t batches = 0;     // micro-batch gradient evaluations
  /// Optimizer steps applied. Equals `batches` on the single-team path; a
  /// data-parallel run applies one update per S-slot group, so
  /// updates ≈ batches / S (exactly, up to ragged chunk tails).
  std::int64_t updates = 0;
  std::int64_t chunks = 0;
  double chunk_bytes = 0;       // bytes of one full chunk
  phi::KernelStats stats;       // measured work, including h2d transfers
  double wall_seconds = 0;      // actual host wall time of the run
  /// Seconds the consumer spent blocked on the chunk ring (summed over
  /// epochs) — 0 when loading fully overlapped compute. The run_summary
  /// telemetry derives overlap_efficiency = 1 - load_stall/wall from it.
  double load_stall_seconds = 0;
  /// Measured host wall seconds of each chunk's training (same indexing as
  /// chunk_mean_costs) — the real-timeline counterpart of the per-chunk
  /// predictions phi::Offload::process_chunks makes for simulate().
  std::vector<double> chunk_wall_seconds;

  /// Compute-only work of an average chunk (transfers stripped) — the
  /// quantity phi::Offload::process_chunks consumes.
  phi::KernelStats per_chunk_compute_stats() const;
};

class Trainer {
 public:
  explicit Trainer(TrainerConfig config);

  const TrainerConfig& config() const { return config_; }

  /// Trains the Sparse Autoencoder over `dataset` for config.epochs passes.
  /// Any StreamingSource feeds the same loop: an in-memory data::Dataset or
  /// an out-of-core data::ShardedDataset train bitwise identically under the
  /// same config.
  TrainReport train(SparseAutoencoder& model,
                    const data::StreamingSource& dataset);

  /// Trains the RBM likewise; the reported costs are mean squared
  /// reconstruction errors.
  TrainReport train(Rbm& model, const data::StreamingSource& dataset);

 private:
  template <typename StepFn>
  TrainReport run_loop(const data::StreamingSource& dataset, la::Index dim,
                       double model_bytes, StepFn&& step);

  TrainerConfig config_;
};

/// Simulated end-to-end time of a finished training run on `device`
/// (threads already set on the device):
struct SimulatedTime {
  double serialized_s = 0;  // no loading thread: transfer + compute in series
  double pipelined_s = 0;   // Fig. 5 loading thread with the given ring depth
  phi::CostBreakdown total; // compute breakdown of the whole run
};
SimulatedTime simulate(const TrainReport& report, phi::Device& device,
                       int ring_chunks = 4);

}  // namespace deepphi::core
