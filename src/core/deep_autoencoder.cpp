#include "core/deep_autoencoder.hpp"

#include "data/batch_iterator.hpp"
#include "la/blas1.hpp"
#include "la/elementwise.hpp"
#include "la/gemm.hpp"
#include "la/transpose.hpp"
#include "la/reduce.hpp"
#include "util/error.hpp"

namespace deepphi::core {

DeepAutoencoder::DeepAutoencoder(const StackedAutoencoder& pretrained) {
  // Encoder halves, shallow to deep.
  for (std::size_t k = 0; k < pretrained.layers(); ++k) {
    const SparseAutoencoder& sae = pretrained.layer(k);
    layers_.push_back(Layer{sae.w1(), sae.b1()});
  }
  // Decoder halves, deep to shallow.
  for (std::size_t k = pretrained.layers(); k-- > 0;) {
    const SparseAutoencoder& sae = pretrained.layer(k);
    layers_.push_back(Layer{sae.w2(), sae.b2()});
  }
}

DeepAutoencoder::DeepAutoencoder(const Dbn& pretrained) {
  for (std::size_t k = 0; k < pretrained.layers(); ++k) {
    const Rbm& rbm = pretrained.layer(k);
    layers_.push_back(Layer{rbm.w(), rbm.c()});
  }
  for (std::size_t k = pretrained.layers(); k-- > 0;) {
    const Rbm& rbm = pretrained.layer(k);
    layers_.push_back(Layer{la::transposed(rbm.w()), rbm.b()});
  }
}

void DeepAutoencoder::forward(const la::Matrix& x, Workspace& ws) const {
  DEEPPHI_CHECK_MSG(x.cols() == input_dim(),
                    "input dim " << x.cols() << " != " << input_dim());
  ws.acts.resize(layers_.size());
  const la::Matrix* prev = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    la::Matrix& act = ws.acts[l];
    if (act.rows() != x.rows() || act.cols() != layers_[l].w.rows())
      act = la::Matrix::uninitialized(x.rows(), layers_[l].w.rows());
    la::gemm_nt(1.0f, *prev, layers_[l].w, 0.0f, act,
                la::GemmEpilogue::bias_sigmoid(layers_[l].b));
    prev = &act;
  }
}

void DeepAutoencoder::reconstruct(const la::Matrix& x, la::Matrix& out) const {
  Workspace ws;
  forward(x, ws);
  out = ws.acts.back();
}

std::string DeepAutoencoder::describe() const {
  std::ostringstream os;
  os << "Deep Autoencoder " << input_dim() << " -> " << code_dim()
     << " (unrolled, " << layers_.size() << " layers)";
  return os.str();
}

void DeepAutoencoder::encode(const la::Matrix& x, la::Matrix& out) const {
  DEEPPHI_CHECK_MSG(x.cols() == input_dim(),
                    "input dim " << x.cols() << " != " << input_dim());
  const std::size_t encoder_layers = layers_.size() / 2;
  la::Matrix current = x;
  la::Matrix next;
  for (std::size_t l = 0; l < encoder_layers; ++l) {
    next = la::Matrix::uninitialized(x.rows(), layers_[l].w.rows());
    la::gemm_nt(1.0f, current, layers_[l].w, 0.0f, next,
                la::GemmEpilogue::bias_sigmoid(layers_[l].b));
    current = std::move(next);
  }
  out = std::move(current);
}

double DeepAutoencoder::gradient(const la::Matrix& x, Workspace& ws,
                                 Gradients& grads, float lambda) const {
  forward(x, ws);
  const std::size_t n_layers = layers_.size();
  const la::Index m = x.rows();
  const float inv_m = 1.0f / static_cast<float>(m);

  ws.deltas.resize(n_layers);
  grads.g_w.resize(n_layers);
  grads.g_b.resize(n_layers);

  double cost = la::sum_sq_diff(ws.acts.back(), x) / (2.0 * m);

  // Output delta: (x̂ − x) ⊙ σ'.
  la::Matrix& out_delta = ws.deltas[n_layers - 1];
  if (out_delta.rows() != m || out_delta.cols() != x.cols())
    out_delta = la::Matrix::uninitialized(m, x.cols());
  la::output_delta(ws.acts.back(), x, out_delta);

  // Backward through the stack.
  for (std::size_t l = n_layers; l-- > 0;) {
    const la::Matrix& input = l == 0 ? x : ws.acts[l - 1];
    la::Matrix& delta = ws.deltas[l];

    // Parameter gradients for layer l.
    la::Matrix& gw = grads.g_w[l];
    la::Vector& gb = grads.g_b[l];
    if (gw.rows() != layers_[l].w.rows() || gw.cols() != layers_[l].w.cols())
      gw = la::Matrix(layers_[l].w.rows(), layers_[l].w.cols());
    if (gb.size() != layers_[l].b.size()) gb = la::Vector(layers_[l].b.size());
    la::gemm_tn(inv_m, delta, input, 0.0f, gw);
    if (lambda > 0.0f) {
      cost += 0.5 * lambda * la::nrm2sq(layers_[l].w);
      la::axpy(lambda, layers_[l].w, gw);
    }
    la::col_sum(delta, gb);
    la::scal(inv_m, gb);

    // Propagate to the previous layer.
    if (l > 0) {
      la::Matrix& prev_delta = ws.deltas[l - 1];
      if (prev_delta.rows() != m || prev_delta.cols() != layers_[l].w.cols())
        prev_delta = la::Matrix::uninitialized(m, layers_[l].w.cols());
      la::gemm_nn(1.0f, delta, layers_[l].w, 0.0f, prev_delta,
                  la::GemmEpilogue::dsigmoid_mul(ws.acts[l - 1]));
    }
  }
  return cost;
}

void DeepAutoencoder::apply_update(const Gradients& grads, float lr) {
  DEEPPHI_CHECK_MSG(grads.g_w.size() == layers_.size(), "gradient layer count");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    la::axpy(-lr, grads.g_w[l], layers_[l].w);
    la::axpy(-lr, grads.g_b[l], layers_[l].b);
  }
}

DeepAutoencoder::FinetuneReport DeepAutoencoder::finetune(
    const data::Dataset& dataset, const FinetuneConfig& config) {
  DEEPPHI_CHECK_MSG(dataset.dim() == input_dim(),
                    "dataset dim " << dataset.dim() << " != " << input_dim());
  DEEPPHI_CHECK_MSG(!dataset.empty(), "empty dataset");
  FinetuneReport report;
  Workspace ws;
  Gradients grads;
  Optimizer optimizer(config.optimizer);
  data::BatchIterator batches(dataset, config.batch_size, /*shuffle=*/true,
                              config.seed);
  la::Matrix batch;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_cost = 0;
    std::int64_t epoch_batches = 0;
    while (la::Index n = batches.next(batch)) {
      (void)n;
      epoch_cost += gradient(batch, ws, grads, config.lambda);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        optimizer.update(layers_[l].w, grads.g_w[l]);
        optimizer.update(layers_[l].b, grads.g_b[l]);
      }
      optimizer.end_step();
      ++epoch_batches;
    }
    report.batches += epoch_batches;
    report.epoch_costs.push_back(epoch_cost /
                                 static_cast<double>(epoch_batches));
  }
  return report;
}

}  // namespace deepphi::core
