// Batch optimization methods (paper §III: "the batch methods like limited
// memory BFGS (L-BFGS) or Conjugate Gradient (CG) [have] been proposed ...
// These methods make it easier to parallelize the deep learning
// algorithms"). Both operate on a flattened parameter vector through a
// caller-supplied objective:
//
//   Objective(params, grad_out) → cost, with grad_out = ∂cost/∂params.
//
// Shared pieces (Armijo backtracking line search, convergence report) live
// here; the algorithms are lbfgs.hpp / cg.hpp.
#pragma once

#include <functional>
#include <vector>

namespace deepphi::core {

/// Evaluates cost and gradient at `params` (both sized n).
using Objective = std::function<double(const float* params, float* grad_out)>;

struct LineSearchConfig {
  double initial_step = 1.0;
  double backtrack = 0.5;   // step shrink factor (Armijo mode)
  double armijo_c1 = 1e-4;  // sufficient-decrease constant
  double wolfe_c2 = 0.9;    // curvature constant (strong-Wolfe mode)
  /// Strong-Wolfe bracketing + zoom (Nocedal & Wright alg. 3.5/3.6) instead
  /// of plain Armijo backtracking. Quasi-Newton methods want it: the
  /// curvature condition keeps the L-BFGS (s, y) pairs well-scaled.
  bool strong_wolfe = false;
  int max_evals = 25;
};

struct LineSearchResult {
  double step = 0;       // accepted step (0 = failed)
  double cost = 0;       // cost at the accepted point
  int evals = 0;         // objective evaluations used
  bool success = false;
};

/// Line search along `direction` from `x0` (cost0, grad0 given): Armijo
/// backtracking, or strong-Wolfe bracket+zoom when config.strong_wolfe is
/// set. On success, `x_out` holds the accepted point and `grad_out` its
/// gradient.
LineSearchResult line_search(const Objective& objective,
                             const std::vector<float>& x0, double cost0,
                             const std::vector<float>& grad0,
                             const std::vector<float>& direction,
                             const LineSearchConfig& config,
                             std::vector<float>& x_out,
                             std::vector<float>& grad_out);

struct BatchOptReport {
  double initial_cost = 0;
  double final_cost = 0;
  int iterations = 0;
  int objective_evals = 0;
  bool converged = false;  // gradient norm fell under tolerance
  std::vector<double> cost_history;
};

/// ‖v‖₂ in double precision.
double l2_norm(const std::vector<float>& v);

/// vᵀw in double precision.
double dot(const std::vector<float>& v, const std::vector<float>& w);

}  // namespace deepphi::core
