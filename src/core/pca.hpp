// Principal Component Analysis — the baseline the paper's abstract measures
// deep features against ("high-dimensional representations or abstract
// features which work much better than the principal component analysis
// (PCA) method").
//
// Fit builds the d×d covariance of the (mean-centered) data and
// diagonalizes it with a cyclic Jacobi eigensolver in double precision —
// exact for the d ≤ a-few-thousand regime of patch experiments, with no
// external LAPACK.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "la/matrix.hpp"

namespace deepphi::core {

class Pca {
 public:
  /// Fits the top-`components` principal directions of `data`.
  static Pca fit(const data::Dataset& data, la::Index components);

  la::Index components() const { return basis_.rows(); }
  la::Index dim() const { return basis_.cols(); }

  /// Per-feature mean removed before projection.
  const la::Vector& mean() const { return mean_; }
  /// Orthonormal principal directions, one per row (k×dim), by decreasing
  /// eigenvalue.
  const la::Matrix& basis() const { return basis_; }
  /// Covariance eigenvalues of the kept components, descending.
  const la::Vector& eigenvalues() const { return eigenvalues_; }
  /// Fraction of total variance captured by the kept components.
  double explained_variance_ratio() const { return explained_ratio_; }

  /// code = (x − mean)·basisᵀ, x is batch×dim, code batch×k.
  void encode(const la::Matrix& x, la::Matrix& code) const;

  /// x̂ = code·basis + mean.
  void decode(const la::Matrix& code, la::Matrix& out) const;

  /// Mean per-example squared reconstruction error over (a prefix of) the
  /// dataset — directly comparable to core::reconstruction_error for the
  /// autoencoder.
  double reconstruction_error(const data::Dataset& data,
                              la::Index max_examples = 1000) const;

 private:
  Pca() = default;
  la::Vector mean_;
  la::Matrix basis_;
  la::Vector eigenvalues_;
  double explained_ratio_ = 0;
};

/// Cyclic Jacobi diagonalization of a symmetric matrix (double precision,
/// in-place): fills `eigenvalues` (unsorted) and `eigenvectors` (one per
/// column). Exposed for tests.
void jacobi_eigen_symmetric(std::vector<double>& a, la::Index n,
                            std::vector<double>& eigenvalues,
                            std::vector<double>& eigenvectors,
                            int max_sweeps = 50, double tol = 1e-12);

}  // namespace deepphi::core
