// Gradient buffers for the two building blocks. Kept outside the models so a
// trainer can reuse one allocation across steps (the paper keeps all
// temporaries resident in device global memory "to avoid unnecessary
// reallocation and release").
#pragma once

#include "la/matrix.hpp"

namespace deepphi::core {

struct AeGradients {
  la::Matrix g_w1;  // hidden×visible
  la::Vector g_b1;  // hidden
  la::Matrix g_w2;  // visible×hidden
  la::Vector g_b2;  // visible

  /// (Re)shapes for the given layer sizes; reallocates only on change.
  void ensure(la::Index visible, la::Index hidden);
  void zero();
};

struct RbmGradients {
  la::Matrix g_w;  // hidden×visible
  la::Vector g_b;  // visible bias
  la::Vector g_c;  // hidden bias

  void ensure(la::Index visible, la::Index hidden);
  void zero();
};

}  // namespace deepphi::core
