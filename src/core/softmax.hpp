// Multinomial logistic regression (softmax) head — the "subsequent work" the
// paper's unsupervised features exist for ("this low-dimensional data can be
// viewed as a code or extracted features to make it easier to learn tasks of
// interests"). Trained on raw pixels it is the baseline; trained on
// stacked-autoencoder / DBN codes it demonstrates the value of pre-training
// (examples/classify_digits.cpp).
//
//   p(c | x) = softmax(W x + b)_c
//   J = −(1/m) Σᵢ log p(yᵢ | xᵢ) + (λ/2)‖W‖²
#pragma once

#include <cstdint>
#include <vector>

#include "core/encoder.hpp"
#include "data/dataset.hpp"
#include "la/matrix.hpp"

namespace deepphi::core {

struct SoftmaxConfig {
  la::Index dim = 0;      // input dimensionality
  la::Index classes = 0;  // number of classes
  float lambda = 1e-4f;   // weight decay
};

class SoftmaxClassifier : public Encoder {
 public:
  SoftmaxClassifier(SoftmaxConfig config, std::uint64_t seed);

  const SoftmaxConfig& config() const { return config_; }

  // Encoder interface: inference emits the per-class probability row —
  // serving a classifier means serving its softmax outputs.
  la::Index input_dim() const override { return config_.dim; }
  la::Index output_dim() const override { return config_.classes; }
  void encode(const la::Matrix& x, la::Matrix& out) const override {
    probabilities(x, out);
  }
  std::string describe() const override;
  la::Matrix& w() { return w_; }  // classes×dim
  la::Vector& b() { return b_; }
  const la::Matrix& w() const { return w_; }
  const la::Vector& b() const { return b_; }

  struct Workspace {
    la::Matrix logits;  // batch×classes, holds probabilities after gradient
  };

  struct Gradients {
    la::Matrix g_w;
    la::Vector g_b;
  };

  /// Class probabilities for x (batch×dim) into `probs` (batch×classes).
  void probabilities(const la::Matrix& x, la::Matrix& probs) const;

  /// Cross-entropy gradient on (x, labels); labels in [0, classes). Returns
  /// the batch cost (mean NLL + decay).
  double gradient(const la::Matrix& x, const std::vector<int>& labels,
                  Workspace& ws, Gradients& grads) const;

  /// θ ← θ − lr · g.
  void apply_update(const Gradients& grads, float lr);

  /// argmax class per row of x.
  std::vector<int> predict(const la::Matrix& x) const;

  /// Fraction of correct predictions.
  double accuracy(const la::Matrix& x, const std::vector<int>& labels) const;

  struct TrainConfig {
    la::Index batch_size = 128;
    int epochs = 10;
    float lr = 0.5f;
    std::uint64_t seed = 1;
  };

  struct TrainReport {
    std::vector<double> epoch_costs;
  };

  /// Mini-batch SGD over (dataset, labels), shuffled each epoch.
  TrainReport train(const data::Dataset& dataset,
                    const std::vector<int>& labels, const TrainConfig& config);

 private:
  SoftmaxConfig config_;
  la::Matrix w_;
  la::Vector b_;
};

}  // namespace deepphi::core
