// Denoising autoencoder training (Vincent et al.'s variant — the paper's
// §I lists "many variations" of the autoencoder family as unsupervised
// building blocks): corrupt each input with masking noise, train to
// reconstruct the CLEAN input. Corruption is deterministic given the rng
// (per-row substreams, like every sampling kernel in the repo).
#pragma once

#include "core/gradient_buffers.hpp"
#include "core/sparse_autoencoder.hpp"
#include "util/rng.hpp"

namespace deepphi::core {

/// corrupted(r,c) = 0 with probability mask_prob, else clean(r,c). Row r
/// draws from base.split(r).
void mask_corrupt(const la::Matrix& clean, la::Matrix& corrupted,
                  float mask_prob, const util::Rng& base);

/// One denoising gradient step: corrupts `clean` into `corrupted_buf`
/// (resized as needed), runs forward on the corrupted batch, and
/// back-propagates the reconstruction error against the clean batch.
/// Returns the batch cost.
double sae_denoising_gradient(const SparseAutoencoder& model,
                              const la::Matrix& clean,
                              la::Matrix& corrupted_buf,
                              SparseAutoencoder::Workspace& ws,
                              AeGradients& grads, float mask_prob,
                              const util::Rng& rng, bool fused = true);

}  // namespace deepphi::core
