#include "core/rbm.hpp"

#include <cmath>

#include "core/init.hpp"
#include "la/blas1.hpp"
#include "la/elementwise.hpp"
#include "la/gemm.hpp"
#include "la/reduce.hpp"
#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::core {

Rbm::Rbm(RbmConfig config, std::uint64_t seed)
    : config_(config),
      w_(config.hidden, config.visible),
      b_(config.visible),
      c_(config.hidden) {
  DEEPPHI_CHECK_MSG(config.visible >= 1 && config.hidden >= 1,
                    "RBM needs positive layer sizes, got " << config.visible
                                                           << "x" << config.hidden);
  DEEPPHI_CHECK_MSG(config.cd_k >= 1, "cd_k must be >= 1, got " << config.cd_k);
  util::Rng rng(seed, /*stream=*/0x4bb4bb4bULL);
  init_weights_gaussian(w_, config.init_sigma, rng);
}

void Rbm::Workspace::ensure(la::Index batch, la::Index visible,
                            la::Index hidden) {
  if (h1_mean.rows() != batch || h1_mean.cols() != hidden)
    h1_mean = la::Matrix::uninitialized(batch, hidden);
  if (h1_sample.rows() != batch || h1_sample.cols() != hidden)
    h1_sample = la::Matrix::uninitialized(batch, hidden);
  if (v2.rows() != batch || v2.cols() != visible)
    v2 = la::Matrix::uninitialized(batch, visible);
  if (h2_mean.rows() != batch || h2_mean.cols() != hidden)
    h2_mean = la::Matrix::uninitialized(batch, hidden);
  if (tmp_v.size() != visible) tmp_v = la::Vector(visible);
  if (tmp_h.size() != hidden) tmp_h = la::Vector(hidden);
}

std::string Rbm::describe() const {
  std::ostringstream os;
  os << "RBM " << config_.visible << " -> " << config_.hidden
     << " (cd_k=" << config_.cd_k << ", "
     << (config_.visible_type == VisibleType::kGaussian ? "Gaussian"
                                                        : "Bernoulli")
     << " visibles)";
  return os.str();
}

void Rbm::hidden_mean(const la::Matrix& v, la::Matrix& h) const {
  DEEPPHI_CHECK_MSG(v.cols() == config_.visible,
                    "input dim " << v.cols() << " != visible " << config_.visible);
  if (h.rows() != v.rows() || h.cols() != config_.hidden)
    h = la::Matrix::uninitialized(v.rows(), config_.hidden);
  la::gemm_nt(1.0f, v, w_, 0.0f, h, la::GemmEpilogue::bias_sigmoid(c_));
}

void Rbm::visible_mean(const la::Matrix& h, la::Matrix& v) const {
  DEEPPHI_CHECK_MSG(h.cols() == config_.hidden,
                    "input dim " << h.cols() << " != hidden " << config_.hidden);
  if (v.rows() != h.rows() || v.cols() != config_.visible)
    v = la::Matrix::uninitialized(h.rows(), config_.visible);
  if (config_.visible_type == VisibleType::kGaussian) {
    // Linear mean, unit variance.
    la::gemm_nn(1.0f, h, w_, 0.0f, v, la::GemmEpilogue::bias_add(b_));
  } else {
    la::gemm_nn(1.0f, h, w_, 0.0f, v, la::GemmEpilogue::bias_sigmoid(b_));
  }
}

double Rbm::gradient(const la::Matrix& v1, Workspace& ws, RbmGradients& grads,
                     const util::Rng& rng, bool fused) const {
  DEEPPHI_CHECK_MSG(v1.cols() == config_.visible,
                    "input dim " << v1.cols() << " != visible " << config_.visible);
  ws.ensure(v1.rows(), config_.visible, config_.hidden);
  grads.ensure(config_.visible, config_.hidden);
  const la::Index m = v1.rows();
  const float inv_m = 1.0f / static_cast<float>(m);

  // Positive phase: h1 = sigmoid(v1·Wᵀ + c), then a binary sample of it.
  la::gemm_nt(1.0f, v1, w_, 0.0f, ws.h1_mean);
  if (fused) {
    la::bias_sigmoid_sample(ws.h1_mean, c_, ws.h1_sample, rng.split(0));
  } else {
    la::add_row_broadcast(ws.h1_mean, c_);
    la::sigmoid_inplace(ws.h1_mean);
    la::sample_bernoulli(ws.h1_mean, ws.h1_sample, rng.split(0));
  }

  // Gibbs chain: k alternations of v ← p(v|h_sample), h ← p(h|v).
  for (int step = 0; step < config_.cd_k; ++step) {
    // v2 = sigmoid(h·W + b) with the current hidden sample (the chain
    // resamples into h1_sample); mean field by default, sampled when
    // configured.
    if (config_.visible_type == VisibleType::kGaussian) {
      // Linear visible mean (unit variance); sampling adds N(0, 1).
      if (fused) {
        la::gemm_nn(1.0f, ws.h1_sample, w_, 0.0f, ws.v2,
                    la::GemmEpilogue::bias_add(b_));
      } else {
        la::gemm_nn(1.0f, ws.h1_sample, w_, 0.0f, ws.v2);
        la::add_row_broadcast_vec(ws.v2, b_);
      }
      if (config_.sample_visible)
        la::add_gaussian_noise(ws.v2, 1.0f, rng.split(100 + step));
    } else {
      if (fused) {
        la::gemm_nn(1.0f, ws.h1_sample, w_, 0.0f, ws.v2,
                    la::GemmEpilogue::bias_sigmoid(b_));
      } else {
        la::gemm_nn(1.0f, ws.h1_sample, w_, 0.0f, ws.v2);
        la::add_row_broadcast(ws.v2, b_);
        la::sigmoid_inplace(ws.v2);
      }
      if (config_.sample_visible)
        la::sample_bernoulli(ws.v2, ws.v2, rng.split(100 + step));
    }

    // h2 = sigmoid(v2·Wᵀ + c); resample into h1_sample when the chain
    // continues (CD-k uses the *mean* at the final step). The sampling
    // variant cannot run as a GEMM epilogue — its per-row RNG substreams
    // need sequential column order — so only the final mean step fuses.
    if (step + 1 < config_.cd_k) {
      la::gemm_nt(1.0f, ws.v2, w_, 0.0f, ws.h2_mean);
      if (fused) {
        la::bias_sigmoid_sample(ws.h2_mean, c_, ws.h1_sample,
                                rng.split(200 + step));
      } else {
        la::add_row_broadcast(ws.h2_mean, c_);
        la::sigmoid_inplace(ws.h2_mean);
        la::sample_bernoulli(ws.h2_mean, ws.h1_sample, rng.split(200 + step));
      }
    } else {
      if (fused) {
        la::gemm_nt(1.0f, ws.v2, w_, 0.0f, ws.h2_mean,
                    la::GemmEpilogue::bias_sigmoid(c_));
      } else {
        la::gemm_nt(1.0f, ws.v2, w_, 0.0f, ws.h2_mean);
        la::add_row_broadcast(ws.h2_mean, c_);
        la::sigmoid_inplace(ws.h2_mean);
      }
    }
  }

  // Descent gradient: g = −(⟨·⟩_data − ⟨·⟩_model)/m  (paper eqs. 10–12,
  // negated so θ ← θ − lr·g matches eq. 13).
  la::gemm_tn(-inv_m, ws.h1_mean, v1, 0.0f, grads.g_w);
  la::gemm_tn(inv_m, ws.h2_mean, ws.v2, 1.0f, grads.g_w);

  la::col_sum(v1, grads.g_b);
  la::col_sum(ws.v2, ws.tmp_v);
  la::axpy(-1.0f, grads.g_b, ws.tmp_v);  // tmp_v = Σv2 − Σv1
  grads.g_b.copy_from(ws.tmp_v);
  la::scal(inv_m, grads.g_b);

  la::col_sum(ws.h1_mean, grads.g_c);
  la::col_sum(ws.h2_mean, ws.tmp_h);
  la::axpy(-1.0f, grads.g_c, ws.tmp_h);  // tmp_h = Σh2 − Σh1
  grads.g_c.copy_from(ws.tmp_h);
  la::scal(inv_m, grads.g_c);

  return la::sum_sq_diff(v1, ws.v2) / static_cast<double>(m);
}

void Rbm::apply_update(const RbmGradients& grads, float lr) {
  la::axpy(-lr, grads.g_w, w_);
  la::axpy(-lr, grads.g_b, b_);
  la::axpy(-lr, grads.g_c, c_);
}

double Rbm::free_energy(const la::Matrix& v, Workspace& ws) const {
  DEEPPHI_CHECK_MSG(v.cols() == config_.visible,
                    "input dim " << v.cols() << " != visible " << config_.visible);
  ws.ensure(v.rows(), config_.visible, config_.hidden);
  // pre = v·Wᵀ + c (reuse h1_mean as scratch).
  la::gemm_nt(1.0f, v, w_, 0.0f, ws.h1_mean);
  la::add_row_broadcast(ws.h1_mean, c_);
  phi::record(phi::loop_contribution(v.rows() * (config_.hidden + config_.visible),
                                     6.0, 2.0, 0.0));
  const bool gaussian = config_.visible_type == VisibleType::kGaussian;
  double total = 0.0;
  for (la::Index r = 0; r < v.rows(); ++r) {
    double fe = 0.0;
    const float* vr = v.row(r);
    for (la::Index j = 0; j < config_.visible; ++j) {
      if (gaussian) {
        const double d = static_cast<double>(vr[j]) - b_[j];
        fe += 0.5 * d * d;
      } else {
        fe -= static_cast<double>(b_[j]) * vr[j];
      }
    }
    const float* hr = ws.h1_mean.row(r);
    for (la::Index i = 0; i < config_.hidden; ++i) {
      // log(1 + exp(x)) computed stably.
      const double x = hr[i];
      fe -= x > 30 ? x : std::log1p(std::exp(x));
    }
    total += fe;
  }
  return total / static_cast<double>(v.rows());
}

}  // namespace deepphi::core
