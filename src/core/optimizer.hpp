// First-order update rules for mini-batch training. The paper's related-work
// section singles out two acceleration families: adaptive learning-rate
// schemes (category 1) and batch methods (L-BFGS/CG, in lbfgs.hpp/cg.hpp).
// This header provides the per-step rules:
//
//   kSgd       — θ ← θ − lr_t · g, lr_t = lr / (1 + decay · t)
//   kMomentum  — v ← μ·v − lr_t·g ; θ ← θ + v
//   kAdagrad   — a ← a + g² ; θ ← θ − lr·g / (sqrt(a) + eps)
//
// State (velocity / accumulators) is keyed by parameter buffer address, so
// one Optimizer instance serves a whole model as long as its parameter
// storage is stable (it is: Matrix/Vector never reallocate in place).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "la/matrix.hpp"

namespace deepphi::core {

enum class OptimizerKind { kSgd, kMomentum, kAdagrad };

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kSgd;
  float lr = 0.1f;
  float momentum = 0.9f;    // kMomentum only
  float lr_decay = 0.0f;    // 1/t decay factor (kSgd / kMomentum)
  float adagrad_eps = 1e-6f;
};

inline const char* to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd: return "sgd";
    case OptimizerKind::kMomentum: return "momentum";
    case OptimizerKind::kAdagrad: return "adagrad";
  }
  return "?";
}

class Optimizer {
 public:
  explicit Optimizer(OptimizerConfig config);

  const OptimizerConfig& config() const { return config_; }

  /// Applies one update to `param` given its gradient (descent direction).
  void update(la::Matrix& param, const la::Matrix& grad);
  void update(la::Vector& param, const la::Vector& grad);

  /// Advances the step counter (affects lr decay). Call once per
  /// mini-batch after all parameter updates.
  void end_step() { ++step_; }

  std::uint64_t steps() const { return step_; }

  /// Learning rate in effect for the current step.
  float current_lr() const;

 private:
  void update_raw(float* p, const float* g, la::Index n);

  OptimizerConfig config_;
  std::uint64_t step_ = 0;
  // Per-parameter state, keyed by the parameter's storage address.
  std::unordered_map<const float*, std::vector<float>> state_;
};

}  // namespace deepphi::core
