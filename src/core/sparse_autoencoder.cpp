#include "core/sparse_autoencoder.hpp"

#include <cstring>

#include "core/init.hpp"
#include "la/blas1.hpp"
#include "la/elementwise.hpp"
#include "la/gemm.hpp"
#include "la/transpose.hpp"
#include "la/reduce.hpp"
#include "util/error.hpp"

namespace deepphi::core {

SparseAutoencoder::SparseAutoencoder(SaeConfig config, std::uint64_t seed)
    : config_(config),
      w1_(config.hidden, config.visible),
      w2_(config.visible, config.hidden),
      b1_(config.hidden),
      b2_(config.visible) {
  DEEPPHI_CHECK_MSG(config.visible >= 1 && config.hidden >= 1,
                    "SAE needs positive layer sizes, got " << config.visible
                                                           << "x" << config.hidden);
  util::Rng rng(seed, /*stream=*/0x5ae5ae5aULL);
  init_weights_uniform(w1_, config.visible, config.hidden, rng);
  if (config.tied_weights) {
    la::transpose(w1_, w2_);
  } else {
    init_weights_uniform(w2_, config.hidden, config.visible, rng);
  }
}

void SparseAutoencoder::Workspace::ensure(la::Index batch, la::Index visible,
                                          la::Index hidden) {
  if (y.rows() != batch || y.cols() != hidden)
    y = la::Matrix::uninitialized(batch, hidden);
  if (z.rows() != batch || z.cols() != visible)
    z = la::Matrix::uninitialized(batch, visible);
  if (delta2.rows() != batch || delta2.cols() != visible)
    delta2 = la::Matrix::uninitialized(batch, visible);
  if (back.rows() != batch || back.cols() != hidden)
    back = la::Matrix::uninitialized(batch, hidden);
  if (rho_hat.size() != hidden) rho_hat = la::Vector(hidden);
  if (sparse.size() != hidden) sparse = la::Vector(hidden);
}

void SparseAutoencoder::forward(const la::Matrix& x, Workspace& ws,
                                bool fused) const {
  DEEPPHI_CHECK_MSG(x.cols() == config_.visible,
                    "input dim " << x.cols() << " != visible " << config_.visible);
  ws.ensure(x.rows(), config_.visible, config_.hidden);

  // y = sigmoid(x·W1ᵀ + b1)
  if (fused) {
    la::gemm_nt(1.0f, x, w1_, 0.0f, ws.y, la::GemmEpilogue::bias_sigmoid(b1_));
  } else {
    la::gemm_nt(1.0f, x, w1_, 0.0f, ws.y);
    la::add_row_broadcast(ws.y, b1_);
    la::sigmoid_inplace(ws.y);
  }

  // z = sigmoid(y·W2ᵀ + b2)
  if (fused) {
    la::gemm_nt(1.0f, ws.y, w2_, 0.0f, ws.z,
                la::GemmEpilogue::bias_sigmoid(b2_));
  } else {
    la::gemm_nt(1.0f, ws.y, w2_, 0.0f, ws.z);
    la::add_row_broadcast(ws.z, b2_);
    la::sigmoid_inplace(ws.z);
  }
}

void SparseAutoencoder::encode(const la::Matrix& x, la::Matrix& y) const {
  DEEPPHI_CHECK_MSG(x.cols() == config_.visible,
                    "input dim " << x.cols() << " != visible " << config_.visible);
  if (y.rows() != x.rows() || y.cols() != config_.hidden)
    y = la::Matrix::uninitialized(x.rows(), config_.hidden);
  la::gemm_nt(1.0f, x, w1_, 0.0f, y, la::GemmEpilogue::bias_sigmoid(b1_));
}

std::string SparseAutoencoder::describe() const {
  std::ostringstream os;
  os << "Sparse Autoencoder " << config_.visible << " -> " << config_.hidden
     << " (rho=" << config_.rho << " beta=" << config_.beta
     << (config_.tied_weights ? ", tied" : "") << ")";
  return os.str();
}

double SparseAutoencoder::cost(const la::Matrix& x, Workspace& ws) const {
  const double m = static_cast<double>(x.rows());
  la::col_mean(ws.y, ws.rho_hat);
  const double recon = la::sum_sq_diff(ws.z, x) / (2.0 * m);
  const double decay = 0.5 * config_.lambda * (la::nrm2sq(w1_) + la::nrm2sq(w2_));
  const double sparse = config_.beta * la::kl_divergence(config_.rho, ws.rho_hat);
  return recon + decay + sparse;
}

double SparseAutoencoder::gradient(const la::Matrix& x, Workspace& ws,
                                   AeGradients& grads, bool fused) const {
  return gradient(x, x, ws, grads, fused);
}

double SparseAutoencoder::gradient(const la::Matrix& input,
                                   const la::Matrix& target, Workspace& ws,
                                   AeGradients& grads, bool fused) const {
  DEEPPHI_CHECK_MSG(input.rows() == target.rows() &&
                        input.cols() == target.cols(),
                    "denoising input/target shape mismatch");
  const la::Matrix& x = input;
  forward(x, ws, fused);
  grads.ensure(config_.visible, config_.hidden);
  const la::Index m = x.rows();
  const float inv_m = 1.0f / static_cast<float>(m);

  // Mean hidden activation (needed by both the cost and the sparsity delta).
  la::col_mean(ws.y, ws.rho_hat);
  const double cost_value =
      la::sum_sq_diff(ws.z, target) / (2.0 * m) +
      0.5 * config_.lambda * (la::nrm2sq(w1_) + la::nrm2sq(w2_)) +
      config_.beta * la::kl_divergence(config_.rho, ws.rho_hat);

  // Output layer: delta2 = (z − target) ⊙ z ⊙ (1 − z).
  if (fused) {
    la::output_delta(ws.z, target, ws.delta2);
  } else {
    la::sub(ws.z, target, ws.delta2);
    la::dsigmoid_mul_inplace(ws.delta2, ws.z);
  }

  // ∂J/∂W2 = delta2ᵀ·y / m + λ·W2 ;  ∂J/∂b2 = mean over batch of delta2.
  la::gemm_tn(inv_m, ws.delta2, ws.y, 0.0f, grads.g_w2);
  la::axpy(config_.lambda, w2_, grads.g_w2);
  la::col_sum(ws.delta2, grads.g_b2);
  la::scal(inv_m, grads.g_b2);

  // Hidden layer: back = (delta2·W2 + sparsity term) ⊙ y ⊙ (1 − y).
  // The sparsity vector is computed first so the fused path can apply it as a
  // GEMM epilogue (the epilogue's operands must be final before the GEMM).
  la::sparsity_delta(config_.rho, config_.beta, ws.rho_hat, ws.sparse);
  if (fused) {
    la::gemm_nn(1.0f, ws.delta2, w2_, 0.0f, ws.back,
                la::GemmEpilogue::bias_dsigmoid_mul(ws.sparse, ws.y));
  } else {
    la::gemm_nn(1.0f, ws.delta2, w2_, 0.0f, ws.back);
    la::add_row_broadcast(ws.back, ws.sparse);
    la::dsigmoid_mul_inplace(ws.back, ws.y);
  }

  // ∂J/∂W1 = backᵀ·x / m + λ·W1 ;  ∂J/∂b1 = mean over batch of back.
  la::gemm_tn(inv_m, ws.back, x, 0.0f, grads.g_w1);
  la::axpy(config_.lambda, w1_, grads.g_w1);
  la::col_sum(ws.back, grads.g_b1);
  la::scal(inv_m, grads.g_b1);

  if (config_.tied_weights) {
    // The shared weight's gradient is g_w1 + g_w2ᵀ; publish it in BOTH
    // buffers (g_w2 = combinedᵀ) so per-buffer update rules keep W2 = W1ᵀ.
    if (ws.tied_scratch.rows() != config_.hidden ||
        ws.tied_scratch.cols() != config_.visible)
      ws.tied_scratch = la::Matrix::uninitialized(config_.hidden, config_.visible);
    la::transpose(grads.g_w2, ws.tied_scratch);
    la::axpy(1.0f, ws.tied_scratch, grads.g_w1);
    la::transpose(grads.g_w1, grads.g_w2);
  }

  return cost_value;
}

void SparseAutoencoder::apply_update(const AeGradients& grads, float lr) {
  la::axpy(-lr, grads.g_w1, w1_);
  la::axpy(-lr, grads.g_b1, b1_);
  la::axpy(-lr, grads.g_w2, w2_);
  la::axpy(-lr, grads.g_b2, b2_);
}

la::Index SparseAutoencoder::param_count() const {
  return w1_.size() + b1_.size() + w2_.size() + b2_.size();
}

void SparseAutoencoder::get_params(float* out) const {
  std::size_t off = 0;
  auto put = [&](const float* p, la::Index n) {
    std::memcpy(out + off, p, sizeof(float) * static_cast<std::size_t>(n));
    off += static_cast<std::size_t>(n);
  };
  put(w1_.data(), w1_.size());
  put(b1_.data(), b1_.size());
  put(w2_.data(), w2_.size());
  put(b2_.data(), b2_.size());
}

void SparseAutoencoder::set_params(const float* in) {
  std::size_t off = 0;
  auto take = [&](float* p, la::Index n) {
    std::memcpy(p, in + off, sizeof(float) * static_cast<std::size_t>(n));
    off += static_cast<std::size_t>(n);
  };
  take(w1_.data(), w1_.size());
  take(b1_.data(), b1_.size());
  take(w2_.data(), w2_.size());
  take(b2_.data(), b2_.size());
}

void SparseAutoencoder::flatten(const AeGradients& grads, float* out) {
  std::size_t off = 0;
  auto put = [&](const float* p, la::Index n) {
    std::memcpy(out + off, p, sizeof(float) * static_cast<std::size_t>(n));
    off += static_cast<std::size_t>(n);
  };
  put(grads.g_w1.data(), grads.g_w1.size());
  put(grads.g_b1.data(), grads.g_b1.size());
  put(grads.g_w2.data(), grads.g_w2.size());
  put(grads.g_b2.data(), grads.g_b2.size());
}

}  // namespace deepphi::core
