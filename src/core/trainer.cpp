#include "core/trainer.hpp"

#include <cstring>
#include <memory>

#include "core/autoencoder_loops.hpp"
#include "core/rbm_loops.hpp"
#include "core/rbm_taskgraph.hpp"
#include "data/chunk_stream.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace deepphi::core {

namespace {

// Copies rows [begin, begin+count) of `chunk` into the reusable batch buffer.
// Host-side staging (pointer bookkeeping on the real device), so it is not
// recorded as kernel work.
void slice_batch(const la::Matrix& chunk, la::Index begin, la::Index count,
                 la::Matrix& batch) {
  if (batch.rows() != count || batch.cols() != chunk.cols())
    batch = la::Matrix::uninitialized(count, chunk.cols());
  std::memcpy(batch.data(), chunk.row(begin),
              sizeof(float) * static_cast<std::size_t>(count * chunk.cols()));
}

}  // namespace

phi::KernelStats TrainReport::per_chunk_compute_stats() const {
  phi::KernelStats compute = stats;
  compute.h2d_bytes = 0;
  compute.d2h_bytes = 0;
  compute.transfers = 0;
  return chunks > 0 ? compute.scaled(1.0 / static_cast<double>(chunks))
                    : compute;
}

Trainer::Trainer(TrainerConfig config) : config_(config) {
  DEEPPHI_CHECK_MSG(config.batch_size >= 1, "batch_size must be >= 1");
  DEEPPHI_CHECK_MSG(config.chunk_examples >= config.batch_size,
                    "chunk_examples (" << config.chunk_examples
                                       << ") must cover at least one batch ("
                                       << config.batch_size << ")");
  DEEPPHI_CHECK_MSG(config.epochs >= 1, "epochs must be >= 1");
  DEEPPHI_CHECK_MSG(config.ring_chunks >= 1, "ring_chunks must be >= 1");
  DEEPPHI_CHECK_MSG(!config.use_taskgraph || is_matrix_form(config.level),
                    "the Fig. 6 task graph requires a matrix-form level");
}

namespace {

// RAII over the device-arena reservations a monitored training run makes.
class DeviceReservation {
 public:
  DeviceReservation(phi::Device* device, double model_bytes,
                    double workspace_bytes, double ring_bytes)
      : device_(device) {
    if (!device_) return;
    try {
      ids_.push_back(device_->alloc("model+gradients", model_bytes));
      ids_.push_back(device_->alloc("workspace", workspace_bytes));
      ids_.push_back(device_->alloc("chunk-ring", ring_bytes));
    } catch (...) {
      // A partially constructed object gets no destructor call: release
      // whatever was reserved before the OOM, then rethrow.
      for (auto id : ids_) device_->free(id);
      throw;
    }
  }
  ~DeviceReservation() {
    if (device_)
      for (auto id : ids_) device_->free(id);
  }
  DeviceReservation(const DeviceReservation&) = delete;
  DeviceReservation& operator=(const DeviceReservation&) = delete;

 private:
  phi::Device* device_;
  std::vector<phi::Device::BufferId> ids_;
};

}  // namespace

template <typename StepFn>
TrainReport Trainer::run_loop(const data::Dataset& dataset, la::Index dim,
                              double model_bytes, StepFn&& step) {
  DEEPPHI_PROFILE_SCOPE("trainer.run");
  DEEPPHI_CHECK_MSG(dataset.dim() == dim,
                    "dataset dim " << dataset.dim() << " != model visible "
                                   << dim);
  DEEPPHI_CHECK_MSG(!dataset.empty(), "empty dataset");

  TrainReport report;
  report.chunk_bytes =
      4.0 * static_cast<double>(config_.chunk_examples) * dim;
  util::Timer timer;
  phi::StatsScope scope(report.stats);

  phi::Device* device = config_.device;
  // Model + gradients + per-batch temporaries + the Fig. 5 chunk ring must
  // fit the card. Workspace ≈ 4 batch-sized activation matrices (the SAE's
  // y/z/delta2/back; the RBM's four phase matrices are no larger).
  const double workspace_bytes =
      4.0 * 4.0 * static_cast<double>(config_.batch_size) * dim;
  DeviceReservation reservation(
      device, 2.0 * model_bytes, workspace_bytes,
      static_cast<double>(config_.ring_chunks) * report.chunk_bytes);
  const bool async_loading = config_.policy == ExecPolicy::kPhiOffload;
  std::vector<double> slot_free(config_.ring_chunks, 0.0);
  double last_compute_end = 0.0;

  la::Matrix batch;
  std::int64_t global_step = 0;
  bool stop = false;
  for (int epoch = 0; epoch < config_.epochs && !stop; ++epoch) {
    data::ChunkStreamConfig stream_cfg;
    stream_cfg.chunk_examples = config_.chunk_examples;
    stream_cfg.background = async_loading;
    stream_cfg.ring_chunks = config_.ring_chunks;
    data::ChunkStream stream(dataset, stream_cfg);
    const std::int64_t epoch_first_chunk = report.chunks;
    const double epoch_start_s = timer.seconds();

    while (!stop) {
      auto chunk = stream.next();
      if (!chunk) break;
      DEEPPHI_PROFILE_SCOPE("trainer.chunk");
      // How far ahead the Fig. 5 loading thread is right after this pop.
      const std::size_t ring_buffered = stream.buffered();
      static obs::Gauge& ring_gauge = obs::gauge("train.ring_buffered");
      ring_gauge.set(static_cast<double>(ring_buffered));
      util::Timer chunk_timer;
      // The chunk crosses the host→device link (Fig. 5).
      const double chunk_bytes = 4.0 * static_cast<double>(chunk->size());
      phi::record(phi::h2d_contribution(chunk_bytes));
      double transfer_end = 0.0;
      if (device) {
        const std::size_t slot =
            static_cast<std::size_t>(report.chunks) % config_.ring_chunks;
        double ready = slot_free[slot];
        if (!async_loading) ready = std::max(ready, last_compute_end);
        transfer_end = device->submit_transfer(
            "chunk[" + std::to_string(report.chunks) + "] h2d", chunk_bytes,
            ready);
      }

      double chunk_cost = 0;
      std::int64_t chunk_batches = 0;
      phi::KernelStats chunk_stats;
      {
        phi::StatsScope chunk_scope(chunk_stats);
        for (la::Index begin = 0; begin < chunk->rows();
             begin += config_.batch_size) {
          DEEPPHI_PROFILE_SCOPE("trainer.batch");
          const la::Index count =
              std::min(config_.batch_size, chunk->rows() - begin);
          slice_batch(*chunk, begin, count, batch);
          const double cost = step(batch, global_step);
          ++global_step;
          ++chunk_batches;
          chunk_cost += cost;
          report.final_cost = cost;
        }
      }
      phi::record(chunk_stats);  // merge the chunk's work into report.stats
      if (device) {
        const double compute_end = device->submit_compute(
            "chunk[" + std::to_string(report.chunks) + "] train", chunk_stats,
            transfer_end);
        slot_free[static_cast<std::size_t>(report.chunks) %
                  config_.ring_chunks] = compute_end;
        last_compute_end = compute_end;
      }

      report.batches += chunk_batches;
      static obs::Counter& batches_counter = obs::counter("train.batches");
      batches_counter.add(chunk_batches);
      const double chunk_wall_s = chunk_timer.seconds();
      report.chunk_wall_seconds.push_back(chunk_wall_s);
      const double chunk_mean = chunk_cost / static_cast<double>(chunk_batches);
      report.chunk_mean_costs.push_back(chunk_mean);
      if (config_.telemetry) {
        using obs::TelemetryField;
        config_.telemetry->emit(
            "chunk",
            {TelemetryField::integer("chunk", report.chunks),
             TelemetryField::integer("epoch", epoch),
             TelemetryField::integer("batches", chunk_batches),
             TelemetryField::num("mean_cost", chunk_mean),
             TelemetryField::num("wall_s", chunk_wall_s),
             TelemetryField::num("batches_per_s",
                                 chunk_wall_s > 0
                                     ? static_cast<double>(chunk_batches) /
                                           chunk_wall_s
                                     : 0.0),
             TelemetryField::num("gflops_per_s",
                                 chunk_wall_s > 0
                                     ? chunk_stats.total_flops() / chunk_wall_s /
                                           1e9
                                     : 0.0),
             TelemetryField::integer(
                 "ring_buffered", static_cast<std::int64_t>(ring_buffered))});
      }
      ++report.chunks;
      // Algorithm 1's stop condition.
      if (config_.target_cost > 0 && chunk_mean <= config_.target_cost)
        stop = true;
      if (config_.max_batches > 0 && report.batches >= config_.max_batches)
        stop = true;
    }

    if (config_.telemetry) {
      using obs::TelemetryField;
      const std::int64_t epoch_chunks = report.chunks - epoch_first_chunk;
      double epoch_cost = 0;
      for (std::int64_t k = epoch_first_chunk; k < report.chunks; ++k)
        epoch_cost += report.chunk_mean_costs[static_cast<std::size_t>(k)];
      config_.telemetry->emit(
          "epoch",
          {TelemetryField::integer("epoch", epoch),
           TelemetryField::integer("chunks", epoch_chunks),
           TelemetryField::num("mean_cost",
                               epoch_chunks > 0
                                   ? epoch_cost /
                                         static_cast<double>(epoch_chunks)
                                   : 0.0),
           TelemetryField::num("wall_s", timer.seconds() - epoch_start_s)});
    }
  }

  report.wall_seconds = timer.seconds();
  if (config_.telemetry) {
    using obs::TelemetryField;
    config_.telemetry->emit_metrics(
        "run_summary",
        {TelemetryField::integer("chunks", report.chunks),
         TelemetryField::integer("batches", report.batches),
         TelemetryField::num("final_cost", report.final_cost),
         TelemetryField::num("wall_s", report.wall_seconds),
         TelemetryField::num("gflops_per_s",
                             report.wall_seconds > 0
                                 ? report.stats.total_flops() /
                                       report.wall_seconds / 1e9
                                 : 0.0)});
  }
  return report;
}

TrainReport Trainer::train(SparseAutoencoder& model,
                           const data::Dataset& dataset) {
  SparseAutoencoder::Workspace ws;
  AeGradients grads;
  Optimizer optimizer(config_.optimizer);
  const OptLevel level = config_.level;

  auto step = [&](const la::Matrix& batch, std::int64_t) {
    double cost = 0;
    if (is_matrix_form(level)) {
      cost = model.gradient(batch, ws, grads, is_fused(level));
      optimizer.update(model.w1(), grads.g_w1);
      optimizer.update(model.b1(), grads.g_b1);
      optimizer.update(model.w2(), grads.g_w2);
      optimizer.update(model.b2(), grads.g_b2);
      optimizer.end_step();
    } else {
      const bool parallel = level == OptLevel::kOpenMp;
      cost = sae_gradient_loops(model, batch, ws, grads, parallel);
      sae_apply_update_loops(model, grads, config_.optimizer.lr, parallel);
    }
    return cost;
  };
  const double model_bytes = 4.0 * static_cast<double>(model.param_count());
  return run_loop(dataset, model.visible(), model_bytes, step);
}

TrainReport Trainer::train(Rbm& model, const data::Dataset& dataset) {
  Rbm::Workspace ws;
  RbmGradients grads;
  Optimizer optimizer(config_.optimizer);
  const OptLevel level = config_.level;
  util::Rng sampling_base(config_.seed, /*stream=*/0x5a3bULL);

  std::unique_ptr<par::ThreadPool> pool;
  std::unique_ptr<RbmTaskGraphStep> graph_step;
  if (config_.use_taskgraph) {
    pool = std::make_unique<par::ThreadPool>(
        static_cast<unsigned>(config_.taskgraph_threads));
    graph_step = std::make_unique<RbmTaskGraphStep>(model, *pool);
  }

  auto step = [&](const la::Matrix& batch, std::int64_t global_step) {
    const util::Rng step_rng =
        sampling_base.split(static_cast<std::uint64_t>(global_step));
    double recon = 0;
    if (is_matrix_form(level)) {
      if (graph_step) {
        recon = graph_step->run(batch, ws, grads, step_rng);
      } else {
        recon = model.gradient(batch, ws, grads, step_rng, is_fused(level));
      }
      optimizer.update(model.w(), grads.g_w);
      optimizer.update(model.b(), grads.g_b);
      optimizer.update(model.c(), grads.g_c);
      optimizer.end_step();
    } else {
      const bool parallel = level == OptLevel::kOpenMp;
      recon = rbm_gradient_loops(model, batch, ws, grads, step_rng, parallel);
      rbm_apply_update_loops(model, grads, config_.optimizer.lr, parallel);
    }
    return recon;
  };
  const double model_bytes =
      4.0 * static_cast<double>(model.w().size() + model.b().size() +
                                model.c().size());
  return run_loop(dataset, model.visible(), model_bytes, step);
}

SimulatedTime simulate(const TrainReport& report, phi::Device& device,
                       int ring_chunks) {
  SimulatedTime out;
  const phi::KernelStats per_chunk = report.per_chunk_compute_stats();
  out.total = device.cost_model().evaluate(
      per_chunk.scaled(static_cast<double>(report.chunks)), device.threads());

  // Pipelined (Fig. 5 loading thread).
  device.reset_timeline();
  phi::Offload pipelined(device, phi::OffloadConfig{true, ring_chunks});
  out.pipelined_s = pipelined
                        .process_chunks(static_cast<int>(report.chunks),
                                        report.chunk_bytes, per_chunk)
                        .total_s;

  // Serialized (no loading thread).
  device.reset_timeline();
  phi::Offload serialized(device, phi::OffloadConfig{false, ring_chunks});
  out.serialized_s = serialized
                         .process_chunks(static_cast<int>(report.chunks),
                                         report.chunk_bytes, per_chunk)
                         .total_s;
  device.reset_timeline();
  return out;
}

}  // namespace deepphi::core
