#include "core/trainer.hpp"

#include <memory>

#include "core/autoencoder_loops.hpp"
#include "core/data_parallel_trainer.hpp"
#include "core/rbm_loops.hpp"
#include "core/rbm_taskgraph.hpp"
#include "core/train_loop.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"

namespace deepphi::core {

phi::KernelStats TrainReport::per_chunk_compute_stats() const {
  phi::KernelStats compute = stats;
  compute.h2d_bytes = 0;
  compute.d2h_bytes = 0;
  compute.transfers = 0;
  return chunks > 0 ? compute.scaled(1.0 / static_cast<double>(chunks))
                    : compute;
}

Trainer::Trainer(TrainerConfig config) : config_(config) {
  DEEPPHI_CHECK_MSG(config.batch_size >= 1, "batch_size must be >= 1");
  DEEPPHI_CHECK_MSG(config.chunk_examples >= config.batch_size,
                    "chunk_examples (" << config.chunk_examples
                                       << ") must cover at least one batch ("
                                       << config.batch_size << ")");
  DEEPPHI_CHECK_MSG(config.epochs >= 1, "epochs must be >= 1");
  DEEPPHI_CHECK_MSG(config.ring_chunks >= 1, "ring_chunks must be >= 1");
  DEEPPHI_CHECK_MSG(
      config.shuffle_window == 0 ||
          config.shuffle_window >= config.chunk_examples,
      "shuffle_window (" << config.shuffle_window
                         << ") must be 0 (off) or >= chunk_examples ("
                         << config.chunk_examples << ")");
  DEEPPHI_CHECK_MSG(!config.use_taskgraph || is_matrix_form(config.level),
                    "the Fig. 6 task graph requires a matrix-form level");
  DEEPPHI_CHECK_MSG(config.replicas >= 1, "replicas must be >= 1");
  DEEPPHI_CHECK_MSG(config.replica_threads >= 0,
                    "replica_threads must be >= 0 (0 = auto)");
  DEEPPHI_CHECK_MSG(config.accumulation_steps >= 1,
                    "accumulation_steps must be >= 1");
  DEEPPHI_CHECK_MSG(config.cards >= 1, "cards must be >= 1");
  const bool data_parallel = config.replicas > 1 ||
                             config.accumulation_steps > 1 || config.cards > 1;
  DEEPPHI_CHECK_MSG(!data_parallel || is_matrix_form(config.level),
                    "data-parallel training (replicas/accumulation/cards) "
                    "requires a matrix-form level");
  DEEPPHI_CHECK_MSG(!data_parallel || !config.use_taskgraph,
                    "the Fig. 6 task graph cannot be combined with "
                    "data-parallel replicas");
}

template <typename StepFn>
TrainReport Trainer::run_loop(const data::StreamingSource& dataset,
                              la::Index dim, double model_bytes,
                              StepFn&& step) {
  // Model + gradients + per-batch temporaries + the Fig. 5 chunk ring must
  // fit the card. Workspace ≈ 4 batch-sized activation matrices (the SAE's
  // y/z/delta2/back; the RBM's four phase matrices are no larger).
  const double workspace_bytes =
      4.0 * 4.0 * static_cast<double>(config_.batch_size) * dim;
  la::Matrix batch;
  std::int64_t global_step = 0;
  return detail::run_train_loop(
      config_, dataset, dim, 2.0 * model_bytes, workspace_bytes,
      [&](const la::Matrix& chunk) {
        detail::ChunkOutcome outcome;
        for (la::Index begin = 0; begin < chunk.rows();
             begin += config_.batch_size) {
          DEEPPHI_PROFILE_SCOPE("trainer.batch");
          const la::Index count =
              std::min(config_.batch_size, chunk.rows() - begin);
          detail::slice_batch(chunk, begin, count, batch);
          const double cost = step(batch, global_step);
          ++global_step;
          ++outcome.batches;
          ++outcome.updates;
          outcome.cost_sum += cost;
          outcome.final_cost = cost;
        }
        return outcome;
      });
}

TrainReport Trainer::train(SparseAutoencoder& model,
                           const data::StreamingSource& dataset) {
  if (config_.replicas > 1 || config_.accumulation_steps > 1 ||
      config_.cards > 1 || config_.cluster)
    return DataParallelTrainer(config_).train(model, dataset);
  SparseAutoencoder::Workspace ws;
  AeGradients grads;
  Optimizer optimizer(config_.optimizer);
  const OptLevel level = config_.level;

  auto step = [&](const la::Matrix& batch, std::int64_t) {
    double cost = 0;
    if (is_matrix_form(level)) {
      cost = model.gradient(batch, ws, grads, is_fused(level));
      optimizer.update(model.w1(), grads.g_w1);
      optimizer.update(model.b1(), grads.g_b1);
      optimizer.update(model.w2(), grads.g_w2);
      optimizer.update(model.b2(), grads.g_b2);
      optimizer.end_step();
    } else {
      const bool parallel = level == OptLevel::kOpenMp;
      cost = sae_gradient_loops(model, batch, ws, grads, parallel);
      sae_apply_update_loops(model, grads, config_.optimizer.lr, parallel);
    }
    return cost;
  };
  const double model_bytes = 4.0 * static_cast<double>(model.param_count());
  return run_loop(dataset, model.visible(), model_bytes, step);
}

TrainReport Trainer::train(Rbm& model, const data::StreamingSource& dataset) {
  if (config_.replicas > 1 || config_.accumulation_steps > 1 ||
      config_.cards > 1 || config_.cluster)
    return DataParallelTrainer(config_).train(model, dataset);
  Rbm::Workspace ws;
  RbmGradients grads;
  Optimizer optimizer(config_.optimizer);
  const OptLevel level = config_.level;
  util::Rng sampling_base(config_.seed, /*stream=*/0x5a3bULL);

  std::unique_ptr<par::ThreadPool> pool;
  std::unique_ptr<RbmTaskGraphStep> graph_step;
  if (config_.use_taskgraph) {
    pool = std::make_unique<par::ThreadPool>(
        static_cast<unsigned>(config_.taskgraph_threads));
    graph_step = std::make_unique<RbmTaskGraphStep>(model, *pool);
  }

  auto step = [&](const la::Matrix& batch, std::int64_t global_step) {
    const util::Rng step_rng =
        sampling_base.split(static_cast<std::uint64_t>(global_step));
    double recon = 0;
    if (is_matrix_form(level)) {
      if (graph_step) {
        recon = graph_step->run(batch, ws, grads, step_rng);
      } else {
        recon = model.gradient(batch, ws, grads, step_rng, is_fused(level));
      }
      optimizer.update(model.w(), grads.g_w);
      optimizer.update(model.b(), grads.g_b);
      optimizer.update(model.c(), grads.g_c);
      optimizer.end_step();
    } else {
      const bool parallel = level == OptLevel::kOpenMp;
      recon = rbm_gradient_loops(model, batch, ws, grads, step_rng, parallel);
      rbm_apply_update_loops(model, grads, config_.optimizer.lr, parallel);
    }
    return recon;
  };
  const double model_bytes =
      4.0 * static_cast<double>(model.w().size() + model.b().size() +
                                model.c().size());
  return run_loop(dataset, model.visible(), model_bytes, step);
}

SimulatedTime simulate(const TrainReport& report, phi::Device& device,
                       int ring_chunks) {
  SimulatedTime out;
  const phi::KernelStats per_chunk = report.per_chunk_compute_stats();
  out.total = device.cost_model().evaluate(
      per_chunk.scaled(static_cast<double>(report.chunks)), device.threads());

  // Pipelined (Fig. 5 loading thread).
  device.reset_timeline();
  phi::Offload pipelined(device, phi::OffloadConfig{true, ring_chunks});
  out.pipelined_s = pipelined
                        .process_chunks(static_cast<int>(report.chunks),
                                        report.chunk_bytes, per_chunk)
                        .total_s;

  // Serialized (no loading thread).
  device.reset_timeline();
  phi::Offload serialized(device, phi::OffloadConfig{false, ring_chunks});
  out.serialized_s = serialized
                         .process_chunks(static_cast<int>(report.chunks),
                                         report.chunk_bytes, per_chunk)
                         .total_s;
  device.reset_timeline();
  return out;
}

}  // namespace deepphi::core
