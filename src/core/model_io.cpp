#include "core/model_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace deepphi::core {

namespace {

constexpr std::uint32_t kVersion = 1;

void write_magic(std::ofstream& out, const char magic[4]) {
  out.write(magic, 4);
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
}

void check_magic(std::ifstream& in, const char magic[4], const std::string& path) {
  char got[4];
  in.read(got, 4);
  DEEPPHI_CHECK_MSG(in.good() && std::memcmp(got, magic, 4) == 0,
                    "'" << path << "' is not a " << std::string(magic, 4)
                        << " checkpoint");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  DEEPPHI_CHECK_MSG(in.good() && version == kVersion,
                    "'" << path << "' has unsupported version " << version);
}

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  DEEPPHI_CHECK_MSG(in.good(), "'" << path << "' truncated");
  return v;
}

void write_floats(std::ofstream& out, const float* p, la::Index n) {
  out.write(reinterpret_cast<const char*>(p),
            static_cast<std::streamsize>(sizeof(float) * n));
}

void read_floats(std::ifstream& in, float* p, la::Index n, const std::string& path) {
  in.read(reinterpret_cast<char*>(p),
          static_cast<std::streamsize>(sizeof(float) * n));
  DEEPPHI_CHECK_MSG(in.good() || n == 0, "'" << path << "' truncated in payload");
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DEEPPHI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DEEPPHI_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return in;
}

void write_sae_body(std::ofstream& out, const SparseAutoencoder& model) {
  const SaeConfig& cfg = model.config();
  write_pod(out, static_cast<std::int64_t>(cfg.visible));
  write_pod(out, static_cast<std::int64_t>(cfg.hidden));
  write_pod(out, cfg.lambda);
  write_pod(out, cfg.rho);
  write_pod(out, cfg.beta);
  write_pod(out, static_cast<std::int32_t>(cfg.tied_weights ? 1 : 0));
  write_floats(out, model.w1().data(), model.w1().size());
  write_floats(out, model.b1().data(), model.b1().size());
  write_floats(out, model.w2().data(), model.w2().size());
  write_floats(out, model.b2().data(), model.b2().size());
}

SparseAutoencoder read_sae_body(std::ifstream& in, const std::string& path) {
  SaeConfig cfg;
  cfg.visible = static_cast<la::Index>(read_pod<std::int64_t>(in, path));
  cfg.hidden = static_cast<la::Index>(read_pod<std::int64_t>(in, path));
  cfg.lambda = read_pod<float>(in, path);
  cfg.rho = read_pod<float>(in, path);
  cfg.beta = read_pod<float>(in, path);
  cfg.tied_weights = read_pod<std::int32_t>(in, path) != 0;
  SparseAutoencoder model(cfg, /*seed=*/0);
  read_floats(in, model.w1().data(), model.w1().size(), path);
  read_floats(in, model.b1().data(), model.b1().size(), path);
  read_floats(in, model.w2().data(), model.w2().size(), path);
  read_floats(in, model.b2().data(), model.b2().size(), path);
  return model;
}

void write_rbm_body(std::ofstream& out, const Rbm& model) {
  const RbmConfig& cfg = model.config();
  write_pod(out, static_cast<std::int64_t>(cfg.visible));
  write_pod(out, static_cast<std::int64_t>(cfg.hidden));
  write_pod(out, static_cast<std::int32_t>(cfg.cd_k));
  write_pod(out, static_cast<std::int32_t>(cfg.sample_visible ? 1 : 0));
  write_pod(out, static_cast<std::int32_t>(cfg.visible_type));
  write_pod(out, cfg.init_sigma);
  write_floats(out, model.w().data(), model.w().size());
  write_floats(out, model.b().data(), model.b().size());
  write_floats(out, model.c().data(), model.c().size());
}

Rbm read_rbm_body(std::ifstream& in, const std::string& path) {
  RbmConfig cfg;
  cfg.visible = static_cast<la::Index>(read_pod<std::int64_t>(in, path));
  cfg.hidden = static_cast<la::Index>(read_pod<std::int64_t>(in, path));
  cfg.cd_k = static_cast<int>(read_pod<std::int32_t>(in, path));
  cfg.sample_visible = read_pod<std::int32_t>(in, path) != 0;
  cfg.visible_type = static_cast<VisibleType>(read_pod<std::int32_t>(in, path));
  cfg.init_sigma = read_pod<float>(in, path);
  Rbm model(cfg, /*seed=*/0);
  read_floats(in, model.w().data(), model.w().size(), path);
  read_floats(in, model.b().data(), model.b().size(), path);
  read_floats(in, model.c().data(), model.c().size(), path);
  return model;
}

}  // namespace

void save_model(const SparseAutoencoder& model, const std::string& path) {
  std::ofstream out = open_out(path);
  write_magic(out, "DPAE");
  write_sae_body(out, model);
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

SparseAutoencoder load_sae(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, "DPAE", path);
  return read_sae_body(in, path);
}

void save_model(const Rbm& model, const std::string& path) {
  std::ofstream out = open_out(path);
  write_magic(out, "DPRB");
  write_rbm_body(out, model);
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

Rbm load_rbm(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, "DPRB", path);
  return read_rbm_body(in, path);
}

void save_model(const StackedAutoencoder& model, const std::string& path) {
  std::ofstream out = open_out(path);
  write_magic(out, "DPSA");
  write_pod(out, static_cast<std::int64_t>(model.layers()));
  for (std::size_t k = 0; k < model.layers(); ++k)
    write_sae_body(out, model.layer(k));
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

StackedAutoencoder load_stacked_sae(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, "DPSA", path);
  const auto layers = read_pod<std::int64_t>(in, path);
  DEEPPHI_CHECK_MSG(layers >= 1 && layers < 1024,
                    "'" << path << "' has implausible layer count " << layers);
  std::vector<SparseAutoencoder> loaded;
  loaded.reserve(static_cast<std::size_t>(layers));
  std::vector<la::Index> sizes;
  for (std::int64_t k = 0; k < layers; ++k) {
    loaded.push_back(read_sae_body(in, path));
    if (k == 0) sizes.push_back(loaded.back().visible());
    DEEPPHI_CHECK_MSG(loaded.back().visible() == sizes.back(),
                      "'" << path << "' layer " << k << " does not chain");
    sizes.push_back(loaded.back().hidden());
  }
  StackedAutoencoder model(sizes, loaded.front().config(), /*seed=*/0);
  for (std::size_t k = 0; k < model.layers(); ++k) {
    model.layer(k).w1().copy_from(loaded[k].w1());
    model.layer(k).b1().copy_from(loaded[k].b1());
    model.layer(k).w2().copy_from(loaded[k].w2());
    model.layer(k).b2().copy_from(loaded[k].b2());
  }
  return model;
}

void save_model(const Dbn& model, const std::string& path) {
  std::ofstream out = open_out(path);
  write_magic(out, "DPDB");
  write_pod(out, static_cast<std::int64_t>(model.layers()));
  for (std::size_t k = 0; k < model.layers(); ++k)
    write_rbm_body(out, model.layer(k));
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

void save_model(const QuantizedEncoder& model, const std::string& path) {
  std::ofstream out = open_out(path);
  write_magic(out, "DPQE");
  write_pod(out, static_cast<std::int64_t>(model.layers()));
  write_pod(out, static_cast<std::int64_t>(model.group()));
  for (std::size_t k = 0; k < model.layers(); ++k) {
    const QuantizedEncoder::Layer& l = model.layer(k);
    write_pod(out, static_cast<std::int64_t>(l.w.rows()));
    write_pod(out, static_cast<std::int64_t>(l.w.cols()));
    write_floats(out, l.bias.data(), l.bias.size());
    write_floats(out, l.w.scales(0), l.w.rows() * l.w.groups());
    // Codes include the zero padding to the group boundary, so the payload
    // is one contiguous plane and the loader needs no per-row reassembly.
    out.write(reinterpret_cast<const char*>(l.w.codes(0)),
              static_cast<std::streamsize>(l.w.rows() * l.w.padded_cols()));
  }
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

std::unique_ptr<QuantizedEncoder> load_quantized(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, "DPQE", path);
  const auto layers = read_pod<std::int64_t>(in, path);
  DEEPPHI_CHECK_MSG(layers >= 1 && layers < 1024,
                    "'" << path << "' has implausible layer count " << layers);
  const auto group = static_cast<la::Index>(read_pod<std::int64_t>(in, path));
  DEEPPHI_CHECK_MSG(group > 0 && group % la::quant::kGroupAlign == 0 &&
                        group <= la::quant::kMaxGroup,
                    "'" << path << "' has invalid quantization group "
                        << group);
  std::vector<QuantizedEncoder::Layer> loaded;
  loaded.reserve(static_cast<std::size_t>(layers));
  for (std::int64_t k = 0; k < layers; ++k) {
    const auto units = static_cast<la::Index>(read_pod<std::int64_t>(in, path));
    const auto inputs = static_cast<la::Index>(read_pod<std::int64_t>(in, path));
    DEEPPHI_CHECK_MSG(units >= 1 && inputs >= 1 && units < (1 << 24) &&
                          inputs < (1 << 24),
                      "'" << path << "' layer " << k
                          << " has implausible dims " << units << "x"
                          << inputs);
    DEEPPHI_CHECK_MSG(loaded.empty() || inputs == loaded.back().w.rows(),
                      "'" << path << "' layer " << k << " does not chain");
    QuantizedEncoder::Layer l;
    l.w = la::quant::QuantizedWeights::allocate(units, inputs, group);
    l.bias = la::Vector::uninitialized(units);
    read_floats(in, l.bias.data(), units, path);
    read_floats(in, l.w.scales(0), units * l.w.groups(), path);
    in.read(reinterpret_cast<char*>(l.w.codes(0)),
            static_cast<std::streamsize>(units * l.w.padded_cols()));
    DEEPPHI_CHECK_MSG(in.good(), "'" << path << "' truncated in payload");
    // Derived group sums come from the codes, which also range-checks them.
    l.w.rebuild_wsums();
    loaded.push_back(std::move(l));
  }
  return std::make_unique<QuantizedEncoder>(std::move(loaded));
}

Dbn load_dbn(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, "DPDB", path);
  const auto layers = read_pod<std::int64_t>(in, path);
  DEEPPHI_CHECK_MSG(layers >= 1 && layers < 1024,
                    "'" << path << "' has implausible layer count " << layers);
  std::vector<Rbm> loaded;
  loaded.reserve(static_cast<std::size_t>(layers));
  std::vector<la::Index> sizes;
  for (std::int64_t k = 0; k < layers; ++k) {
    loaded.push_back(read_rbm_body(in, path));
    if (k == 0) sizes.push_back(loaded.back().visible());
    DEEPPHI_CHECK_MSG(loaded.back().visible() == sizes.back(),
                      "'" << path << "' layer " << k << " does not chain");
    sizes.push_back(loaded.back().hidden());
  }
  Dbn model(sizes, loaded.front().config(), /*seed=*/0);
  for (std::size_t k = 0; k < model.layers(); ++k) {
    model.layer(k).w().copy_from(loaded[k].w());
    model.layer(k).b().copy_from(loaded[k].b());
    model.layer(k).c().copy_from(loaded[k].c());
  }
  return model;
}

}  // namespace deepphi::core

namespace deepphi::model_io {

std::string sniff_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DEEPPHI_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  char magic[4];
  in.read(magic, 4);
  DEEPPHI_CHECK_MSG(in.good(), "'" << path << "' too short for a checkpoint");
  return std::string(magic, 4);
}

LoadedModel load_any(const std::string& path) {
  LoadedModel loaded;
  loaded.magic = sniff_magic(path);
  if (loaded.magic == "DPAE") {
    loaded.model = std::make_unique<core::SparseAutoencoder>(core::load_sae(path));
  } else if (loaded.magic == "DPRB") {
    loaded.model = std::make_unique<core::Rbm>(core::load_rbm(path));
  } else if (loaded.magic == "DPSA") {
    loaded.model = std::make_unique<core::StackedAutoencoder>(
        core::load_stacked_sae(path));
  } else if (loaded.magic == "DPDB") {
    loaded.model = std::make_unique<core::Dbn>(core::load_dbn(path));
  } else if (loaded.magic == "DPQE") {
    loaded.model = core::load_quantized(path);
  } else {
    throw util::Error("'" + path + "' has unknown checkpoint magic '" +
                      loaded.magic + "' (known: DPAE, DPRB, DPSA, DPDB, DPQE)");
  }
  loaded.precision = loaded.magic == "DPQE" ? "int8" : "fp32";
  std::ifstream size_probe(path, std::ios::binary | std::ios::ate);
  if (size_probe.good()) {
    const auto end = size_probe.tellg();
    if (end > 0) loaded.file_bytes = static_cast<std::uint64_t>(end);
  }
  return loaded;
}

}  // namespace deepphi::model_io
