#include "core/optimizer.hpp"

#include <cmath>

#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::core {

Optimizer::Optimizer(OptimizerConfig config) : config_(config) {
  DEEPPHI_CHECK_MSG(config.lr > 0, "learning rate must be positive");
  DEEPPHI_CHECK_MSG(config.momentum >= 0 && config.momentum < 1,
                    "momentum must be in [0, 1)");
  DEEPPHI_CHECK_MSG(config.lr_decay >= 0, "lr_decay must be >= 0");
}

float Optimizer::current_lr() const {
  return config_.lr / (1.0f + config_.lr_decay * static_cast<float>(step_));
}

void Optimizer::update(la::Matrix& param, const la::Matrix& grad) {
  DEEPPHI_CHECK_MSG(param.rows() == grad.rows() && param.cols() == grad.cols(),
                    "optimizer shape mismatch");
  update_raw(param.data(), grad.data(), param.size());
}

void Optimizer::update(la::Vector& param, const la::Vector& grad) {
  DEEPPHI_CHECK_MSG(param.size() == grad.size(), "optimizer size mismatch");
  update_raw(param.data(), grad.data(), param.size());
}

void Optimizer::update_raw(float* p, const float* g, la::Index n) {
  const float lr = current_lr();
  switch (config_.kind) {
    case OptimizerKind::kSgd: {
      phi::record(phi::loop_contribution(n, 2.0, 2.0, 1.0));
#pragma omp simd
      for (la::Index i = 0; i < n; ++i) p[i] -= lr * g[i];
      break;
    }
    case OptimizerKind::kMomentum: {
      phi::record(phi::loop_contribution(n, 4.0, 3.0, 2.0));
      auto& v = state_[p];
      if (v.size() != static_cast<std::size_t>(n))
        v.assign(static_cast<std::size_t>(n), 0.0f);
      const float mu = config_.momentum;
      float* vp = v.data();
#pragma omp simd
      for (la::Index i = 0; i < n; ++i) {
        vp[i] = mu * vp[i] - lr * g[i];
        p[i] += vp[i];
      }
      break;
    }
    case OptimizerKind::kAdagrad: {
      phi::record(phi::loop_contribution(n, 6.0, 3.0, 2.0));
      auto& a = state_[p];
      if (a.size() != static_cast<std::size_t>(n))
        a.assign(static_cast<std::size_t>(n), 0.0f);
      const float eps = config_.adagrad_eps;
      float* ap = a.data();
      // Adagrad uses the base rate; the accumulator provides the decay.
      const float base_lr = config_.lr;
#pragma omp simd
      for (la::Index i = 0; i < n; ++i) {
        ap[i] += g[i] * g[i];
        p[i] -= base_lr * g[i] / (std::sqrt(ap[i]) + eps);
      }
      break;
    }
  }
}

}  // namespace deepphi::core
