#include "obs/telemetry.hpp"

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/json_writer.hpp"

namespace deepphi::obs {

TelemetryField TelemetryField::str(std::string key, std::string v) {
  TelemetryField f;
  f.kind = Kind::kString;
  f.key = std::move(key);
  f.string_value = std::move(v);
  return f;
}

TelemetryField TelemetryField::num(std::string key, double v) {
  TelemetryField f;
  f.kind = Kind::kDouble;
  f.key = std::move(key);
  f.double_value = v;
  return f;
}

TelemetryField TelemetryField::integer(std::string key, std::int64_t v) {
  TelemetryField f;
  f.kind = Kind::kInt;
  f.key = std::move(key);
  f.int_value = v;
  return f;
}

TelemetryField TelemetryField::boolean(std::string key, bool v) {
  TelemetryField f;
  f.kind = Kind::kBool;
  f.key = std::move(key);
  f.bool_value = v;
  return f;
}

namespace {

void write_fields(util::JsonWriter& w, const std::vector<TelemetryField>& fields) {
  for (const TelemetryField& f : fields) {
    w.key(f.key);
    switch (f.kind) {
      case TelemetryField::Kind::kString: w.value(f.string_value); break;
      case TelemetryField::Kind::kDouble: w.value(f.double_value); break;
      case TelemetryField::Kind::kInt: w.value(f.int_value); break;
      case TelemetryField::Kind::kBool: w.value(f.bool_value); break;
    }
  }
}

}  // namespace

TelemetrySink::TelemetrySink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      os_(owned_.get()) {
  DEEPPHI_CHECK_MSG(os_->good(),
                    "cannot open telemetry path '" << path << "' for writing");
}

TelemetrySink::TelemetrySink(std::ostream& os) : os_(&os) {}

TelemetrySink::~TelemetrySink() { flush(); }

void TelemetrySink::emit(const std::string& record_type,
                         const std::vector<TelemetryField>& fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.member("record", record_type);
  w.member("seq", seq_);
  write_fields(w, fields);
  w.end_object();
  (*os_) << os.str() << '\n';
  ++seq_;
}

void TelemetrySink::emit_run_header(const std::string& program,
                                    const std::vector<TelemetryField>& fields) {
  std::vector<TelemetryField> all;
  all.push_back(TelemetryField::str("schema", kTelemetrySchema));
  all.push_back(TelemetryField::str("program", program));
  all.insert(all.end(), fields.begin(), fields.end());
  emit("run_header", all);
}

void TelemetrySink::emit_metrics(const std::string& record_type,
                                 const std::vector<TelemetryField>& fields) {
  // Snapshot before taking the sink lock (snapshot takes the registry lock).
  const std::vector<MetricSample> samples = metrics::snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.member("record", record_type);
  w.member("seq", seq_);
  write_fields(w, fields);
  w.key("metrics");
  w.begin_object();
  for (const MetricSample& m : samples) w.member(m.name, m.value);
  w.end_object();
  w.end_object();
  (*os_) << os.str() << '\n';
  ++seq_;
}

std::int64_t TelemetrySink::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

void TelemetrySink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  os_->flush();
}

}  // namespace deepphi::obs
