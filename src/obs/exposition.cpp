#include "obs/exposition.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <vector>
#include <sstream>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "util/json_writer.hpp"

namespace deepphi::obs {

namespace {

/// Shortest round-trippable decimal for exposition lines.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void write_histogram_summary(util::JsonWriter& w,
                             const HistogramSnapshot& s) {
  w.begin_object();
  w.member("count", s.count);
  w.member("sum", s.sum);
  w.member("min", s.min);
  w.member("max", s.max);
  w.member("mean", s.mean());
  w.member("p50", s.quantile(0.50));
  w.member("p95", s.quantile(0.95));
  w.member("p99", s.quantile(0.99));
  w.end_object();
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "deepphi_";
  for (const char c : name)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  return out;
}

PrometheusSeries prometheus_series(const std::string& name) {
  static constexpr const char kPrefix[] = "serve.model.";
  static constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.rfind(kPrefix, 0) == 0) {
    // serve.model.<model>.<rest>: model names never contain '.', so the
    // first dot after the prefix ends the label value.
    const std::size_t dot = name.find('.', kPrefixLen);
    if (dot != std::string::npos && dot + 1 < name.size()) {
      const std::string model = name.substr(kPrefixLen, dot - kPrefixLen);
      return {prometheus_name("serve.model." + name.substr(dot + 1)),
              "model=\"" + model + "\""};
    }
  }
  return {prometheus_name(name), ""};
}

namespace {

/// "{model=\"x\"}" / "{model=\"x\",le=\"y\"}" / "{le=\"y\"}" / "".
std::string braced(const std::string& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  if (labels.empty()) return "{" + extra + "}";
  if (extra.empty()) return "{" + labels + "}";
  return "{" + labels + "," + extra + "}";
}

/// Accumulates samples grouped by family: per-model series share one family
/// (distinguished by the model label), and the exposition format requires
/// every line of a family to sit together under a single `# TYPE` line.
class FamilyWriter {
 public:
  std::ostringstream& lines(const std::string& family, const char* type) {
    const auto [it, fresh] = families_.try_emplace(family);
    if (fresh) {
      order_.push_back(family);
      it->second << "# TYPE " << family << " " << type << "\n";
    }
    return it->second;
  }
  std::string str() const {
    std::string out;
    for (const std::string& family : order_) out += families_.at(family).str();
    return out;
  }

 private:
  std::map<std::string, std::ostringstream> families_;
  std::vector<std::string> order_;  // first-seen, keeps snapshot ordering
};

}  // namespace

std::string prometheus_text() {
  FamilyWriter out;
  for (const MetricSample& m : metrics::snapshot()) {
    const PrometheusSeries series = prometheus_series(m.name);
    switch (m.kind) {
      case MetricSample::Kind::kCounter:
        out.lines(series.family + "_total", "counter")
            << series.family << "_total" << braced(series.labels) << " "
            << fmt(m.value) << "\n";
        break;
      case MetricSample::Kind::kGauge:
        out.lines(series.family, "gauge")
            << series.family << braced(series.labels) << " " << fmt(m.value)
            << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        break;  // rendered below, with buckets
    }
  }
  for (const HistogramSample& h : metrics::snapshot_histograms()) {
    const PrometheusSeries series = prometheus_series(h.name);
    std::ostringstream& os = out.lines(series.family, "histogram");
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < h.snapshot.buckets.size(); ++i) {
      if (h.snapshot.buckets[i] == 0) continue;
      cum += h.snapshot.buckets[i];
      os << series.family << "_bucket"
         << braced(series.labels,
                   "le=\"" +
                       fmt(Histogram::bucket_upper(static_cast<int>(i))) +
                       "\"")
         << " " << cum << "\n";
    }
    os << series.family << "_bucket" << braced(series.labels, "le=\"+Inf\"")
       << " " << cum << "\n"
       << series.family << "_sum" << braced(series.labels) << " "
       << fmt(h.snapshot.sum) << "\n"
       << series.family << "_count" << braced(series.labels) << " "
       << h.snapshot.count << "\n";
  }
  return out.str();
}

void write_registry_stats(util::JsonWriter& w) {
  const std::vector<MetricSample> samples = metrics::snapshot();
  w.key("counters");
  w.begin_object();
  for (const MetricSample& m : samples)
    if (m.kind == MetricSample::Kind::kCounter) w.member(m.name, m.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const MetricSample& m : samples)
    if (m.kind == MetricSample::Kind::kGauge) w.member(m.name, m.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const HistogramSample& h : metrics::snapshot_histograms()) {
    w.key(h.name);
    write_histogram_summary(w, h.snapshot);
  }
  w.end_object();
}

}  // namespace deepphi::obs
