#include "obs/exposition.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "util/json_writer.hpp"

namespace deepphi::obs {

namespace {

/// Shortest round-trippable decimal for exposition lines.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void write_histogram_summary(util::JsonWriter& w,
                             const HistogramSnapshot& s) {
  w.begin_object();
  w.member("count", s.count);
  w.member("sum", s.sum);
  w.member("min", s.min);
  w.member("max", s.max);
  w.member("mean", s.mean());
  w.member("p50", s.quantile(0.50));
  w.member("p95", s.quantile(0.95));
  w.member("p99", s.quantile(0.99));
  w.end_object();
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "deepphi_";
  for (const char c : name)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  return out;
}

std::string prometheus_text() {
  std::ostringstream os;
  for (const MetricSample& m : metrics::snapshot()) {
    const std::string pname = prometheus_name(m.name);
    switch (m.kind) {
      case MetricSample::Kind::kCounter:
        os << "# TYPE " << pname << "_total counter\n"
           << pname << "_total " << fmt(m.value) << "\n";
        break;
      case MetricSample::Kind::kGauge:
        os << "# TYPE " << pname << " gauge\n"
           << pname << " " << fmt(m.value) << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        break;  // rendered below, with buckets
    }
  }
  for (const HistogramSample& h : metrics::snapshot_histograms()) {
    const std::string pname = prometheus_name(h.name);
    os << "# TYPE " << pname << " histogram\n";
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < h.snapshot.buckets.size(); ++i) {
      if (h.snapshot.buckets[i] == 0) continue;
      cum += h.snapshot.buckets[i];
      os << pname << "_bucket{le=\""
         << fmt(Histogram::bucket_upper(static_cast<int>(i))) << "\"} " << cum
         << "\n";
    }
    os << pname << "_bucket{le=\"+Inf\"} " << cum << "\n"
       << pname << "_sum " << fmt(h.snapshot.sum) << "\n"
       << pname << "_count " << h.snapshot.count << "\n";
  }
  return os.str();
}

void write_registry_stats(util::JsonWriter& w) {
  const std::vector<MetricSample> samples = metrics::snapshot();
  w.key("counters");
  w.begin_object();
  for (const MetricSample& m : samples)
    if (m.kind == MetricSample::Kind::kCounter) w.member(m.name, m.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const MetricSample& m : samples)
    if (m.kind == MetricSample::Kind::kGauge) w.member(m.name, m.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const HistogramSample& h : metrics::snapshot_histograms()) {
    w.key(h.name);
    write_histogram_summary(w, h.snapshot);
  }
  w.end_object();
}

}  // namespace deepphi::obs
