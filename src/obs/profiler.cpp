#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "phi/trace.hpp"
#include "util/error.hpp"
#include "util/json_writer.hpp"

namespace deepphi::obs {

namespace {

std::atomic<bool> g_enabled{false};

// One per thread that ever recorded. Owned jointly by the registry and the
// thread-local handle so spans survive thread exit.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Span> spans;
  std::string name;
  std::uint32_t index = 0;
  std::uint32_t depth = 0;  // only touched by the owning thread
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    b->index = static_cast<std::uint32_t>(reg.buffers.size());
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

void Profiler::enable(bool on) {
  if (on) (void)epoch();  // pin the epoch before the first span
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Profiler::enabled() { return g_enabled.load(std::memory_order_relaxed); }

double Profiler::now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch())
      .count();
}

void Profiler::clear() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->spans.clear();
  }
}

std::vector<Span> Profiler::snapshot() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::vector<Span> out;
  for (auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    out.insert(out.end(), buf->spans.begin(), buf->spans.end());
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_s < b.start_s;
  });
  return out;
}

std::string Profiler::thread_name(std::uint32_t index) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (index < reg.buffers.size()) {
    std::lock_guard<std::mutex> buf_lock(reg.buffers[index]->mutex);
    if (!reg.buffers[index]->name.empty()) return reg.buffers[index]->name;
  }
  return "thread-" + std::to_string(index);
}

std::uint32_t Profiler::thread_count() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return static_cast<std::uint32_t>(reg.buffers.size());
}

std::vector<SpanStats> Profiler::aggregate() {
  const std::vector<Span> spans = snapshot();
  // Group durations by label. Labels are pointers to static strings, but two
  // translation units may hold distinct pointers to equal text — group by
  // string value.
  struct Group {
    std::vector<double> durations;
  };
  std::vector<std::pair<std::string, Group>> groups;
  for (const Span& s : spans) {
    const std::string label = s.label;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == label; });
    if (it == groups.end()) {
      groups.push_back({label, {}});
      it = groups.end() - 1;
    }
    it->second.durations.push_back(s.duration_s());
  }

  std::vector<SpanStats> out;
  out.reserve(groups.size());
  for (auto& [label, group] : groups) {
    std::vector<double>& d = group.durations;
    std::sort(d.begin(), d.end());
    SpanStats st;
    st.label = label;
    st.count = static_cast<std::int64_t>(d.size());
    for (double v : d) st.total_s += v;
    st.min_s = d.front();
    st.max_s = d.back();
    auto quantile = [&](double q) {
      const std::size_t i = static_cast<std::size_t>(
          q * static_cast<double>(d.size() - 1) + 0.5);
      return d[std::min(i, d.size() - 1)];
    };
    st.p50_s = quantile(0.50);
    st.p95_s = quantile(0.95);
    out.push_back(std::move(st));
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_s > b.total_s;
  });
  return out;
}

std::string Profiler::report() {
  const std::vector<SpanStats> stats = aggregate();
  if (stats.empty()) return "";
  std::ostringstream os;
  os << "label                         count     total_ms      p50_ms      "
        "p95_ms      max_ms\n";
  char line[160];
  for (const SpanStats& s : stats) {
    std::snprintf(line, sizeof line, "%-28s %6lld %12.3f %11.4f %11.4f %11.4f\n",
                  s.label.c_str(), static_cast<long long>(s.count),
                  s.total_s * 1e3, s.p50_s * 1e3, s.p95_s * 1e3, s.max_s * 1e3);
    os << line;
  }
  return os.str();
}

std::string Profiler::to_chrome_json(const phi::Trace* simulated) {
  const std::vector<Span> spans = snapshot();
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();

  // pid 1: the measured host run, one tid per registered thread.
  constexpr int kHostPid = 1;
  for (const Span& s : spans) {
    w.begin_object();
    w.member("name", s.label);
    w.member("ph", "X");
    w.member("pid", kHostPid);
    w.member("tid", static_cast<std::int64_t>(s.thread_index) + 1);
    w.member("ts", s.start_s * 1e6);
    w.member("dur", s.duration_s() * 1e6);
    w.end_object();
  }
  w.begin_object();
  w.member("name", "process_name").member("ph", "M").member("pid", kHostPid);
  w.key("args").begin_object().member("name", "host (measured)").end_object();
  w.end_object();
  const std::uint32_t threads = thread_count();
  for (std::uint32_t t = 0; t < threads; ++t) {
    w.begin_object();
    w.member("name", "thread_name").member("ph", "M").member("pid", kHostPid);
    w.member("tid", static_cast<std::int64_t>(t) + 1);
    w.key("args").begin_object().member("name", thread_name(t)).end_object();
    w.end_object();
  }

  // pid 2: the simulated device timeline (compute + DMA tracks), so modeled
  // overlap sits next to measured overlap in the same Perfetto view.
  if (simulated != nullptr) {
    constexpr int kSimPid = 2;
    for (const auto& e : simulated->events()) {
      w.begin_object();
      w.member("name", e.name);
      w.member("ph", "X");
      w.member("pid", kSimPid);
      w.member("tid",
               e.resource == phi::TraceEvent::Resource::kCompute ? 1 : 2);
      w.member("ts", e.start_s * 1e6);
      w.member("dur", e.duration_s() * 1e6);
      w.end_object();
    }
    w.begin_object();
    w.member("name", "process_name").member("ph", "M").member("pid", kSimPid);
    w.key("args").begin_object().member("name", "phi (simulated)").end_object();
    w.end_object();
    for (int tid = 1; tid <= 2; ++tid) {
      w.begin_object();
      w.member("name", "thread_name").member("ph", "M").member("pid", kSimPid);
      w.member("tid", tid);
      w.key("args")
          .begin_object()
          .member("name", tid == 1 ? "compute (simulated)" : "dma (simulated)")
          .end_object();
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  return os.str();
}

void Profiler::write_chrome_json(const std::string& path,
                                 const phi::Trace* simulated) {
  std::ofstream out(path);
  DEEPPHI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_chrome_json(simulated);
  DEEPPHI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

void set_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.name = name;
}

namespace detail {

std::uint32_t scope_enter() {
  ThreadBuffer& buf = local_buffer();
  return buf.depth++;  // owning thread only; no lock needed
}

void scope_exit(const char* label, double start_s, std::uint32_t depth) {
  const double end_s = Profiler::now_s();
  ThreadBuffer& buf = local_buffer();
  buf.depth = depth;  // restore (also heals depth if clear() raced a scope)
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.spans.push_back(Span{label, start_s, end_s, buf.index, depth});
}

}  // namespace detail

}  // namespace deepphi::obs
