// JSONL run telemetry: one JSON object per line, one line per event — the
// machine-readable training log the paper's methodology implies (per-chunk
// wall time and throughput are what substantiate the Fig. 5 overlap and the
// Table I ladder) and Bengio's practical recommendations make explicit for
// diagnosing optimization (per-epoch cost trajectories).
//
// Record schema (all records):
//   {"record": "<type>", "seq": <int>, ...}
// Types emitted by the library:
//   run_header — once, first line: schema version, program, machine/thread
//                and config metadata supplied by the caller.
//   chunk      — per training chunk: index, epoch, batches, mean cost,
//                wall seconds, batches/s, GF/s (from KernelStats), ring-buffer
//                occupancy when the Fig. 5 loading thread is active.
//   epoch      — per epoch (mini-batch trainer and online SGD).
//   run_summary— once at the end of a Trainer run: totals plus a dump of the
//                obs:: metrics registry.
//
// The sink is thread-safe (one mutex around each line write) and cheap to
// leave null: every producer checks the pointer first. Tests point it at a
// string stream via the ostream constructor and validate the schema.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace deepphi::obs {

/// Key/value metadata attached to records. Values keep their JSON type.
struct TelemetryField {
  enum class Kind { kString, kDouble, kInt, kBool } kind;
  std::string key;
  std::string string_value;
  double double_value = 0;
  std::int64_t int_value = 0;
  bool bool_value = false;

  static TelemetryField str(std::string key, std::string v);
  static TelemetryField num(std::string key, double v);
  static TelemetryField integer(std::string key, std::int64_t v);
  static TelemetryField boolean(std::string key, bool v);
};

inline constexpr const char* kTelemetrySchema = "deepphi.telemetry.v1";

class TelemetrySink {
 public:
  /// Appending file sink; throws util::Error if the file cannot be opened.
  explicit TelemetrySink(const std::string& path);
  /// Stream sink (tests); `os` must outlive the sink.
  explicit TelemetrySink(std::ostream& os);
  ~TelemetrySink();

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Emits one `{"record": type, "seq": n, fields...}` line. Thread-safe.
  void emit(const std::string& record_type,
            const std::vector<TelemetryField>& fields);

  /// Emits the run_header record (schema/program plus caller metadata).
  /// Conventionally the first line of a telemetry file.
  void emit_run_header(const std::string& program,
                       const std::vector<TelemetryField>& fields);

  /// Emits a record carrying the current obs:: metrics registry snapshot as
  /// a nested object, plus `fields`.
  void emit_metrics(const std::string& record_type,
                    const std::vector<TelemetryField>& fields);

  /// Lines written so far.
  std::int64_t records_written() const;

  void flush();

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
  std::int64_t seq_ = 0;
};

}  // namespace deepphi::obs
