// Lock-free log-bucketed latency histograms (HDR-style) — the live-quantile
// substrate the serving tier reports through.
//
// Why not LatencyRecorder's raw-sample buffer: sorting 2^20 samples under the
// same mutex record() needs stalls every worker behind any summary poll. A
// histogram inverts the costs: record() is a handful of relaxed atomic
// operations on fixed storage (no mutex, no allocation — safe in the
// per-request hot path), and quantiles become an O(buckets) scan over a
// snapshot, so a 1 Hz stats poller observes tails without perturbing them.
//
// Bucketing: log2 octaves split into 128 linear sub-buckets. A value's bucket
// is read straight out of its IEEE-754 bits (exponent + top 7 mantissa bits),
// so indexing is branch-light and exact. Bucket width is at most 1/128 of the
// value (~0.78% relative); reporting the bucket midpoint keeps any quantile
// within ~0.4% of the exact sorted-sample answer, and always within one
// bucket (~1%). The range [2^-30 s, 2^10 s] ≈ [0.93 ns, 17 min] covers
// everything a serving stage can plausibly take; out-of-range values clamp
// into the first/last bucket and are still counted.
//
// Snapshots are plain data: mergeable (sum across replicas or stages) and
// subtractable (cumulative "now" minus cumulative "then" = the interval's
// delta), which is what RollingWindow builds its live p50/p95/p99 views from.
//
// Histograms register in the metrics registry beside counters and gauges:
//   static obs::Histogram& h = obs::histogram("serve.stage.compute");
//   h.record(seconds);
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

namespace deepphi::obs {

/// Point-in-time copy of a Histogram: plain data, cheap to merge, subtract,
/// and query. `count`/`sum`/`min`/`max` are tracked exactly; quantiles are
/// bucket-resolved (≤ ~1% relative error, see header comment).
struct HistogramSnapshot {
  std::int64_t count = 0;
  double sum = 0;
  double min = 0;  // exact smallest recorded value (0 when count == 0)
  double max = 0;  // exact largest recorded value
  std::vector<std::int64_t> buckets;  // dense, Histogram::kBucketCount wide

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0; }

  /// Bucket-midpoint quantile, q in [0, 1]; 0 when empty. Clamped to the
  /// observed [min, max] so edge quantiles of narrow distributions are exact.
  double quantile(double q) const;

  /// Elementwise accumulate `other` into this snapshot.
  void merge(const HistogramSnapshot& other);

  /// Delta of two cumulative snapshots of the SAME histogram: what was
  /// recorded after `earlier` was taken. min/max are bucket-resolved (the
  /// exact extremes of just the interval are not recoverable).
  HistogramSnapshot since(const HistogramSnapshot& earlier) const;

  /// Sum over buckets (== count unless the snapshot raced an in-flight
  /// record(); equal again once writers quiesce).
  std::int64_t bucket_total() const;
};

class Histogram {
 public:
  static constexpr int kSubBits = 7;                   // 128 sub-buckets/octave
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kMinExp = -30;                  // 2^-30 s ≈ 0.93 ns
  static constexpr int kMaxExp = 10;                   // 2^10 s ≈ 17 min
  static constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Lock-free: one relaxed fetch_add on the bucket, one on count, one on
  /// sum, plus two (rarely-retrying) relaxed CAS loops for min/max. No mutex,
  /// no allocation — safe from any number of threads in the request path.
  void record(double v);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Copies the whole histogram out (relaxed loads). Safe to call while
  /// other threads keep recording; in-flight records may or may not appear.
  HistogramSnapshot snapshot() const;

  /// Zeroes everything (like Counter::reset: not atomic with respect to
  /// concurrent record() calls — callers quiesce writers first).
  void reset();

  /// Bucket geometry, exposed for exposition formats and tests.
  static int bucket_index(double v);
  static double bucket_lower(int index);
  static double bucket_upper(int index);
  static double bucket_mid(int index);

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0};
  // +inf sentinel until the first record; snapshot() reports 0 when empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0};
  std::array<std::atomic<std::int64_t>, kBucketCount> buckets_{};
};

/// Ring of cumulative snapshots of one histogram, one per elapsed interval —
/// the live view: window() covers roughly the last `intervals × interval_s`
/// seconds, and old traffic expires as the ring turns over. advance() is
/// driven by the reader (the stats endpoint polls, tests pass synthetic
/// clocks); the class itself is NOT thread-safe — serialize advance()/window()
/// externally (serve::StatsServer holds them behind its mutex).
class RollingWindow {
 public:
  RollingWindow(const Histogram& source, double interval_s,
                std::size_t intervals);

  /// Rotates in zero or more interval boundaries up to `now_s` (monotonic
  /// seconds, e.g. Profiler::now_s()). A gap longer than the whole window
  /// expires everything.
  void advance(double now_s);

  /// Delta over the currently covered window (newest minus oldest cumulative
  /// snapshot). Empty (count 0) until the first interval completes.
  HistogramSnapshot window() const;

  /// Seconds the current window() actually covers: 0 until the first
  /// interval completes, then up to intervals × interval_s.
  double covered_seconds() const;

  /// window().count / covered_seconds (0 while nothing is covered).
  double rate_per_s() const;

  double interval_seconds() const { return interval_s_; }
  std::size_t intervals() const { return intervals_; }

 private:
  const Histogram& source_;
  const double interval_s_;
  const std::size_t intervals_;
  bool primed_ = false;
  double next_tick_s_ = 0;
  std::deque<HistogramSnapshot> ring_;  // cumulative; front = oldest
};

}  // namespace deepphi::obs
