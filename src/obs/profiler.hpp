// Scoped wall-clock profiler for the REAL host execution — the measured
// counterpart of the simulated phi::Trace timeline. The simulator answers
// "what would this work cost on a 2013 Xeon Phi"; this profiler answers
// "what did it actually cost here, on which thread, overlapping what" — the
// measurement side of the paper's Fig. 5 argument (is the loading thread's
// chunk materialization really hidden under compute?).
//
// Usage:
//   obs::Profiler::enable(true);
//   { DEEPPHI_PROFILE_SCOPE("gemm"); la::gemm(...); }   // one span
//   obs::Profiler::write_chrome_json("out.json");       // Perfetto-loadable
//
// Design constraints:
//  * Disabled cost ≈ one relaxed atomic load per scope — the macro stays in
//    hot paths (gemm, pool tasks) unconditionally.
//  * Thread-local span buffers: a scope's end pushes into its own thread's
//    buffer under that buffer's (uncontended) mutex, so concurrent snapshots
//    are race-free even while worker threads are still emitting.
//  * Labels are const char* with static storage duration (string literals) —
//    no allocation on the hot path.
//  * Hierarchy: each span records its nesting depth on its thread, so the
//    Chrome trace nests child scopes under parents on the same track.
//
// The Chrome-trace export emits one pid for the measured host run (one tid
// per registered thread: main, loading, pool workers) and, when a simulated
// phi::Trace is supplied, a second pid with the modeled compute/DMA tracks —
// load both in https://ui.perfetto.dev to compare real against modeled
// overlap side by side.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace deepphi::phi {
class Trace;
}

namespace deepphi::obs {

/// One completed scope on one thread. Times are seconds since the process
/// profiling epoch (first use of the profiler clock).
struct Span {
  const char* label;       // static-storage string (macro passes a literal)
  double start_s;
  double end_s;
  std::uint32_t thread_index;  // dense per-process index, 0 = first registered
  std::uint32_t depth;         // nesting depth on that thread at entry

  double duration_s() const { return end_s - start_s; }
};

/// Post-run aggregate over all spans sharing a label.
struct SpanStats {
  std::string label;
  std::int64_t count = 0;
  double total_s = 0;
  double min_s = 0;
  double max_s = 0;
  double p50_s = 0;
  double p95_s = 0;
};

class Profiler {
 public:
  /// Globally arms/disarms span collection. Off by default.
  static void enable(bool on);
  static bool enabled();

  /// Drops all collected spans (thread registrations survive).
  static void clear();

  /// Copies out every span collected so far, across all threads (including
  /// threads that have since exited). Safe to call while other threads are
  /// still recording; spans in flight at the call are simply not included.
  static std::vector<Span> snapshot();

  /// Human name of thread `index` as assigned by set_thread_name(), or
  /// "thread-N" if it was never named.
  static std::string thread_name(std::uint32_t index);

  /// Number of threads that have recorded at least one span or a name.
  static std::uint32_t thread_count();

  /// Per-label aggregation of snapshot(): count/total/min/max/p50/p95,
  /// sorted by descending total time.
  static std::vector<SpanStats> aggregate();

  /// aggregate() rendered as an aligned text table (empty string if no spans).
  static std::string report();

  /// Chrome-trace JSON of the measured host timeline; when `simulated` is
  /// non-null its compute/DMA tracks are merged in under a second pid so the
  /// real and modeled timelines load together.
  static std::string to_chrome_json(const phi::Trace* simulated = nullptr);

  /// Writes to_chrome_json() to `path`; throws util::Error on I/O failure.
  static void write_chrome_json(const std::string& path,
                                const phi::Trace* simulated = nullptr);

  /// Seconds on the profiling clock (monotonic, shared epoch across threads).
  static double now_s();
};

/// Names the calling thread in profiler exports ("main", "loading",
/// "pool-3"). Idempotent; also registers the thread if it has not recorded
/// any span yet.
void set_thread_name(const std::string& name);

namespace detail {

/// Appends a finished span for the calling thread. `depth` management and
/// buffer registration live here so the RAII class stays trivial.
std::uint32_t scope_enter();                 // returns entry depth
void scope_exit(const char* label, double start_s, std::uint32_t depth);

class ProfileScope {
 public:
  explicit ProfileScope(const char* label) {
    if (!Profiler::enabled()) return;
    active_ = true;
    label_ = label;
    depth_ = scope_enter();
    start_s_ = Profiler::now_s();
  }
  ~ProfileScope() {
    if (active_) scope_exit(label_, start_s_, depth_);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  bool active_ = false;
  const char* label_ = nullptr;
  double start_s_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace detail

}  // namespace deepphi::obs

#define DEEPPHI_OBS_CONCAT2(a, b) a##b
#define DEEPPHI_OBS_CONCAT(a, b) DEEPPHI_OBS_CONCAT2(a, b)

/// Profiles the enclosing scope under `label` (a string literal / any
/// static-storage const char*). Near-free while the profiler is disabled.
#define DEEPPHI_PROFILE_SCOPE(label)                      \
  ::deepphi::obs::detail::ProfileScope DEEPPHI_OBS_CONCAT( \
      deepphi_profile_scope_, __LINE__)(label)
