#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace deepphi::obs {

namespace {

constexpr double kMinValue = 9.313225746154785e-10;  // 2^-30
constexpr double kMaxValue = 1024.0;                 // 2^10

}  // namespace

int Histogram::bucket_index(double v) {
  // Non-positive (and NaN) values clamp into the first bucket; the IEEE bit
  // trick below needs a positive normal number.
  if (!(v >= kMinValue)) return 0;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  const int e = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  if (e >= kMaxExp) return kBucketCount - 1;  // also +inf (e == 1024)
  const int sub =
      static_cast<int>((bits >> (52 - kSubBits)) & (kSubBuckets - 1));
  return (e - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int index) {
  const int e = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, e);
}

double Histogram::bucket_upper(int index) {
  return index + 1 < kBucketCount ? bucket_lower(index + 1) : kMaxValue;
}

double Histogram::bucket_mid(int index) {
  return 0.5 * (bucket_lower(index) + bucket_upper(index));
}

void Histogram::record(double v) {
  if (!(v >= 0) || !std::isfinite(v)) v = v > 0 ? kMaxValue : 0;
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  double curmax = max_.load(std::memory_order_relaxed);
  while (v > curmax &&
         !max_.compare_exchange_weak(curmax, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i)
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count > 0 ? min_.load(std::memory_order_relaxed) : 0;
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  const std::int64_t total = bucket_total();
  if (total <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total))));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      double v = Histogram::bucket_mid(static_cast<int>(i));
      // Exact extremes are known; clamping makes single-bucket distributions
      // and edge quantiles exact instead of midpoint-rounded.
      if (min > 0 && max >= min) v = std::clamp(v, min, max);
      return v;
    }
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (buckets.empty()) buckets.resize(Histogram::kBucketCount);
  DEEPPHI_CHECK_MSG(other.buckets.size() == buckets.size(),
                    "merging histograms with different bucket layouts");
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  if (other.count > 0) {
    min = count > 0 ? std::min(min, other.min) : other.min;
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

HistogramSnapshot HistogramSnapshot::since(
    const HistogramSnapshot& earlier) const {
  DEEPPHI_CHECK_MSG(earlier.buckets.size() == buckets.size(),
                    "subtracting histograms with different bucket layouts");
  HistogramSnapshot d;
  d.buckets.resize(buckets.size());
  int lo = -1, hi = -1;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::int64_t delta = buckets[i] - earlier.buckets[i];
    d.buckets[i] = std::max<std::int64_t>(0, delta);
    if (d.buckets[i] > 0) {
      if (lo < 0) lo = static_cast<int>(i);
      hi = static_cast<int>(i);
    }
  }
  d.count = std::max<std::int64_t>(0, count - earlier.count);
  d.sum = std::max(0.0, sum - earlier.sum);
  // Interval extremes are only known to bucket resolution.
  d.min = lo >= 0 ? Histogram::bucket_lower(lo) : 0;
  d.max = hi >= 0 ? Histogram::bucket_upper(hi) : 0;
  return d;
}

std::int64_t HistogramSnapshot::bucket_total() const {
  std::int64_t total = 0;
  for (const std::int64_t b : buckets) total += b;
  return total;
}

RollingWindow::RollingWindow(const Histogram& source, double interval_s,
                             std::size_t intervals)
    : source_(source), interval_s_(interval_s), intervals_(intervals) {
  DEEPPHI_CHECK_MSG(interval_s > 0, "window interval must be > 0");
  DEEPPHI_CHECK_MSG(intervals >= 1, "window needs at least one interval");
}

void RollingWindow::advance(double now_s) {
  if (!primed_) {
    ring_.push_back(source_.snapshot());
    next_tick_s_ = now_s + interval_s_;
    primed_ = true;
    return;
  }
  // Bounded catch-up: past intervals_+1 missed ticks every covered interval
  // is stale anyway, so refill with the current state (full expiry).
  std::size_t steps = 0;
  while (now_s >= next_tick_s_ && steps <= intervals_ + 1) {
    ring_.push_back(source_.snapshot());
    next_tick_s_ += interval_s_;
    ++steps;
  }
  if (now_s >= next_tick_s_) next_tick_s_ = now_s + interval_s_;
  while (ring_.size() > intervals_ + 1) ring_.pop_front();
}

HistogramSnapshot RollingWindow::window() const {
  if (ring_.size() < 2) {
    HistogramSnapshot empty;
    empty.buckets.resize(Histogram::kBucketCount);
    return empty;
  }
  return ring_.back().since(ring_.front());
}

double RollingWindow::covered_seconds() const {
  return ring_.size() < 2
             ? 0
             : static_cast<double>(ring_.size() - 1) * interval_s_;
}

double RollingWindow::rate_per_s() const {
  const double s = covered_seconds();
  return s > 0 ? static_cast<double>(window().count) / s : 0;
}

}  // namespace deepphi::obs
