#include "obs/metrics.hpp"

#include <algorithm>
#include <list>
#include <memory>
#include <mutex>

#include "util/error.hpp"

namespace deepphi::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

struct Entry {
  Entry(std::string n, MetricSample::Kind k) : name(std::move(n)), kind(k) {
    if (kind == MetricSample::Kind::kHistogram)
      histogram = std::make_unique<Histogram>();
  }
  std::string name;
  MetricSample::Kind kind;
  Counter counter;
  Gauge gauge;
  // Heap-allocated: a histogram is ~40 KB of buckets, which counters and
  // gauges should not pay for.
  std::unique_ptr<Histogram> histogram;
};

struct RegistryState {
  std::mutex mutex;
  // list: stable addresses as it grows, and no move requirement on the
  // atomic-holding Entry.
  std::list<Entry> entries;
};

RegistryState& state() {
  static RegistryState* s = new RegistryState;  // leaked: outlives statics
  return *s;
}

Entry& find_or_create(const std::string& name, MetricSample::Kind kind) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (Entry& e : s.entries) {
    if (e.name == name) {
      DEEPPHI_CHECK_MSG(e.kind == kind,
                        "metric '" << name << "' already registered as a "
                                   << (e.kind == MetricSample::Kind::kCounter
                                           ? "counter"
                                       : e.kind == MetricSample::Kind::kGauge
                                           ? "gauge"
                                           : "histogram"));
      return e;
    }
  }
  s.entries.emplace_back(name, kind);
  return s.entries.back();
}

}  // namespace

namespace metrics {

void set_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

std::vector<MetricSample> snapshot() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<MetricSample> out;
  out.reserve(s.entries.size());
  for (const Entry& e : s.entries) {
    double v = 0;
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        v = static_cast<double>(e.counter.value());
        break;
      case MetricSample::Kind::kGauge:
        v = e.gauge.value();
        break;
      case MetricSample::Kind::kHistogram:
        v = static_cast<double>(e.histogram->count());
        break;
    }
    out.push_back(MetricSample{e.name, e.kind, v});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<HistogramSample> snapshot_histograms() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<HistogramSample> out;
  for (const Entry& e : s.entries) {
    if (e.kind != MetricSample::Kind::kHistogram) continue;
    out.push_back(HistogramSample{e.name, e.histogram->snapshot()});
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSample& a, const HistogramSample& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_all() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (Entry& e : s.entries) {
    e.counter.reset();
    e.gauge.reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace metrics

void Gauge::set_max(double v) {
  if (!metrics::enabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (v > cur &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Counter& counter(const std::string& name) {
  return find_or_create(name, MetricSample::Kind::kCounter).counter;
}

Gauge& gauge(const std::string& name) {
  return find_or_create(name, MetricSample::Kind::kGauge).gauge;
}

Histogram& histogram(const std::string& name) {
  return *find_or_create(name, MetricSample::Kind::kHistogram).histogram;
}

}  // namespace deepphi::obs
