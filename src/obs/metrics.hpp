// Process-wide metrics registry: named monotonic counters and gauges that
// absorb the ad-hoc per-subsystem counters (fused epilogues, pool tasks,
// chunks loaded) into one queryable surface.
//
// Hot-path contract:
//  * Registration (obs::counter("gemm.fused_epilogues")) takes a mutex once;
//    call sites cache the returned reference in a function-local static, so
//    the steady state is a single relaxed fetch_add.
//  * Handles are never invalidated: metric storage is a deque behind the
//    registry and lives for the process lifetime.
//  * set_enabled(false) turns every add()/set() into one relaxed load and an
//    early return — cheap enough to leave instrumentation compiled in.
//
// Counters are monotonic (add only); gauges are last-write-wins doubles
// (ring-buffer occupancy, current batch rate). snapshot() copies both out
// for telemetry records and tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace deepphi::obs {

namespace metrics {
/// Globally arms/disarms metric updates (reads still work). On by default.
void set_enabled(bool on);
bool enabled();
}  // namespace metrics

class Counter {
 public:
  void add(std::int64_t delta = 1) {
    if (!metrics::enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    if (!metrics::enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  /// Keeps the running maximum (e.g. peak ring occupancy).
  void set_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

/// Returns the counter registered under `name`, creating it on first use.
/// The reference is valid for the process lifetime. Typical call-site idiom:
///   static obs::Counter& c = obs::counter("pool.tasks");
///   c.add();
Counter& counter(const std::string& name);

/// Likewise for gauges. A name registers as exactly one metric kind
/// (conflicting re-registration throws util::Error).
Gauge& gauge(const std::string& name);

/// Likewise for histograms (see obs/histogram.hpp). record() on the returned
/// reference is lock-free; storage lives for the process lifetime.
Histogram& histogram(const std::string& name);

struct MetricSample {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  double value;  // counters widen to double; histograms report their count
};

/// Full-fidelity registry view of one histogram (quantiles, buckets).
struct HistogramSample {
  std::string name;
  HistogramSnapshot snapshot;
};

namespace metrics {
/// Copies out every registered metric, sorted by name. Histograms appear
/// with their count as the value; use snapshot_histograms() for quantiles.
std::vector<MetricSample> snapshot();

/// Copies out every registered histogram (buckets and all), sorted by name.
std::vector<HistogramSample> snapshot_histograms();

/// Resets every counter and gauge to zero (registrations survive). Tests and
/// per-run telemetry use this to scope deltas to one run.
void reset_all();
}  // namespace metrics

}  // namespace deepphi::obs
