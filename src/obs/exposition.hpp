// Text exposition of the metrics registry for the live stats endpoint:
//  * prometheus_text() — Prometheus text format (v0.0.4): counters as
//    `_total`, gauges as-is, histograms as cumulative `_bucket{le="..."}`
//    series plus `_sum`/`_count`. Only buckets that contain samples are
//    emitted (plus the mandatory `+Inf`), so a 5120-bucket histogram
//    scrapes as a handful of lines.
//  * write_registry_stats() — the registry portion of a `deepphi.stats.v1`
//    JSON record: "counters"/"gauges" objects of name → value, and a
//    "histograms" object of name → {count, sum, min, max, mean, p50, p95,
//    p99}. The caller owns the enclosing document (serve::StatsServer adds
//    server/window sections around it).
//
// Metric names keep their dotted spelling in JSON; Prometheus names are
// sanitized (non-[a-zA-Z0-9_] → '_') and prefixed `deepphi_`. Per-model
// serving series (`serve.model.<name>.<rest>`) render as ONE Prometheus
// family per <rest> with a model label — `deepphi_serve_model_<rest>
// {model="<name>"}` — so dashboards aggregate and filter across models
// instead of matching N distinct metric names. (Registry names are
// restricted to [A-Za-z0-9_-], so the split is unambiguous.)
#pragma once

#include <string>

namespace deepphi::util {
class JsonWriter;
}

namespace deepphi::obs {

/// Renders every registered counter, gauge, and histogram in the Prometheus
/// text format. Safe to call while other threads keep recording.
std::string prometheus_text();

/// Appends "counters", "gauges", and "histograms" members to an open JSON
/// object on `w` (between begin_object() and end_object()).
void write_registry_stats(util::JsonWriter& w);

/// `deepphi_serve_stage_compute`-style spelling of a dotted metric name.
std::string prometheus_name(const std::string& name);

/// How a dotted metric renders in Prometheus: the family name plus the label
/// set (without braces; empty for ordinary metrics). A per-model series
/// `serve.model.small.latency` maps to {"deepphi_serve_model_latency",
/// "model=\"small\""}.
struct PrometheusSeries {
  std::string family;
  std::string labels;
};
PrometheusSeries prometheus_series(const std::string& name);

inline constexpr const char* kStatsSchema = "deepphi.stats.v1";

}  // namespace deepphi::obs
