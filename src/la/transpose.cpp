#include "la/transpose.hpp"

#include "phi/kernel_stats.hpp"

namespace deepphi::la {

namespace {
constexpr Index kBlock = 32;  // 32x32 float tile = 4 KB, fits L1 twice over
}

void transpose(const Matrix& in, Matrix& out) {
  DEEPPHI_CHECK_MSG(out.rows() == in.cols() && out.cols() == in.rows(),
                    "transpose target must be " << in.cols() << "x" << in.rows()
                                                << ", got " << out.rows() << "x"
                                                << out.cols());
  phi::record(phi::loop_contribution(in.size(), 0.0, 1.0, 1.0));
  const Index m = in.rows();
  const Index n = in.cols();
#pragma omp parallel for collapse(2) if (in.size() >= (1 << 16)) schedule(static)
  for (Index rb = 0; rb < m; rb += kBlock) {
    for (Index cb = 0; cb < n; cb += kBlock) {
      const Index rmax = std::min(rb + kBlock, m);
      const Index cmax = std::min(cb + kBlock, n);
      for (Index r = rb; r < rmax; ++r)
        for (Index c = cb; c < cmax; ++c) out(c, r) = in(r, c);
    }
  }
}

Matrix transposed(const Matrix& in) {
  Matrix out = Matrix::uninitialized(in.cols(), in.rows());
  transpose(in, out);
  return out;
}

}  // namespace deepphi::la
