// Dense row-major single-precision matrix and vector types.
//
// Storage is 64-byte aligned (Phi VPU cache-line width); stride equals the
// column count (no row padding) so a matrix is also a flat array of
// rows*cols floats — the data pipeline and offload engine rely on that.
// These are deliberately plain owning containers: all math lives in the
// free-function kernels (blas1/blas2/gemm/elementwise/reduce) so each kernel
// can report its KernelStats contribution.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/aligned.hpp"
#include "util/error.hpp"

namespace deepphi::la {

using Index = std::int64_t;

class Matrix {
 public:
  /// Empty 0×0 matrix.
  Matrix() = default;

  /// rows×cols matrix, zero-initialized.
  Matrix(Index rows, Index cols);

  /// rows×cols matrix with uninitialized contents (hot-path temporaries).
  static Matrix uninitialized(Index rows, Index cols);

  /// rows×cols matrix where every element is `value`.
  static Matrix constant(Index rows, Index cols, float value);

  /// Build from a nested initializer list (tests / small fixtures).
  static Matrix from_rows(std::initializer_list<std::initializer_list<float>> rows);

  Matrix(const Matrix& o);
  Matrix& operator=(const Matrix& o);
  Matrix(Matrix&& o) noexcept;
  Matrix& operator=(Matrix&& o) noexcept;
  ~Matrix() = default;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  float* row(Index r) { return data_.get() + r * cols_; }
  const float* row(Index r) const { return data_.get() + r * cols_; }

  /// Unchecked element access (hot paths).
  float& operator()(Index r, Index c) { return data_.get()[r * cols_ + c]; }
  float operator()(Index r, Index c) const { return data_.get()[r * cols_ + c]; }

  /// Bounds-checked element access; throws util::Error.
  float& at(Index r, Index c);
  float at(Index r, Index c) const;

  /// Sets every element to `value`.
  void fill(float value);

  /// Sets every element to zero.
  void zero() { fill(0.0f); }

  /// Copies contents from `o`; shapes must match.
  void copy_from(const Matrix& o);

  /// Reshapes in place; the element count must be preserved.
  void reshape(Index rows, Index cols);

  /// True when shapes match and all elements are within `atol + rtol*|b|`.
  bool approx_equal(const Matrix& o, float rtol = 1e-5f, float atol = 1e-6f) const;

  /// "3x4 matrix" plus contents for small matrices — debugging aid.
  std::string to_string(Index max_rows = 8, Index max_cols = 8) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  util::AlignedBuffer<float> data_;
};

class Vector {
 public:
  Vector() = default;
  explicit Vector(Index n);
  static Vector uninitialized(Index n);
  static Vector constant(Index n, float value);
  static Vector from(std::initializer_list<float> values);

  Vector(const Vector& o);
  Vector& operator=(const Vector& o);
  Vector(Vector&& o) noexcept;
  Vector& operator=(Vector&& o) noexcept;
  ~Vector() = default;

  Index size() const { return n_; }
  bool empty() const { return n_ == 0; }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  float& operator[](Index i) { return data_.get()[i]; }
  float operator[](Index i) const { return data_.get()[i]; }

  float& at(Index i);
  float at(Index i) const;

  void fill(float value);
  void zero() { fill(0.0f); }
  void copy_from(const Vector& o);

  bool approx_equal(const Vector& o, float rtol = 1e-5f, float atol = 1e-6f) const;

  std::string to_string(Index max_elems = 16) const;

 private:
  Index n_ = 0;
  util::AlignedBuffer<float> data_;
};

}  // namespace deepphi::la
