// Int8 quantized inference: groupwise symmetric weights, per-row dynamic
// activations, and the fused dequantize + sigmoid forward pass
// (docs/serving.md "Precision", docs/simd.md "Int8 kernel tier").
//
// Weights are quantized offline, per (row, group): scale = max|w|/127 over
// each `group`-wide slice of the row, codes = round(w/scale) in [-127, 127].
// Rows are zero-padded to a multiple of the group size and the group size is
// a multiple of 64 bytes, so the dispatched dot kernel (quant_dot,
// la/simd/dispatch.hpp) never needs masked tails. Alongside the codes each
// group stores its code sum (wsum), which turns the activation zero point
// into a precomputed integer correction.
//
// Activations are quantized dynamically, per ROW: an asymmetric u8 mapping
// code = round(x/scale) + zp with codes clamped to [0, 127]. Two deliberate
// choices here:
//  * per-row (not per-batch) ranges, so a row's codes never depend on which
//    neighbors the serving batcher coalesced it with — served-int8 output is
//    bitwise identical to encoding the row alone (pinned in
//    tests/quant_test.cpp);
//  * 7-bit codes (max 127, not 255), so the AVX2 maddubs emulation of
//    vpdpbusd cannot saturate its s16 pair sums (see vec_ops.hpp).
//
// The forward pass computes, per output (m, n):
//   pre = a_scale[m] * sum_g w_scale[n][g] * (acc_g - zp[m] * wsum[n][g])
//   out = sigmoid(pre + bias[n])
// with acc_g the exact int32 group dot. Integer accumulation is exact on
// every dispatch tier and the float combine is a fixed scalar sequence
// inside the kernel, so int8 encode is bitwise identical across tiers —
// same contract as the float kernels, enforced by the same kind of parity
// suite.
#pragma once

#include <cstdint>

#include "la/matrix.hpp"
#include "util/aligned.hpp"

namespace deepphi::la::quant {

/// Group sizes must be multiples of this many code bytes (one cache line =
/// one full 512-bit vector), which is what lets the dot kernel skip tail
/// handling at every vector width.
inline constexpr Index kGroupAlign = 64;

/// Default quantization group: one cache line of codes per scale.
inline constexpr Index kDefaultGroup = 64;

/// Largest allowed group. 65536 * 127 * 127 < 2^31, so a group's int32
/// accumulator cannot overflow even at the code extremes.
inline constexpr Index kMaxGroup = 65536;

/// Activation codes live in [0, kActivationMaxCode]; weight codes in
/// [-kWeightMaxCode, kWeightMaxCode].
inline constexpr int kActivationMaxCode = 127;
inline constexpr int kWeightMaxCode = 127;

/// Throws util::Error unless `group` is a legal group size for `cols`-wide
/// rows (positive, multiple of kGroupAlign, <= kMaxGroup).
void check_group(Index group);

/// Groupwise symmetric int8 weights for one layer, rows = output units,
/// cols = input units (the same hidden x visible orientation the float
/// models store). Move-only (owns aligned code/scale/sum planes).
class QuantizedWeights {
 public:
  QuantizedWeights() = default;
  QuantizedWeights(QuantizedWeights&&) noexcept = default;
  QuantizedWeights& operator=(QuantizedWeights&&) noexcept = default;
  QuantizedWeights(const QuantizedWeights&) = delete;
  QuantizedWeights& operator=(const QuantizedWeights&) = delete;

  /// Quantizes a dense rows x cols float matrix.
  static QuantizedWeights quantize(const Matrix& w, Index group = kDefaultGroup);

  /// Allocates zeroed storage of the given geometry (model_io load path
  /// fills codes/scales then calls rebuild_wsums()).
  static QuantizedWeights allocate(Index rows, Index cols, Index group);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index group() const { return group_; }
  /// Groups per row.
  Index groups() const { return groups_; }
  /// groups() * group() — the zero-padded row stride in code bytes.
  Index padded_cols() const { return groups_ * group_; }
  bool empty() const { return rows_ == 0; }

  std::int8_t* codes(Index r) { return codes_.get() + r * padded_cols(); }
  const std::int8_t* codes(Index r) const {
    return codes_.get() + r * padded_cols();
  }
  float* scales(Index r) { return scales_.get() + r * groups_; }
  const float* scales(Index r) const { return scales_.get() + r * groups_; }
  const std::int32_t* wsums(Index r) const { return wsums_.get() + r * groups_; }

  /// Recomputes every group's code sum from the codes (after a load) and
  /// validates the codes and padding bytes are in range.
  void rebuild_wsums();

  /// Reconstructs the float weights (scale * code) — accuracy evaluation and
  /// round-trip tests.
  Matrix dequantize() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Index group_ = 0;
  Index groups_ = 0;
  util::AlignedBuffer<std::int8_t> codes_;
  util::AlignedBuffer<float> scales_;
  util::AlignedBuffer<std::int32_t> wsums_;
};

/// Per-row dynamically quantized activations. A reusable workspace: call
/// quantize() per batch; buffers grow monotonically and are reused.
class QuantizedActivations {
 public:
  QuantizedActivations() = default;
  QuantizedActivations(QuantizedActivations&&) noexcept = default;
  QuantizedActivations& operator=(QuantizedActivations&&) noexcept = default;
  QuantizedActivations(const QuantizedActivations&) = delete;
  QuantizedActivations& operator=(const QuantizedActivations&) = delete;

  /// Quantizes each row of x (batch x cols) to u8 codes in [0, 127],
  /// zero-padding rows to a multiple of `group` code bytes. Row ranges are
  /// computed independently per row (see the header comment).
  void quantize(const Matrix& x, Index group);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index group() const { return group_; }
  Index groups() const { return groups_; }
  Index padded_cols() const { return groups_ * group_; }

  const std::uint8_t* codes(Index r) const {
    return codes_.get() + r * padded_cols();
  }
  /// Dequantization scale of row r: x ~ scale * (code - zero_point).
  float scale(Index r) const { return scales_.get()[r]; }
  std::int32_t zero_point(Index r) const { return zps_.get()[r]; }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Index group_ = 0;
  Index groups_ = 0;
  Index code_capacity_ = 0;
  Index row_capacity_ = 0;
  util::AlignedBuffer<std::uint8_t> codes_;
  util::AlignedBuffer<float> scales_;
  util::AlignedBuffer<std::int32_t> zps_;
};

/// The quantized forward pass: out = sigmoid(a_scale * (int8 GEMM) + bias),
/// out is xq.rows() x w.rows(). xq must have been quantized with w's group
/// size and xq.cols() == w.cols(). Dispatches quant_dot per (row, unit) with
/// the weight-stationary n-outer loop (each weight row is streamed once per
/// batch); the bias + sigmoid epilogue reuses the parity-pinned
/// la::bias_sigmoid kernel, so the whole pass is bitwise tier-independent.
void encode_sigmoid(const QuantizedActivations& xq, const QuantizedWeights& w,
                    const Vector& bias, Matrix& out);

}  // namespace deepphi::la::quant
