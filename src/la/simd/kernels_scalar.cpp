// Scalar dispatch tier: the generic kernel bodies instantiated over
// ScalarOps. Compiled with the library's baseline flags (no -m options), so
// it runs anywhere; it is also the numerical reference the vector tiers must
// match bitwise (see dispatch.hpp).

#include "la/simd/kernels_body.inl"

namespace deepphi::la::simd {

const KernelTable* scalar_table() {
  static const KernelTable table = make_table<ScalarOps>(Tier::kScalar, &dot8_ref);
  return &table;
}

}  // namespace deepphi::la::simd
