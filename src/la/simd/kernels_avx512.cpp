// AVX-512F dispatch tier. This translation unit alone is compiled with
// -mavx512f (which pulls in AVX2/FMA as prerequisites) plus
// -ffp-contract=off; when the compiler also accepts -mavx512bw
// -mavx512vnni the int8 quant_dot kernel uses the real vpdpbusd and the
// table is flagged needs_avx512_vnni so the dispatcher gates the tier on
// those CPUID bits. Everything vector goes through the Avx512Ops policy.
// Without the flags (non-x86 host) the getter returns nullptr and the
// dispatcher skips the tier.

#include "la/simd/kernels_body.inl"

namespace deepphi::la::simd {

#if defined(__AVX512F__)

namespace {

// dot8 with the 8 double lanes in a single 512-bit accumulator. Exact
// products make the fma bit-identical to dot8_ref's mul+add; the masked
// tail adds +0.0, a no-op (see dot8_ref).
double dot8_avx512(const float* x, const float* y, std::int64_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_fmadd_pd(_mm512_cvtps_pd(_mm256_loadu_ps(x + i)),
                          _mm512_cvtps_pd(_mm256_loadu_ps(y + i)), acc);
  }
  if (i < n) {
    // Tail via a 512-bit masked load (only F-level masking exists in this
    // TU); the low 8 floats carry the <=7 live lanes plus zeros.
    const __mmask16 m = Avx512Ops::tail_mask(static_cast<int>(n - i));
    const __m256 xv =
        _mm512_castps512_ps256(_mm512_maskz_loadu_ps(m, x + i));
    const __m256 yv =
        _mm512_castps512_ps256(_mm512_maskz_loadu_ps(m, y + i));
    acc = _mm512_fmadd_pd(_mm512_cvtps_pd(xv), _mm512_cvtps_pd(yv), acc);
  }
  double lanes8[8];
  _mm512_storeu_pd(lanes8, acc);
  return combine8(lanes8);
}

}  // namespace

const KernelTable* avx512_table() {
  static const KernelTable table = [] {
    KernelTable t = make_table<Avx512Ops>(Tier::kAvx512, &dot8_avx512);
#if defined(__AVX512VNNI__) && defined(__AVX512BW__)
    // quant_dot uses the real vpdpbusd; the dispatcher must gate this tier
    // on the BW+VNNI CPUID bits, not just AVX-512F.
    t.needs_avx512_vnni = true;
#endif
    return t;
  }();
  return &table;
}

#else  // compiler has no AVX-512F for this TU

const KernelTable* avx512_table() { return nullptr; }

#endif

}  // namespace deepphi::la::simd
