#include "la/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "la/gemm.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace deepphi::la::simd {

// The gemm_micro table is indexed with static_cast<int>(EpilogueOp); pin the
// correspondence here so a reordering of the enum cannot silently re-route
// epilogues.
static_assert(static_cast<int>(EpilogueOp::kNone) == 0);
static_assert(static_cast<int>(EpilogueOp::kBiasAdd) == 1);
static_assert(static_cast<int>(EpilogueOp::kBiasSigmoid) == 2);
static_assert(static_cast<int>(EpilogueOp::kDsigmoidMul) == 3);
static_assert(static_cast<int>(EpilogueOp::kBiasDsigmoidMul) == 4);

namespace {

const KernelTable* table_for(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return scalar_table();
    case Tier::kAvx2:
      return avx2_table();
    case Tier::kAvx512:
      return avx512_table();
  }
  return nullptr;
}

bool cpu_supports(Tier t) {
#if defined(__x86_64__) || defined(__i386__)
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return t == Tier::kScalar;
#endif
}

// Resolves the startup tier: widest runnable one, then the DEEPPHI_ISA
// override if it names a runnable tier (unknown or unavailable names warn
// and keep the detected tier).
Tier initial_tier() {
  Tier best = best_available_tier();
  const char* env = std::getenv("DEEPPHI_ISA");
  if (env != nullptr && *env != '\0') {
    Tier want;
    if (!parse_tier(env, want)) {
      DEEPPHI_WARN() << "DEEPPHI_ISA=" << env
                     << " is not scalar|avx2|avx512; using "
                     << tier_name(best);
    } else if (!tier_available(want)) {
      DEEPPHI_WARN() << "DEEPPHI_ISA=" << env
                     << " not available on this CPU/build; using "
                     << tier_name(best);
    } else {
      return want;
    }
  }
  return best;
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "?";
}

bool parse_tier(const std::string& name, Tier& out) {
  if (name == "scalar") {
    out = Tier::kScalar;
  } else if (name == "avx2") {
    out = Tier::kAvx2;
  } else if (name == "avx512") {
    out = Tier::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool tier_available(Tier t) {
  const KernelTable* table = table_for(t);
  if (!cpu_supports(t) || table == nullptr) return false;
  if (table->needs_avx512_vnni) {
    // The TU was compiled with BW+VNNI instructions (real vpdpbusd); an
    // AVX-512F-only machine must not bind it.
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vnni");
#else
    return false;
#endif
  }
  return true;
}

Tier best_available_tier() {
  if (tier_available(Tier::kAvx512)) return Tier::kAvx512;
  if (tier_available(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

const KernelTable& active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    const KernelTable* resolved = table_for(initial_tier());
    // First resolver wins; a concurrent first call gets the same table
    // anyway since initial_tier() is deterministic.
    g_active.compare_exchange_strong(t, resolved, std::memory_order_acq_rel,
                                     std::memory_order_acquire);
    if (t == nullptr) t = resolved;
  }
  return *t;
}

Tier active_tier() { return active().tier; }

bool force_tier(Tier t) {
  if (!tier_available(t)) return false;
  g_active.store(table_for(t), std::memory_order_release);
  return true;
}

void reset_tier() {
  g_active.store(table_for(initial_tier()), std::memory_order_release);
}

void check_panel_alignment(const void* a_panel, const void* b_panel) {
  const auto a = reinterpret_cast<std::uintptr_t>(a_panel);
  const auto b = reinterpret_cast<std::uintptr_t>(b_panel);
  DEEPPHI_CHECK_MSG((a % 64) == 0 && (b % 64) == 0,
                    "packed GEMM panels must be 64-byte aligned (a="
                        << a_panel << ", b=" << b_panel
                        << ") — the per-ISA micro-kernels use aligned loads");
}

}  // namespace deepphi::la::simd
