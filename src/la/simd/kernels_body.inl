// Generic kernel bodies shared by every dispatch tier. Each per-ISA
// translation unit (kernels_scalar.cpp / kernels_avx2.cpp /
// kernels_avx512.cpp) includes this file and instantiates make_table<Ops>
// with its vector-ops policy, so all tiers run the exact same operation
// sequence — the basis of the bitwise cross-tier parity contract described
// in dispatch.hpp. Keep every computation expressed through the policy (no
// raw float arithmetic on values that reach memory).
//
// Not a standalone header: include after vec_ops.hpp/dispatch.hpp, inside
// nothing (it opens its own namespace).

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "la/simd/dispatch.hpp"
#include "la/simd/vec_ops.hpp"

namespace deepphi::la::simd {
namespace {

using std::int64_t;

// Epilogue selector; values mirror la::EpilogueOp (dispatch.cpp
// static_asserts the correspondence at the enum definition site).
inline constexpr int kOpNone = 0;
inline constexpr int kOpBiasAdd = 1;
inline constexpr int kOpBiasSigmoid = 2;
inline constexpr int kOpDsigmoidMul = 3;
inline constexpr int kOpBiasDsigmoidMul = 4;

// Full-width load/store when all W lanes are in range, masked otherwise.
// Active lanes see identical arithmetic either way.
template <class O>
inline typename O::V load_clip(const float* p, int lanes) {
  return lanes == O::W ? O::loadu(p) : O::loadu_partial(p, lanes);
}
template <class O>
inline void store_clip(float* p, int lanes, typename O::V v) {
  if (lanes == O::W) {
    O::storeu(p, v);
  } else {
    O::storeu_partial(p, lanes, v);
  }
}

/// y ⊙ (1 − y) — the sigmoid derivative through the activation.
template <class O>
inline typename O::V dsig(typename O::V y) {
  return O::mul(y, O::sub(O::set1(1.0f), y));
}

// ---------------------------------------------------------------------------
// GEMM micro-kernel: MR×NR register tile over packed panels, beta folded
// into the first k-panel, epilogue fused into the last. Same semantics as
// the pre-dispatch template in gemm.cpp, with masked write-back replacing
// the scalar mr_eff/nr_eff fringe loops.
// ---------------------------------------------------------------------------
template <class O, int OP>
void gemm_micro(const float* ap, const float* bp, int64_t kc, float alpha,
                float beta, bool first_k, bool last_k, const float* bias,
                const float* act, int64_t act_ld, float* c, int64_t ldc,
                int64_t mr_eff, int64_t nr_eff) {
  using V = typename O::V;
  constexpr int W = O::W;
  constexpr int NB = static_cast<int>(kNR) / W;

  // Panels are zero-padded, so accumulation is always the full MR×NR tile.
  V acc[kMR][NB];
  for (int i = 0; i < kMR; ++i)
    for (int jb = 0; jb < NB; ++jb) acc[i][jb] = O::zero();
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMR;
    const float* brow = bp + kk * kNR;  // 64-byte aligned row (kNR floats)
    V bv[NB];
    for (int jb = 0; jb < NB; ++jb) bv[jb] = O::load(brow + jb * W);
    for (int i = 0; i < kMR; ++i) {
      const V av = O::set1(arow[i]);
      for (int jb = 0; jb < NB; ++jb)
        acc[i][jb] = O::fma(av, bv[jb], acc[i][jb]);
    }
  }

  const V alpha_v = O::set1(alpha);
  const V beta_v = O::set1(beta);
  for (int64_t i = 0; i < mr_eff; ++i) {
    float* crow = c + i * ldc;
    const float* actrow =
        (OP == kOpDsigmoidMul || OP == kOpBiasDsigmoidMul) ? act + i * act_ld
                                                           : nullptr;
    for (int jb = 0; jb < NB; ++jb) {
      const int64_t j0 = static_cast<int64_t>(jb) * W;
      if (j0 >= nr_eff) break;
      const int lanes = static_cast<int>(std::min<int64_t>(W, nr_eff - j0));
      V v;
      if (first_k) {
        if (beta == 0.0f) {
          v = O::mul(alpha_v, acc[i][jb]);
        } else {
          const V cv = load_clip<O>(crow + j0, lanes);
          v = O::fma(beta_v, cv, O::mul(alpha_v, acc[i][jb]));
        }
      } else {
        const V cv = load_clip<O>(crow + j0, lanes);
        v = O::fma(alpha_v, acc[i][jb], cv);
      }
      if (last_k) {
        if constexpr (OP == kOpBiasAdd) {
          v = O::add(v, load_clip<O>(bias + j0, lanes));
        } else if constexpr (OP == kOpBiasSigmoid) {
          v = sigmoid_ps<O>(O::add(v, load_clip<O>(bias + j0, lanes)));
        } else if constexpr (OP == kOpDsigmoidMul) {
          v = O::mul(v, dsig<O>(load_clip<O>(actrow + j0, lanes)));
        } else if constexpr (OP == kOpBiasDsigmoidMul) {
          v = O::mul(O::add(v, load_clip<O>(bias + j0, lanes)),
                     dsig<O>(load_clip<O>(actrow + j0, lanes)));
        }
      }
      store_clip<O>(crow + j0, lanes, v);
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise / sampling kernels over one contiguous run. Parallel chunking
// lives in the la:: wrappers; these bodies are single-threaded and
// chunking-invariant (strictly elementwise).
// ---------------------------------------------------------------------------

template <class O>
void sigmoid_k(float* p, int64_t n) {
  constexpr int W = O::W;
  for (int64_t j = 0; j < n; j += W) {
    const int lanes = static_cast<int>(std::min<int64_t>(W, n - j));
    store_clip<O>(p + j, lanes, sigmoid_ps<O>(load_clip<O>(p + j, lanes)));
  }
}

template <class O>
void bias_sigmoid_k(float* row, const float* bias, int64_t n) {
  constexpr int W = O::W;
  for (int64_t j = 0; j < n; j += W) {
    const int lanes = static_cast<int>(std::min<int64_t>(W, n - j));
    const typename O::V pre =
        O::add(load_clip<O>(row + j, lanes), load_clip<O>(bias + j, lanes));
    store_clip<O>(row + j, lanes, sigmoid_ps<O>(pre));
  }
}

template <class O>
void bias_sigmoid_sample_k(float* row, const float* bias, float* sample,
                           const float* u, int64_t n) {
  using V = typename O::V;
  constexpr int W = O::W;
  const V one = O::set1(1.0f);
  const V zero = O::zero();
  for (int64_t j = 0; j < n; j += W) {
    const int lanes = static_cast<int>(std::min<int64_t>(W, n - j));
    const V pre =
        O::add(load_clip<O>(row + j, lanes), load_clip<O>(bias + j, lanes));
    const V mean = sigmoid_ps<O>(pre);
    store_clip<O>(row + j, lanes, mean);
    const typename O::M hit = O::lt(load_clip<O>(u + j, lanes), mean);
    store_clip<O>(sample + j, lanes, O::select(hit, one, zero));
  }
}

template <class O>
void bernoulli_compare_k(const float* mean, const float* u, float* out,
                         int64_t n) {
  using V = typename O::V;
  constexpr int W = O::W;
  const V one = O::set1(1.0f);
  const V zero = O::zero();
  for (int64_t j = 0; j < n; j += W) {
    const int lanes = static_cast<int>(std::min<int64_t>(W, n - j));
    const typename O::M hit =
        O::lt(load_clip<O>(u + j, lanes), load_clip<O>(mean + j, lanes));
    store_clip<O>(out + j, lanes, O::select(hit, one, zero));
  }
}

template <class O>
void dsigmoid_mul_k(float* d, const float* y, int64_t n) {
  constexpr int W = O::W;
  for (int64_t j = 0; j < n; j += W) {
    const int lanes = static_cast<int>(std::min<int64_t>(W, n - j));
    const typename O::V v = O::mul(load_clip<O>(d + j, lanes),
                                   dsig<O>(load_clip<O>(y + j, lanes)));
    store_clip<O>(d + j, lanes, v);
  }
}

template <class O>
void axpy_k(float alpha, const float* x, float* y, int64_t n) {
  constexpr int W = O::W;
  const typename O::V av = O::set1(alpha);
  for (int64_t j = 0; j < n; j += W) {
    const int lanes = static_cast<int>(std::min<int64_t>(W, n - j));
    const typename O::V v =
        O::fma(av, load_clip<O>(x + j, lanes), load_clip<O>(y + j, lanes));
    store_clip<O>(y + j, lanes, v);
  }
}

// Reference dot8 (also the scalar tier's entry): element i accumulates into
// double lane i % 8. float→double conversion and the float×float product in
// double are both exact, so the per-lane sums the vector tiers compute with
// fma are bit-identical (fma of an exact product ≡ mul+add). Masked-off
// lanes in the vector tails add +0.0, which is a bitwise no-op because lane
// sums can never be -0.0 (they start at +0.0 and RN addition only yields
// -0.0 from two -0.0 terms).
inline double dot8_ref(const float* x, const float* y, int64_t n) {
  double lanes[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (int64_t i = 0; i < n; ++i)
    lanes[i & 7] +=
        static_cast<double>(x[i]) * static_cast<double>(y[i]);
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

/// The fixed pairwise combine every tier's dot8 ends with.
inline double combine8(const double lanes[8]) {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

// ---------------------------------------------------------------------------
// Groupwise int8 dot (quantized inference, la/quant.hpp). Per group:
// exact int32 dpbusd accumulation over `group` zero-padded code bytes, then
// the int64 zero-point correction and one scalar std::fma into the running
// float result, in ascending group order. Every arithmetic step is either
// exact integer or a fixed scalar float sequence, so tiers agree bitwise no
// matter their vector width (dispatch.hpp, "Numerical contract").
// ---------------------------------------------------------------------------
template <class O>
float quant_dot_k(const std::uint8_t* xq, const std::int8_t* wq,
                  const float* scales, const std::int32_t* wsum,
                  int64_t groups, int64_t group, std::int32_t zp) {
  constexpr int64_t kStep = 4 * O::WI;  // code bytes per dpbusd step
  float r = 0.0f;
  for (int64_t g = 0; g < groups; ++g) {
    const std::uint8_t* a = xq + g * group;
    const std::int8_t* b = wq + g * group;
    typename O::VI acc = O::izero();
    // The layout contract (quant.hpp) pads rows to a multiple of the group
    // size and keeps the group a multiple of 64 bytes, so this loop needs no
    // tail handling on any tier (kStep divides 64 for WI <= 16).
    for (int64_t j = 0; j < group; j += kStep) acc = O::dpbusd(acc, a + j, b + j);
    const std::int64_t s = static_cast<std::int64_t>(O::ireduce(acc)) -
                           static_cast<std::int64_t>(zp) *
                               static_cast<std::int64_t>(wsum[g]);
    r = std::fma(scales[g], static_cast<float>(s), r);
  }
  return r;
}

template <class Ops>
KernelTable make_table(Tier tier, double (*dot8)(const float*, const float*,
                                                 int64_t)) {
  KernelTable t;
  t.tier = tier;
  t.gemm_micro[kOpNone] = &gemm_micro<Ops, kOpNone>;
  t.gemm_micro[kOpBiasAdd] = &gemm_micro<Ops, kOpBiasAdd>;
  t.gemm_micro[kOpBiasSigmoid] = &gemm_micro<Ops, kOpBiasSigmoid>;
  t.gemm_micro[kOpDsigmoidMul] = &gemm_micro<Ops, kOpDsigmoidMul>;
  t.gemm_micro[kOpBiasDsigmoidMul] = &gemm_micro<Ops, kOpBiasDsigmoidMul>;
  t.sigmoid = &sigmoid_k<Ops>;
  t.bias_sigmoid = &bias_sigmoid_k<Ops>;
  t.bias_sigmoid_sample = &bias_sigmoid_sample_k<Ops>;
  t.bernoulli_compare = &bernoulli_compare_k<Ops>;
  t.dsigmoid_mul = &dsigmoid_mul_k<Ops>;
  t.axpy = &axpy_k<Ops>;
  t.dot8 = dot8;
  t.quant_dot = &quant_dot_k<Ops>;
  return t;
}

}  // namespace
}  // namespace deepphi::la::simd
