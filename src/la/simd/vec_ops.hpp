// Vector-ops policies the generic kernel bodies (kernels_body.inl) are
// instantiated over, plus the shared transcendental polynomials.
//
// One policy per tier: ScalarOps is always available; Avx2Ops / Avx512Ops
// only exist in translation units compiled with the matching -m flags (the
// per-file ISA options set in src/CMakeLists.txt), guarded by the
// compiler-defined feature macros.
//
// The parity contract lives here: every op is a single correctly-rounded
// IEEE operation on all tiers — fma maps to std::fma (correctly rounded by
// the C standard) or vfmadd, floor to std::floor or the round-to-neg-inf
// intrinsic, division to real division (never rcp+refine). Given the same
// operation sequence, lanes therefore compute bit-identical floats on every
// tier. Do not add an op whose scalar and vector forms can round
// differently.
//
// Each policy also carries an int8 sub-policy for the quantized inference
// kernels (la/quant.hpp): VI is a vector of WI int32 accumulator lanes and
// dpbusd() performs the VNNI-class u8×s8 multiply-accumulate — for each lane
// i, acc[i] += Σ_{j<4} a[4i+j]·b[4i+j] over 4·WI code bytes. Integer
// arithmetic is exact, so any lane count and any reduction order produce the
// same int32 sum; cross-tier parity for the int8 kernels is therefore free
// as long as the float dequantization runs the same scalar sequence
// everywhere (see quant_dot_k in kernels_body.inl).
//
// On AVX2 dpbusd is emulated with the classic madd pair
// (maddubs u8×s8 → s16, madd ×1 → s32). maddubs SATURATES the s16 pair sum;
// the quantizer therefore clamps activation codes to 7 bits ([0, 127], see
// la/quant.hpp), which bounds a pair at 2·127·127 = 32258 < 32767 so the
// emulation is exact. The AVX-512 tier uses the real vpdpbusd when the TU is
// compiled with BW+VNNI (the dispatcher then gates the tier on those CPUID
// bits); an F-only build falls back to the 256-bit emulation.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace deepphi::la::simd {

// ---------------------------------------------------------------------------
// Scalar policy (W = 1). The reference semantics of every kernel.
// ---------------------------------------------------------------------------
struct ScalarOps {
  using V = float;
  using M = bool;
  static constexpr int W = 1;

  static V zero() { return 0.0f; }
  static V set1(float x) { return x; }
  static V load(const float* p) { return *p; }  // aligned
  static V loadu(const float* p) { return *p; }
  static void storeu(float* p, V v) { *p = v; }
  // Partial (masked) accesses cover the first `n` lanes, 0 <= n < W.
  static V loadu_partial(const float* p, int n) { return n > 0 ? *p : 0.0f; }
  static void storeu_partial(float* p, int n, V v) {
    if (n > 0) *p = v;
  }

  static V add(V a, V b) { return a + b; }
  static V sub(V a, V b) { return a - b; }
  static V mul(V a, V b) { return a * b; }
  static V div(V a, V b) { return a / b; }
  // Correctly rounded — bit-identical to the vfmadd the vector tiers use.
  static V fma(V a, V b, V c) { return std::fma(a, b, c); }
  static V neg(V a) { return -a; }
  static V min_(V a, V b) { return a < b ? a : b; }
  static V max_(V a, V b) { return a > b ? a : b; }
  static V floor_(V a) { return std::floor(a); }

  static M lt(V a, V b) { return a < b; }
  static V select(M m, V a, V b) { return m ? a : b; }

  /// 2^n for an integer-valued float n in [-126, 127], via exponent bits.
  static V pow2i(V n) {
    const std::int32_t bits = (static_cast<std::int32_t>(n) + 127) << 23;
    return std::bit_cast<float>(bits);
  }

  // --- int8 sub-policy (reference semantics) ---
  using VI = std::int32_t;
  static constexpr int WI = 1;
  static VI izero() { return 0; }
  static VI dpbusd(VI acc, const std::uint8_t* a, const std::int8_t* b) {
    for (int j = 0; j < 4; ++j)
      acc += static_cast<std::int32_t>(a[j]) * static_cast<std::int32_t>(b[j]);
    return acc;
  }
  static std::int32_t ireduce(VI acc) { return acc; }
};

// ---------------------------------------------------------------------------
// AVX2 + FMA policy (W = 8). Only in TUs compiled with -mavx2 -mfma.
// ---------------------------------------------------------------------------
#if defined(__AVX2__) && defined(__FMA__)
struct Avx2Ops {
  using V = __m256;
  using M = __m256;  // all-ones lanes where true
  static constexpr int W = 8;

  static V zero() { return _mm256_setzero_ps(); }
  static V set1(float x) { return _mm256_set1_ps(x); }
  static V load(const float* p) { return _mm256_load_ps(p); }
  static V loadu(const float* p) { return _mm256_loadu_ps(p); }
  static void storeu(float* p, V v) { _mm256_storeu_ps(p, v); }

  // Lane i is active when i < n: compare the lane index against n.
  static __m256i tail_mask(int n) {
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    return _mm256_cmpgt_epi32(_mm256_set1_epi32(n), lane);
  }
  static V loadu_partial(const float* p, int n) {
    return _mm256_maskload_ps(p, tail_mask(n));
  }
  static void storeu_partial(float* p, int n, V v) {
    _mm256_maskstore_ps(p, tail_mask(n), v);
  }

  static V add(V a, V b) { return _mm256_add_ps(a, b); }
  static V sub(V a, V b) { return _mm256_sub_ps(a, b); }
  static V mul(V a, V b) { return _mm256_mul_ps(a, b); }
  static V div(V a, V b) { return _mm256_div_ps(a, b); }
  static V fma(V a, V b, V c) { return _mm256_fmadd_ps(a, b, c); }
  static V neg(V a) { return _mm256_sub_ps(_mm256_setzero_ps(), a); }
  static V min_(V a, V b) { return _mm256_min_ps(b, a); }
  static V max_(V a, V b) { return _mm256_max_ps(b, a); }
  static V floor_(V a) { return _mm256_floor_ps(a); }

  static M lt(V a, V b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
  static V select(M m, V a, V b) { return _mm256_blendv_ps(b, a, m); }

  static V pow2i(V n) {
    const __m256i i = _mm256_cvttps_epi32(n);
    const __m256i bits =
        _mm256_slli_epi32(_mm256_add_epi32(i, _mm256_set1_epi32(127)), 23);
    return _mm256_castsi256_ps(bits);
  }

  // --- int8 sub-policy: vpdpbusd emulated with the madd pair. Exact for
  // 7-bit activation codes (see the header comment). ---
  using VI = __m256i;
  static constexpr int WI = 8;
  static VI izero() { return _mm256_setzero_si256(); }
  static VI dpbusd(VI acc, const std::uint8_t* a, const std::int8_t* b) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const __m256i pairs = _mm256_maddubs_epi16(va, vb);  // u8×s8 → s16 pairs
    const __m256i quads =
        _mm256_madd_epi16(pairs, _mm256_set1_epi16(1));  // s16 pairs → s32
    return _mm256_add_epi32(acc, quads);
  }
  static std::int32_t ireduce(VI acc) {
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
  }
};
#endif  // __AVX2__ && __FMA__

// ---------------------------------------------------------------------------
// AVX-512F policy (W = 16). Only in TUs compiled with -mavx512f.
// ---------------------------------------------------------------------------
#if defined(__AVX512F__)
struct Avx512Ops {
  using V = __m512;
  using M = __mmask16;
  static constexpr int W = 16;

  static V zero() { return _mm512_setzero_ps(); }
  static V set1(float x) { return _mm512_set1_ps(x); }
  static V load(const float* p) { return _mm512_load_ps(p); }
  static V loadu(const float* p) { return _mm512_loadu_ps(p); }
  static void storeu(float* p, V v) { _mm512_storeu_ps(p, v); }

  static __mmask16 tail_mask(int n) {
    return static_cast<__mmask16>((1u << n) - 1u);
  }
  static V loadu_partial(const float* p, int n) {
    return _mm512_maskz_loadu_ps(tail_mask(n), p);
  }
  static void storeu_partial(float* p, int n, V v) {
    _mm512_mask_storeu_ps(p, tail_mask(n), v);
  }

  static V add(V a, V b) { return _mm512_add_ps(a, b); }
  static V sub(V a, V b) { return _mm512_sub_ps(a, b); }
  static V mul(V a, V b) { return _mm512_mul_ps(a, b); }
  static V div(V a, V b) { return _mm512_div_ps(a, b); }
  static V fma(V a, V b, V c) { return _mm512_fmadd_ps(a, b, c); }
  static V neg(V a) { return _mm512_sub_ps(_mm512_setzero_ps(), a); }
  static V min_(V a, V b) { return _mm512_min_ps(b, a); }
  static V max_(V a, V b) { return _mm512_max_ps(b, a); }
  static V floor_(V a) {
    return _mm512_roundscale_ps(a, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  }

  static M lt(V a, V b) { return _mm512_cmp_ps_mask(a, b, _CMP_LT_OQ); }
  static V select(M m, V a, V b) { return _mm512_mask_blend_ps(m, b, a); }

  static V pow2i(V n) {
    const __m512i i = _mm512_cvttps_epi32(n);
    const __m512i bits =
        _mm512_slli_epi32(_mm512_add_epi32(i, _mm512_set1_epi32(127)), 23);
    return _mm512_castsi512_ps(bits);
  }

#if defined(__AVX512VNNI__) && defined(__AVX512BW__)
  // --- int8 sub-policy: the real 512-bit vpdpbusd. The dispatcher gates
  // this tier on the BW+VNNI CPUID bits when the TU is built this way
  // (KernelTable::needs_avx512_vnni). ---
  using VI = __m512i;
  static constexpr int WI = 16;
  static VI izero() { return _mm512_setzero_si512(); }
  static VI dpbusd(VI acc, const std::uint8_t* a, const std::int8_t* b) {
    return _mm512_dpbusd_epi32(acc, _mm512_loadu_si512(a),
                               _mm512_loadu_si512(b));
  }
  static std::int32_t ireduce(VI acc) { return _mm512_reduce_add_epi32(acc); }
#else
  // F-only build: no byte-granularity 512-bit integer ops exist below BW, so
  // this tier runs the 256-bit madd-pair emulation (AVX2 is an architectural
  // prerequisite of AVX-512F, so Avx2Ops exists in this TU).
  using VI = Avx2Ops::VI;
  static constexpr int WI = Avx2Ops::WI;
  static VI izero() { return Avx2Ops::izero(); }
  static VI dpbusd(VI acc, const std::uint8_t* a, const std::int8_t* b) {
    return Avx2Ops::dpbusd(acc, a, b);
  }
  static std::int32_t ireduce(VI acc) { return Avx2Ops::ireduce(acc); }
#endif
};
#endif  // __AVX512F__

// ---------------------------------------------------------------------------
// Shared transcendentals. One algorithm for every tier — the scalar tier
// runs the polynomial too (NOT libm's exp), so lanes agree bitwise.
// ---------------------------------------------------------------------------

/// expf via the classic Cephes range reduction + degree-5 polynomial
/// (~1-2 ulp over the clamped range), evaluated with fma throughout.
template <class O>
inline typename O::V exp_ps(typename O::V x) {
  using V = typename O::V;
  // Clamp keeps 2^n representable; sigmoid saturates well inside this range.
  x = O::min_(x, O::set1(88.3762626647949f));
  x = O::max_(x, O::set1(-87.3365478515625f));
  // n = floor(x * log2(e) + 0.5)
  V fx = O::fma(x, O::set1(1.44269504088896341f), O::set1(0.5f));
  fx = O::floor_(fx);
  // r = x - n * ln(2), Cody–Waite split for precision.
  x = O::fma(fx, O::set1(-0.693359375f), x);
  x = O::fma(fx, O::set1(2.12194440e-4f), x);
  const V z = O::mul(x, x);
  V y = O::set1(1.9875691500e-4f);
  y = O::fma(y, x, O::set1(1.3981999507e-3f));
  y = O::fma(y, x, O::set1(8.3334519073e-3f));
  y = O::fma(y, x, O::set1(4.1665795894e-2f));
  y = O::fma(y, x, O::set1(1.6666665459e-1f));
  y = O::fma(y, x, O::set1(5.0000001201e-1f));
  y = O::fma(y, z, x);
  y = O::add(y, O::set1(1.0f));
  return O::mul(y, O::pow2i(fx));
}

/// sigmoid(x) = 1 / (1 + exp(-x)), real division (never rcp).
template <class O>
inline typename O::V sigmoid_ps(typename O::V x) {
  const typename O::V one = O::set1(1.0f);
  return O::div(one, O::add(one, exp_ps<O>(O::neg(x))));
}

/// The scalar sigmoid every non-dispatched call site shares (loop-form
/// baselines, the degenerate GEMM beta/epilogue pass, online SGD). Same
/// algorithm as the vector tiers, so a value computed here is bit-identical
/// to the corresponding lane of any dispatched kernel.
inline float sigmoid_scalar(float x) { return sigmoid_ps<ScalarOps>(x); }

}  // namespace deepphi::la::simd
