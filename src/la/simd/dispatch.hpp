// Runtime CPU dispatch for the explicit-SIMD kernels (docs/simd.md).
//
// The paper's §IV ladder ends at "512-bit SIMD vectorization"; on the Phi
// that meant IMCI, here it means targeting whatever the host actually has.
// The library is compiled for baseline x86-64, plus two extra translation
// units built with per-file ISA flags (-mavx2 -mfma / -mavx512f). At first
// use the dispatcher CPUID-probes the machine, picks the widest available
// tier, and binds one KernelTable of function pointers that every hot
// kernel (GEMM micro-kernel incl. fused epilogues, sigmoid family, Bernoulli
// sampling compare, axpy/dot) routes through.
//
// Numerical contract — identical results on every tier:
//  * every tier runs the SAME generic kernel body (kernels_body.inl)
//    instantiated over a vector-ops policy (vec_ops.hpp); the scalar policy
//    maps fma/floor onto std::fma/std::floor, which are correctly rounded
//    and therefore bit-identical to the vfmadd/vroundps the vector tiers
//    use, lane by lane;
//  * transcendentals use one shared polynomial (exp_ps) evaluated in the
//    same operation order everywhere — never libm's exp on one tier and a
//    polynomial on another;
//  * fringes are handled with masked loads/stores, not a scalar cleanup
//    loop, so partial tiles see the exact same arithmetic as full ones.
// The cross-tier parity suite (tests/simd_test.cpp) pins all of this
// bitwise, which is what keeps counter-driven Bernoulli sampling (u < mean)
// deterministic across tiers: a 1-ulp mean difference could flip a sample.
//
// KernelStats recording stays in the la:: wrappers and is shape-only, so
// accounting is identical on every tier and model==measure holds regardless
// of what the dispatcher picked.
//
// Override for testing/debugging: DEEPPHI_ISA=scalar|avx2|avx512 forces a
// tier at startup (unavailable tiers fall back to the best runnable one
// with a warning); force_tier() does the same programmatically for tests
// and benches.
#pragma once

#include <cstdint>
#include <string>

namespace deepphi::la::simd {

/// Dispatch tiers, widest last. kAvx2 requires AVX2 + FMA; kAvx512 requires
/// AVX-512F, plus BW+VNNI when its table was compiled with the real
/// vpdpbusd int8 kernel (KernelTable::needs_avx512_vnni — the float kernels
/// only need F-level masks and arithmetic).
enum class Tier : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr int kNumTiers = 3;

/// Register micro-tile of the blocked GEMM, shared by every tier: MR rows ×
/// NR columns, NR = 16 floats = one 512-bit vector (one cache line).
inline constexpr std::int64_t kMR = 4;
inline constexpr std::int64_t kNR = 16;

/// "scalar" / "avx2" / "avx512".
const char* tier_name(Tier t);

/// Parses a DEEPPHI_ISA-style name; returns false on unknown names.
bool parse_tier(const std::string& name, Tier& out);

/// The function-pointer bundle one tier exports. All pointers are always
/// non-null for an available tier.
struct KernelTable {
  Tier tier = Tier::kScalar;

  /// MR×NR GEMM micro-kernel, one instantiation per EpilogueOp (indexed by
  /// static_cast<int>(op)). `ap`/`bp` are the packed, zero-padded panels
  /// (64-byte aligned; see check_panel_alignment); `c` points at C(r0, c0)
  /// with leading dimension `ldc`; `bias` points at bias[c0] (or null);
  /// `act` points at act(r0, c0) with leading dimension `act_ld` (or null).
  /// Writes the mr_eff×nr_eff clip of the tile, applying beta on the first
  /// k-panel and the fused epilogue on the last.
  using GemmMicroFn = void (*)(const float* ap, const float* bp,
                               std::int64_t kc, float alpha, float beta,
                               bool first_k, bool last_k, const float* bias,
                               const float* act, std::int64_t act_ld, float* c,
                               std::int64_t ldc, std::int64_t mr_eff,
                               std::int64_t nr_eff);
  GemmMicroFn gemm_micro[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};

  /// p[i] = sigmoid(p[i]).
  void (*sigmoid)(float* p, std::int64_t n) = nullptr;
  /// row[j] = sigmoid(row[j] + bias[j]).
  void (*bias_sigmoid)(float* row, const float* bias, std::int64_t n) = nullptr;
  /// mean = sigmoid(row + bias); row = mean; sample[j] = u[j] < mean ? 1 : 0.
  /// `u` holds pre-drawn uniforms (the RNG stream stays scalar and
  /// tier-independent; only the sigmoid + compare are vectorized).
  void (*bias_sigmoid_sample)(float* row, const float* bias, float* sample,
                              const float* u, std::int64_t n) = nullptr;
  /// out[j] = u[j] < mean[j] ? 1 : 0.
  void (*bernoulli_compare)(const float* mean, const float* u, float* out,
                            std::int64_t n) = nullptr;
  /// d[i] *= y[i] * (1 - y[i]).
  void (*dsigmoid_mul)(float* d, const float* y, std::int64_t n) = nullptr;
  /// y[i] = fma(alpha, x[i], y[i]).
  void (*axpy)(float alpha, const float* x, float* y, std::int64_t n) = nullptr;
  /// Double-precision dot with the fixed 8-lane reduction: element i goes to
  /// lane i % 8 (float→double conversion and the float×float product are
  /// exact, so lane sums are bit-identical on every tier), then one fixed
  /// pairwise tree. Same result for W=1/8/16 hardware.
  double (*dot8)(const float* x, const float* y, std::int64_t n) = nullptr;

  /// Groupwise int8 dot (the quantized-inference kernel, docs/simd.md).
  /// `xq` holds u8 activation codes in [0,127], `wq` s8 weight codes in
  /// [-127,127]; both are `groups * group` bytes, zero-padded. Per group g it
  /// accumulates acc_g = sum_j xq[j]*wq[j] exactly in int32 (group <= 65536
  /// keeps that safe), corrects the activation zero point with the
  /// precomputed code sums (`wsum[g] = sum_j wq[j]`) in int64, and combines
  /// r = fma(scales[g], float(acc_g - zp*wsum[g]), r) in ascending group
  /// order with scalar std::fma. Integer accumulation is exact on every tier
  /// and the float combine is a fixed scalar sequence, so the result is
  /// bitwise identical across tiers by construction.
  float (*quant_dot)(const std::uint8_t* xq, const std::int8_t* wq,
                     const float* scales, const std::int32_t* wsum,
                     std::int64_t groups, std::int64_t group,
                     std::int32_t zp) = nullptr;

  /// True when this table was compiled with AVX-512BW+VNNI instructions
  /// (real vpdpbusd in quant_dot). tier_available() then additionally
  /// requires those CPUID bits, so an F-only machine never binds it.
  bool needs_avx512_vnni = false;
};

/// True when `t` can run on this CPU (compiled in AND CPUID-supported).
bool tier_available(Tier t);

/// Widest available tier on this machine.
Tier best_available_tier();

/// The bound kernel table. First call resolves: CPUID detection, then the
/// DEEPPHI_ISA override if set. Subsequent calls return the cached binding.
const KernelTable& active();

/// Tier of the bound table.
Tier active_tier();

/// Rebinds the dispatch to `t` (tests/benches). Returns false and leaves the
/// binding unchanged when the tier cannot run on this CPU.
bool force_tier(Tier t);

/// Restores the startup binding (detection + DEEPPHI_ISA).
void reset_tier();

/// Throws util::Error unless both packed panels are 64-byte aligned — the
/// contract the aligned vector loads in the micro-kernels rely on. Cheap
/// (two pointer tests); the blocked GEMM calls it once per worker per call
/// in every build, and additionally per micro-tile in debug builds.
void check_panel_alignment(const void* a_panel, const void* b_panel);

// Implementation detail: per-ISA translation units export their table (or
// nullptr when the TU was compiled without the ISA's feature macros, i.e. on
// a non-x86 host compiler). Only dispatch.cpp should call these.
const KernelTable* scalar_table();
const KernelTable* avx2_table();
const KernelTable* avx512_table();

}  // namespace deepphi::la::simd
