// AVX2+FMA dispatch tier. This translation unit alone is compiled with
// -mavx2 -mfma (and -ffp-contract=off so no stray scalar expression gets
// contracted differently from the other tiers); everything vector goes
// through the Avx2Ops policy. When built by a compiler without those flags
// (non-x86 host), the guard compiles the table out and the getter returns
// nullptr, which the dispatcher treats as "tier not built".

#include "la/simd/kernels_body.inl"

namespace deepphi::la::simd {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

// dot8 on 256-bit doubles: two accumulators hold lanes 0..3 / 4..7 of the
// fixed 8-lane scheme. Products are exact (float×float in double), so the
// fma here is bit-identical to dot8_ref's mul+add; the masked tail adds
// +0.0, a no-op (see dot8_ref).
double dot8_avx2(const float* x, const float* y, std::int64_t n) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 yv = _mm256_loadu_ps(y + i);
    lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(xv)),
                         _mm256_cvtps_pd(_mm256_castps256_ps128(yv)), lo);
    hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(xv, 1)),
                         _mm256_cvtps_pd(_mm256_extractf128_ps(yv, 1)), hi);
  }
  if (i < n) {
    const int lanes = static_cast<int>(n - i);
    const __m256 xv = Avx2Ops::loadu_partial(x + i, lanes);
    const __m256 yv = Avx2Ops::loadu_partial(y + i, lanes);
    lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(xv)),
                         _mm256_cvtps_pd(_mm256_castps256_ps128(yv)), lo);
    hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(xv, 1)),
                         _mm256_cvtps_pd(_mm256_extractf128_ps(yv, 1)), hi);
  }
  double lanes8[8];
  _mm256_storeu_pd(lanes8, lo);
  _mm256_storeu_pd(lanes8 + 4, hi);
  return combine8(lanes8);
}

}  // namespace

const KernelTable* avx2_table() {
  static const KernelTable table = make_table<Avx2Ops>(Tier::kAvx2, &dot8_avx2);
  return &table;
}

#else  // compiler has no AVX2+FMA for this TU

const KernelTable* avx2_table() { return nullptr; }

#endif

}  // namespace deepphi::la::simd
