#include "la/pack_arena.hpp"

#include <atomic>

#include "util/aligned.hpp"

namespace deepphi::la {

namespace {

std::atomic<std::uint64_t> g_allocations{0};

struct Arena {
  util::AlignedBuffer<float> buf;
  std::size_t capacity = 0;
};

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace

float* pack_arena(std::size_t elems) {
  Arena& arena = thread_arena();
  if (arena.capacity < elems) {
    arena.buf = util::make_aligned<float>(elems);
    arena.capacity = elems;
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return arena.buf.get();
}

std::size_t pack_arena_capacity() { return thread_arena().capacity; }

std::uint64_t pack_arena_allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

void pack_arena_release() {
  Arena& arena = thread_arena();
  arena.buf.reset();
  arena.capacity = 0;
}

}  // namespace deepphi::la
