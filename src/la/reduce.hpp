// Reduction kernels: column/row sums and means, scalar reductions, and the
// KL-sparsity helpers of the Sparse Autoencoder cost (paper eqs. 5–6).
// Column reductions accumulate in double to keep large-batch averages stable.
#pragma once

#include "la/matrix.hpp"

namespace deepphi::la {

/// out[c] = Σ_r m(r,c). `out` must have m.cols() elements.
void col_sum(const Matrix& m, Vector& out);

/// out[c] = mean_r m(r,c) — e.g. the average activation ρ̂ of each hidden
/// unit over a batch.
void col_mean(const Matrix& m, Vector& out);

/// out[r] = Σ_c m(r,c). `out` must have m.rows() elements.
void row_sum(const Matrix& m, Vector& out);

/// Σ of all elements.
double sum(const Matrix& m);

/// Σ (a - b)² over all elements — the squared reconstruction error.
double sum_sq_diff(const Matrix& a, const Matrix& b);

/// Σ_j KL(ρ ‖ ρ̂_j) with KL(ρ‖q) = ρ·log(ρ/q) + (1-ρ)·log((1-ρ)/(1-q)).
/// ρ̂ entries are clamped to [eps, 1-eps] for numerical safety.
double kl_divergence(float rho, const Vector& rho_hat, float eps = 1e-6f);

/// out[j] = beta · (-ρ/ρ̂_j + (1-ρ)/(1-ρ̂_j)) — the sparsity term added to
/// every row of the hidden-layer delta during backprop.
void sparsity_delta(float rho, float beta, const Vector& rho_hat, Vector& out,
                    float eps = 1e-6f);

}  // namespace deepphi::la
