#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace deepphi::la {

namespace {
bool elem_close(float a, float b, float rtol, float atol) {
  return std::fabs(a - b) <= atol + rtol * std::fabs(b);
}
}  // namespace

Matrix::Matrix(Index rows, Index cols) : rows_(rows), cols_(cols) {
  DEEPPHI_CHECK_MSG(rows >= 0 && cols >= 0, "negative shape " << rows << "x" << cols);
  data_ = util::make_aligned<float>(static_cast<std::size_t>(rows * cols));
  fill(0.0f);
}

Matrix Matrix::uninitialized(Index rows, Index cols) {
  Matrix m;
  DEEPPHI_CHECK_MSG(rows >= 0 && cols >= 0, "negative shape " << rows << "x" << cols);
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = util::make_aligned<float>(static_cast<std::size_t>(rows * cols));
  return m;
}

Matrix Matrix::constant(Index rows, Index cols, float value) {
  Matrix m = uninitialized(rows, cols);
  m.fill(value);
  return m;
}

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<float>> rows) {
  const Index r = static_cast<Index>(rows.size());
  const Index c = r == 0 ? 0 : static_cast<Index>(rows.begin()->size());
  Matrix m = uninitialized(r, c);
  Index i = 0;
  for (const auto& row : rows) {
    DEEPPHI_CHECK_MSG(static_cast<Index>(row.size()) == c,
                      "ragged initializer: row " << i << " has " << row.size()
                                                 << " cols, expected " << c);
    std::copy(row.begin(), row.end(), m.row(i));
    ++i;
  }
  return m;
}

Matrix::Matrix(const Matrix& o) : rows_(o.rows_), cols_(o.cols_) {
  data_ = util::make_aligned<float>(static_cast<std::size_t>(size()));
  if (size() > 0) std::memcpy(data_.get(), o.data_.get(), sizeof(float) * size());
}

Matrix& Matrix::operator=(const Matrix& o) {
  if (this == &o) return *this;
  if (size() != o.size()) {
    data_ = util::make_aligned<float>(static_cast<std::size_t>(o.size()));
  }
  rows_ = o.rows_;
  cols_ = o.cols_;
  if (size() > 0) std::memcpy(data_.get(), o.data_.get(), sizeof(float) * size());
  return *this;
}

Matrix::Matrix(Matrix&& o) noexcept
    : rows_(o.rows_), cols_(o.cols_), data_(std::move(o.data_)) {
  o.rows_ = o.cols_ = 0;
}

Matrix& Matrix::operator=(Matrix&& o) noexcept {
  rows_ = o.rows_;
  cols_ = o.cols_;
  data_ = std::move(o.data_);
  o.rows_ = o.cols_ = 0;
  return *this;
}

float& Matrix::at(Index r, Index c) {
  DEEPPHI_CHECK_MSG(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                    "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
  return (*this)(r, c);
}

float Matrix::at(Index r, Index c) const {
  DEEPPHI_CHECK_MSG(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                    "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
  return (*this)(r, c);
}

void Matrix::fill(float value) {
  std::fill_n(data_.get(), static_cast<std::size_t>(size()), value);
}

void Matrix::copy_from(const Matrix& o) {
  DEEPPHI_CHECK_MSG(rows_ == o.rows_ && cols_ == o.cols_,
                    "copy_from shape mismatch: " << rows_ << "x" << cols_ << " vs "
                                                 << o.rows_ << "x" << o.cols_);
  if (size() > 0) std::memcpy(data_.get(), o.data_.get(), sizeof(float) * size());
}

void Matrix::reshape(Index rows, Index cols) {
  DEEPPHI_CHECK_MSG(rows * cols == size(),
                    "reshape " << rows_ << "x" << cols_ << " -> " << rows << "x"
                               << cols << " changes element count");
  rows_ = rows;
  cols_ = cols;
}

bool Matrix::approx_equal(const Matrix& o, float rtol, float atol) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) return false;
  for (Index i = 0; i < size(); ++i)
    if (!elem_close(data_.get()[i], o.data_.get()[i], rtol, atol)) return false;
  return true;
}

std::string Matrix::to_string(Index max_rows, Index max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " matrix";
  if (rows_ <= max_rows && cols_ <= max_cols) {
    os << "\n";
    for (Index r = 0; r < rows_; ++r) {
      os << "  [";
      for (Index c = 0; c < cols_; ++c) {
        if (c) os << ", ";
        os << (*this)(r, c);
      }
      os << "]\n";
    }
  }
  return os.str();
}

Vector::Vector(Index n) : n_(n) {
  DEEPPHI_CHECK_MSG(n >= 0, "negative size " << n);
  data_ = util::make_aligned<float>(static_cast<std::size_t>(n));
  fill(0.0f);
}

Vector Vector::uninitialized(Index n) {
  Vector v;
  DEEPPHI_CHECK_MSG(n >= 0, "negative size " << n);
  v.n_ = n;
  v.data_ = util::make_aligned<float>(static_cast<std::size_t>(n));
  return v;
}

Vector Vector::constant(Index n, float value) {
  Vector v = uninitialized(n);
  v.fill(value);
  return v;
}

Vector Vector::from(std::initializer_list<float> values) {
  Vector v = uninitialized(static_cast<Index>(values.size()));
  std::copy(values.begin(), values.end(), v.data());
  return v;
}

Vector::Vector(const Vector& o) : n_(o.n_) {
  data_ = util::make_aligned<float>(static_cast<std::size_t>(n_));
  if (n_ > 0) std::memcpy(data_.get(), o.data_.get(), sizeof(float) * n_);
}

Vector& Vector::operator=(const Vector& o) {
  if (this == &o) return *this;
  if (n_ != o.n_) data_ = util::make_aligned<float>(static_cast<std::size_t>(o.n_));
  n_ = o.n_;
  if (n_ > 0) std::memcpy(data_.get(), o.data_.get(), sizeof(float) * n_);
  return *this;
}

Vector::Vector(Vector&& o) noexcept : n_(o.n_), data_(std::move(o.data_)) { o.n_ = 0; }

Vector& Vector::operator=(Vector&& o) noexcept {
  n_ = o.n_;
  data_ = std::move(o.data_);
  o.n_ = 0;
  return *this;
}

float& Vector::at(Index i) {
  DEEPPHI_CHECK_MSG(i >= 0 && i < n_, "index " << i << " out of size " << n_);
  return (*this)[i];
}

float Vector::at(Index i) const {
  DEEPPHI_CHECK_MSG(i >= 0 && i < n_, "index " << i << " out of size " << n_);
  return (*this)[i];
}

void Vector::fill(float value) {
  std::fill_n(data_.get(), static_cast<std::size_t>(n_), value);
}

void Vector::copy_from(const Vector& o) {
  DEEPPHI_CHECK_MSG(n_ == o.n_, "copy_from size mismatch: " << n_ << " vs " << o.n_);
  if (n_ > 0) std::memcpy(data_.get(), o.data_.get(), sizeof(float) * n_);
}

bool Vector::approx_equal(const Vector& o, float rtol, float atol) const {
  if (n_ != o.n_) return false;
  for (Index i = 0; i < n_; ++i)
    if (!elem_close(data_.get()[i], o.data_.get()[i], rtol, atol)) return false;
  return true;
}

std::string Vector::to_string(Index max_elems) const {
  std::ostringstream os;
  os << n_ << "-vector";
  if (n_ <= max_elems) {
    os << " [";
    for (Index i = 0; i < n_; ++i) {
      if (i) os << ", ";
      os << (*this)[i];
    }
    os << "]";
  }
  return os.str();
}

}  // namespace deepphi::la
