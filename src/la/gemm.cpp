#include "la/gemm.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "la/pack_arena.hpp"
#include "la/simd/dispatch.hpp"
#include "la/simd/vec_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "phi/kernel_stats.hpp"

namespace deepphi::la {

namespace {

constexpr Index MR = simd::kMR;
constexpr Index NR = simd::kNR;

// op(M)(i, j) under the trans flag. Only used in packing; the micro-kernel
// reads packed panels.
inline float op_elem(const Matrix& m, Trans t, Index i, Index j) {
  return t == Trans::kNo ? m(i, j) : m(j, i);
}

// Packs the mc×kc block of op(A) starting at (ic, pc) into MR-row panels:
// panel p holds rows [p·MR, p·MR+MR) stored k-major, zero-padded past mc.
void pack_a(const Matrix& a, Trans ta, Index ic, Index pc, Index mc, Index kc,
            float* buf) {
  const Index panels = (mc + MR - 1) / MR;
  for (Index p = 0; p < panels; ++p) {
    const Index i0 = p * MR;
    float* dst = buf + p * kc * MR;
    for (Index kk = 0; kk < kc; ++kk) {
      for (Index i = 0; i < MR; ++i) {
        const Index ii = i0 + i;
        dst[kk * MR + i] =
            ii < mc ? op_elem(a, ta, ic + ii, pc + kk) : 0.0f;
      }
    }
  }
}

// Packs the kc×nc block of op(B) starting at (pc, jc) into NR-column panels:
// panel p holds columns [p·NR, p·NR+NR) stored k-major, zero-padded past nc.
void pack_b(const Matrix& b, Trans tb, Index pc, Index jc, Index kc, Index nc,
            float* buf) {
  const Index panels = (nc + NR - 1) / NR;
  for (Index p = 0; p < panels; ++p) {
    const Index j0 = p * NR;
    float* dst = buf + p * kc * NR;
    for (Index kk = 0; kk < kc; ++kk) {
      for (Index j = 0; j < NR; ++j) {
        const Index jj = j0 + j;
        dst[kk * NR + j] =
            jj < nc ? op_elem(b, tb, pc + kk, jc + jj) : 0.0f;
      }
    }
  }
}

// Serial blocked GEMM over the C tile [row_begin, row_end) × [col_begin,
// col_end). `a_buf` and `b_buf` are caller-provided packing buffers sized for
// the blocking. Beta is folded into the first k-panel's write-back and the
// epilogue into the last one's, so the tile is touched exactly once per
// k-panel and never in a separate elementwise pass. The MR×NR micro-kernel
// itself lives in the dispatch layer (src/la/simd/), one explicit-intrinsics
// instantiation per ISA tier and EpilogueOp; `micro` is the bound function
// pointer for this call's epilogue.
void gemm_tile(Trans ta, Trans tb, float alpha, float beta, const Matrix& a,
               const Matrix& b, Matrix& c, Index row_begin, Index row_end,
               Index col_begin, Index col_end, Index k, const GemmBlocking& bl,
               float* a_buf, float* b_buf, const GemmEpilogue& ep,
               simd::KernelTable::GemmMicroFn micro) {
  const float* bias_base = ep.bias != nullptr ? ep.bias->data() : nullptr;
  const Matrix* act = ep.act;
  const Index act_ld = act != nullptr ? act->cols() : 0;
  const Index ldc = c.cols();
  for (Index jc = col_begin; jc < col_end; jc += bl.nc) {
    const Index nc_eff = std::min(bl.nc, col_end - jc);
    for (Index pc = 0; pc < k; pc += bl.kc) {
      const Index kc_eff = std::min(bl.kc, k - pc);
      const bool first_k = pc == 0;
      const bool last_k = pc + kc_eff == k;
      pack_b(b, tb, pc, jc, kc_eff, nc_eff, b_buf);
      for (Index ic = row_begin; ic < row_end; ic += bl.mc) {
        const Index mc_eff = std::min(bl.mc, row_end - ic);
        pack_a(a, ta, ic, pc, mc_eff, kc_eff, a_buf);
        for (Index jr = 0; jr < nc_eff; jr += NR) {
          const float* bp = b_buf + (jr / NR) * kc_eff * NR;
#ifndef NDEBUG
          // B-panel rows feed the aligned vector loads; each panel starts a
          // kc_eff·NR·4 = 64·kc_eff byte multiple past the aligned base.
          simd::check_panel_alignment(b_buf, bp);
#endif
          const Index c0 = jc + jr;
          const float* bias = bias_base != nullptr ? bias_base + c0 : nullptr;
          for (Index ir = 0; ir < mc_eff; ir += MR) {
            const float* ap = a_buf + (ir / MR) * kc_eff * MR;
            const Index r0 = ic + ir;
            const float* act_p =
                act != nullptr ? act->data() + r0 * act_ld + c0 : nullptr;
            micro(ap, bp, kc_eff, alpha, beta, first_k, last_k, bias, act_p,
                  act_ld, c.row(r0) + c0, ldc, std::min(MR, mc_eff - ir),
                  std::min(NR, nc_eff - jr));
          }
        }
      }
    }
  }
}

// Degenerate case (k == 0 or alpha == 0): no accumulation loop runs, so the
// beta scaling and the epilogue are applied in one standalone parallel pass.
void apply_beta_epilogue(Matrix& c, float beta, const GemmEpilogue& ep) {
  const Index rows = c.rows();
  const Index cols = c.cols();
  const float* bias = ep.bias != nullptr ? ep.bias->data() : nullptr;
#pragma omp parallel for schedule(static)
  for (Index r = 0; r < rows; ++r) {
    float* crow = c.row(r);
    const float* arow =
        ep.act != nullptr ? ep.act->row(r) : nullptr;
    for (Index j = 0; j < cols; ++j) {
      float v = beta == 0.0f ? 0.0f : beta * crow[j];
      switch (ep.op) {
        case EpilogueOp::kNone:
          break;
        case EpilogueOp::kBiasAdd:
          v += bias[j];
          break;
        case EpilogueOp::kBiasSigmoid:
          v = simd::sigmoid_scalar(v + bias[j]);
          break;
        case EpilogueOp::kDsigmoidMul:
          v *= arow[j] * (1.0f - arow[j]);
          break;
        case EpilogueOp::kBiasDsigmoidMul:
          v = (v + bias[j]) * arow[j] * (1.0f - arow[j]);
          break;
      }
      crow[j] = v;
    }
  }
}

// Per-element loop-class cost of a *fused* epilogue, mirrored exactly by
// core/cost_accounting (the model==measure contract). Fused epilogues carry
// no C traffic — the tile is cache-hot at write-back — only the flops and
// the streamed reads of `act`. Recorded only when run_blocked actually fuses;
// the degenerate path records record_beta_epilogue_pass instead.
void record_epilogue(const GemmEpilogue& ep, Index m, Index n) {
  if (ep.op != EpilogueOp::kNone) {
    static obs::Counter& fused = obs::counter("gemm.fused_epilogues");
    fused.add();
  }
  switch (ep.op) {
    case EpilogueOp::kNone:
      return;
    case EpilogueOp::kBiasAdd:
      phi::record(phi::epilogue_contribution(m * n, 1.0, 0.0));
      return;
    case EpilogueOp::kBiasSigmoid:
      phi::record(phi::epilogue_contribution(m * n, 9.0, 0.0));
      return;
    case EpilogueOp::kDsigmoidMul:
      phi::record(phi::epilogue_contribution(m * n, 3.0, 1.0));
      return;
    case EpilogueOp::kBiasDsigmoidMul:
      phi::record(phi::epilogue_contribution(m * n, 4.0, 1.0));
      return;
  }
}

// Cost of the standalone apply_beta_epilogue pass (ka == 0 / alpha == 0):
// unlike the fused write-back it streams the full C matrix — a C read per
// element when beta != 0, always a C write — so it is plain loop work, not a
// fused epilogue. Its kernel launch is already carried by gemm_contribution
// (one parallel region per gemm_blocked call on every path).
void record_beta_epilogue_pass(const GemmEpilogue& ep, float beta, Index m,
                               Index n) {
  double flops = beta == 0.0f ? 0.0 : 1.0;
  double reads = beta == 0.0f ? 0.0 : 1.0;
  switch (ep.op) {
    case EpilogueOp::kNone:
      break;
    case EpilogueOp::kBiasAdd:
      flops += 1.0;
      break;
    case EpilogueOp::kBiasSigmoid:
      flops += 9.0;
      break;
    case EpilogueOp::kDsigmoidMul:
      flops += 3.0;
      reads += 1.0;
      break;
    case EpilogueOp::kBiasDsigmoidMul:
      flops += 4.0;
      reads += 1.0;
      break;
  }
  phi::KernelStats s = phi::loop_contribution(m * n, flops, reads, 1.0);
  s.kernel_launches = 0;
  phi::record(s);
}

// Grid decomposition + parallel tile loop. The per-epilogue codegen now
// lives behind the dispatched micro-kernel pointer, selected once per call.
void run_blocked(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
                 const Matrix& b, float beta, Matrix& c, const GemmBlocking& bl,
                 const GemmEpilogue& ep, Index m, Index n, Index k) {
  const simd::KernelTable& tab = simd::active();
  const simd::KernelTable::GemmMicroFn micro =
      tab.gemm_micro[static_cast<int>(ep.op)];
  // 2-D (ic, jc) tile grid over C. Tiles start at the cache-blocking size and
  // are split — at register-tile granularity, preferring the dimension with
  // more room — until the grid covers the thread count, so skinny products
  // (gemm_tn gradients with small m) still use every core. The decomposition
  // never changes results: tiles are disjoint and each element's
  // k-accumulation order is fixed by bl.kc alone.
  int max_threads = 1;
#ifdef _OPENMP
  max_threads = omp_get_max_threads();
#endif
  Index tile_m = std::min(bl.mc, m);
  Index tile_n = std::min(bl.nc, n);
  auto grid_size = [&] {
    return ((m + tile_m - 1) / tile_m) * ((n + tile_n - 1) / tile_n);
  };
  while (grid_size() < max_threads && (tile_m > MR || tile_n > NR)) {
    // Split only a dimension that can still shrink: halving a tile already at
    // its register-tile floor returns it unchanged, so picking it would spin
    // forever (e.g. tile_m == MR with NR < tile_n < 2·NR).
    if (tile_m > MR && (tile_n <= NR || tile_m / MR >= tile_n / NR)) {
      tile_m = std::max<Index>(MR, (tile_m / 2 + MR - 1) / MR * MR);
    } else {
      tile_n = std::max<Index>(NR, (tile_n / 2 + NR - 1) / NR * NR);
    }
  }
  const Index grid_m = (m + tile_m - 1) / tile_m;
  const Index grid_n = (n + tile_n - 1) / tile_n;
  const Index tiles = grid_m * grid_n;

  // Per-thread packing space: one arena allocation holding the A panel (at
  // offset 0) and the B panel (at the next 64-byte boundary).
  const Index a_buf_elems = (bl.mc + MR - 1) / MR * MR * bl.kc;
  const Index b_buf_elems = (bl.nc + NR - 1) / NR * NR * bl.kc;
  const std::size_t a_span =
      (static_cast<std::size_t>(a_buf_elems) + 15) / 16 * 16;
  const std::size_t arena_elems = a_span + static_cast<std::size_t>(b_buf_elems);

#pragma omp parallel
  {
    int nthreads = 1, tid = 0;
#ifdef _OPENMP
    nthreads = omp_get_num_threads();
    tid = omp_get_thread_num();
#endif
    if (tid < tiles) {
      float* buf = pack_arena(arena_elems);
      float* a_buf = buf;
      float* b_buf = buf + a_span;
      // Both panels sit on 64-byte boundaries (arena base + a_span, a
      // multiple of 16 floats) — the aligned-load contract of the vector
      // micro-kernels.
      simd::check_panel_alignment(a_buf, b_buf);
      for (Index t = tid; t < tiles; t += nthreads) {
        const Index tr = t / grid_n;
        const Index tc = t % grid_n;
        const Index row_begin = tr * tile_m;
        const Index row_end = std::min(row_begin + tile_m, m);
        const Index col_begin = tc * tile_n;
        const Index col_end = std::min(col_begin + tile_n, n);
        gemm_tile(trans_a, trans_b, alpha, beta, a, b, c, row_begin, row_end,
                  col_begin, col_end, k, bl, a_buf, b_buf, ep, micro);
      }
    }
  }
}

}  // namespace

void gemm_blocked(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
                  const Matrix& b, float beta, Matrix& c,
                  const GemmBlocking& bl, const GemmEpilogue& ep) {
  DEEPPHI_PROFILE_SCOPE("gemm");
  const Index m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const Index ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const Index kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const Index n = trans_b == Trans::kNo ? b.cols() : b.rows();
  DEEPPHI_CHECK_MSG(ka == kb, "gemm inner dims: op(A) is " << m << "x" << ka
                                                           << ", op(B) is " << kb
                                                           << "x" << n);
  DEEPPHI_CHECK_MSG(c.rows() == m && c.cols() == n,
                    "gemm C must be " << m << "x" << n << ", got " << c.rows()
                                      << "x" << c.cols());
  DEEPPHI_CHECK_MSG(bl.mc > 0 && bl.kc > 0 && bl.nc > 0, "non-positive blocking");
  if (ep.op == EpilogueOp::kBiasAdd || ep.op == EpilogueOp::kBiasSigmoid ||
      ep.op == EpilogueOp::kBiasDsigmoidMul) {
    DEEPPHI_CHECK_MSG(ep.bias != nullptr && ep.bias->size() == n,
                      "epilogue bias must have size " << n);
  }
  if (ep.op == EpilogueOp::kDsigmoidMul ||
      ep.op == EpilogueOp::kBiasDsigmoidMul) {
    DEEPPHI_CHECK_MSG(ep.act != nullptr && ep.act->rows() == m &&
                          ep.act->cols() == n && ep.act->data() != c.data(),
                      "epilogue act must be a distinct " << m << "x" << n
                                                         << " matrix");
  }
  phi::record(phi::gemm_contribution(m, n, ka));
  if (m == 0 || n == 0) return;

  if (ka == 0 || alpha == 0.0f) {
    record_beta_epilogue_pass(ep, beta, m, n);
    apply_beta_epilogue(c, beta, ep);
    return;
  }

  record_epilogue(ep, m, n);
  run_blocked(trans_a, trans_b, alpha, a, b, beta, c, bl, ep, m, n, ka);
}

void gemm_blocked(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
                  const Matrix& b, float beta, Matrix& c,
                  const GemmBlocking& bl) {
  gemm_blocked(trans_a, trans_b, alpha, a, b, beta, c, bl, GemmEpilogue{});
}

void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c) {
  gemm_blocked(trans_a, trans_b, alpha, a, b, beta, c, GemmBlocking{},
               GemmEpilogue{});
}

void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c, const GemmEpilogue& ep) {
  gemm_blocked(trans_a, trans_b, alpha, a, b, beta, c, GemmBlocking{}, ep);
}

}  // namespace deepphi::la
