#include "la/gemm.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "phi/kernel_stats.hpp"
#include "util/aligned.hpp"

namespace deepphi::la {

namespace {

constexpr Index MR = 4;
constexpr Index NR = 16;

// op(M)(i, j) under the trans flag. Only used in packing; the micro-kernel
// reads packed panels.
inline float op_elem(const Matrix& m, Trans t, Index i, Index j) {
  return t == Trans::kNo ? m(i, j) : m(j, i);
}

// Packs the mc×kc block of op(A) starting at (ic, pc) into MR-row panels:
// panel p holds rows [p·MR, p·MR+MR) stored k-major, zero-padded past mc.
void pack_a(const Matrix& a, Trans ta, Index ic, Index pc, Index mc, Index kc,
            float* buf) {
  const Index panels = (mc + MR - 1) / MR;
  for (Index p = 0; p < panels; ++p) {
    const Index i0 = p * MR;
    float* dst = buf + p * kc * MR;
    for (Index kk = 0; kk < kc; ++kk) {
      for (Index i = 0; i < MR; ++i) {
        const Index ii = i0 + i;
        dst[kk * MR + i] =
            ii < mc ? op_elem(a, ta, ic + ii, pc + kk) : 0.0f;
      }
    }
  }
}

// Packs the kc×nc block of op(B) starting at (pc, jc) into NR-column panels:
// panel p holds columns [p·NR, p·NR+NR) stored k-major, zero-padded past nc.
void pack_b(const Matrix& b, Trans tb, Index pc, Index jc, Index kc, Index nc,
            float* buf) {
  const Index panels = (nc + NR - 1) / NR;
  for (Index p = 0; p < panels; ++p) {
    const Index j0 = p * NR;
    float* dst = buf + p * kc * NR;
    for (Index kk = 0; kk < kc; ++kk) {
      for (Index j = 0; j < NR; ++j) {
        const Index jj = j0 + j;
        dst[kk * NR + j] =
            jj < nc ? op_elem(b, tb, pc + kk, jc + jj) : 0.0f;
      }
    }
  }
}

// C[r0 : r0+mr_eff, c0 : c0+nr_eff] += alpha · (A panel · B panel).
// Panels are zero-padded so the accumulation loop is always full MR×NR;
// clipping happens only at write-back.
void micro_kernel(const float* ap, const float* bp, Index kc, float alpha,
                  Matrix& c, Index r0, Index c0, Index mr_eff, Index nr_eff) {
  float acc[MR][NR] = {};
  for (Index kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * MR;
    const float* brow = bp + kk * NR;
    for (Index i = 0; i < MR; ++i) {
      const float av = arow[i];
#pragma omp simd
      for (Index j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (Index i = 0; i < mr_eff; ++i) {
    float* crow = c.row(r0 + i) + c0;
    for (Index j = 0; j < nr_eff; ++j) crow[j] += alpha * acc[i][j];
  }
}

// Serial blocked GEMM over the C row slice [row_begin, row_end). `a_buf` and
// `b_buf` are caller-provided packing buffers sized for the blocking.
void gemm_slice(Trans ta, Trans tb, float alpha, const Matrix& a,
                const Matrix& b, Matrix& c, Index row_begin, Index row_end,
                Index k, const GemmBlocking& bl, float* a_buf, float* b_buf) {
  const Index m = row_end - row_begin;
  const Index n = c.cols();
  for (Index jc = 0; jc < n; jc += bl.nc) {
    const Index nc_eff = std::min(bl.nc, n - jc);
    for (Index pc = 0; pc < k; pc += bl.kc) {
      const Index kc_eff = std::min(bl.kc, k - pc);
      pack_b(b, tb, pc, jc, kc_eff, nc_eff, b_buf);
      for (Index ic = 0; ic < m; ic += bl.mc) {
        const Index mc_eff = std::min(bl.mc, m - ic);
        pack_a(a, ta, row_begin + ic, pc, mc_eff, kc_eff, a_buf);
        for (Index jr = 0; jr < nc_eff; jr += NR) {
          const float* bp = b_buf + (jr / NR) * kc_eff * NR;
          for (Index ir = 0; ir < mc_eff; ir += MR) {
            const float* ap = a_buf + (ir / MR) * kc_eff * MR;
            micro_kernel(ap, bp, kc_eff, alpha, c, row_begin + ic + ir, jc + jr,
                         std::min(MR, mc_eff - ir), std::min(NR, nc_eff - jr));
          }
        }
      }
    }
  }
}

}  // namespace

void gemm_blocked(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
                  const Matrix& b, float beta, Matrix& c,
                  const GemmBlocking& bl) {
  const Index m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const Index ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const Index kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const Index n = trans_b == Trans::kNo ? b.cols() : b.rows();
  DEEPPHI_CHECK_MSG(ka == kb, "gemm inner dims: op(A) is " << m << "x" << ka
                                                           << ", op(B) is " << kb
                                                           << "x" << n);
  DEEPPHI_CHECK_MSG(c.rows() == m && c.cols() == n,
                    "gemm C must be " << m << "x" << n << ", got " << c.rows()
                                      << "x" << c.cols());
  DEEPPHI_CHECK_MSG(bl.mc > 0 && bl.kc > 0 && bl.nc > 0, "non-positive blocking");
  phi::record(phi::gemm_contribution(m, n, ka));
  if (m == 0 || n == 0) return;

  // Apply beta up front so every pc panel can simply accumulate.
  if (beta == 0.0f) {
    c.zero();
  } else if (beta != 1.0f) {
    float* p = c.data();
    for (Index i = 0; i < c.size(); ++i) p[i] *= beta;
  }
  if (ka == 0 || alpha == 0.0f) return;

  const Index a_buf_elems = (bl.mc + MR - 1) / MR * MR * bl.kc;
  const Index b_buf_elems = (bl.nc + NR - 1) / NR * NR * bl.kc;

#pragma omp parallel
  {
    int nthreads = 1, tid = 0;
#ifdef _OPENMP
    nthreads = omp_get_num_threads();
    tid = omp_get_thread_num();
#endif
    const Index chunk = (m + nthreads - 1) / nthreads;
    const Index row_begin = std::min<Index>(static_cast<Index>(tid) * chunk, m);
    const Index row_end = std::min<Index>(row_begin + chunk, m);
    if (row_begin < row_end) {
      auto a_buf = util::make_aligned<float>(static_cast<std::size_t>(a_buf_elems));
      auto b_buf = util::make_aligned<float>(static_cast<std::size_t>(b_buf_elems));
      gemm_slice(trans_a, trans_b, alpha, a, b, c, row_begin, row_end, ka, bl,
                 a_buf.get(), b_buf.get());
    }
  }
}

void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c) {
  gemm_blocked(trans_a, trans_b, alpha, a, b, beta, c, GemmBlocking{});
}

}  // namespace deepphi::la
