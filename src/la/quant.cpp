#include "la/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "la/elementwise.hpp"
#include "la/simd/dispatch.hpp"
#include "phi/kernel_stats.hpp"
#include "util/error.hpp"

namespace deepphi::la::quant {

namespace {

constexpr Index kParallelThreshold = 1 << 14;

Index groups_for(Index cols, Index group) {
  return (cols + group - 1) / group;
}

/// Round-to-nearest used everywhere codes are produced. Quantization runs in
/// scalar code only (never per-tier vector code), so its rounding mode is a
/// file-local choice, not part of the cross-tier parity contract.
std::int32_t round_code(float v) {
  return static_cast<std::int32_t>(std::lround(v));
}

}  // namespace

void check_group(Index group) {
  DEEPPHI_CHECK_MSG(group > 0 && group % kGroupAlign == 0 && group <= kMaxGroup,
                    "quantization group must be a positive multiple of "
                        << kGroupAlign << " no larger than " << kMaxGroup
                        << ", got " << group);
}

QuantizedWeights QuantizedWeights::allocate(Index rows, Index cols,
                                            Index group) {
  check_group(group);
  DEEPPHI_CHECK_MSG(rows > 0 && cols > 0,
                    "quantized weights need positive dims, got " << rows << "x"
                                                                 << cols);
  QuantizedWeights q;
  q.rows_ = rows;
  q.cols_ = cols;
  q.group_ = group;
  q.groups_ = groups_for(cols, group);
  const std::size_t ncodes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(q.padded_cols());
  const std::size_t nscales =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(q.groups_);
  q.codes_ = util::make_aligned<std::int8_t>(ncodes);
  q.scales_ = util::make_aligned<float>(nscales);
  q.wsums_ = util::make_aligned<std::int32_t>(nscales);
  std::memset(q.codes_.get(), 0, ncodes);
  std::memset(q.scales_.get(), 0, nscales * sizeof(float));
  std::memset(q.wsums_.get(), 0, nscales * sizeof(std::int32_t));
  return q;
}

QuantizedWeights QuantizedWeights::quantize(const Matrix& w, Index group) {
  QuantizedWeights q = allocate(w.rows(), w.cols(), group);
  for (Index r = 0; r < q.rows_; ++r) {
    const float* src = w.row(r);
    std::int8_t* dst = q.codes(r);
    float* sc = q.scales(r);
    std::int32_t* ws = q.wsums_.get() + r * q.groups_;
    for (Index g = 0; g < q.groups_; ++g) {
      const Index c0 = g * group;
      const Index len = std::min(group, q.cols_ - c0);
      float amax = 0.0f;
      for (Index j = 0; j < len; ++j)
        amax = std::max(amax, std::fabs(src[c0 + j]));
      // amax == 0 keeps scale 0 and all-zero codes: the group dequantizes to
      // exactly 0 and contributes nothing to the dot.
      const float scale = amax / static_cast<float>(kWeightMaxCode);
      sc[g] = scale;
      std::int32_t sum = 0;
      if (scale > 0.0f) {
        for (Index j = 0; j < len; ++j) {
          const std::int32_t code = std::clamp(
              round_code(src[c0 + j] / scale), -kWeightMaxCode, kWeightMaxCode);
          dst[c0 + j] = static_cast<std::int8_t>(code);
          sum += code;
        }
      }
      ws[g] = sum;  // zero padding contributes 0 by construction
    }
  }
  return q;
}

void QuantizedWeights::rebuild_wsums() {
  for (Index r = 0; r < rows_; ++r) {
    const std::int8_t* src = codes(r);
    std::int32_t* ws = wsums_.get() + r * groups_;
    for (Index g = 0; g < groups_; ++g) {
      const Index c0 = g * group_;
      std::int32_t sum = 0;
      for (Index j = 0; j < group_; ++j) {
        const std::int32_t code = src[c0 + j];
        DEEPPHI_CHECK_MSG(code >= -kWeightMaxCode && code <= kWeightMaxCode,
                          "weight code " << code << " at row " << r
                                         << " out of [-127, 127]");
        DEEPPHI_CHECK_MSG(c0 + j < cols_ || code == 0,
                          "nonzero code in the zero-padded tail of row " << r);
        sum += code;
      }
      ws[g] = sum;
    }
  }
}

Matrix QuantizedWeights::dequantize() const {
  Matrix w(rows_, cols_);
  for (Index r = 0; r < rows_; ++r) {
    const std::int8_t* src = codes(r);
    const float* sc = scales(r);
    float* dst = w.row(r);
    for (Index c = 0; c < cols_; ++c)
      dst[c] = sc[c / group_] * static_cast<float>(src[c]);
  }
  return w;
}

void QuantizedActivations::quantize(const Matrix& x, Index group) {
  check_group(group);
  DEEPPHI_CHECK_MSG(x.rows() > 0 && x.cols() > 0,
                    "cannot quantize an empty activation batch");
  rows_ = x.rows();
  cols_ = x.cols();
  group_ = group;
  groups_ = groups_for(cols_, group);
  const Index ncodes = rows_ * padded_cols();
  if (ncodes > code_capacity_) {
    codes_ = util::make_aligned<std::uint8_t>(static_cast<std::size_t>(ncodes));
    code_capacity_ = ncodes;
  }
  if (rows_ > row_capacity_) {
    scales_ = util::make_aligned<float>(static_cast<std::size_t>(rows_));
    zps_ = util::make_aligned<std::int32_t>(static_cast<std::size_t>(rows_));
    row_capacity_ = rows_;
  }
  // ~4 scalar ops per element (range scan + divide/round/clamp), one float
  // read, one code byte written.
  phi::record(phi::loop_contribution(rows_ * cols_, 4.0, 1.0, 0.25));
  const Index pad = padded_cols();
  for (Index r = 0; r < rows_; ++r) {
    const float* src = x.row(r);
    std::uint8_t* dst = codes_.get() + r * pad;
    // Row range anchored at 0 so the zero point is always representable;
    // per-row so codes are independent of batch composition.
    float lo = 0.0f, hi = 0.0f;
    for (Index c = 0; c < cols_; ++c) {
      lo = std::min(lo, src[c]);
      hi = std::max(hi, src[c]);
    }
    float scale = (hi - lo) / static_cast<float>(kActivationMaxCode);
    if (scale <= 0.0f) scale = 1.0f;  // all-zero row: codes collapse to zp
    const std::int32_t zp =
        std::clamp(round_code(-lo / scale), 0, kActivationMaxCode);
    for (Index c = 0; c < cols_; ++c) {
      const std::int32_t code =
          std::clamp(round_code(src[c] / scale) + zp, 0, kActivationMaxCode);
      dst[c] = static_cast<std::uint8_t>(code);
    }
    if (pad > cols_) std::memset(dst + cols_, 0, static_cast<std::size_t>(pad - cols_));
    scales_.get()[r] = scale;
    zps_.get()[r] = zp;
  }
}

void encode_sigmoid(const QuantizedActivations& xq, const QuantizedWeights& w,
                    const Vector& bias, Matrix& out) {
  DEEPPHI_CHECK_MSG(!w.empty(), "encode_sigmoid on empty weights");
  DEEPPHI_CHECK_MSG(xq.cols() == w.cols(),
                    "activation dim " << xq.cols() << " != weight cols "
                                      << w.cols());
  DEEPPHI_CHECK_MSG(xq.group() == w.group(),
                    "activation group " << xq.group() << " != weight group "
                                        << w.group());
  DEEPPHI_CHECK_MSG(bias.size() == w.rows(), "bias size " << bias.size()
                                                          << " != units "
                                                          << w.rows());
  const Index batch = xq.rows();
  const Index units = w.rows();
  if (out.rows() != batch || out.cols() != units)
    out = Matrix::uninitialized(batch, units);

  // Same shape-only accounting as the float path: the int8 GEMM does the
  // 2mnk multiply-accumulate work of its float counterpart (in integer), and
  // the per-element a_scale multiply rides the write-back like a fused
  // epilogue.
  phi::record(phi::gemm_contribution(batch, units, w.cols()));
  phi::record(phi::epilogue_contribution(batch * units, 1.0, 0.0));

  const simd::KernelTable& tab = simd::active();
  const Index groups = w.groups();
  const Index group = w.group();
  // Weight-stationary: each weight row (codes + scales + sums, the large
  // operand) is loaded once and streamed against every activation row, which
  // stays L2-resident for serving-sized batches.
  const bool big = batch * w.padded_cols() >= kParallelThreshold;
#pragma omp parallel for if (big) schedule(static)
  for (Index n = 0; n < units; ++n) {
    const std::int8_t* wrow = w.codes(n);
    const float* sc = w.scales(n);
    const std::int32_t* ws = w.wsums(n);
    for (Index m = 0; m < batch; ++m) {
      const float dot = tab.quant_dot(xq.codes(m), wrow, sc, ws, groups, group,
                                      xq.zero_point(m));
      out(m, n) = xq.scale(m) * dot;
    }
  }
  bias_sigmoid(out, bias);
}

}  // namespace deepphi::la::quant
