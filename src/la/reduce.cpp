#include "la/reduce.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "phi/kernel_stats.hpp"

namespace deepphi::la {

namespace {
constexpr Index kParallelThreshold = 1 << 15;

float clampf(float v, float lo, float hi) { return std::min(std::max(v, lo), hi); }
}  // namespace

void col_sum(const Matrix& m, Vector& out) {
  DEEPPHI_CHECK_MSG(out.size() == m.cols(), "col_sum out size " << out.size()
                                                                << " != cols "
                                                                << m.cols());
  phi::record(phi::loop_contribution(m.size(), 1.0, 1.0, 0.0));
  const Index rows = m.rows();
  const Index cols = m.cols();
  std::vector<double> acc(static_cast<std::size_t>(cols), 0.0);
  // Row-major streaming accumulation; cols is small relative to rows in all
  // training uses, so a single accumulator array stays in cache.
  for (Index r = 0; r < rows; ++r) {
    const float* row = m.row(r);
    for (Index c = 0; c < cols; ++c) acc[static_cast<std::size_t>(c)] += row[c];
  }
  for (Index c = 0; c < cols; ++c)
    out[c] = static_cast<float>(acc[static_cast<std::size_t>(c)]);
}

void col_mean(const Matrix& m, Vector& out) {
  DEEPPHI_CHECK_MSG(m.rows() > 0, "col_mean of empty matrix");
  col_sum(m, out);
  const float inv = 1.0f / static_cast<float>(m.rows());
  for (Index c = 0; c < out.size(); ++c) out[c] *= inv;
}

void row_sum(const Matrix& m, Vector& out) {
  DEEPPHI_CHECK_MSG(out.size() == m.rows(), "row_sum out size " << out.size()
                                                                << " != rows "
                                                                << m.rows());
  phi::record(phi::loop_contribution(m.size(), 1.0, 1.0, 0.0));
  const Index rows = m.rows();
  const Index cols = m.cols();
#pragma omp parallel for if (m.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    const float* row = m.row(r);
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (Index c = 0; c < cols; ++c) acc += row[c];
    out[r] = static_cast<float>(acc);
  }
}

double sum(const Matrix& m) {
  phi::record(phi::loop_contribution(m.size(), 1.0, 1.0, 0.0));
  const float* p = m.data();
  const Index n = m.size();
  double acc = 0.0;
#pragma omp parallel for if (n >= kParallelThreshold) schedule(static) reduction(+ : acc)
  for (Index i = 0; i < n; ++i) acc += p[i];
  return acc;
}

double sum_sq_diff(const Matrix& a, const Matrix& b) {
  DEEPPHI_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                    "sum_sq_diff shape mismatch");
  phi::record(phi::loop_contribution(a.size(), 3.0, 2.0, 0.0));
  const float* ap = a.data();
  const float* bp = b.data();
  const Index n = a.size();
  double acc = 0.0;
#pragma omp parallel for if (n >= kParallelThreshold) schedule(static) reduction(+ : acc)
  for (Index i = 0; i < n; ++i) {
    const double d = static_cast<double>(ap[i]) - bp[i];
    acc += d * d;
  }
  return acc;
}

double kl_divergence(float rho, const Vector& rho_hat, float eps) {
  phi::record(phi::loop_contribution(rho_hat.size(), 12.0, 1.0, 0.0));
  double acc = 0.0;
  for (Index j = 0; j < rho_hat.size(); ++j) {
    const double q = clampf(rho_hat[j], eps, 1.0f - eps);
    acc += rho * std::log(rho / q) + (1.0 - rho) * std::log((1.0 - rho) / (1.0 - q));
  }
  return acc;
}

void sparsity_delta(float rho, float beta, const Vector& rho_hat, Vector& out,
                    float eps) {
  DEEPPHI_CHECK_MSG(out.size() == rho_hat.size(), "sparsity_delta size mismatch");
  phi::record(phi::loop_contribution(rho_hat.size(), 6.0, 1.0, 1.0));
  for (Index j = 0; j < rho_hat.size(); ++j) {
    const float q = clampf(rho_hat[j], eps, 1.0f - eps);
    out[j] = beta * (-rho / q + (1.0f - rho) / (1.0f - q));
  }
}

}  // namespace deepphi::la
