// BLAS-2-class kernels: matrix-vector product and rank-1 update. Used by the
// single-example (online SGD) paths and by the batch optimizers' direction
// algebra.
#pragma once

#include "la/matrix.hpp"

namespace deepphi::la {

/// y = alpha * A·x + beta * y, A is rows×cols, x has cols, y has rows.
void gemv(float alpha, const Matrix& a, const Vector& x, float beta, Vector& y);

/// y = alpha * Aᵀ·x + beta * y, A is rows×cols, x has rows, y has cols.
void gemv_t(float alpha, const Matrix& a, const Vector& x, float beta, Vector& y);

/// A += alpha * x·yᵀ, A is rows×cols, x has rows, y has cols.
void ger(float alpha, const Vector& x, const Vector& y, Matrix& a);

}  // namespace deepphi::la
