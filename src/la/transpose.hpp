// Cache-blocked matrix transpose.
#pragma once

#include "la/matrix.hpp"

namespace deepphi::la {

/// out = inᵀ. `out` must already be cols×rows of `in`.
void transpose(const Matrix& in, Matrix& out);

/// Returns inᵀ as a fresh matrix.
Matrix transposed(const Matrix& in);

}  // namespace deepphi::la
