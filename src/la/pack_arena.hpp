// Persistent per-thread packing workspace for the blocked GEMM.
//
// Every gemm_blocked call needs two scratch panels (packed A and packed B)
// per worker thread. Allocating them inside the parallel region on every
// call — the seed behavior — puts a malloc/free pair on the hot path of
// every layer of every training step. The arena replaces that with one
// thread-local, 64-byte-aligned buffer per OS thread that is grown on
// demand and then reused for the life of the thread, so a training run
// performs zero heap allocations inside GEMM after the first step (a
// property pinned by tests via pack_arena_allocations()).
//
// Ownership rules:
//  * The returned pointer is owned by the calling thread's arena; callers
//    must not free it and must not hold it past the current kernel (a later
//    pack_arena() call on the same thread may reallocate and invalidate it).
//  * Different threads always receive different buffers, so the blocked GEMM
//    can hand each OpenMP worker its own packing space with no sharing.
//  * Contents are unspecified on return; kernels fully overwrite what they
//    read (pack_a / pack_b zero-pad their panels).
#pragma once

#include <cstddef>
#include <cstdint>

namespace deepphi::la {

/// Returns a 64-byte-aligned buffer of at least `elems` floats owned by the
/// calling thread. Grows (reallocates) only when `elems` exceeds the current
/// capacity; otherwise reuses the existing allocation.
float* pack_arena(std::size_t elems);

/// Capacity, in floats, of the calling thread's arena (0 before first use).
std::size_t pack_arena_capacity();

/// Process-wide count of arena allocations (first use + every growth, summed
/// over all threads). Stable across repeated same-shape GEMM calls — the
/// zero-allocation-at-steady-state tests pin this.
std::uint64_t pack_arena_allocations();

/// Frees the calling thread's arena (tests; threads otherwise keep theirs).
void pack_arena_release();

}  // namespace deepphi::la
