#include "la/blas1.hpp"

#include <algorithm>
#include <cmath>

#include "la/simd/dispatch.hpp"
#include "phi/kernel_stats.hpp"

namespace deepphi::la {

namespace {
// Below this element count the OpenMP fork/join costs more than it saves.
constexpr Index kParallelThreshold = 1 << 15;

// Parallel grain of the dispatched axpy (elementwise, so any split is
// result-identical).
constexpr Index kAxpyChunk = 1 << 14;

void axpy_raw(float alpha, const float* x, float* y, Index n) {
  const simd::KernelTable& tab = simd::active();
  const Index chunks = (n + kAxpyChunk - 1) / kAxpyChunk;
#pragma omp parallel for if (n >= kParallelThreshold) schedule(static)
  for (Index c = 0; c < chunks; ++c) {
    const Index b = c * kAxpyChunk;
    tab.axpy(alpha, x + b, y + b, std::min(kAxpyChunk, n - b));
  }
}

void scal_raw(float alpha, float* x, Index n) {
#pragma omp parallel for simd if (n >= kParallelThreshold) schedule(static)
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

// Deterministic parallel dot: the array is cut into fixed-size chunks (the
// size depends only on n, never on the thread count), each chunk is reduced
// by the dispatched 8-lane dot8 — bit-identical on every tier — and the
// partials are combined serially in chunk order. Same bits for any thread
// count and any DEEPPHI_ISA tier.
constexpr Index kMaxDotChunks = 256;

double dot_raw(const float* x, const float* y, Index n) {
  if (n == 0) return 0.0;
  const simd::KernelTable& tab = simd::active();
  const Index chunk = std::max<Index>(kParallelThreshold,
                                      (n + kMaxDotChunks - 1) / kMaxDotChunks);
  const Index chunks = (n + chunk - 1) / chunk;
  double partials[kMaxDotChunks];
#pragma omp parallel for if (chunks > 1) schedule(static)
  for (Index c = 0; c < chunks; ++c) {
    const Index b = c * chunk;
    partials[c] = tab.dot8(x + b, y + b, std::min(chunk, n - b));
  }
  double acc = 0.0;
  for (Index c = 0; c < chunks; ++c) acc += partials[c];
  return acc;
}
}  // namespace

void axpy(float alpha, const Vector& x, Vector& y) {
  DEEPPHI_CHECK_MSG(x.size() == y.size(), "axpy size mismatch");
  phi::record(phi::loop_contribution(x.size(), 2.0, 2.0, 1.0));
  axpy_raw(alpha, x.data(), y.data(), x.size());
}

void axpy(float alpha, const Matrix& a, Matrix& b) {
  DEEPPHI_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(), "axpy shape mismatch");
  phi::record(phi::loop_contribution(a.size(), 2.0, 2.0, 1.0));
  axpy_raw(alpha, a.data(), b.data(), a.size());
}

void scal(float alpha, Vector& x) {
  phi::record(phi::loop_contribution(x.size(), 1.0, 1.0, 1.0));
  scal_raw(alpha, x.data(), x.size());
}

void scal(float alpha, Matrix& a) {
  phi::record(phi::loop_contribution(a.size(), 1.0, 1.0, 1.0));
  scal_raw(alpha, a.data(), a.size());
}

double dot(const Vector& x, const Vector& y) {
  DEEPPHI_CHECK_MSG(x.size() == y.size(), "dot size mismatch");
  phi::record(phi::loop_contribution(x.size(), 2.0, 2.0, 0.0));
  return dot_raw(x.data(), y.data(), x.size());
}

double dot(const Matrix& a, const Matrix& b) {
  DEEPPHI_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(), "dot shape mismatch");
  phi::record(phi::loop_contribution(a.size(), 2.0, 2.0, 0.0));
  return dot_raw(a.data(), b.data(), a.size());
}

double nrm2sq(const Vector& x) {
  phi::record(phi::loop_contribution(x.size(), 2.0, 1.0, 0.0));
  return dot_raw(x.data(), x.data(), x.size());
}

double nrm2sq(const Matrix& a) {
  phi::record(phi::loop_contribution(a.size(), 2.0, 1.0, 0.0));
  return dot_raw(a.data(), a.data(), a.size());
}

double asum(const Vector& x) {
  phi::record(phi::loop_contribution(x.size(), 1.0, 1.0, 0.0));
  double acc = 0.0;
  const float* p = x.data();
  const Index n = x.size();
#pragma omp parallel for if (n >= kParallelThreshold) schedule(static) reduction(+ : acc)
  for (Index i = 0; i < n; ++i) acc += std::fabs(static_cast<double>(p[i]));
  return acc;
}

}  // namespace deepphi::la
