#include "la/blas1.hpp"

#include <cmath>

#include "phi/kernel_stats.hpp"

namespace deepphi::la {

namespace {
// Below this element count the OpenMP fork/join costs more than it saves.
constexpr Index kParallelThreshold = 1 << 15;

void axpy_raw(float alpha, const float* x, float* y, Index n) {
#pragma omp parallel for simd if (n >= kParallelThreshold) schedule(static)
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal_raw(float alpha, float* x, Index n) {
#pragma omp parallel for simd if (n >= kParallelThreshold) schedule(static)
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

double dot_raw(const float* x, const float* y, Index n) {
  double acc = 0.0;
#pragma omp parallel for if (n >= kParallelThreshold) schedule(static) reduction(+ : acc)
  for (Index i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * y[i];
  return acc;
}
}  // namespace

void axpy(float alpha, const Vector& x, Vector& y) {
  DEEPPHI_CHECK_MSG(x.size() == y.size(), "axpy size mismatch");
  phi::record(phi::loop_contribution(x.size(), 2.0, 2.0, 1.0));
  axpy_raw(alpha, x.data(), y.data(), x.size());
}

void axpy(float alpha, const Matrix& a, Matrix& b) {
  DEEPPHI_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(), "axpy shape mismatch");
  phi::record(phi::loop_contribution(a.size(), 2.0, 2.0, 1.0));
  axpy_raw(alpha, a.data(), b.data(), a.size());
}

void scal(float alpha, Vector& x) {
  phi::record(phi::loop_contribution(x.size(), 1.0, 1.0, 1.0));
  scal_raw(alpha, x.data(), x.size());
}

void scal(float alpha, Matrix& a) {
  phi::record(phi::loop_contribution(a.size(), 1.0, 1.0, 1.0));
  scal_raw(alpha, a.data(), a.size());
}

double dot(const Vector& x, const Vector& y) {
  DEEPPHI_CHECK_MSG(x.size() == y.size(), "dot size mismatch");
  phi::record(phi::loop_contribution(x.size(), 2.0, 2.0, 0.0));
  return dot_raw(x.data(), y.data(), x.size());
}

double dot(const Matrix& a, const Matrix& b) {
  DEEPPHI_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(), "dot shape mismatch");
  phi::record(phi::loop_contribution(a.size(), 2.0, 2.0, 0.0));
  return dot_raw(a.data(), b.data(), a.size());
}

double nrm2sq(const Vector& x) {
  phi::record(phi::loop_contribution(x.size(), 2.0, 1.0, 0.0));
  return dot_raw(x.data(), x.data(), x.size());
}

double nrm2sq(const Matrix& a) {
  phi::record(phi::loop_contribution(a.size(), 2.0, 1.0, 0.0));
  return dot_raw(a.data(), a.data(), a.size());
}

double asum(const Vector& x) {
  phi::record(phi::loop_contribution(x.size(), 1.0, 1.0, 0.0));
  double acc = 0.0;
  const float* p = x.data();
  const Index n = x.size();
#pragma omp parallel for if (n >= kParallelThreshold) schedule(static) reduction(+ : acc)
  for (Index i = 0; i < n; ++i) acc += std::fabs(static_cast<double>(p[i]));
  return acc;
}

}  // namespace deepphi::la
