#include "la/blas2.hpp"

#include "phi/kernel_stats.hpp"

namespace deepphi::la {

namespace {
constexpr Index kParallelThreshold = 1 << 13;  // elements of A
}

void gemv(float alpha, const Matrix& a, const Vector& x, float beta, Vector& y) {
  DEEPPHI_CHECK_MSG(a.cols() == x.size() && a.rows() == y.size(),
                    "gemv shapes: A " << a.rows() << "x" << a.cols() << ", x "
                                      << x.size() << ", y " << y.size());
  phi::record(phi::loop_contribution(a.size(), 2.0, 1.0, 0.0));
  const Index m = a.rows();
  const Index n = a.cols();
  const float* xp = x.data();
#pragma omp parallel for if (a.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < m; ++r) {
    const float* ar = a.row(r);
    float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
    for (Index c = 0; c < n; ++c) acc += ar[c] * xp[c];
    y[r] = alpha * acc + beta * y[r];
  }
}

void gemv_t(float alpha, const Matrix& a, const Vector& x, float beta, Vector& y) {
  DEEPPHI_CHECK_MSG(a.rows() == x.size() && a.cols() == y.size(),
                    "gemv_t shapes: A " << a.rows() << "x" << a.cols() << ", x "
                                        << x.size() << ", y " << y.size());
  phi::record(phi::loop_contribution(a.size(), 2.0, 1.0, 0.0));
  const Index m = a.rows();
  const Index n = a.cols();
  // Column-reduction written row-wise for streaming access: scale y, then
  // accumulate one row of A at a time.
  for (Index c = 0; c < n; ++c) y[c] *= beta;
  for (Index r = 0; r < m; ++r) {
    const float* ar = a.row(r);
    const float xv = alpha * x[r];
    float* yp = y.data();
#pragma omp simd
    for (Index c = 0; c < n; ++c) yp[c] += xv * ar[c];
  }
}

void ger(float alpha, const Vector& x, const Vector& y, Matrix& a) {
  DEEPPHI_CHECK_MSG(a.rows() == x.size() && a.cols() == y.size(),
                    "ger shapes: A " << a.rows() << "x" << a.cols() << ", x "
                                     << x.size() << ", y " << y.size());
  phi::record(phi::loop_contribution(a.size(), 2.0, 2.0, 1.0));
  const Index m = a.rows();
  const Index n = a.cols();
  const float* yp = y.data();
#pragma omp parallel for if (a.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < m; ++r) {
    float* ar = a.row(r);
    const float xv = alpha * x[r];
#pragma omp simd
    for (Index c = 0; c < n; ++c) ar[c] += xv * yp[c];
  }
}

}  // namespace deepphi::la
