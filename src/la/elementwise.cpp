#include "la/elementwise.hpp"

#include <algorithm>

#include "la/simd/dispatch.hpp"
#include "phi/kernel_stats.hpp"

namespace deepphi::la {

namespace {
constexpr Index kParallelThreshold = 1 << 14;

// Parallel grain for the flat dispatched kernels: big enough to amortize the
// indirect call, small enough to spread short arrays over the team. Chunking
// never changes results — the dispatched kernels are strictly elementwise.
constexpr Index kFlatChunk = 1 << 12;

// Uniform draws for the sampling kernels are pre-generated into this many
// elements at a time, in column-ascending order — the exact sequence the
// former scalar loops consumed — so the RNG stream is identical on every
// dispatch tier and only the sigmoid + compare are vectorized.
constexpr Index kUniformChunk = 256;
}  // namespace

void sigmoid_inplace(Matrix& m) {
  phi::record(phi::naive_loop_contribution(m.size(), 400.0, 1.0, 1.0));
  const simd::KernelTable& tab = simd::active();
  float* p = m.data();
  const Index n = m.size();
  const Index chunks = (n + kFlatChunk - 1) / kFlatChunk;
#pragma omp parallel for if (n >= kParallelThreshold) schedule(static)
  for (Index c = 0; c < chunks; ++c) {
    const Index b = c * kFlatChunk;
    tab.sigmoid(p + b, std::min(kFlatChunk, n - b));
  }
}

void add_row_broadcast(Matrix& m, const Vector& bias) {
  DEEPPHI_CHECK_MSG(bias.size() == m.cols(), "bias size " << bias.size()
                                                          << " != cols " << m.cols());
  phi::record(phi::naive_loop_contribution(m.size(), 1.0, 1.0, 1.0));
  const Index rows = m.rows();
  const Index cols = m.cols();
  const float* bp = bias.data();
#pragma omp parallel for if (m.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    float* row = m.row(r);
#pragma omp simd
    for (Index c = 0; c < cols; ++c) row[c] += bp[c];
  }
}

void sub(const Matrix& a, const Matrix& b, Matrix& out) {
  DEEPPHI_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols() &&
                        a.rows() == out.rows() && a.cols() == out.cols(),
                    "sub shape mismatch");
  phi::record(phi::naive_loop_contribution(a.size(), 1.0, 2.0, 1.0));
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  const Index n = a.size();
#pragma omp parallel for simd if (n >= kParallelThreshold) schedule(static)
  for (Index i = 0; i < n; ++i) op[i] = ap[i] - bp[i];
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  DEEPPHI_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols() &&
                        a.rows() == out.rows() && a.cols() == out.cols(),
                    "hadamard shape mismatch");
  phi::record(phi::naive_loop_contribution(a.size(), 1.0, 2.0, 1.0));
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  const Index n = a.size();
#pragma omp parallel for simd if (n >= kParallelThreshold) schedule(static)
  for (Index i = 0; i < n; ++i) op[i] = ap[i] * bp[i];
}

void dsigmoid_mul_inplace(Matrix& delta, const Matrix& act) {
  DEEPPHI_CHECK_MSG(delta.rows() == act.rows() && delta.cols() == act.cols(),
                    "dsigmoid shape mismatch");
  phi::record(phi::naive_loop_contribution(delta.size(), 3.0, 2.0, 1.0));
  const simd::KernelTable& tab = simd::active();
  float* dp = delta.data();
  const float* yp = act.data();
  const Index n = delta.size();
  const Index chunks = (n + kFlatChunk - 1) / kFlatChunk;
#pragma omp parallel for if (n >= kParallelThreshold) schedule(static)
  for (Index c = 0; c < chunks; ++c) {
    const Index b = c * kFlatChunk;
    tab.dsigmoid_mul(dp + b, yp + b, std::min(kFlatChunk, n - b));
  }
}

void sample_bernoulli(const Matrix& mean, Matrix& out, const util::Rng& base) {
  DEEPPHI_CHECK_MSG(mean.rows() == out.rows() && mean.cols() == out.cols(),
                    "sample shape mismatch");
  phi::record(phi::naive_loop_contribution(mean.size(), 100.0, 1.0, 1.0));
  const simd::KernelTable& tab = simd::active();
  const Index rows = mean.rows();
  const Index cols = mean.cols();
#pragma omp parallel for if (mean.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(r));
    const float* mp = mean.row(r);
    float* op = out.row(r);
    float u[kUniformChunk];
    for (Index c0 = 0; c0 < cols; c0 += kUniformChunk) {
      const Index len = std::min(kUniformChunk, cols - c0);
      for (Index i = 0; i < len; ++i) u[i] = rng.uniform_float();
      tab.bernoulli_compare(mp + c0, u, op + c0, len);
    }
  }
}

void bias_sigmoid(Matrix& m, const Vector& bias) {
  DEEPPHI_CHECK_MSG(bias.size() == m.cols(), "bias size " << bias.size()
                                                          << " != cols " << m.cols());
  phi::record(phi::loop_contribution(m.size(), 9.0, 1.0, 1.0));
  const simd::KernelTable& tab = simd::active();
  const Index rows = m.rows();
  const Index cols = m.cols();
  const float* bp = bias.data();
#pragma omp parallel for if (m.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < rows; ++r) tab.bias_sigmoid(m.row(r), bp, cols);
}

void output_delta(const Matrix& z, const Matrix& x, Matrix& delta) {
  DEEPPHI_CHECK_MSG(z.rows() == x.rows() && z.cols() == x.cols() &&
                        z.rows() == delta.rows() && z.cols() == delta.cols(),
                    "output_delta shape mismatch");
  phi::record(phi::loop_contribution(z.size(), 4.0, 2.0, 1.0));
  const float* zp = z.data();
  const float* xp = x.data();
  float* dp = delta.data();
  const Index n = z.size();
#pragma omp parallel for simd if (n >= kParallelThreshold) schedule(static)
  for (Index i = 0; i < n; ++i)
    dp[i] = (zp[i] - xp[i]) * zp[i] * (1.0f - zp[i]);
}

void hidden_delta(Matrix& back, const Vector& sparse, const Matrix& y) {
  DEEPPHI_CHECK_MSG(back.rows() == y.rows() && back.cols() == y.cols() &&
                        sparse.size() == back.cols(),
                    "hidden_delta shape mismatch");
  phi::record(phi::loop_contribution(back.size(), 4.0, 2.0, 1.0));
  const Index rows = back.rows();
  const Index cols = back.cols();
  const float* sp = sparse.data();
#pragma omp parallel for if (back.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    float* bp = back.row(r);
    const float* yp = y.row(r);
#pragma omp simd
    for (Index c = 0; c < cols; ++c)
      bp[c] = (bp[c] + sp[c]) * yp[c] * (1.0f - yp[c]);
  }
}

void bias_sigmoid_sample(Matrix& m, const Vector& bias, Matrix& sample,
                         const util::Rng& base) {
  DEEPPHI_CHECK_MSG(bias.size() == m.cols() && sample.rows() == m.rows() &&
                        sample.cols() == m.cols(),
                    "bias_sigmoid_sample shape mismatch");
  phi::record(phi::loop_contribution(m.size(), 20.0, 1.0, 2.0));
  const simd::KernelTable& tab = simd::active();
  const Index rows = m.rows();
  const Index cols = m.cols();
  const float* bp = bias.data();
#pragma omp parallel for if (m.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(r));
    float* mp = m.row(r);
    float* sp = sample.row(r);
    float u[kUniformChunk];
    for (Index c0 = 0; c0 < cols; c0 += kUniformChunk) {
      const Index len = std::min(kUniformChunk, cols - c0);
      for (Index i = 0; i < len; ++i) u[i] = rng.uniform_float();
      tab.bias_sigmoid_sample(mp + c0, bp + c0, sp + c0, u, len);
    }
  }
}

void add_row_broadcast_vec(Matrix& m, const Vector& bias) {
  DEEPPHI_CHECK_MSG(bias.size() == m.cols(), "bias size " << bias.size()
                                                          << " != cols " << m.cols());
  phi::record(phi::loop_contribution(m.size(), 1.0, 1.0, 1.0));
  const Index rows = m.rows();
  const Index cols = m.cols();
  const float* bp = bias.data();
#pragma omp parallel for if (m.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    float* row = m.row(r);
#pragma omp simd
    for (Index c = 0; c < cols; ++c) row[c] += bp[c];
  }
}

void add_gaussian_noise(Matrix& m, float sigma, const util::Rng& base) {
  phi::record(phi::loop_contribution(m.size(), 15.0, 1.0, 1.0));
  const Index rows = m.rows();
  const Index cols = m.cols();
#pragma omp parallel for if (m.size() >= kParallelThreshold) schedule(static)
  for (Index r = 0; r < rows; ++r) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(r));
    float* row = m.row(r);
    for (Index c = 0; c < cols; ++c)
      row[c] += sigma * static_cast<float>(rng.normal());
  }
}

}  // namespace deepphi::la
