// Elementwise kernels for the training steps, in two granularities:
//
//  * unfused primitives (add_row_broadcast, sigmoid_inplace, sub, hadamard,
//    ...) — one parallel kernel launch each, matching the paper's plain
//    "OpenMP" optimization level where every loop gets its own parallel
//    region;
//  * fused kernels (bias_sigmoid, output_delta, hidden_delta,
//    bias_sigmoid_sample) — one pass over memory doing the combined update,
//    matching the paper's "Improved OpenMP+MKL" step ("we finally combine
//    several loops together to make the granularity more suitable").
//
// Flop-count conventions (recorded per element; the cost model, not the
// hardware, consumes these): add/sub/mul = 1, fma = 2, sigmoid = 8 (exp
// amortized), bernoulli sample = 12 (counter RNG + compare).
#pragma once

#include <cmath>

#include "la/matrix.hpp"
#include "la/simd/vec_ops.hpp"
#include "util/rng.hpp"

namespace deepphi::la {

/// m(r,c) = sigmoid(m(r,c)).
void sigmoid_inplace(Matrix& m);

/// m(r,c) += bias[c] — broadcast a per-column bias over all rows.
void add_row_broadcast(Matrix& m, const Vector& bias);

/// out = a - b.
void sub(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a ⊙ b.
void hadamard(const Matrix& a, const Matrix& b, Matrix& out);

/// delta ⊙= act ⊙ (1 - act) — multiply by the sigmoid derivative expressed
/// through the activation.
void dsigmoid_mul_inplace(Matrix& delta, const Matrix& act);

/// out(r,c) = 1 if u < mean(r,c) else 0, with u drawn from a per-row
/// substream of `base` (row r uses base.split(r)), so results are identical
/// for any thread count.
void sample_bernoulli(const Matrix& mean, Matrix& out, const util::Rng& base);

// --- fused kernels ---

/// m = sigmoid(m + bias[c]) in a single pass (fuses add_row_broadcast +
/// sigmoid_inplace).
void bias_sigmoid(Matrix& m, const Vector& bias);

/// delta = (z - x) ⊙ z ⊙ (1 - z) — the output-layer delta of squared-error
/// backprop, in one pass.
void output_delta(const Matrix& z, const Matrix& x, Matrix& delta);

/// back = (back + sparse[c]) ⊙ y ⊙ (1 - y) — the hidden-layer delta with the
/// KL-sparsity term folded in, in one pass (in place on `back`).
void hidden_delta(Matrix& back, const Vector& sparse, const Matrix& y);

/// Fused RBM hidden step: m = sigmoid(m + bias[c]); sample(r,c) =
/// bernoulli(m(r,c)) — one pass producing both mean and sample.
void bias_sigmoid_sample(Matrix& m, const Vector& bias, Matrix& sample,
                         const util::Rng& base);

/// m(r,c) += bias[c] — the vectorized (Improved-granularity) broadcast used
/// by linear visible units of the Gaussian RBM. Identical math to
/// add_row_broadcast but recorded in the vector loop class.
void add_row_broadcast_vec(Matrix& m, const Vector& bias);

/// m(r,c) += sigma · N(0,1), with per-row substreams of `base` (row r uses
/// base.split(r)) — Gaussian visible sampling.
void add_gaussian_noise(Matrix& m, float sigma, const util::Rng& base);

/// Scalar sigmoid used by tests and the loop-form baselines. Forwards to the
/// one shared implementation (la/simd/vec_ops.hpp) so every float sigmoid in
/// the library — fused GEMM epilogues, dispatched elementwise kernels,
/// loop-form paths — computes the same bits.
inline float sigmoidf(float x) { return simd::sigmoid_scalar(x); }

}  // namespace deepphi::la
