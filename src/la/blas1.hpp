// BLAS-1-class kernels: vector/matrix-flat elementwise linear operations.
// All kernels are OpenMP-parallel for large inputs, vectorizable, and record
// their KernelStats contribution once per call.
#pragma once

#include "la/matrix.hpp"

namespace deepphi::la {

/// y += alpha * x (sizes must match).
void axpy(float alpha, const Vector& x, Vector& y);
/// B += alpha * A (shapes must match). The parameter-update kernel
/// (paper eqs. 16–18) in matrix form.
void axpy(float alpha, const Matrix& a, Matrix& b);

/// x *= alpha.
void scal(float alpha, Vector& x);
void scal(float alpha, Matrix& a);

/// Dot product (double accumulator for stability).
double dot(const Vector& x, const Vector& y);
/// Frobenius inner product of two matrices.
double dot(const Matrix& a, const Matrix& b);

/// Sum of squares (‖x‖²).
double nrm2sq(const Vector& x);
double nrm2sq(const Matrix& a);

/// Sum of absolute values.
double asum(const Vector& x);

}  // namespace deepphi::la
