// Optimized single-precision GEMM — the repository's stand-in for the Intel
// MKL sgemm the paper leans on. Goto-style blocked algorithm: B and A panels
// are packed into contiguous, zero-padded buffers; a register-tiled MR×NR
// micro-kernel runs over full panels only (fringes are handled by padding on
// pack and clipping on write-back). Threads split the M dimension, each
// running the serial blocked kernel on its row slice, so results are
// bit-identical for any thread count — the parity tests depend on that.
#pragma once

#include "la/matrix.hpp"

namespace deepphi::la {

enum class Trans { kNo, kYes };

/// C = alpha · op(A) · op(B) + beta · C.
/// op(A) is m×k, op(B) is k×n, C is m×n; shapes are validated.
void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c);

/// C = alpha · A·B + beta · C.
inline void gemm_nn(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c) {
  gemm(Trans::kNo, Trans::kNo, alpha, a, b, beta, c);
}

/// C = alpha · A·Bᵀ + beta · C. (Forward pass: activations × weightsᵀ.)
inline void gemm_nt(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c) {
  gemm(Trans::kNo, Trans::kYes, alpha, a, b, beta, c);
}

/// C = alpha · Aᵀ·B + beta · C. (Gradients: deltasᵀ × activations.)
inline void gemm_tn(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c) {
  gemm(Trans::kYes, Trans::kNo, alpha, a, b, beta, c);
}

/// Cache-blocking parameters, exposed for tests and the granularity
/// ablation. The register micro-tile is fixed at 4×16 (one 64-byte cache
/// line of floats per accumulator row).
struct GemmBlocking {
  Index mc = 128;   // rows of A packed at once
  Index kc = 256;   // shared dimension panel
  Index nc = 1024;  // cols of B packed at once
};

/// GEMM with explicit blocking (tests sweep this; the default entry uses
/// GemmBlocking{}).
void gemm_blocked(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
                  const Matrix& b, float beta, Matrix& c,
                  const GemmBlocking& blocking);

}  // namespace deepphi::la
