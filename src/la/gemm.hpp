// Optimized single-precision GEMM — the repository's stand-in for the Intel
// MKL sgemm the paper leans on. Goto-style blocked algorithm: B and A panels
// are packed into contiguous, zero-padded buffers; a register-tiled MR×NR
// micro-kernel runs over full panels only (fringes are handled by padding on
// pack and clipping on write-back).
//
// Three properties distinguish it from a textbook blocked GEMM:
//
//  * Fused epilogues: an epilogue descriptor (bias add, bias+sigmoid,
//    dsigmoid multiply) is applied at micro-kernel write-back on the last
//    k-panel, while the C tile is still cache-hot, replacing the separate
//    full-matrix elementwise pass the training step would otherwise make.
//    The beta scaling of C is folded into the first k-panel's write-back the
//    same way (no serial pre-pass over C).
//  * Persistent packing workspaces: packing buffers come from a per-thread
//    arena (la/pack_arena.hpp) that is grown once and reused, so steady-state
//    training performs zero heap allocations inside GEMM.
//  * 2-D tile parallelism: C is partitioned into an (ic, jc) grid of disjoint
//    tiles sized so the grid covers the thread count even when one dimension
//    is skinny (the gemm_tn gradient products have m = hidden size). Each C
//    element is written by exactly one thread and its k-accumulation order is
//    fixed by the kc blocking alone, so results are bit-identical for any
//    thread count and any tile decomposition — the parity and determinism
//    tests depend on that.
#pragma once

#include "la/matrix.hpp"

namespace deepphi::la {

enum class Trans { kNo, kYes };

/// Elementwise operation fused into the GEMM write-back. With D = alpha ·
/// op(A)·op(B) + beta · C accumulated in registers/cache:
///   kNone:            C = D
///   kBiasAdd:         C = D + bias[col]
///   kBiasSigmoid:     C = sigmoid(D + bias[col])
///   kDsigmoidMul:     C = D ⊙ act ⊙ (1 − act)
///   kBiasDsigmoidMul: C = (D + bias[col]) ⊙ act ⊙ (1 − act)
enum class EpilogueOp : std::uint8_t {
  kNone,
  kBiasAdd,
  kBiasSigmoid,
  kDsigmoidMul,
  kBiasDsigmoidMul,
};

/// Epilogue descriptor. Holds non-owning pointers: `bias` (per-column, size
/// n) and `act` (same shape as C) must outlive the GEMM call. Call sites may
/// fuse only operations whose operands are already final when the GEMM runs —
/// an epilogue must not read C's previous contents beyond the beta term, and
/// `act` must not alias C.
struct GemmEpilogue {
  EpilogueOp op = EpilogueOp::kNone;
  const Vector* bias = nullptr;  // kBiasAdd / kBiasSigmoid / kBiasDsigmoidMul
  const Matrix* act = nullptr;   // kDsigmoidMul / kBiasDsigmoidMul

  static GemmEpilogue none() { return {}; }
  static GemmEpilogue bias_add(const Vector& bias) {
    return {EpilogueOp::kBiasAdd, &bias, nullptr};
  }
  static GemmEpilogue bias_sigmoid(const Vector& bias) {
    return {EpilogueOp::kBiasSigmoid, &bias, nullptr};
  }
  static GemmEpilogue dsigmoid_mul(const Matrix& act) {
    return {EpilogueOp::kDsigmoidMul, nullptr, &act};
  }
  static GemmEpilogue bias_dsigmoid_mul(const Vector& bias, const Matrix& act) {
    return {EpilogueOp::kBiasDsigmoidMul, &bias, &act};
  }
};

/// C = alpha · op(A) · op(B) + beta · C.
/// op(A) is m×k, op(B) is k×n, C is m×n; shapes are validated.
void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c);

/// Same, with `epilogue` applied at write-back (see EpilogueOp).
void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c, const GemmEpilogue& epilogue);

/// C = alpha · A·B + beta · C.
inline void gemm_nn(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c) {
  gemm(Trans::kNo, Trans::kNo, alpha, a, b, beta, c);
}
inline void gemm_nn(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c, const GemmEpilogue& epilogue) {
  gemm(Trans::kNo, Trans::kNo, alpha, a, b, beta, c, epilogue);
}

/// C = alpha · A·Bᵀ + beta · C. (Forward pass: activations × weightsᵀ.)
inline void gemm_nt(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c) {
  gemm(Trans::kNo, Trans::kYes, alpha, a, b, beta, c);
}
inline void gemm_nt(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c, const GemmEpilogue& epilogue) {
  gemm(Trans::kNo, Trans::kYes, alpha, a, b, beta, c, epilogue);
}

/// C = alpha · Aᵀ·B + beta · C. (Gradients: deltasᵀ × activations.)
inline void gemm_tn(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c) {
  gemm(Trans::kYes, Trans::kNo, alpha, a, b, beta, c);
}
inline void gemm_tn(float alpha, const Matrix& a, const Matrix& b, float beta,
                    Matrix& c, const GemmEpilogue& epilogue) {
  gemm(Trans::kYes, Trans::kNo, alpha, a, b, beta, c, epilogue);
}

/// Cache-blocking parameters, exposed for tests and the granularity
/// ablation. The register micro-tile is fixed at 4×16 (one 64-byte cache
/// line of floats per accumulator row).
struct GemmBlocking {
  Index mc = 128;   // rows of A packed at once
  Index kc = 256;   // shared dimension panel
  Index nc = 1024;  // cols of B packed at once
};

/// GEMM with explicit blocking (tests sweep this; the default entry uses
/// GemmBlocking{}).
void gemm_blocked(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
                  const Matrix& b, float beta, Matrix& c,
                  const GemmBlocking& blocking);

/// GEMM with explicit blocking and a fused epilogue.
void gemm_blocked(Trans trans_a, Trans trans_b, float alpha, const Matrix& a,
                  const Matrix& b, float beta, Matrix& c,
                  const GemmBlocking& blocking, const GemmEpilogue& epilogue);

}  // namespace deepphi::la
