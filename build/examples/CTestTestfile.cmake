# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--examples=1024" "--epochs=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_digit_features "/root/repo/build/examples/digit_features" "--examples=1024" "--epochs=2")
set_tests_properties(example_digit_features PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dbn_natural "/root/repo/build/examples/dbn_natural" "--examples=1024" "--epochs=2")
set_tests_properties(example_dbn_natural PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_offload_pipeline "/root/repo/build/examples/offload_pipeline" "--examples=2048")
set_tests_properties(example_offload_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_finetune_deep "/root/repo/build/examples/finetune_deep" "--examples=1024" "--epochs=2")
set_tests_properties(example_finetune_deep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_classify_digits "/root/repo/build/examples/classify_digits" "--train=1024" "--labeled=64" "--test=256")
set_tests_properties(example_classify_digits PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
