# Empty dependencies file for dbn_natural.
# This may be replaced when dependencies are built.
