file(REMOVE_RECURSE
  "CMakeFiles/dbn_natural.dir/dbn_natural.cpp.o"
  "CMakeFiles/dbn_natural.dir/dbn_natural.cpp.o.d"
  "dbn_natural"
  "dbn_natural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbn_natural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
