# Empty compiler generated dependencies file for classify_digits.
# This may be replaced when dependencies are built.
