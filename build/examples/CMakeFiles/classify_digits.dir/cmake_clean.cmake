file(REMOVE_RECURSE
  "CMakeFiles/classify_digits.dir/classify_digits.cpp.o"
  "CMakeFiles/classify_digits.dir/classify_digits.cpp.o.d"
  "classify_digits"
  "classify_digits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_digits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
