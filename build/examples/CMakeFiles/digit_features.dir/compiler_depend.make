# Empty compiler generated dependencies file for digit_features.
# This may be replaced when dependencies are built.
