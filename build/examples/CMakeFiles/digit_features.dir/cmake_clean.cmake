file(REMOVE_RECURSE
  "CMakeFiles/digit_features.dir/digit_features.cpp.o"
  "CMakeFiles/digit_features.dir/digit_features.cpp.o.d"
  "digit_features"
  "digit_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
