# Empty compiler generated dependencies file for finetune_deep.
# This may be replaced when dependencies are built.
