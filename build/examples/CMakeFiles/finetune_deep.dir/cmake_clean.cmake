file(REMOVE_RECURSE
  "CMakeFiles/finetune_deep.dir/finetune_deep.cpp.o"
  "CMakeFiles/finetune_deep.dir/finetune_deep.cpp.o.d"
  "finetune_deep"
  "finetune_deep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
