# Empty compiler generated dependencies file for deepphi.
# This may be replaced when dependencies are built.
