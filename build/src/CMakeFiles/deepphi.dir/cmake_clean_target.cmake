file(REMOVE_RECURSE
  "libdeepphi.a"
)
