
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/matlab_like.cpp" "src/CMakeFiles/deepphi.dir/baseline/matlab_like.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/baseline/matlab_like.cpp.o.d"
  "/root/repo/src/baseline/naive_gemm.cpp" "src/CMakeFiles/deepphi.dir/baseline/naive_gemm.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/baseline/naive_gemm.cpp.o.d"
  "/root/repo/src/baseline/seq_autoencoder.cpp" "src/CMakeFiles/deepphi.dir/baseline/seq_autoencoder.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/baseline/seq_autoencoder.cpp.o.d"
  "/root/repo/src/baseline/seq_rbm.cpp" "src/CMakeFiles/deepphi.dir/baseline/seq_rbm.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/baseline/seq_rbm.cpp.o.d"
  "/root/repo/src/core/autoencoder_loops.cpp" "src/CMakeFiles/deepphi.dir/core/autoencoder_loops.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/autoencoder_loops.cpp.o.d"
  "/root/repo/src/core/batch_opt.cpp" "src/CMakeFiles/deepphi.dir/core/batch_opt.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/batch_opt.cpp.o.d"
  "/root/repo/src/core/cg.cpp" "src/CMakeFiles/deepphi.dir/core/cg.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/cg.cpp.o.d"
  "/root/repo/src/core/cost_accounting.cpp" "src/CMakeFiles/deepphi.dir/core/cost_accounting.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/cost_accounting.cpp.o.d"
  "/root/repo/src/core/dbn.cpp" "src/CMakeFiles/deepphi.dir/core/dbn.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/dbn.cpp.o.d"
  "/root/repo/src/core/deep_autoencoder.cpp" "src/CMakeFiles/deepphi.dir/core/deep_autoencoder.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/deep_autoencoder.cpp.o.d"
  "/root/repo/src/core/denoising.cpp" "src/CMakeFiles/deepphi.dir/core/denoising.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/denoising.cpp.o.d"
  "/root/repo/src/core/gradient_buffers.cpp" "src/CMakeFiles/deepphi.dir/core/gradient_buffers.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/gradient_buffers.cpp.o.d"
  "/root/repo/src/core/init.cpp" "src/CMakeFiles/deepphi.dir/core/init.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/init.cpp.o.d"
  "/root/repo/src/core/lbfgs.cpp" "src/CMakeFiles/deepphi.dir/core/lbfgs.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/lbfgs.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/deepphi.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/CMakeFiles/deepphi.dir/core/model_io.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/model_io.cpp.o.d"
  "/root/repo/src/core/online_sgd.cpp" "src/CMakeFiles/deepphi.dir/core/online_sgd.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/online_sgd.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/CMakeFiles/deepphi.dir/core/optimizer.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/optimizer.cpp.o.d"
  "/root/repo/src/core/pca.cpp" "src/CMakeFiles/deepphi.dir/core/pca.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/pca.cpp.o.d"
  "/root/repo/src/core/rbm.cpp" "src/CMakeFiles/deepphi.dir/core/rbm.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/rbm.cpp.o.d"
  "/root/repo/src/core/rbm_loops.cpp" "src/CMakeFiles/deepphi.dir/core/rbm_loops.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/rbm_loops.cpp.o.d"
  "/root/repo/src/core/rbm_taskgraph.cpp" "src/CMakeFiles/deepphi.dir/core/rbm_taskgraph.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/rbm_taskgraph.cpp.o.d"
  "/root/repo/src/core/softmax.cpp" "src/CMakeFiles/deepphi.dir/core/softmax.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/softmax.cpp.o.d"
  "/root/repo/src/core/sparse_autoencoder.cpp" "src/CMakeFiles/deepphi.dir/core/sparse_autoencoder.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/sparse_autoencoder.cpp.o.d"
  "/root/repo/src/core/stacked_autoencoder.cpp" "src/CMakeFiles/deepphi.dir/core/stacked_autoencoder.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/stacked_autoencoder.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/deepphi.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/core/trainer.cpp.o.d"
  "/root/repo/src/data/batch_iterator.cpp" "src/CMakeFiles/deepphi.dir/data/batch_iterator.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/data/batch_iterator.cpp.o.d"
  "/root/repo/src/data/binary_io.cpp" "src/CMakeFiles/deepphi.dir/data/binary_io.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/data/binary_io.cpp.o.d"
  "/root/repo/src/data/chunk_stream.cpp" "src/CMakeFiles/deepphi.dir/data/chunk_stream.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/data/chunk_stream.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/deepphi.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/digits.cpp" "src/CMakeFiles/deepphi.dir/data/digits.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/data/digits.cpp.o.d"
  "/root/repo/src/data/idx_io.cpp" "src/CMakeFiles/deepphi.dir/data/idx_io.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/data/idx_io.cpp.o.d"
  "/root/repo/src/data/natural.cpp" "src/CMakeFiles/deepphi.dir/data/natural.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/data/natural.cpp.o.d"
  "/root/repo/src/data/patches.cpp" "src/CMakeFiles/deepphi.dir/data/patches.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/data/patches.cpp.o.d"
  "/root/repo/src/la/blas1.cpp" "src/CMakeFiles/deepphi.dir/la/blas1.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/la/blas1.cpp.o.d"
  "/root/repo/src/la/blas2.cpp" "src/CMakeFiles/deepphi.dir/la/blas2.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/la/blas2.cpp.o.d"
  "/root/repo/src/la/elementwise.cpp" "src/CMakeFiles/deepphi.dir/la/elementwise.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/la/elementwise.cpp.o.d"
  "/root/repo/src/la/gemm.cpp" "src/CMakeFiles/deepphi.dir/la/gemm.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/la/gemm.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/CMakeFiles/deepphi.dir/la/matrix.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/la/matrix.cpp.o.d"
  "/root/repo/src/la/reduce.cpp" "src/CMakeFiles/deepphi.dir/la/reduce.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/la/reduce.cpp.o.d"
  "/root/repo/src/la/transpose.cpp" "src/CMakeFiles/deepphi.dir/la/transpose.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/la/transpose.cpp.o.d"
  "/root/repo/src/parallel/parallel_for.cpp" "src/CMakeFiles/deepphi.dir/parallel/parallel_for.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/parallel/parallel_for.cpp.o.d"
  "/root/repo/src/parallel/pipeline.cpp" "src/CMakeFiles/deepphi.dir/parallel/pipeline.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/parallel/pipeline.cpp.o.d"
  "/root/repo/src/parallel/task_graph.cpp" "src/CMakeFiles/deepphi.dir/parallel/task_graph.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/parallel/task_graph.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/deepphi.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/phi/cost_model.cpp" "src/CMakeFiles/deepphi.dir/phi/cost_model.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/phi/cost_model.cpp.o.d"
  "/root/repo/src/phi/device.cpp" "src/CMakeFiles/deepphi.dir/phi/device.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/phi/device.cpp.o.d"
  "/root/repo/src/phi/kernel_stats.cpp" "src/CMakeFiles/deepphi.dir/phi/kernel_stats.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/phi/kernel_stats.cpp.o.d"
  "/root/repo/src/phi/machine_spec.cpp" "src/CMakeFiles/deepphi.dir/phi/machine_spec.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/phi/machine_spec.cpp.o.d"
  "/root/repo/src/phi/offload.cpp" "src/CMakeFiles/deepphi.dir/phi/offload.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/phi/offload.cpp.o.d"
  "/root/repo/src/phi/trace.cpp" "src/CMakeFiles/deepphi.dir/phi/trace.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/phi/trace.cpp.o.d"
  "/root/repo/src/phi/tuning.cpp" "src/CMakeFiles/deepphi.dir/phi/tuning.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/phi/tuning.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/deepphi.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/deepphi.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/deepphi.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/util/options.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/deepphi.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "src/CMakeFiles/deepphi.dir/util/string_util.cpp.o" "gcc" "src/CMakeFiles/deepphi.dir/util/string_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
