# Empty dependencies file for bench_pca_vs_autoencoder.
# This may be replaced when dependencies are built.
