file(REMOVE_RECURSE
  "CMakeFiles/bench_pca_vs_autoencoder.dir/bench_pca_vs_autoencoder.cpp.o"
  "CMakeFiles/bench_pca_vs_autoencoder.dir/bench_pca_vs_autoencoder.cpp.o.d"
  "bench_pca_vs_autoencoder"
  "bench_pca_vs_autoencoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pca_vs_autoencoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
