file(REMOVE_RECURSE
  "CMakeFiles/bench_online_sgd.dir/bench_online_sgd.cpp.o"
  "CMakeFiles/bench_online_sgd.dir/bench_online_sgd.cpp.o.d"
  "bench_online_sgd"
  "bench_online_sgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
