# Empty compiler generated dependencies file for bench_online_sgd.
# This may be replaced when dependencies are built.
