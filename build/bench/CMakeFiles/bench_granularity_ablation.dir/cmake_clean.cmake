file(REMOVE_RECURSE
  "CMakeFiles/bench_granularity_ablation.dir/bench_granularity_ablation.cpp.o"
  "CMakeFiles/bench_granularity_ablation.dir/bench_granularity_ablation.cpp.o.d"
  "bench_granularity_ablation"
  "bench_granularity_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_granularity_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
