# Empty compiler generated dependencies file for bench_granularity_ablation.
# This may be replaced when dependencies are built.
