file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_opt_steps.dir/bench_table1_opt_steps.cpp.o"
  "CMakeFiles/bench_table1_opt_steps.dir/bench_table1_opt_steps.cpp.o.d"
  "bench_table1_opt_steps"
  "bench_table1_opt_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_opt_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
