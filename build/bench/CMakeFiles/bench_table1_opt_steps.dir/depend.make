# Empty dependencies file for bench_table1_opt_steps.
# This may be replaced when dependencies are built.
