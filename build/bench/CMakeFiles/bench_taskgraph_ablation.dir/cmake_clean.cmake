file(REMOVE_RECURSE
  "CMakeFiles/bench_taskgraph_ablation.dir/bench_taskgraph_ablation.cpp.o"
  "CMakeFiles/bench_taskgraph_ablation.dir/bench_taskgraph_ablation.cpp.o.d"
  "bench_taskgraph_ablation"
  "bench_taskgraph_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taskgraph_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
