file(REMOVE_RECURSE
  "CMakeFiles/bench_thread_tuning.dir/bench_thread_tuning.cpp.o"
  "CMakeFiles/bench_thread_tuning.dir/bench_thread_tuning.cpp.o.d"
  "bench_thread_tuning"
  "bench_thread_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
