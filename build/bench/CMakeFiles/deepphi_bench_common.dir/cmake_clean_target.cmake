file(REMOVE_RECURSE
  "libdeepphi_bench_common.a"
)
