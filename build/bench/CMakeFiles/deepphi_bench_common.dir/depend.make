# Empty dependencies file for deepphi_bench_common.
# This may be replaced when dependencies are built.
