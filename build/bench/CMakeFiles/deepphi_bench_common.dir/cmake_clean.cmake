file(REMOVE_RECURSE
  "CMakeFiles/deepphi_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/deepphi_bench_common.dir/bench_common.cpp.o.d"
  "libdeepphi_bench_common.a"
  "libdeepphi_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepphi_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
