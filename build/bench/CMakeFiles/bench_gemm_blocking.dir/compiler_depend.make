# Empty compiler generated dependencies file for bench_gemm_blocking.
# This may be replaced when dependencies are built.
