file(REMOVE_RECURSE
  "CMakeFiles/bench_gemm_blocking.dir/bench_gemm_blocking.cpp.o"
  "CMakeFiles/bench_gemm_blocking.dir/bench_gemm_blocking.cpp.o.d"
  "bench_gemm_blocking"
  "bench_gemm_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gemm_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
