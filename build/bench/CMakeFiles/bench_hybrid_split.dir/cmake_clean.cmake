file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_split.dir/bench_hybrid_split.cpp.o"
  "CMakeFiles/bench_hybrid_split.dir/bench_hybrid_split.cpp.o.d"
  "bench_hybrid_split"
  "bench_hybrid_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
