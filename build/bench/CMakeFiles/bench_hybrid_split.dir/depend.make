# Empty dependencies file for bench_hybrid_split.
# This may be replaced when dependencies are built.
