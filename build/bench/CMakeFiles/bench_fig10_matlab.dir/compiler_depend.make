# Empty compiler generated dependencies file for bench_fig10_matlab.
# This may be replaced when dependencies are built.
