file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_matlab.dir/bench_fig10_matlab.cpp.o"
  "CMakeFiles/bench_fig10_matlab.dir/bench_fig10_matlab.cpp.o.d"
  "bench_fig10_matlab"
  "bench_fig10_matlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_matlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
