# Empty dependencies file for deepphi_eval.
# This may be replaced when dependencies are built.
