file(REMOVE_RECURSE
  "CMakeFiles/deepphi_eval.dir/deepphi_eval.cpp.o"
  "CMakeFiles/deepphi_eval.dir/deepphi_eval.cpp.o.d"
  "deepphi_eval"
  "deepphi_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepphi_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
