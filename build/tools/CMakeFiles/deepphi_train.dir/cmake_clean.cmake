file(REMOVE_RECURSE
  "CMakeFiles/deepphi_train.dir/deepphi_train.cpp.o"
  "CMakeFiles/deepphi_train.dir/deepphi_train.cpp.o.d"
  "deepphi_train"
  "deepphi_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepphi_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
