# Empty compiler generated dependencies file for deepphi_train.
# This may be replaced when dependencies are built.
