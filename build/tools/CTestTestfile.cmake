# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_sae_synthetic "/root/repo/build/tools/deepphi_train" "--model=sae" "--synthetic=digits" "--examples=512" "--epochs=2" "--hidden=16")
set_tests_properties(cli_sae_synthetic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rbm_gaussian "/root/repo/build/tools/deepphi_train" "--model=rbm" "--synthetic=natural" "--examples=512" "--epochs=2" "--hidden=16" "--gaussian-visible")
set_tests_properties(cli_rbm_gaussian PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stack_save_load "/root/repo/build/tools/deepphi_train" "--model=stack" "--synthetic=digits" "--examples=512" "--epochs=1" "--layers=64,16" "--save=/root/repo/build/tools/cli_stack.dpsa")
set_tests_properties(cli_stack_save_load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dbn_taskgraph "/root/repo/build/tools/deepphi_train" "--model=dbn" "--synthetic=digits" "--examples=512" "--epochs=1" "--layers=64,16" "--taskgraph")
set_tests_properties(cli_dbn_taskgraph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/tools/deepphi_train" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_flag "/root/repo/build/tools/deepphi_train" "--bogus=1")
set_tests_properties(cli_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_model "/root/repo/build/tools/deepphi_train" "--model=nonsense")
set_tests_properties(cli_rejects_bad_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_eval_roundtrip "/usr/bin/cmake" "-DTRAIN=/root/repo/build/tools/deepphi_train" "-DEVAL=/root/repo/build/tools/deepphi_eval" "-DWORK=/root/repo/build/tools" "-P" "/root/repo/tools/cli_roundtrip_test.cmake")
set_tests_properties(cli_eval_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_eval_missing_model "/root/repo/build/tools/deepphi_eval" "--synthetic=digits")
set_tests_properties(cli_eval_missing_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;35;add_test;/root/repo/tools/CMakeLists.txt;0;")
