# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/phi_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_training_test[1]_include.cmake")
include("/root/repo/build/tests/accounting_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/classifier_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/pca_test[1]_include.cmake")
