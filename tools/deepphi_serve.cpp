// deepphi_serve — batched inference serving of any checkpoint.
//
// Loads a checkpoint through model_io::load_any (DPAE / DPRB / DPSA / DPDB /
// DPQE, magic-sniffed), stands up a serve::InferenceServer, and drives it
// with an
// open-loop request stream: either a synthetic arrival process at a given
// rate (Poisson by default) or a replayed trace of arrival offsets. Prints
// the latency/throughput summary and can write "deepphi.serve.v1" JSONL
// telemetry (per-batch coalesce size, queue wait, compute time, and the
// end-to-end latency quantiles).
//
//   # 2000 req/s Poisson for 4000 requests against a stacked autoencoder
//   deepphi_serve --model=stack.dpsa --rate=2000 --requests=4000
//
//   # replay a trace (one arrival offset in seconds per line, '#' comments)
//   deepphi_serve --model=dbn.dpdb --trace=arrivals.txt --telemetry=serve.jsonl
//
//   # batching sensitivity: the paper's Fig. 9 lesson, on the serving path
//   deepphi_serve --model=sae.dpae --rate=5000 --max-batch=1
//   deepphi_serve --model=sae.dpae --rate=5000 --max-batch=64
//
//   # int8 quantized serving (on-the-fly, or from a deepphi_quantize .dpqe)
//   deepphi_serve --model=sae.dpae --precision=int8 --rate=5000
//   deepphi_serve --model=sae.dpqe --rate=5000
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.hpp"
#include "data/binary_io.hpp"
#include "data/idx_io.hpp"
#include "la/simd/dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "serve/inference_server.hpp"
#include "serve/latency_recorder.hpp"
#include "serve/stats_server.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace {

using namespace deepphi;

/// Arrival offsets (seconds from stream start), one request each.
std::vector<double> build_schedule(const util::Options& options) {
  std::vector<double> arrivals;
  if (options.has("trace")) {
    const std::string path = options.get_string("trace");
    std::ifstream in(path);
    DEEPPHI_CHECK_MSG(in.good(), "cannot open trace '" << path << "'");
    std::string line;
    double prev = 0;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::string t = util::trim(line);
      if (t.empty() || t[0] == '#') continue;
      const double at = util::parse_double(t);
      DEEPPHI_CHECK_MSG(at >= prev, "trace '" << path << "' line " << lineno
                                              << ": offsets must be "
                                                 "non-decreasing");
      arrivals.push_back(at);
      prev = at;
    }
    DEEPPHI_CHECK_MSG(!arrivals.empty(),
                      "trace '" << path << "' contains no arrivals");
    return arrivals;
  }

  const auto requests = static_cast<std::size_t>(options.get_int("requests"));
  const double rate = options.get_double("rate");
  DEEPPHI_CHECK_MSG(rate > 0, "--rate must be > 0, got " << rate);
  const std::string kind = options.get_string("arrivals");
  util::Rng rng(static_cast<std::uint64_t>(options.get_int("seed")),
                /*stream=*/0xA221);
  arrivals.reserve(requests);
  double t = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (kind == "poisson") {
      // Exponential inter-arrivals: -ln(U)/rate.
      double u = rng.uniform();
      while (u <= 0) u = rng.uniform();
      t += -std::log(u) / rate;
    } else if (kind == "uniform") {
      t += 1.0 / rate;
    } else {
      throw util::Error("unknown --arrivals '" + kind + "' (poisson|uniform)");
    }
    arrivals.push_back(t);
  }
  return arrivals;
}

/// Request payload rows: a real dataset when given, else uniform noise of
/// the model's input dimension (throughput does not depend on the values).
la::Matrix build_inputs(const util::Options& options, la::Index dim,
                        std::size_t count) {
  if (options.has("data") || options.has("idx")) {
    data::Dataset dataset =
        options.has("data")
            ? data::load_dataset(options.get_string("data"))
            : data::load_idx_images(options.get_string("idx"));
    DEEPPHI_CHECK_MSG(dataset.dim() == dim,
                      "dataset dim " << dataset.dim()
                                     << " != model input dim " << dim);
    la::Matrix rows(static_cast<la::Index>(count), dim);
    la::Matrix one(1, dim);
    for (std::size_t i = 0; i < count; ++i) {
      dataset.copy_batch(static_cast<la::Index>(i) % dataset.size(), 1, one);
      std::copy(one.row(0), one.row(0) + dim,
                rows.row(static_cast<la::Index>(i)));
    }
    return rows;
  }
  util::Rng rng(static_cast<std::uint64_t>(options.get_int("seed")),
                /*stream=*/0x1D47);
  la::Matrix rows(static_cast<la::Index>(count), dim);
  for (la::Index i = 0; i < rows.size(); ++i)
    rows.data()[i] = rng.uniform_float();
  return rows;
}

int run(int argc, char** argv) {
  util::Options options = util::Options::parse(argc, argv);
  options.declare("model",
                  "checkpoint path (.dpae/.dprb/.dpsa/.dpdb/.dpqe)");
  options.declare("rate", "synthetic open-loop arrival rate, requests/s",
                  "2000");
  options.declare("requests", "synthetic requests to send", "4000");
  options.declare("arrivals", "synthetic arrival process: poisson | uniform",
                  "poisson");
  options.declare("trace",
                  "replay arrival offsets (seconds, one per line) from this "
                  "file instead of generating them");
  options.declare("data", "request payloads from this DPDS dataset");
  options.declare("idx", "request payloads from this IDX3 image file");
  options.declare("max-batch", "largest coalesced batch", "64");
  options.declare("max-delay-ms",
                  "deadline flush: max queue wait before a partial batch "
                  "dispatches", "2");
  options.declare("workers", "compute worker threads", "1");
  options.declare("queue-cap", "request queue capacity (backpressure bound)",
                  "1024");
  options.declare("seed", "random seed (arrivals and synthetic payloads)",
                  "42");
  options.declare("precision",
                  "serving precision: auto | fp32 | int8. auto serves the "
                  "checkpoint as stored; int8 quantizes a float checkpoint "
                  "on the fly (see docs/serving.md)", "auto");
  options.declare("stats-port",
                  "serve live stats over HTTP on 127.0.0.1:<port> "
                  "(/metrics Prometheus text, /stats.json deepphi.stats.v1); "
                  "0 picks a free port");
  options.declare("stats-port-file",
                  "write the bound stats port to this file "
                  "(for --stats-port=0 in scripts)");
  options.declare("stats-linger-s",
                  "keep the stats endpoint up this many seconds after the "
                  "request stream drains, so pollers can scrape the final "
                  "state", "0");
  options.declare("telemetry",
                  "write deepphi.serve.v1 JSONL (per-batch + summary) to "
                  "this path");
  options.declare("profile",
                  "write a Chrome-trace JSON of the serving timeline to this "
                  "path");
  options.declare("help", "print usage");
  if (options.has("help")) {
    std::printf("%s", options.help("deepphi_serve").c_str());
    return 0;
  }
  options.validate();
  DEEPPHI_CHECK_MSG(options.has("model"), "--model=<checkpoint> is required");

  if (options.has("profile")) {
    obs::set_thread_name("main");
    obs::Profiler::enable(true);
  }

  std::unique_ptr<core::Encoder> model =
      model_io::load_any(options.get_string("model"));
  const std::string precision = options.get_string("precision");
  const bool loaded_int8 =
      dynamic_cast<const core::QuantizedEncoder*>(model.get()) != nullptr;
  if (precision == "int8") {
    if (!loaded_int8)
      model = core::QuantizedEncoder::from(*model);  // quantize on the fly
  } else if (precision == "fp32") {
    DEEPPHI_CHECK_MSG(!loaded_int8,
                      "--precision=fp32 cannot serve an int8 checkpoint; "
                      "re-serve the original float model");
  } else {
    DEEPPHI_CHECK_MSG(precision == "auto", "unknown --precision '"
                                               << precision
                                               << "' (auto|fp32|int8)");
  }
  const char* served_precision =
      dynamic_cast<const core::QuantizedEncoder*>(model.get()) != nullptr
          ? "int8"
          : "fp32";
  std::printf("serving %s [%s]\n", model->describe().c_str(),
              served_precision);

  const std::vector<double> schedule = build_schedule(options);
  la::Matrix inputs = build_inputs(options, model->input_dim(),
                                   schedule.size());

  std::unique_ptr<obs::TelemetrySink> telemetry;
  serve::ServeConfig cfg;
  cfg.max_batch = options.get_int("max-batch");
  cfg.max_delay_s = options.get_double("max-delay-ms") / 1000.0;
  cfg.workers = static_cast<unsigned>(options.get_int("workers"));
  cfg.queue_capacity = static_cast<std::size_t>(options.get_int("queue-cap"));
  if (options.has("telemetry")) {
    telemetry =
        std::make_unique<obs::TelemetrySink>(options.get_string("telemetry"));
    using obs::TelemetryField;
    telemetry->emit_run_header(
        "deepphi_serve",
        {TelemetryField::str("model", model->describe()),
         TelemetryField::str("precision", served_precision),
         TelemetryField::str("simd_tier",
                             la::simd::tier_name(la::simd::active_tier())),
         TelemetryField::integer("requests",
                                 static_cast<std::int64_t>(schedule.size())),
         TelemetryField::num("rate", options.get_double("rate")),
         TelemetryField::str("arrivals",
                             options.has("trace") ? "trace"
                                                  : options.get_string(
                                                        "arrivals"))});
    cfg.telemetry = telemetry.get();
  }
  serve::InferenceServer server(*model, cfg);

  std::unique_ptr<serve::StatsServer> stats_http;
  if (options.has("stats-port")) {
    serve::StatsServerConfig stats_cfg;
    stats_cfg.port = options.get_int("stats-port");
    stats_http = std::make_unique<serve::StatsServer>(stats_cfg);
    std::printf("stats: http://127.0.0.1:%d (/metrics, /stats.json)\n",
                stats_http->port());
    if (options.has("stats-port-file")) {
      std::ofstream port_file(options.get_string("stats-port-file"));
      port_file << stats_http->port() << "\n";
      DEEPPHI_CHECK_MSG(port_file.good(),
                        "cannot write --stats-port-file '"
                            << options.get_string("stats-port-file") << "'");
    }
  }

  std::printf(
      "config: max_batch=%lld max_delay=%.3fms queue_cap=%zu workers=%u, "
      "%zu requests over %.2fs (offered %.0f req/s)\n",
      static_cast<long long>(cfg.max_batch), cfg.max_delay_s * 1e3,
      cfg.queue_capacity, std::max(1u, cfg.workers), schedule.size(),
      schedule.back(),
      static_cast<double>(schedule.size()) / std::max(1e-9, schedule.back()));

  // Open loop: arrivals fire on the wall clock whether or not earlier
  // requests finished — exactly the regime where batching either absorbs the
  // load or backpressure sheds it.
  std::vector<std::future<std::vector<float>>> futures;
  futures.reserve(schedule.size());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(schedule[i])));
    futures.push_back(
        server.submit(inputs.row(static_cast<la::Index>(i)),
                      inputs.cols()));
  }
  std::int64_t ok = 0, errors = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++ok;
    } catch (const std::exception&) {
      ++errors;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  std::printf("\n--- serving summary ---\n");
  std::printf("requests: %lld ok, %lld rejected/failed (%.1f%% shed)\n",
              static_cast<long long>(ok), static_cast<long long>(errors),
              100.0 * static_cast<double>(errors) /
                  static_cast<double>(std::max<std::int64_t>(ok + errors, 1)));
  std::printf("throughput: %.0f req/s completed (offered %.0f req/s)\n",
              static_cast<double>(stats.completed) / std::max(1e-9, wall),
              static_cast<double>(schedule.size()) /
                  std::max(1e-9, schedule.back()));
  std::printf("batches: %lld dispatched, mean coalesce %.1f rows (max %lld)\n",
              static_cast<long long>(stats.batches), stats.mean_batch_size,
              static_cast<long long>(cfg.max_batch));
  std::printf("queue: peak depth %zu of %zu\n", stats.peak_queue_depth,
              cfg.queue_capacity);
  std::printf("latency: mean %.2fms  p50 %.2fms  p95 %.2fms  p99 %.2fms  "
              "max %.2fms\n",
              stats.latency.mean_s * 1e3, stats.latency.p50_s * 1e3,
              stats.latency.p95_s * 1e3, stats.latency.p99_s * 1e3,
              stats.latency.max_s * 1e3);
  std::printf("compute: %.3fs total encode time (%.1f%% of %.2fs wall)\n",
              stats.total_compute_s, 100.0 * stats.total_compute_s / wall,
              wall);

  // Per-stage latency breakdown from the registry histograms (queue wait /
  // collect / compute / scatter plus the end-to-end serve.latency).
  std::printf("\n--- stage latency (ms) ---\n");
  std::printf("%-18s %9s %8s %8s %8s %8s %8s\n", "stage", "count", "mean",
              "p50", "p95", "p99", "max");
  for (const obs::HistogramSample& h : obs::metrics::snapshot_histograms()) {
    if (h.name.rfind("serve.", 0) != 0 || h.snapshot.count == 0) continue;
    const serve::LatencySummary s = serve::summarize(h.snapshot);
    std::printf("%-18s %9lld %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                h.name.c_str() + 6, static_cast<long long>(s.count),
                s.mean_s * 1e3, s.p50_s * 1e3, s.p95_s * 1e3, s.p99_s * 1e3,
                s.max_s * 1e3);
  }
  std::printf("\n--- metrics ---\n");
  for (const obs::MetricSample& m : obs::metrics::snapshot()) {
    if (m.kind == obs::MetricSample::Kind::kHistogram) continue;
    if (m.value == 0) continue;
    std::printf("  %-28s %.6g\n", m.name.c_str(), m.value);
  }

  if (options.has("profile")) {
    const std::string path = options.get_string("profile");
    obs::Profiler::write_chrome_json(path);
    std::printf("profile written to %s\n", path.c_str());
  }
  if (telemetry) {
    telemetry->flush();
    std::printf("telemetry: %lld records written to %s\n",
                static_cast<long long>(telemetry->records_written()),
                options.get_string("telemetry").c_str());
  }
  if (stats_http) {
    const double linger = options.get_double("stats-linger-s");
    if (linger > 0) {
      std::printf("stats: endpoint stays up %.1fs for final scrapes...\n",
                  linger);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::duration<double>(linger));
    }
    std::printf("stats: answered %lld HTTP requests on port %d\n",
                static_cast<long long>(stats_http->requests_served()),
                stats_http->port());
    stats_http->stop();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deepphi_serve: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
}
