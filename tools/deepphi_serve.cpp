// deepphi_serve — batched inference serving of one or many checkpoints.
//
// Each --model flag registers one checkpoint (DPAE / DPRB / DPSA / DPDB /
// DPQE, magic-sniffed through model_io::load_any) in a serve::ModelRegistry,
// stands up one multi-model serve::InferenceServer over the registry, and
// drives it with an open-loop request stream fanned across the models:
// either a synthetic arrival process at a given rate (Poisson by default)
// or a replayed trace of arrival offsets. Prints per-model and aggregate
// latency/throughput summaries and can write "deepphi.serve.v1" JSONL
// telemetry (per-batch coalesce size, queue wait, compute time, and the
// end-to-end latency quantiles).
//
//   # one model, 2000 req/s Poisson for 4000 requests
//   deepphi_serve --model=stack.dpsa --rate=2000 --requests=4000
//
//   # two tenants with latency budgets (ms) and SLO-aware adaptive batching
//   deepphi_serve --model small=sae.dpae:5 --model big=dbn.dpdb:20
//
//   # pin the classic static size-or-deadline flush for comparison
//   deepphi_serve --model small=sae.dpae:5 --batching=static
//
//   # hot-swap control plane: stats endpoint + admin routes
//   deepphi_serve --model small=sae.dpae --stats-port=0 --stats-linger-s=5
//   curl "127.0.0.1:$PORT/admin/swap?model=small&path=/abs/new.dpae"
//
//   # int8 quantized serving (on-the-fly, or from a deepphi_quantize .dpqe)
//   deepphi_serve --model=sae.dpae --precision=int8 --rate=5000
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.hpp"
#include "data/binary_io.hpp"
#include "data/idx_io.hpp"
#include "la/simd/dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "serve/inference_server.hpp"
#include "serve/latency_recorder.hpp"
#include "serve/model_registry.hpp"
#include "serve/stats_server.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace {

using namespace deepphi;

/// One --model flag: `name=path[:budget_ms]`, or the deprecated bare-path
/// form which serves under the name "default".
struct ModelSpec {
  std::string name;
  std::string path;
  double budget_s = 0;
};

std::vector<ModelSpec> parse_model_specs(const util::Options& options) {
  const double default_budget_s = options.get_double("budget-ms") / 1e3;
  std::vector<ModelSpec> specs;
  for (const std::string& value : options.get_repeated("model")) {
    ModelSpec spec;
    spec.budget_s = default_budget_s;
    const std::size_t eq = value.find('=');
    if (eq == std::string::npos) {
      DEEPPHI_CHECK_MSG(specs.empty(),
                        "the bare-path --model form serves a single model; "
                        "use --model NAME=PATH[:BUDGET_MS] to serve several");
      std::fprintf(stderr,
                   "deepphi_serve: --model=PATH without a name is deprecated; "
                   "use --model default=%s (serving it as 'default')\n",
                   value.c_str());
      spec.name = "default";
      spec.path = value;
      specs.push_back(std::move(spec));
      return specs;
    }
    spec.name = value.substr(0, eq);
    spec.path = value.substr(eq + 1);
    // An optional :BUDGET_MS suffix — only split when the tail is numeric,
    // so paths with colons stay intact.
    const std::size_t colon = spec.path.rfind(':');
    if (colon != std::string::npos && colon + 1 < spec.path.size()) {
      const std::string tail = spec.path.substr(colon + 1);
      char* end = nullptr;
      const double budget_ms = std::strtod(tail.c_str(), &end);
      if (end != nullptr && *end == '\0') {
        DEEPPHI_CHECK_MSG(budget_ms >= 0, "--model " << value
                                                     << ": budget must be "
                                                        ">= 0 ms");
        spec.budget_s = budget_ms / 1e3;
        spec.path = spec.path.substr(0, colon);
      }
    }
    DEEPPHI_CHECK_MSG(!spec.name.empty() && !spec.path.empty(),
                      "--model " << value
                                 << ": expected NAME=PATH[:BUDGET_MS]");
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Arrival offsets (seconds from stream start), one request each.
std::vector<double> build_schedule(const util::Options& options) {
  std::vector<double> arrivals;
  if (options.has("trace")) {
    const std::string path = options.get_string("trace");
    std::ifstream in(path);
    DEEPPHI_CHECK_MSG(in.good(), "cannot open trace '" << path << "'");
    std::string line;
    double prev = 0;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::string t = util::trim(line);
      if (t.empty() || t[0] == '#') continue;
      const double at = util::parse_double(t);
      DEEPPHI_CHECK_MSG(at >= prev, "trace '" << path << "' line " << lineno
                                              << ": offsets must be "
                                                 "non-decreasing");
      arrivals.push_back(at);
      prev = at;
    }
    DEEPPHI_CHECK_MSG(!arrivals.empty(),
                      "trace '" << path << "' contains no arrivals");
    return arrivals;
  }

  const auto requests = static_cast<std::size_t>(options.get_int("requests"));
  const double rate = options.get_double("rate");
  DEEPPHI_CHECK_MSG(rate > 0, "--rate must be > 0, got " << rate);
  const std::string kind = options.get_string("arrivals");
  util::Rng rng(static_cast<std::uint64_t>(options.get_int("seed")),
                /*stream=*/0xA221);
  arrivals.reserve(requests);
  double t = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (kind == "poisson") {
      // Exponential inter-arrivals: -ln(U)/rate.
      double u = rng.uniform();
      while (u <= 0) u = rng.uniform();
      t += -std::log(u) / rate;
    } else if (kind == "uniform") {
      t += 1.0 / rate;
    } else {
      throw util::Error("unknown --arrivals '" + kind + "' (poisson|uniform)");
    }
    arrivals.push_back(t);
  }
  return arrivals;
}

/// Request payload rows: a real dataset when given, else uniform noise of
/// the model's input dimension (throughput does not depend on the values).
la::Matrix build_inputs(const util::Options& options, la::Index dim,
                        std::size_t count) {
  if (options.has("data") || options.has("idx")) {
    data::Dataset dataset =
        options.has("data")
            ? data::load_dataset(options.get_string("data"))
            : data::load_idx_images(options.get_string("idx"));
    DEEPPHI_CHECK_MSG(dataset.dim() == dim,
                      "dataset dim " << dataset.dim()
                                     << " != model input dim " << dim);
    la::Matrix rows(static_cast<la::Index>(count), dim);
    la::Matrix one(1, dim);
    for (std::size_t i = 0; i < count; ++i) {
      dataset.copy_batch(static_cast<la::Index>(i) % dataset.size(), 1, one);
      std::copy(one.row(0), one.row(0) + dim,
                rows.row(static_cast<la::Index>(i)));
    }
    return rows;
  }
  util::Rng rng(static_cast<std::uint64_t>(options.get_int("seed")),
                /*stream=*/0x1D47);
  la::Matrix rows(static_cast<la::Index>(count), dim);
  for (la::Index i = 0; i < rows.size(); ++i)
    rows.data()[i] = rng.uniform_float();
  return rows;
}

int run(int argc, char** argv) {
  util::Options options = util::Options::parse(argc, argv);
  options.declare("model",
                  "NAME=PATH[:BUDGET_MS] — registers one checkpoint "
                  "(.dpae/.dprb/.dpsa/.dpdb/.dpqe) to serve; repeat the flag "
                  "for multi-model serving. A bare PATH (deprecated) serves "
                  "one model as 'default'");
  options.declare("budget-ms",
                  "default per-model end-to-end latency budget (SLO) when a "
                  "--model flag names none; 0 = no budget (static batching)",
                  "0");
  options.declare("batching",
                  "auto | adaptive | static. auto/adaptive re-decide flush "
                  "deadline + batch cap per batch from live p95/p99 against "
                  "the model's budget; static pins --max-batch/--max-delay-ms",
                  "auto");
  options.declare("rate", "synthetic open-loop arrival rate, requests/s",
                  "2000");
  options.declare("requests", "synthetic requests to send", "4000");
  options.declare("arrivals", "synthetic arrival process: poisson | uniform",
                  "poisson");
  options.declare("trace",
                  "replay arrival offsets (seconds, one per line) from this "
                  "file instead of generating them");
  options.declare("data", "request payloads from this DPDS dataset");
  options.declare("idx", "request payloads from this IDX3 image file");
  options.declare("max-batch", "largest coalesced batch", "64");
  options.declare("max-delay-ms",
                  "deadline flush: max queue wait before a partial batch "
                  "dispatches", "2");
  options.declare("workers", "compute worker threads shared by all models",
                  "1");
  options.declare("queue-cap",
                  "per-model request queue capacity (backpressure bound)",
                  "1024");
  options.declare("shed-fraction",
                  "admission control: shed submits once queue depth reaches "
                  "this fraction of capacity; 1 disables the early shed", "1");
  options.declare("seed", "random seed (arrivals and synthetic payloads)",
                  "42");
  options.declare("precision",
                  "serving precision: auto | fp32 | int8. auto serves each "
                  "checkpoint as stored; int8 quantizes float checkpoints "
                  "on the fly (see docs/serving.md)", "auto");
  options.declare("stats-port",
                  "serve live stats over HTTP on 127.0.0.1:<port> "
                  "(/metrics Prometheus text, /stats.json deepphi.stats.v1, "
                  "/admin/models, /admin/swap hot-swap endpoint); "
                  "0 picks a free port");
  options.declare("stats-port-file",
                  "write the bound stats port to this file "
                  "(for --stats-port=0 in scripts)");
  options.declare("stats-linger-s",
                  "keep the stats endpoint up this many seconds after the "
                  "request stream drains, so pollers can scrape the final "
                  "state", "0");
  options.declare("telemetry",
                  "write deepphi.serve.v1 JSONL (per-batch + summary) to "
                  "this path");
  options.declare("profile",
                  "write a Chrome-trace JSON of the serving timeline to this "
                  "path");
  options.declare("help", "print usage");
  if (options.has("help")) {
    std::printf("%s", options.help("deepphi_serve").c_str());
    return 0;
  }
  options.validate();
  DEEPPHI_CHECK_MSG(options.has("model"),
                    "--model NAME=PATH[:BUDGET_MS] is required");

  if (options.has("profile")) {
    obs::set_thread_name("main");
    obs::Profiler::enable(true);
  }

  const std::string batching = options.get_string("batching");
  DEEPPHI_CHECK_MSG(
      batching == "auto" || batching == "adaptive" || batching == "static",
      "unknown --batching '" << batching << "' (auto|adaptive|static)");
  const std::string precision = options.get_string("precision");
  DEEPPHI_CHECK_MSG(
      precision == "auto" || precision == "fp32" || precision == "int8",
      "unknown --precision '" << precision << "' (auto|fp32|int8)");

  const std::vector<ModelSpec> specs = parse_model_specs(options);
  serve::ModelRegistry registry;
  for (const ModelSpec& spec : specs) {
    model_io::LoadedModel loaded = model_io::load_any(spec.path);
    const bool loaded_int8 = loaded.precision == "int8";
    if (precision == "int8" && !loaded_int8) {
      loaded.model = core::QuantizedEncoder::from(*loaded.model);
      loaded.precision = "int8";
    } else if (precision == "fp32") {
      DEEPPHI_CHECK_MSG(!loaded_int8,
                        "--precision=fp32 cannot serve int8 checkpoint '"
                            << spec.path
                            << "'; re-serve the original float model");
    }
    const std::string describe = loaded.model->describe();
    registry.add(spec.name, std::move(loaded), spec.budget_s);
    const serve::ModelInfo info = registry.info(spec.name);
    std::printf("serving %s: %s [%s]%s", spec.name.c_str(), describe.c_str(),
                info.precision.c_str(),
                spec.budget_s > 0 ? "" : "\n");
    if (spec.budget_s > 0)
      std::printf(" budget=%.1fms\n", spec.budget_s * 1e3);
  }

  const std::vector<double> schedule = build_schedule(options);
  // Round-robin fan-out: request i goes to model i % M, payloads drawn per
  // model so mixed input dimensions coexist in one stream.
  const std::size_t n_models = specs.size();
  std::vector<la::Matrix> inputs;
  inputs.reserve(n_models);
  for (std::size_t m = 0; m < n_models; ++m) {
    const std::size_t count =
        (schedule.size() + n_models - 1 - m) / n_models;
    inputs.push_back(build_inputs(options,
                                  registry.info(specs[m].name).input_dim,
                                  std::max<std::size_t>(count, 1)));
  }

  std::unique_ptr<obs::TelemetrySink> telemetry;
  serve::ServeConfig cfg;
  cfg.max_batch = options.get_int("max-batch");
  cfg.max_delay_s = options.get_double("max-delay-ms") / 1000.0;
  cfg.workers = static_cast<unsigned>(options.get_int("workers"));
  cfg.queue_capacity = static_cast<std::size_t>(options.get_int("queue-cap"));
  cfg.shed_fraction = options.get_double("shed-fraction");
  cfg.adaptive = batching != "static";
  if (options.has("telemetry")) {
    std::string model_names;
    for (const ModelSpec& spec : specs)
      model_names += (model_names.empty() ? "" : ",") + spec.name;
    telemetry =
        std::make_unique<obs::TelemetrySink>(options.get_string("telemetry"));
    using obs::TelemetryField;
    telemetry->emit_run_header(
        "deepphi_serve",
        {TelemetryField::str("models", model_names),
         TelemetryField::str("precision", precision),
         TelemetryField::str("batching", batching),
         TelemetryField::str("simd_tier",
                             la::simd::tier_name(la::simd::active_tier())),
         TelemetryField::integer("requests",
                                 static_cast<std::int64_t>(schedule.size())),
         TelemetryField::num("rate", options.get_double("rate")),
         TelemetryField::str("arrivals",
                             options.has("trace") ? "trace"
                                                  : options.get_string(
                                                        "arrivals"))});
    cfg.telemetry = telemetry.get();
  }
  serve::InferenceServer server(registry, cfg);

  std::unique_ptr<serve::StatsServer> stats_http;
  if (options.has("stats-port")) {
    serve::StatsServerConfig stats_cfg;
    stats_cfg.port = options.get_int("stats-port");
    stats_cfg.server = &server;  // enables /admin/models and /admin/swap
    stats_http = std::make_unique<serve::StatsServer>(stats_cfg);
    std::printf("stats: http://127.0.0.1:%d "
                "(/metrics, /stats.json, /admin/models, /admin/swap)\n",
                stats_http->port());
    if (options.has("stats-port-file")) {
      std::ofstream port_file(options.get_string("stats-port-file"));
      port_file << stats_http->port() << "\n";
      DEEPPHI_CHECK_MSG(port_file.good(),
                        "cannot write --stats-port-file '"
                            << options.get_string("stats-port-file") << "'");
    }
  }

  std::printf(
      "config: max_batch=%lld max_delay=%.3fms queue_cap=%zu workers=%u "
      "batching=%s, %zu requests over %.2fs (offered %.0f req/s, %zu "
      "model%s)\n",
      static_cast<long long>(cfg.max_batch), cfg.max_delay_s * 1e3,
      cfg.queue_capacity, std::max(1u, cfg.workers), batching.c_str(),
      schedule.size(), schedule.back(),
      static_cast<double>(schedule.size()) / std::max(1e-9, schedule.back()),
      n_models, n_models == 1 ? "" : "s");

  // Open loop: arrivals fire on the wall clock whether or not earlier
  // requests finished — exactly the regime where batching either absorbs the
  // load or backpressure sheds it.
  std::vector<std::future<serve::Reply>> futures;
  futures.reserve(schedule.size());
  std::vector<std::size_t> cursor(n_models, 0);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(schedule[i])));
    const std::size_t m = i % n_models;
    const la::Matrix& rows = inputs[m];
    const auto r = static_cast<la::Index>(
        cursor[m]++ % static_cast<std::size_t>(rows.rows()));
    futures.push_back(server.submit(
        specs[m].name,
        std::vector<float>(rows.row(r), rows.row(r) + rows.cols())));
  }
  std::int64_t ok = 0, errors = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++ok;
    } catch (const std::exception&) {
      ++errors;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  std::printf("\n--- serving summary ---\n");
  std::printf("requests: %lld ok, %lld rejected/failed (%.1f%% shed)\n",
              static_cast<long long>(ok), static_cast<long long>(errors),
              100.0 * static_cast<double>(errors) /
                  static_cast<double>(std::max<std::int64_t>(ok + errors, 1)));
  std::printf("throughput: %.0f req/s completed (offered %.0f req/s)\n",
              static_cast<double>(stats.completed) / std::max(1e-9, wall),
              static_cast<double>(schedule.size()) /
                  std::max(1e-9, schedule.back()));
  std::printf("batches: %lld dispatched, mean coalesce %.1f rows (max %lld)\n",
              static_cast<long long>(stats.batches), stats.mean_batch_size,
              static_cast<long long>(cfg.max_batch));
  std::printf("queue: peak depth %zu of %zu\n", stats.peak_queue_depth,
              cfg.queue_capacity);
  std::printf("latency: mean %.2fms  p50 %.2fms  p95 %.2fms  p99 %.2fms  "
              "max %.2fms\n",
              stats.latency.mean_s * 1e3, stats.latency.p50_s * 1e3,
              stats.latency.p95_s * 1e3, stats.latency.p99_s * 1e3,
              stats.latency.max_s * 1e3);
  std::printf("compute: %.3fs total encode time (%.1f%% of %.2fs wall)\n",
              stats.total_compute_s, 100.0 * stats.total_compute_s / wall,
              wall);

  std::printf("\n--- per-model ---\n");
  std::printf("%-16s %4s %5s %9s %9s %7s %7s %9s %8s %8s %9s\n", "model",
              "ver", "prec", "ok", "rejected", "shed", "batches", "mean_coal",
              "p50_ms", "p99_ms", "budget_ms");
  for (const serve::ModelInfo& info : server.registry().list()) {
    const serve::ServerStats s = server.stats(info.name);
    const bool slo_known = info.budget_s > 0 && s.completed > 0;
    std::printf("%-16s %4llu %5s %9lld %9lld %7lld %7lld %9.1f %8.2f %8.2f "
                "%9.1f%s\n",
                info.name.c_str(),
                static_cast<unsigned long long>(info.version),
                info.precision.c_str(), static_cast<long long>(s.completed),
                static_cast<long long>(s.rejected),
                static_cast<long long>(s.shed),
                static_cast<long long>(s.batches), s.mean_batch_size,
                s.latency.p50_s * 1e3, s.latency.p99_s * 1e3,
                info.budget_s * 1e3,
                !slo_known ? ""
                : s.latency.p99_s <= info.budget_s ? "  [slo met]"
                                                   : "  [slo MISSED]");
  }

  // Per-stage latency breakdown from the registry histograms (queue wait /
  // collect / compute / scatter plus the end-to-end serve.latency).
  std::printf("\n--- stage latency (ms) ---\n");
  std::printf("%-18s %9s %8s %8s %8s %8s %8s\n", "stage", "count", "mean",
              "p50", "p95", "p99", "max");
  for (const obs::HistogramSample& h : obs::metrics::snapshot_histograms()) {
    if (h.name.rfind("serve.", 0) != 0 || h.snapshot.count == 0) continue;
    if (h.name.rfind("serve.model.", 0) == 0) continue;  // per-model table ^
    const serve::LatencySummary s = serve::summarize(h.snapshot);
    std::printf("%-18s %9lld %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                h.name.c_str() + 6, static_cast<long long>(s.count),
                s.mean_s * 1e3, s.p50_s * 1e3, s.p95_s * 1e3, s.p99_s * 1e3,
                s.max_s * 1e3);
  }
  std::printf("\n--- metrics ---\n");
  for (const obs::MetricSample& m : obs::metrics::snapshot()) {
    if (m.kind == obs::MetricSample::Kind::kHistogram) continue;
    if (m.value == 0) continue;
    std::printf("  %-28s %.6g\n", m.name.c_str(), m.value);
  }

  if (options.has("profile")) {
    const std::string path = options.get_string("profile");
    obs::Profiler::write_chrome_json(path);
    std::printf("profile written to %s\n", path.c_str());
  }
  if (telemetry) {
    telemetry->flush();
    std::printf("telemetry: %lld records written to %s\n",
                static_cast<long long>(telemetry->records_written()),
                options.get_string("telemetry").c_str());
  }
  if (stats_http) {
    const double linger = options.get_double("stats-linger-s");
    if (linger > 0) {
      std::printf("stats: endpoint stays up %.1fs for final scrapes...\n",
                  linger);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::duration<double>(linger));
    }
    std::printf("stats: answered %lld HTTP requests on port %d\n",
                static_cast<long long>(stats_http->requests_served()),
                stats_http->port());
    stats_http->stop();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deepphi_serve: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
}
