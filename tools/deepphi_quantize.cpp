// deepphi_quantize — offline int8 quantization of a trained checkpoint.
//
// Loads any float checkpoint through model_io::load_any, quantizes its
// encode path to groupwise int8 (core::QuantizedEncoder), reports the weight
// reconstruction error and an encode-output delta on a probe batch, and
// saves the result as a DPQE checkpoint that deepphi_serve / deepphi_eval
// load directly.
//
//   deepphi_quantize --model=stack.dpsa --out=stack.dpqe
//   deepphi_quantize --model=sae.dpae --out=sae.dpqe --group=128
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "core/model_io.hpp"
#include "core/quantized_encoder.hpp"
#include "la/quant.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

namespace {

using namespace deepphi;

int run(int argc, char** argv) {
  util::Options options = util::Options::parse(argc, argv);
  options.declare("model", "float checkpoint to quantize "
                           "(.dpae/.dprb/.dpsa/.dpdb)");
  options.declare("out", "output DPQE checkpoint path");
  options.declare("group",
                  "quantization group: codes per scale, multiple of 64", "64");
  options.declare("probe",
                  "probe batch rows for the encode-output delta report",
                  "256");
  options.declare("seed", "probe batch seed", "42");
  options.declare("help", "print usage");
  if (options.has("help")) {
    std::printf("%s", options.help("deepphi_quantize").c_str());
    return 0;
  }
  options.validate();
  DEEPPHI_CHECK_MSG(options.has("model"), "--model=<checkpoint> is required");
  DEEPPHI_CHECK_MSG(options.has("out"), "--out=<path.dpqe> is required");

  std::unique_ptr<core::Encoder> model =
      model_io::load_any(options.get_string("model")).model;
  std::printf("quantizing %s\n", model->describe().c_str());

  const auto group = static_cast<la::Index>(options.get_int("group"));
  std::unique_ptr<core::QuantizedEncoder> quantized =
      core::QuantizedEncoder::from(*model, group);

  // Per-layer geometry and the worst-case weight rounding step (half the
  // coarsest group's scale — symmetric round-to-nearest quantization cannot
  // be off by more than scale/2 per weight).
  for (std::size_t k = 0; k < quantized->layers(); ++k) {
    const auto& w = quantized->layer(k).w;
    float max_scale = 0.0f;
    for (la::Index r = 0; r < w.rows(); ++r)
      for (la::Index g = 0; g < w.groups(); ++g)
        max_scale = std::max(max_scale, w.scales(r)[g]);
    std::printf("  layer %zu: %lldx%lld, group %lld, max weight error %.3g\n",
                k, static_cast<long long>(w.rows()),
                static_cast<long long>(w.cols()),
                static_cast<long long>(w.group()), 0.5f * max_scale);
  }

  // Encode-output delta on a uniform probe batch: the end-to-end accuracy
  // cost of serving this checkpoint at int8.
  const auto probe = static_cast<la::Index>(options.get_int("probe"));
  util::Rng rng(static_cast<std::uint64_t>(options.get_int("seed")),
                /*stream=*/0x0DE1);
  la::Matrix x(probe, model->input_dim());
  for (la::Index i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform_float();
  la::Matrix y_fp32, y_int8;
  model->encode(x, y_fp32);
  quantized->encode(x, y_int8);
  double mean_abs = 0, max_abs = 0;
  for (la::Index i = 0; i < y_fp32.size(); ++i) {
    const double d = std::fabs(static_cast<double>(y_fp32.data()[i]) -
                               static_cast<double>(y_int8.data()[i]));
    mean_abs += d;
    max_abs = std::max(max_abs, d);
  }
  mean_abs /= static_cast<double>(y_fp32.size());
  std::printf("probe encode delta vs fp32 (%lld rows): mean |d| %.3g, "
              "max |d| %.3g\n",
              static_cast<long long>(probe), mean_abs, max_abs);

  const std::string out = options.get_string("out");
  core::save_model(*quantized, out);
  std::printf("saved %s to %s\n", quantized->describe().c_str(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deepphi_quantize: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
}
