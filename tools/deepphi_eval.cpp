// deepphi_eval — inspect and evaluate a trained checkpoint.
//
// Auto-detects the checkpoint type from its magic (DPAE / DPRB / DPSA /
// DPDB), evaluates it on a dataset (DPDS, IDX, or synthetic), and can export
// the encoded codes as a DPDS dataset for downstream use.
//
//   deepphi_eval --model=stack.dpsa --synthetic=digits --examples=1024
//   deepphi_eval --model=sae.dpae --idx=t10k-images-idx3-ubyte --filters=3
//   deepphi_eval --model=dbn.dpdb --data=patches.dpds --export-codes=codes.dpds
#include <cstdio>
#include <fstream>

#include "core/metrics.hpp"
#include "core/model_io.hpp"
#include "obs/profiler.hpp"
#include "data/binary_io.hpp"
#include "data/idx_io.hpp"
#include "data/patches.hpp"
#include "util/options.hpp"

namespace {

using namespace deepphi;

std::string read_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DEEPPHI_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  char magic[4];
  in.read(magic, 4);
  DEEPPHI_CHECK_MSG(in.good(), "'" << path << "' too short for a checkpoint");
  return std::string(magic, 4);
}

data::Dataset load_data(const util::Options& options) {
  if (options.has("data")) return data::load_dataset(options.get_string("data"));
  if (options.has("idx")) return data::load_idx_images(options.get_string("idx"));
  const std::string synthetic = options.get_string("synthetic");
  const la::Index examples = options.get_int("examples");
  const la::Index patch = options.get_int("patch");
  if (synthetic == "digits")
    return data::make_digit_patch_dataset(examples, patch, 1);
  if (synthetic == "natural")
    return data::make_natural_patch_dataset(examples, patch, 1);
  throw util::Error("unknown --synthetic '" + synthetic + "' (digits|natural)");
}

void maybe_export_codes(const util::Options& options, const la::Matrix& codes) {
  if (!options.has("export-codes")) return;
  const std::string path = options.get_string("export-codes");
  data::save_dataset(data::Dataset(la::Matrix(codes)), path);
  std::printf("codes (%lldx%lld) exported to %s\n",
              static_cast<long long>(codes.rows()),
              static_cast<long long>(codes.cols()), path.c_str());
}

void print_filters(const la::Matrix& w, int count) {
  // Only renderable when the input is a square patch.
  la::Index side = 1;
  while (side * side < w.cols()) ++side;
  if (side * side != w.cols()) {
    std::printf("(input dim %lld is not square; skipping filter render)\n",
                static_cast<long long>(w.cols()));
    return;
  }
  for (int u = 0; u < count && u < w.rows(); ++u)
    std::printf("filter %d:\n%s\n", u,
                core::ascii_filter(w, u, side).c_str());
}

int run(int argc, char** argv) {
  util::Options options = util::Options::parse(argc, argv);
  options.declare("model", "checkpoint path (.dpae/.dprb/.dpsa/.dpdb)");
  options.declare("data", "path to a DPDS dataset file");
  options.declare("idx", "path to an IDX3 image file");
  options.declare("synthetic", "built-in generator: digits | natural", "digits");
  options.declare("examples", "synthetic examples to generate", "1024");
  options.declare("patch", "synthetic patch side", "8");
  options.declare("filters", "render this many first-layer filters as ASCII",
                  "0");
  options.declare("export-codes", "write the encoded dataset to this path");
  options.declare("profile",
                  "write a Chrome-trace JSON of the evaluation's host "
                  "timeline to this path");
  options.declare("help", "print usage");
  if (options.has("help")) {
    std::printf("%s", options.help("deepphi_eval").c_str());
    return 0;
  }
  options.validate();
  DEEPPHI_CHECK_MSG(options.has("model"), "--model=<checkpoint> is required");
  if (options.has("profile")) {
    obs::set_thread_name("main");
    obs::Profiler::enable(true);
  }

  const std::string path = options.get_string("model");
  const std::string magic = read_magic(path);
  data::Dataset dataset = load_data(options);
  const int filters = static_cast<int>(options.get_int("filters"));
  la::Matrix x(dataset.size(), dataset.dim());
  dataset.copy_batch(0, dataset.size(), x);

  if (magic == "DPAE") {
    core::SparseAutoencoder model = core::load_sae(path);
    std::printf("Sparse Autoencoder %lld -> %lld (rho=%.3f beta=%.3f)\n",
                static_cast<long long>(model.visible()),
                static_cast<long long>(model.hidden()), model.config().rho,
                model.config().beta);
    std::printf("reconstruction error: %.5f\n",
                core::reconstruction_error(model, dataset, dataset.size()));
    std::printf("mean hidden activation: %.4f\n",
                core::mean_hidden_activation(model, dataset, dataset.size()));
    std::printf("localized filters: %.0f%%\n",
                core::localized_filter_fraction(model.w1()) * 100);
    la::Matrix codes;
    model.encode(x, codes);
    maybe_export_codes(options, codes);
    if (filters > 0) print_filters(model.w1(), filters);
  } else if (magic == "DPRB") {
    core::Rbm model = core::load_rbm(path);
    std::printf("RBM %lld -> %lld (cd_k=%d, %s visibles)\n",
                static_cast<long long>(model.visible()),
                static_cast<long long>(model.hidden()), model.config().cd_k,
                model.config().visible_type == core::VisibleType::kGaussian
                    ? "Gaussian"
                    : "Bernoulli");
    std::printf("reconstruction error: %.5f\n",
                core::reconstruction_error(model, dataset, dataset.size()));
    core::Rbm::Workspace ws;
    std::printf("mean free energy: %.4f\n", model.free_energy(x, ws));
    la::Matrix codes;
    model.hidden_mean(x, codes);
    maybe_export_codes(options, codes);
    if (filters > 0) print_filters(model.w(), filters);
  } else if (magic == "DPSA") {
    core::StackedAutoencoder model = core::load_stacked_sae(path);
    std::printf("Stacked Autoencoder:");
    for (la::Index s : model.layer_sizes())
      std::printf(" %lld", static_cast<long long>(s));
    std::printf(" (%zu layers)\n", model.layers());
    std::printf("layer-0 reconstruction error: %.5f\n",
                core::reconstruction_error(model.layer(0), dataset,
                                           dataset.size()));
    la::Matrix codes;
    model.encode(x, codes);
    double mean = 0;
    for (la::Index i = 0; i < codes.size(); ++i) mean += codes.data()[i];
    std::printf("top code: %lldd, mean activity %.4f\n",
                static_cast<long long>(codes.cols()),
                mean / static_cast<double>(codes.size()));
    maybe_export_codes(options, codes);
    if (filters > 0) print_filters(model.layer(0).w1(), filters);
  } else if (magic == "DPDB") {
    core::Dbn model = core::load_dbn(path);
    std::printf("DBN:");
    for (la::Index s : model.layer_sizes())
      std::printf(" %lld", static_cast<long long>(s));
    std::printf(" (%zu RBMs)\n", model.layers());
    std::printf("layer-0 reconstruction error: %.5f\n",
                core::reconstruction_error(model.layer(0), dataset,
                                           dataset.size()));
    la::Matrix codes;
    model.up_pass(x, codes);
    maybe_export_codes(options, codes);
    if (filters > 0) print_filters(model.layer(0).w(), filters);
  } else {
    throw util::Error("'" + path + "' has unknown checkpoint magic '" + magic +
                      "'");
  }

  if (options.has("profile")) {
    const std::string out = options.get_string("profile");
    obs::Profiler::write_chrome_json(out);
    std::printf("profile written to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deepphi_eval: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
}
