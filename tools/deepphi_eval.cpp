// deepphi_eval — inspect and evaluate a trained checkpoint.
//
// Loads ANY checkpoint through model_io::load_any (the magic is sniffed, no
// per-type flags), evaluates it on a dataset (DPDS, IDX, or synthetic)
// through the unified core::Encoder interface, and can export the encoded
// codes as a DPDS dataset for downstream use.
//
//   deepphi_eval --model=stack.dpsa --synthetic=digits --examples=1024
//   deepphi_eval --model=sae.dpae --idx=t10k-images-idx3-ubyte --filters=3
//   deepphi_eval --model=dbn.dpdb --data=patches.dpds --export-codes=codes.dpds
#include <cstdio>

#include "core/encoder.hpp"
#include "core/metrics.hpp"
#include "core/model_io.hpp"
#include "data/binary_io.hpp"
#include "data/idx_io.hpp"
#include "data/patches.hpp"
#include "obs/profiler.hpp"
#include "util/options.hpp"

namespace {

using namespace deepphi;

data::Dataset load_data(const util::Options& options) {
  if (options.has("data")) return data::load_dataset(options.get_string("data"));
  if (options.has("idx")) return data::load_idx_images(options.get_string("idx"));
  const std::string synthetic = options.get_string("synthetic");
  const la::Index examples = options.get_int("examples");
  const la::Index patch = options.get_int("patch");
  if (synthetic == "digits")
    return data::make_digit_patch_dataset(examples, patch, 1);
  if (synthetic == "natural")
    return data::make_natural_patch_dataset(examples, patch, 1);
  throw util::Error("unknown --synthetic '" + synthetic + "' (digits|natural)");
}

void maybe_export_codes(const util::Options& options, const la::Matrix& codes) {
  if (!options.has("export-codes")) return;
  const std::string path = options.get_string("export-codes");
  data::save_dataset(data::Dataset(la::Matrix(codes)), path);
  std::printf("codes (%lldx%lld) exported to %s\n",
              static_cast<long long>(codes.rows()),
              static_cast<long long>(codes.cols()), path.c_str());
}

void print_filters(const la::Matrix& w, int count) {
  // Only renderable when the input is a square patch.
  la::Index side = 1;
  while (side * side < w.cols()) ++side;
  if (side * side != w.cols()) {
    std::printf("(input dim %lld is not square; skipping filter render)\n",
                static_cast<long long>(w.cols()));
    return;
  }
  for (int u = 0; u < count && u < w.rows(); ++u)
    std::printf("filter %d:\n%s\n", u,
                core::ascii_filter(w, u, side).c_str());
}

/// The model's first-layer weight matrix, when it has one to render
/// (per-type knowledge stays here, out of the shared evaluation path).
const la::Matrix* first_layer_weights(const core::Encoder& model) {
  if (auto* sae = dynamic_cast<const core::SparseAutoencoder*>(&model))
    return &sae->w1();
  if (auto* rbm = dynamic_cast<const core::Rbm*>(&model)) return &rbm->w();
  if (auto* stack = dynamic_cast<const core::StackedAutoencoder*>(&model))
    return &stack->layer(0).w1();
  if (auto* dbn = dynamic_cast<const core::Dbn*>(&model))
    return &dbn->layer(0).w();
  return nullptr;
}

/// Type-specific quality metrics (reconstruction error needs the decoder
/// half, which the Encoder interface deliberately does not expose).
void print_model_metrics(const core::Encoder& model,
                         const data::Dataset& dataset) {
  if (auto* sae = dynamic_cast<const core::SparseAutoencoder*>(&model)) {
    std::printf("reconstruction error: %.5f\n",
                core::reconstruction_error(*sae, dataset, dataset.size()));
    std::printf("mean hidden activation: %.4f\n",
                core::mean_hidden_activation(*sae, dataset, dataset.size()));
    std::printf("localized filters: %.0f%%\n",
                core::localized_filter_fraction(sae->w1()) * 100);
  } else if (auto* rbm = dynamic_cast<const core::Rbm*>(&model)) {
    std::printf("reconstruction error: %.5f\n",
                core::reconstruction_error(*rbm, dataset, dataset.size()));
    la::Matrix x(dataset.size(), dataset.dim());
    dataset.copy_batch(0, dataset.size(), x);
    core::Rbm::Workspace ws;
    std::printf("mean free energy: %.4f\n", rbm->free_energy(x, ws));
  } else if (auto* stack =
                 dynamic_cast<const core::StackedAutoencoder*>(&model)) {
    std::printf("layer-0 reconstruction error: %.5f\n",
                core::reconstruction_error(stack->layer(0), dataset,
                                           dataset.size()));
  } else if (auto* dbn = dynamic_cast<const core::Dbn*>(&model)) {
    std::printf("layer-0 reconstruction error: %.5f\n",
                core::reconstruction_error(dbn->layer(0), dataset,
                                           dataset.size()));
  }
}

int run(int argc, char** argv) {
  util::Options options = util::Options::parse(argc, argv);
  options.declare("model", "checkpoint path (.dpae/.dprb/.dpsa/.dpdb)");
  options.declare("data", "path to a DPDS dataset file");
  options.declare("idx", "path to an IDX3 image file");
  options.declare("synthetic", "built-in generator: digits | natural", "digits");
  options.declare("examples", "synthetic examples to generate", "1024");
  options.declare("patch", "synthetic patch side", "8");
  options.declare("filters", "render this many first-layer filters as ASCII",
                  "0");
  options.declare("export-codes", "write the encoded dataset to this path");
  options.declare("profile",
                  "write a Chrome-trace JSON of the evaluation's host "
                  "timeline to this path");
  options.declare("help", "print usage");
  if (options.has("help")) {
    std::printf("%s", options.help("deepphi_eval").c_str());
    return 0;
  }
  options.validate();
  DEEPPHI_CHECK_MSG(options.has("model"), "--model=<checkpoint> is required");
  if (options.has("profile")) {
    obs::set_thread_name("main");
    obs::Profiler::enable(true);
  }

  const std::string path = options.get_string("model");
  std::unique_ptr<core::Encoder> model = model_io::load_any(path).model;
  std::printf("%s\n", model->describe().c_str());

  data::Dataset dataset = load_data(options);
  la::Matrix x(dataset.size(), dataset.dim());
  dataset.copy_batch(0, dataset.size(), x);

  print_model_metrics(*model, dataset);

  la::Matrix codes;
  model->encode(x, codes);
  double mean = 0;
  for (la::Index i = 0; i < codes.size(); ++i) mean += codes.data()[i];
  std::printf("codes: %lldd, mean activity %.4f\n",
              static_cast<long long>(codes.cols()),
              mean / static_cast<double>(codes.size()));
  maybe_export_codes(options, codes);

  const int filters = static_cast<int>(options.get_int("filters"));
  if (filters > 0) {
    if (const la::Matrix* w = first_layer_weights(*model))
      print_filters(*w, filters);
    else
      std::printf("(model has no renderable first-layer filters)\n");
  }

  if (options.has("profile")) {
    const std::string out = options.get_string("profile");
    obs::Profiler::write_chrome_json(out);
    std::printf("profile written to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deepphi_eval: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
}
