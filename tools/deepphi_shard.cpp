// deepphi_shard — build and check sharded streaming datasets
// (docs/data_pipeline.md).
//
// Converts any dataset deepphi_train can load (DPDS binary, MNIST IDX, or
// the built-in synthetic generators) into a directory of raw shard files
// plus a deepphi.manifest.v1 manifest, which deepphi_train then streams
// out-of-core via --data-manifest. The synthetic flags share deepphi_train's
// defaults, so `deepphi_shard --out=D` followed by
// `deepphi_train --data-manifest=D/manifest.json` trains on exactly the
// corpus `deepphi_train` (no flags) would generate in memory.
//
// Examples:
//   # shard the default synthetic corpus, 2048 rows per shard
//   deepphi_shard --out=digits_shards --rows-per-shard=2048
//
//   # shard MNIST as u8 (no 4x float inflation on disk)
//   deepphi_shard --idx=train-images-idx3-ubyte --dtype=u8 --out=mnist_shards
//
//   # integrity-check an existing manifest (re-hashes every shard)
//   deepphi_shard --check=mnist_shards/manifest.json
#include <cstdio>

#include "data/binary_io.hpp"
#include "data/idx_io.hpp"
#include "data/patches.hpp"
#include "data/sharded_dataset.hpp"
#include "util/error.hpp"
#include "util/options.hpp"

namespace {

using namespace deepphi;

data::Dataset load_data(const util::Options& options) {
  if (options.has("data")) return data::load_dataset(options.get_string("data"));
  if (options.has("idx")) return data::load_idx_images(options.get_string("idx"));
  const std::string synthetic = options.get_string("synthetic");
  const la::Index examples = options.get_int("examples");
  const la::Index patch = options.get_int("patch");
  const std::uint64_t seed = options.get_int("seed");
  if (synthetic == "digits")
    return data::make_digit_patch_dataset(examples, patch, seed);
  if (synthetic == "natural")
    return data::make_natural_patch_dataset(examples, patch, seed);
  throw util::Error("unknown --synthetic '" + synthetic + "' (digits|natural)");
}

void print_summary(const data::ShardedDataset& set) {
  const data::Manifest& m = set.manifest();
  std::printf("%s: %lld rows of dim %lld, dtype %s, %d shards, %.1f MB\n",
              set.manifest_path().c_str(), static_cast<long long>(m.rows),
              static_cast<long long>(m.dim), data::dtype_name(m.dtype),
              set.shard_count(), static_cast<double>(m.total_bytes()) / 1e6);
}

}  // namespace

int run(int argc, char** argv) {
  using namespace deepphi;
  util::Options options = util::Options::parse(argc, argv);
  options.declare("data", "path to a DPDS dataset file to shard");
  options.declare("idx", "path to an IDX3 image file (e.g. MNIST) to shard");
  options.declare("synthetic", "built-in generator: digits | natural",
                  "digits");
  options.declare("examples", "synthetic examples to generate", "4096");
  options.declare("patch", "synthetic patch side (dim = patch^2)", "8");
  options.declare("seed", "random seed for the synthetic generators", "42");
  options.declare("out", "directory to write shard files + manifest.json into");
  options.declare("rows-per-shard", "examples per shard file", "8192");
  options.declare("dtype",
                  "on-media shard encoding: f32 (exact) | u8 "
                  "(clamp(v,0,1)*255, exact for u8-origin data)", "f32");
  options.declare("check",
                  "existing manifest to integrity-check (re-hashes every "
                  "shard payload) instead of writing");
  options.declare("help", "print usage");
  if (options.has("help")) {
    std::printf("%s", options.help("deepphi_shard").c_str());
    return 0;
  }
  options.validate();

  if (options.has("check")) {
    data::ShardedDataset::OpenOptions open_opts;
    open_opts.verify_checksums = true;
    data::ShardedDataset set = data::ShardedDataset::open(
        options.get_string("check"), open_opts);
    print_summary(set);
    std::printf("all %d shard checksums verified\n", set.shard_count());
    return 0;
  }

  DEEPPHI_CHECK_MSG(options.has("out"),
                    "--out=DIR is required (or --check=MANIFEST)");
  const data::Dataset dataset = load_data(options);
  data::ShardWriteOptions write_opts;
  write_opts.rows_per_shard = options.get_int("rows-per-shard");
  write_opts.dtype = data::parse_dtype(options.get_string("dtype"));
  const std::string manifest_path =
      data::write_sharded(dataset, options.get_string("out"), write_opts);
  print_summary(data::ShardedDataset::open(manifest_path));
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deepphi_shard: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
}
