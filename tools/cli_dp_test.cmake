# CTest script: train with data-parallel replicas (--replicas 4 --accum 2)
# plus telemetry, then validate that the run header carries the data-parallel
# geometry (replicas / slots / shard layout) alongside the usual schema'd
# records. Exercises the ReplicaGroup + tree all-reduce path end to end
# through the CLI, not just the unit tests.
execute_process(
  COMMAND ${TRAIN} --model=sae --synthetic=digits --examples=512 --epochs=2
          --hidden=16 --chunk=128 --batch=16 --replicas=4 --accum=2
          --telemetry ${WORK}/dp_run.jsonl
  RESULT_VARIABLE train_rc)
if(NOT train_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train --replicas=4 --accum=2 failed: ${train_rc}")
endif()

execute_process(
  COMMAND ${CHECK} --jsonl --require=record --require=seq
          --expect=deepphi.telemetry.v1 --expect=run_header
          --expect=run_summary ${WORK}/dp_run.jsonl
  RESULT_VARIABLE telemetry_rc)
if(NOT telemetry_rc EQUAL 0)
  message(FATAL_ERROR "dp telemetry JSONL failed validation: ${telemetry_rc}")
endif()

# The run header must record the data-parallel geometry.
file(STRINGS ${WORK}/dp_run.jsonl header_line LIMIT_COUNT 1)
foreach(key "\"replicas\":4" "\"accumulation_steps\":2" "\"slots\":8"
        "\"shard_rows\"")
  string(FIND "${header_line}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "run header missing ${key}: ${header_line}")
  endif()
endforeach()
