# CTest script: train across simulated cards (--cards 2 --replicas 2) with a
# pinned collective, then validate that the run header carries the cluster
# geometry (cards / interconnect / collective) and that the CLI prints the
# communication report. Exercises the phi::Cluster + collectives path end to
# end through the CLI, not just the unit tests.
execute_process(
  COMMAND ${TRAIN} --model=sae --synthetic=digits --examples=512 --epochs=2
          --hidden=16 --chunk=128 --batch=16 --cards=2 --replicas=2
          --interconnect=pcie-p2p --collective=ring
          --telemetry ${WORK}/cluster_run.jsonl
  OUTPUT_VARIABLE train_out
  RESULT_VARIABLE train_rc)
if(NOT train_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train --cards=2 --replicas=2 failed: ${train_rc}")
endif()

execute_process(
  COMMAND ${CHECK} --jsonl --require=record --require=seq
          --expect=deepphi.telemetry.v1 --expect=run_header
          --expect=run_summary ${WORK}/cluster_run.jsonl
  RESULT_VARIABLE telemetry_rc)
if(NOT telemetry_rc EQUAL 0)
  message(FATAL_ERROR "cluster telemetry JSONL failed validation: ${telemetry_rc}")
endif()

# The run header must record the cluster geometry and collective choice.
file(STRINGS ${WORK}/cluster_run.jsonl header_line LIMIT_COUNT 1)
foreach(key "\"cards\":2" "\"interconnect\":\"pcie-p2p\""
        "\"collective\":\"ring\"" "\"replicas\":2" "\"slots\":4"
        "\"shard_rows\"")
  string(FIND "${header_line}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "run header missing ${key}: ${header_line}")
  endif()
endforeach()

# The CLI's final report must include the communication summary.
foreach(needle "cluster: 2 cards" "all-reduces" "communication")
  string(FIND "${train_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "train output missing '${needle}': ${train_out}")
  endif()
endforeach()
