# CTest script: the int8 serving path end to end. Train a tiny stacked
# checkpoint, quantize it offline with deepphi_quantize, serve the DPQE file
# and validate the telemetry records precision=int8, then serve the original
# float checkpoint with --precision=int8 (on-the-fly quantization) and with
# the default fp32 path, checking each header. Finally the mismatch case:
# --precision=fp32 on an int8 checkpoint must fail.
execute_process(
  COMMAND ${TRAIN} --model=stack --synthetic=digits --examples=256 --epochs=1
          --layers=64,16 --save=${WORK}/quant_smoke.dpsa
  RESULT_VARIABLE train_rc)
if(NOT train_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train for quant smoke failed: ${train_rc}")
endif()

execute_process(
  COMMAND ${QUANTIZE} --model=${WORK}/quant_smoke.dpsa
          --out=${WORK}/quant_smoke.dpqe
  RESULT_VARIABLE quantize_rc)
if(NOT quantize_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_quantize failed: ${quantize_rc}")
endif()

execute_process(
  COMMAND ${SERVE} --model=${WORK}/quant_smoke.dpqe --rate=4000 --requests=200
          --max-batch=32 --max-delay-ms=1
          --telemetry=${WORK}/quant_serve.jsonl
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_serve of the DPQE checkpoint failed: ${serve_rc}")
endif()
execute_process(
  COMMAND ${CHECK} --jsonl --require=record --require=seq
          --expect=deepphi.serve.v1 --expect=serve_config
          --expect=precision --expect=int8
          --expect=serve_summary ${WORK}/quant_serve.jsonl
  RESULT_VARIABLE telemetry_rc)
if(NOT telemetry_rc EQUAL 0)
  message(FATAL_ERROR "int8 serve telemetry failed validation: ${telemetry_rc}")
endif()

# On-the-fly quantization of the float checkpoint.
execute_process(
  COMMAND ${SERVE} --model=${WORK}/quant_smoke.dpsa --precision=int8
          --rate=4000 --requests=200 --max-batch=32 --max-delay-ms=1
          --telemetry=${WORK}/quant_serve_otf.jsonl
  RESULT_VARIABLE otf_rc)
if(NOT otf_rc EQUAL 0)
  message(FATAL_ERROR "--precision=int8 on a float checkpoint failed: ${otf_rc}")
endif()
execute_process(
  COMMAND ${CHECK} --jsonl --require=record
          --expect=precision --expect=int8 ${WORK}/quant_serve_otf.jsonl
  RESULT_VARIABLE otf_check_rc)
if(NOT otf_check_rc EQUAL 0)
  message(FATAL_ERROR "on-the-fly int8 telemetry failed: ${otf_check_rc}")
endif()

# Default path still records fp32.
execute_process(
  COMMAND ${SERVE} --model=${WORK}/quant_smoke.dpsa --rate=4000 --requests=100
          --max-batch=32 --max-delay-ms=1
          --telemetry=${WORK}/quant_serve_fp32.jsonl
  RESULT_VARIABLE fp32_rc)
if(NOT fp32_rc EQUAL 0)
  message(FATAL_ERROR "default fp32 serve failed: ${fp32_rc}")
endif()
execute_process(
  COMMAND ${CHECK} --jsonl --require=record
          --expect=precision --expect=fp32 ${WORK}/quant_serve_fp32.jsonl
  RESULT_VARIABLE fp32_check_rc)
if(NOT fp32_check_rc EQUAL 0)
  message(FATAL_ERROR "fp32 serve telemetry failed: ${fp32_check_rc}")
endif()

# Mismatch: refusing to pretend an int8 checkpoint is fp32.
execute_process(
  COMMAND ${SERVE} --model=${WORK}/quant_smoke.dpqe --precision=fp32
          --rate=1000 --requests=10
  RESULT_VARIABLE mismatch_rc)
if(mismatch_rc EQUAL 0)
  message(FATAL_ERROR "--precision=fp32 on a DPQE checkpoint must fail")
endif()
