# CTest script: train with the observability flags in their space-separated
# form (--profile out.json --telemetry run.jsonl), then validate that the
# profiler emitted a Perfetto-loadable Chrome trace with both host tracks and
# that the telemetry JSONL carries the schema'd records.
execute_process(
  COMMAND ${TRAIN} --model=sae --synthetic=digits --examples=512 --epochs=2
          --hidden=16 --chunk=128
          --profile ${WORK}/obs_trace.json
          --telemetry ${WORK}/obs_run.jsonl
  RESULT_VARIABLE train_rc)
if(NOT train_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train --profile/--telemetry failed: ${train_rc}")
endif()

execute_process(
  COMMAND ${CHECK} --require=traceEvents "--expect=host (measured)"
          --expect=loading ${WORK}/obs_trace.json
  RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
  message(FATAL_ERROR "profile trace failed validation: ${trace_rc}")
endif()

execute_process(
  COMMAND ${CHECK} --jsonl --require=record --require=seq
          --expect=deepphi.telemetry.v1 --expect=run_header
          --expect=run_summary ${WORK}/obs_run.jsonl
  RESULT_VARIABLE telemetry_rc)
if(NOT telemetry_rc EQUAL 0)
  message(FATAL_ERROR "telemetry JSONL failed validation: ${telemetry_rc}")
endif()
