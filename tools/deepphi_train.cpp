// deepphi_train — command-line unsupervised pre-training.
//
// Train any of the paper's models on a dataset file (DPDS binary or MNIST
// IDX) or on the built-in synthetic generators, then report metrics and
// optionally checkpoint the result.
//
// Examples:
//   # quick synthetic run
//   deepphi_train --model=sae --synthetic=digits --examples=4096 --epochs=6
//
//   # stacked autoencoder on MNIST, saved for later
//   deepphi_train --model=stack --idx=train-images-idx3-ubyte
//                 --layers=784,256,64 --epochs=3 --save=stack.dpsa
//
//   # DBN with CD-2 and the Fig. 6 task graph
//   deepphi_train --model=dbn --synthetic=natural --layers=64,32 --cd-k=2
//                 --taskgraph
#include <cstdio>
#include <memory>
#include <thread>

#include "core/dbn.hpp"
#include "core/metrics.hpp"
#include "core/model_io.hpp"
#include "core/stacked_autoencoder.hpp"
#include "core/trainer.hpp"
#include "data/binary_io.hpp"
#include "data/chunk_stream.hpp"
#include "data/idx_io.hpp"
#include "data/sharded_dataset.hpp"
#include "data/patches.hpp"
#include "la/simd/dispatch.hpp"
#include "parallel/collectives.hpp"
#include "phi/cluster.hpp"
#include "phi/interconnect.hpp"
#include "phi/machine_spec.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace deepphi;

std::vector<la::Index> parse_layers(const std::string& spec) {
  std::vector<la::Index> sizes;
  for (const std::string& part : util::split(spec, ','))
    sizes.push_back(static_cast<la::Index>(util::parse_int(util::trim(part))));
  return sizes;
}

core::OptLevel parse_level(const std::string& name) {
  const std::string v = util::to_lower(name);
  if (v == "baseline") return core::OptLevel::kBaseline;
  if (v == "openmp") return core::OptLevel::kOpenMp;
  if (v == "openmp+mkl" || v == "mkl") return core::OptLevel::kOpenMpMkl;
  if (v == "improved") return core::OptLevel::kImproved;
  throw util::Error("unknown --level '" + name +
                    "' (baseline|openmp|openmp+mkl|improved)");
}

core::OptimizerKind parse_optimizer(const std::string& name) {
  const std::string v = util::to_lower(name);
  if (v == "sgd") return core::OptimizerKind::kSgd;
  if (v == "momentum") return core::OptimizerKind::kMomentum;
  if (v == "adagrad") return core::OptimizerKind::kAdagrad;
  throw util::Error("unknown --optimizer '" + name + "' (sgd|momentum|adagrad)");
}

data::Dataset load_data(const util::Options& options) {
  if (options.has("data")) return data::load_dataset(options.get_string("data"));
  if (options.has("idx")) return data::load_idx_images(options.get_string("idx"));
  const std::string synthetic = options.get_string("synthetic");
  const la::Index examples = options.get_int("examples");
  const la::Index patch = options.get_int("patch");
  const std::uint64_t seed = options.get_int("seed");
  if (synthetic == "digits")
    return data::make_digit_patch_dataset(examples, patch, seed);
  if (synthetic == "natural")
    return data::make_natural_patch_dataset(examples, patch, seed);
  throw util::Error("unknown --synthetic '" + synthetic + "' (digits|natural)");
}

void print_report(const char* label, const core::TrainReport& report) {
  std::printf(
      "%s: %lld batches / %lld updates / %lld chunks, cost %.5f -> %.5f, "
      "%.2fs wall\n",
      label, static_cast<long long>(report.batches),
      static_cast<long long>(report.updates),
      static_cast<long long>(report.chunks),
      report.chunk_mean_costs.front(), report.chunk_mean_costs.back(),
      report.wall_seconds);
}

// Per-slot row counts of one full gradient group, e.g. "128,128,128,128" —
// the shard layout every full group of the run uses (ragged tails shrink it).
std::string shard_layout(const core::TrainerConfig& tcfg) {
  const int slots = tcfg.replicas * tcfg.accumulation_steps * tcfg.cards;
  const la::Index group = std::min(
      static_cast<la::Index>(slots) * tcfg.batch_size, tcfg.chunk_examples);
  std::string out;
  for (const data::RowShard& shard : data::shard_rows(group, slots)) {
    if (!out.empty()) out += ',';
    out += std::to_string(shard.rows);
  }
  return out;
}

}  // namespace

int run(int argc, char** argv) {
  using namespace deepphi;
  util::Options options = util::Options::parse(argc, argv);
  options.declare("model", "sae | rbm | stack | dbn", "sae");
  options.declare("data", "path to a DPDS dataset file");
  options.declare("data-manifest",
                  "path to a deepphi.manifest.v1 sharded-dataset manifest "
                  "(mmap'd out-of-core streaming; see deepphi_shard)");
  options.declare("verify-shards",
                  "re-hash every shard against its manifest checksum at open");
  options.declare("idx", "path to an IDX3 image file (e.g. MNIST)");
  options.declare("synthetic", "built-in generator: digits | natural", "digits");
  options.declare("examples", "synthetic examples to generate", "4096");
  options.declare("patch", "synthetic patch side (dim = patch^2)", "8");
  options.declare("layers", "comma-separated layer sizes (first = input dim)",
                  "");
  options.declare("hidden", "hidden units for sae/rbm", "32");
  options.declare("batch", "mini-batch size", "128");
  options.declare("chunk", "chunk size (examples per device load)", "2048");
  options.declare("shuffle-window",
                  "windowed-shuffle span in examples (0 = feed in order; "
                  "otherwise >= chunk; docs/data_pipeline.md)", "0");
  options.declare("epochs", "training epochs", "6");
  options.declare("lr", "learning rate", "0.3");
  options.declare("optimizer", "sgd | momentum | adagrad", "sgd");
  options.declare("level", "baseline | openmp | openmp+mkl | improved",
                  "improved");
  options.declare("replicas",
                  "data-parallel replica workers (matrix-form levels; "
                  "docs/data_parallel.md)", "1");
  options.declare("replica-threads",
                  "OpenMP threads per replica (0 = split evenly)", "0");
  options.declare("accum",
                  "gradient accumulation steps per replica per update", "1");
  options.declare("cards",
                  "simulated Xeon Phi cards the global step spreads over "
                  "(docs/cluster.md)", "1");
  options.declare("interconnect",
                  "inter-card path: pcie-p2p | host-staged", "pcie-p2p");
  options.declare("collective",
                  "inter-card all-reduce: auto | tree | rdouble | ring "
                  "(DEEPPHI_COLLECTIVE overrides)", "auto");
  options.declare("cd-k", "contrastive divergence steps (rbm/dbn)", "1");
  options.declare("gaussian-visible", "Gaussian visible units (rbm/dbn)");
  options.declare("taskgraph", "run the RBM step as the Fig. 6 task graph");
  options.declare("tied", "tied weights W2 = W1^T (sae/stack)");
  options.declare("rho", "sparsity target (sae/stack)", "0.05");
  options.declare("beta", "sparsity weight (sae/stack)", "1.0");
  options.declare("lambda", "weight decay (sae/stack)", "1e-4");
  options.declare("seed", "random seed", "42");
  options.declare("save", "checkpoint path to write the trained model");
  options.declare("profile",
                  "write a Chrome-trace JSON of the real host timeline "
                  "(load it in ui.perfetto.dev) to this path");
  options.declare("telemetry",
                  "write JSONL run telemetry (one record per chunk/epoch) "
                  "to this path");
  options.declare("help", "print usage");
  if (options.has("help")) {
    std::printf("%s", options.help("deepphi_train").c_str());
    return 0;
  }
  options.validate();

  if (options.has("profile")) {
    obs::set_thread_name("main");
    obs::Profiler::enable(true);
  }

  const std::string model_kind = options.get_string("model");
  DEEPPHI_CHECK_MSG(
      !options.has("data-manifest") ||
          (model_kind == "sae" || model_kind == "rbm"),
      "--data-manifest streams chunks and supports --model=sae|rbm only; "
      "stack/dbn pretrain on materialized layer activations -- load the set "
      "with --data/--idx/--synthetic instead");

  // The trained path consumes any StreamingSource; the in-memory Dataset is
  // kept when available because the post-train metrics and the stack/dbn
  // pretrain (which materialize layer activations) need it.
  std::unique_ptr<data::Dataset> in_memory;
  std::unique_ptr<data::ShardedDataset> sharded;
  if (options.has("data-manifest")) {
    data::ShardedDataset::OpenOptions open_opts;
    open_opts.verify_checksums = options.has("verify-shards");
    sharded = std::make_unique<data::ShardedDataset>(data::ShardedDataset::open(
        options.get_string("data-manifest"), open_opts));
  } else {
    in_memory = std::make_unique<data::Dataset>(load_data(options));
  }
  const data::StreamingSource& source =
      sharded ? static_cast<const data::StreamingSource&>(*sharded)
              : static_cast<const data::StreamingSource&>(*in_memory);
  const data::SourceInfo source_info = source.info();
  std::printf("dataset: %lld examples of dim %lld (%s, %s, %.1f MB%s)\n",
              static_cast<long long>(source.rows()),
              static_cast<long long>(source.dim()), source_info.kind.c_str(),
              source_info.format.c_str(),
              static_cast<double>(source_info.bytes) / 1e6,
              sharded ? (", " + std::to_string(sharded->shard_count()) +
                         " shards").c_str()
                      : "");

  core::TrainerConfig tcfg;
  tcfg.batch_size = options.get_int("batch");
  tcfg.chunk_examples = std::max<la::Index>(options.get_int("chunk"),
                                            tcfg.batch_size);
  tcfg.epochs = static_cast<int>(options.get_int("epochs"));
  tcfg.shuffle_window = options.get_int("shuffle-window");
  tcfg.level = parse_level(options.get_string("level"));
  tcfg.policy = core::ExecPolicy::kPhiOffload;
  tcfg.use_taskgraph = options.has("taskgraph");
  tcfg.replicas = static_cast<int>(options.get_int("replicas"));
  tcfg.replica_threads = static_cast<int>(options.get_int("replica-threads"));
  tcfg.accumulation_steps = static_cast<int>(options.get_int("accum"));
  tcfg.cards = static_cast<int>(options.get_int("cards"));
  tcfg.collective = par::parse_collective(options.get_string("collective"));
  std::unique_ptr<phi::Cluster> cluster;
  if (tcfg.cards > 1) {
    phi::ClusterConfig ccfg;
    ccfg.cards = tcfg.cards;
    ccfg.interconnect =
        phi::parse_interconnect(options.get_string("interconnect"));
    cluster = std::make_unique<phi::Cluster>(phi::xeon_phi_5110p(), ccfg);
    tcfg.cluster = cluster.get();
    std::printf("cluster: %d cards, %s\n", tcfg.cards,
                ccfg.interconnect.to_string().c_str());
  }
  tcfg.optimizer.kind = parse_optimizer(options.get_string("optimizer"));
  tcfg.optimizer.lr = static_cast<float>(options.get_double("lr"));
  tcfg.seed = static_cast<std::uint64_t>(options.get_int("seed"));

  const std::uint64_t seed = tcfg.seed;

  std::unique_ptr<obs::TelemetrySink> telemetry;
  if (options.has("telemetry")) {
    telemetry =
        std::make_unique<obs::TelemetrySink>(options.get_string("telemetry"));
    using obs::TelemetryField;
    telemetry->emit_run_header(
        "deepphi_train",
        {TelemetryField::str("model", model_kind),
         TelemetryField::str("simd_tier",
                             la::simd::tier_name(la::simd::active_tier())),
         TelemetryField::integer("host_threads",
                                 std::thread::hardware_concurrency()),
         TelemetryField::integer("examples",
                                 static_cast<std::int64_t>(source.rows())),
         TelemetryField::integer("dim",
                                 static_cast<std::int64_t>(source.dim())),
         TelemetryField::str("dataset_source", source_info.kind),
         TelemetryField::str("dataset_format", source_info.format),
         TelemetryField::integer(
             "dataset_bytes", static_cast<std::int64_t>(source_info.bytes)),
         TelemetryField::integer(
             "total_chunks",
             (source.rows() + tcfg.chunk_examples - 1) / tcfg.chunk_examples),
         TelemetryField::integer("batch_size", tcfg.batch_size),
         TelemetryField::integer("chunk_examples", tcfg.chunk_examples),
         TelemetryField::integer("shuffle_window", tcfg.shuffle_window),
         TelemetryField::integer("epochs", tcfg.epochs),
         TelemetryField::str("level", options.get_string("level")),
         TelemetryField::str("optimizer", options.get_string("optimizer")),
         TelemetryField::num("lr", options.get_double("lr")),
         TelemetryField::boolean("taskgraph", tcfg.use_taskgraph),
         TelemetryField::integer("replicas", tcfg.replicas),
         TelemetryField::integer("replica_threads", tcfg.replica_threads),
         TelemetryField::integer("accumulation_steps",
                                 tcfg.accumulation_steps),
         TelemetryField::integer("cards", tcfg.cards),
         TelemetryField::str("interconnect",
                             cluster ? cluster->interconnect().name
                                     : std::string("none")),
         TelemetryField::str(
             "collective",
             par::collective_name(
                 // The env override changes what actually runs; record that.
                 // Guarded on cards like the trainer's own resolution, so a
                 // stray DEEPPHI_COLLECTIVE can't fail a single-card run.
                 tcfg.cards > 1 ? par::effective_collective(tcfg.collective)
                                : tcfg.collective)),
         TelemetryField::integer(
             "slots",
             static_cast<std::int64_t>(tcfg.replicas) *
                 tcfg.accumulation_steps * tcfg.cards),
         TelemetryField::str("shard_rows", shard_layout(tcfg)),
         TelemetryField::integer("seed", static_cast<std::int64_t>(seed))});
    tcfg.telemetry = telemetry.get();
  }

  core::Trainer trainer(tcfg);

  if (model_kind == "sae") {
    core::SaeConfig cfg;
    cfg.visible = source.dim();
    cfg.hidden = options.get_int("hidden");
    cfg.rho = static_cast<float>(options.get_double("rho"));
    cfg.beta = static_cast<float>(options.get_double("beta"));
    cfg.lambda = static_cast<float>(options.get_double("lambda"));
    cfg.tied_weights = options.has("tied");
    core::SparseAutoencoder model(cfg, seed);
    print_report("sae", trainer.train(model, source));
    if (in_memory)
      std::printf("reconstruction error: %.5f, mean activation: %.4f\n",
                  core::reconstruction_error(model, *in_memory),
                  core::mean_hidden_activation(model, *in_memory));
    if (options.has("save")) {
      core::save_model(model, options.get_string("save"));
      std::printf("saved to %s\n", options.get_string("save").c_str());
    }
  } else if (model_kind == "rbm") {
    core::RbmConfig cfg;
    cfg.visible = source.dim();
    cfg.hidden = options.get_int("hidden");
    cfg.cd_k = static_cast<int>(options.get_int("cd-k"));
    if (options.has("gaussian-visible"))
      cfg.visible_type = core::VisibleType::kGaussian;
    core::Rbm model(cfg, seed);
    print_report("rbm", trainer.train(model, source));
    if (in_memory)
      std::printf("reconstruction error: %.5f\n",
                  core::reconstruction_error(model, *in_memory));
    if (options.has("save")) {
      core::save_model(model, options.get_string("save"));
      std::printf("saved to %s\n", options.get_string("save").c_str());
    }
  } else if (model_kind == "stack") {
    DEEPPHI_CHECK_MSG(in_memory != nullptr,
                      "--model=stack pretrains on materialized layer "
                      "activations and cannot stream --data-manifest; load "
                      "the set with --data/--idx/--synthetic instead");
    const std::string spec = options.get_string("layers");
    DEEPPHI_CHECK_MSG(!spec.empty(), "--model=stack needs --layers=a,b,c");
    core::SaeConfig proto;
    proto.rho = static_cast<float>(options.get_double("rho"));
    proto.beta = static_cast<float>(options.get_double("beta"));
    proto.lambda = static_cast<float>(options.get_double("lambda"));
    proto.tied_weights = options.has("tied");
    core::StackedAutoencoder model(parse_layers(spec), proto, seed);
    DEEPPHI_CHECK_MSG(model.layer_sizes().front() == in_memory->dim(),
                      "--layers first entry must equal the dataset dim");
    const auto reports = model.pretrain(*in_memory, tcfg);
    for (std::size_t k = 0; k < reports.size(); ++k)
      print_report(("stack layer " + std::to_string(k)).c_str(), reports[k]);
    if (options.has("save")) {
      core::save_model(model, options.get_string("save"));
      std::printf("saved to %s\n", options.get_string("save").c_str());
    }
  } else if (model_kind == "dbn") {
    DEEPPHI_CHECK_MSG(in_memory != nullptr,
                      "--model=dbn pretrains on materialized layer "
                      "activations and cannot stream --data-manifest; load "
                      "the set with --data/--idx/--synthetic instead");
    const std::string spec = options.get_string("layers");
    DEEPPHI_CHECK_MSG(!spec.empty(), "--model=dbn needs --layers=a,b,c");
    core::RbmConfig proto;
    proto.cd_k = static_cast<int>(options.get_int("cd-k"));
    if (options.has("gaussian-visible"))
      proto.visible_type = core::VisibleType::kGaussian;
    core::Dbn model(parse_layers(spec), proto, seed);
    DEEPPHI_CHECK_MSG(model.layer_sizes().front() == in_memory->dim(),
                      "--layers first entry must equal the dataset dim");
    const auto reports = model.pretrain(*in_memory, tcfg);
    for (std::size_t k = 0; k < reports.size(); ++k)
      print_report(("dbn layer " + std::to_string(k)).c_str(), reports[k]);
    if (options.has("save")) {
      core::save_model(model, options.get_string("save"));
      std::printf("saved to %s\n", options.get_string("save").c_str());
    }
  } else {
    throw util::Error("unknown --model '" + model_kind +
                      "' (sae|rbm|stack|dbn)");
  }

  if (cluster) {
    const phi::ClusterCommStats& comm = cluster->comm();
    const double per_step_ms =
        comm.collectives > 0
            ? comm.seconds / static_cast<double>(comm.collectives) * 1e3
            : 0.0;
    std::printf(
        "cluster: %lld all-reduces (%.3f ms each), %.2f MB on the wire, "
        "communication %.1f%% of modeled step time\n",
        static_cast<long long>(comm.collectives), per_step_ms,
        comm.wire_bytes / 1e6, cluster->comm_share() * 100.0);
  }
  if (options.has("profile")) {
    const std::string path = options.get_string("profile");
    obs::Profiler::write_chrome_json(path);
    std::printf("profile: %u host threads traced, written to %s\n",
                obs::Profiler::thread_count(), path.c_str());
    const std::string report = obs::Profiler::report();
    if (!report.empty()) std::printf("%s", report.c_str());
  }
  if (telemetry) {
    telemetry->flush();
    std::printf("telemetry: %lld records written to %s\n",
                static_cast<long long>(telemetry->records_written()),
                options.get_string("telemetry").c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deepphi_train: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
}
