# CTest script: the sharded streaming pipeline end to end through the CLIs.
#
#   1. deepphi_shard generates the default synthetic corpus and writes it as
#      small shards + manifest, then --check re-hashes every payload.
#   2. deepphi_train streams the manifest (--data-manifest, shuffled) with
#      telemetry, and the run header must carry the dataset provenance
#      (dataset_source/format/bytes, total_chunks, shuffle_window).
#   3. The same training run from the in-memory synthetic corpus must
#      produce a BITWISE IDENTICAL checkpoint — the determinism contract of
#      docs/data_pipeline.md, checked with cmake -E compare_files.
execute_process(
  COMMAND ${SHARD} --examples=1024 --out=${WORK}/shards --rows-per-shard=300
  RESULT_VARIABLE shard_rc)
if(NOT shard_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_shard failed: ${shard_rc}")
endif()

execute_process(
  COMMAND ${SHARD} --check=${WORK}/shards/manifest.json
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_shard --check failed: ${check_rc}")
endif()

execute_process(
  COMMAND ${TRAIN} --model=sae --data-manifest=${WORK}/shards/manifest.json
          --epochs=2 --hidden=16 --chunk=128 --batch=16 --shuffle-window=256
          --save=${WORK}/shard_stream.dpsa
          --telemetry ${WORK}/shard_run.jsonl
  RESULT_VARIABLE stream_rc)
if(NOT stream_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train --data-manifest failed: ${stream_rc}")
endif()

execute_process(
  COMMAND ${TRAIN} --model=sae --synthetic=digits --examples=1024
          --epochs=2 --hidden=16 --chunk=128 --batch=16 --shuffle-window=256
          --save=${WORK}/shard_memory.dpsa
  RESULT_VARIABLE memory_rc)
if(NOT memory_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train in-memory twin failed: ${memory_rc}")
endif()

# Bitwise identity: streaming from shards must train the same model as the
# in-memory path under the same seed and shuffle window.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK}/shard_stream.dpsa ${WORK}/shard_memory.dpsa
  RESULT_VARIABLE identical_rc)
if(NOT identical_rc EQUAL 0)
  message(FATAL_ERROR
          "sharded and in-memory checkpoints differ (bitwise contract broken)")
endif()

execute_process(
  COMMAND ${CHECK} --jsonl --require=record --require=seq
          --expect=deepphi.telemetry.v1 --expect=run_header
          --expect=run_summary ${WORK}/shard_run.jsonl
  RESULT_VARIABLE telemetry_rc)
if(NOT telemetry_rc EQUAL 0)
  message(FATAL_ERROR "streaming telemetry failed validation: ${telemetry_rc}")
endif()

# The run header must record the dataset provenance.
file(STRINGS ${WORK}/shard_run.jsonl header_line LIMIT_COUNT 1)
foreach(key "\"dataset_source\":\"sharded\"" "\"dataset_format\":\"f32\""
        "\"dataset_bytes\":262144" "\"total_chunks\":8"
        "\"shuffle_window\":256")
  string(FIND "${header_line}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "run header missing ${key}: ${header_line}")
  endif()
endforeach()

# The run summary must report the pipeline's overlap accounting.
file(STRINGS ${WORK}/shard_run.jsonl lines)
list(GET lines -1 summary_line)
foreach(key "\"load_stall_s\"" "\"overlap_efficiency\"")
  string(FIND "${summary_line}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "run summary missing ${key}: ${summary_line}")
  endif()
endforeach()
