# CTest script: train a model with deepphi_train, then evaluate and export
# codes with deepphi_eval; fail on any non-zero exit.
execute_process(
  COMMAND ${TRAIN} --model=sae --synthetic=digits --examples=512 --epochs=2
          --hidden=16 --save=${WORK}/roundtrip.dpae
  RESULT_VARIABLE train_rc)
if(NOT train_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train failed: ${train_rc}")
endif()
execute_process(
  COMMAND ${EVAL} --model=${WORK}/roundtrip.dpae --synthetic=digits
          --examples=256 --filters=1 --export-codes=${WORK}/roundtrip_codes.dpds
  RESULT_VARIABLE eval_rc)
if(NOT eval_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_eval failed: ${eval_rc}")
endif()
if(NOT EXISTS ${WORK}/roundtrip_codes.dpds)
  message(FATAL_ERROR "codes were not exported")
endif()
