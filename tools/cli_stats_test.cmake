# CTest script: end-to-end smoke of the live stats endpoint. Trains a tiny
# checkpoint, serves it in the background with --stats-port, polls the
# endpoint live with deepphi_top (dashboard mode, capturing the last
# /stats.json and a final /metrics scrape), validates the deepphi.stats.v1
# record with deepphi_json_check, and asserts the per-stage serve.stage.*
# histograms actually collected samples.
execute_process(
  COMMAND ${TRAIN} --model=stack --synthetic=digits --examples=256 --epochs=1
          --layers=64,16 --save=${WORK}/stats_smoke.dpsa
  RESULT_VARIABLE train_rc)
if(NOT train_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train for stats smoke failed: ${train_rc}")
endif()

# Background the server: --stats-port=0 avoids port collisions (the bound
# port lands in stats.port), --stats-linger-s keeps the endpoint up after the
# 0.5s request stream drains so the poller always gets its scrapes in.
file(REMOVE ${WORK}/stats.port ${WORK}/stats.json ${WORK}/stats_metrics.txt)
execute_process(
  COMMAND bash -c "'${SERVE}' --model='${WORK}/stats_smoke.dpsa' --rate=3000 \
--requests=1500 --max-batch=32 --max-delay-ms=1 --stats-port=0 \
--stats-port-file='${WORK}/stats.port' --stats-linger-s=10 \
> '${WORK}/stats_serve.log' 2>&1 & echo $! > '${WORK}/stats_serve.pid'"
  RESULT_VARIABLE bg_rc)
if(NOT bg_rc EQUAL 0)
  message(FATAL_ERROR "backgrounding deepphi_serve failed: ${bg_rc}")
endif()

# Live polling: --port-file waits for the server to publish its port, the
# first fetch retries across server start-up, and the 4 x 500ms cadence
# spans the request stream so the last capture sees completed traffic.
execute_process(
  COMMAND ${TOP} --port-file=${WORK}/stats.port --count=4 --interval-ms=500
          --no-clear --out=${WORK}/stats.json
          --metrics-out=${WORK}/stats_metrics.txt
  RESULT_VARIABLE top_rc)

# Always reap the background server before judging results.
execute_process(
  COMMAND bash -c "pid=$(cat '${WORK}/stats_serve.pid'); \
for i in $(seq 1 150); do kill -0 $pid 2>/dev/null || exit 0; sleep 0.2; done; \
kill $pid 2>/dev/null; echo 'deepphi_serve did not exit'; exit 1"
  RESULT_VARIABLE reap_rc)

if(NOT top_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_top polling failed: ${top_rc}")
endif()
if(NOT reap_rc EQUAL 0)
  message(FATAL_ERROR "background deepphi_serve failed to drain: ${reap_rc}")
endif()

# The captured /stats.json must be a valid deepphi.stats.v1 record carrying
# every per-stage histogram.
execute_process(
  COMMAND ${CHECK} --schema=deepphi.stats.v1
          --require=serve.latency --require=serve.stage.queue_wait
          --require=serve.stage.collect --require=serve.stage.compute
          --require=serve.stage.scatter ${WORK}/stats.json
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "stats.json failed validation: ${check_rc}")
endif()

# Populated, not just present: every stage histogram reports count >= 1.
file(READ ${WORK}/stats.json stats_body)
foreach(stage serve.latency serve.stage.queue_wait serve.stage.collect
        serve.stage.compute serve.stage.scatter)
  if(NOT stats_body MATCHES "\"${stage}\":\\{\"count\":[1-9]")
    message(FATAL_ERROR "histogram ${stage} is empty in stats.json")
  endif()
endforeach()

# The Prometheus scrape must carry the histogram series for the same stages.
file(READ ${WORK}/stats_metrics.txt metrics_body)
foreach(series deepphi_serve_latency deepphi_serve_stage_compute
        deepphi_serve_stage_queue_wait)
  if(NOT metrics_body MATCHES "# TYPE ${series} histogram")
    message(FATAL_ERROR "missing '# TYPE ${series} histogram' in /metrics")
  endif()
  if(NOT metrics_body MATCHES "${series}_bucket{le=\"\\+Inf\"}")
    message(FATAL_ERROR "missing ${series} +Inf bucket in /metrics")
  endif()
endforeach()

# The server side printed its shutdown stage table and endpoint summary.
file(READ ${WORK}/stats_serve.log serve_log)
foreach(marker "--- stage latency (ms) ---" "stats: answered")
  string(FIND "${serve_log}" "${marker}" marker_pos)
  if(marker_pos EQUAL -1)
    message(FATAL_ERROR "missing '${marker}' in deepphi_serve output")
  endif()
endforeach()
