# CTest script: end-to-end smoke of the multi-model serving tier. Trains two
# checkpoints plus a swap candidate, serves both models in one process with
# per-model latency budgets (repeatable --model NAME=PATH:BUDGET_MS flags),
# hot-swaps one model through /admin/swap mid-traffic via deepphi_top --get,
# and asserts the per-model serve.model.<name>.* series in /stats.json, the
# model-labelled Prometheus families in /metrics, and the per-model telemetry
# summaries. Also checks the deprecated bare-path --model form still serves
# (with its migration warning).
foreach(ckpt small big small_v2)
  if(ckpt STREQUAL "big")
    set(layers 64,32,8)
  else()
    set(layers 64,16)
  endif()
  if(ckpt STREQUAL "small_v2")
    set(epochs 2)  # same shape as small, different weights
  else()
    set(epochs 1)
  endif()
  execute_process(
    COMMAND ${TRAIN} --model=stack --synthetic=digits --examples=256
            --epochs=${epochs} --layers=${layers}
            --save=${WORK}/reg_${ckpt}.dpsa
    RESULT_VARIABLE train_rc)
  if(NOT train_rc EQUAL 0)
    message(FATAL_ERROR "deepphi_train for ${ckpt} failed: ${train_rc}")
  endif()
endforeach()

# Background the two-model server: tight budget on `small`, loose on `big`,
# adaptive batching on, admission control armed, stats endpoint attached.
file(REMOVE ${WORK}/reg.port ${WORK}/reg_stats.json ${WORK}/reg_metrics.txt
     ${WORK}/reg_models.json ${WORK}/reg_swap.json)
execute_process(
  COMMAND bash -c "'${SERVE}' --model small='${WORK}/reg_small.dpsa':5 \
--model big='${WORK}/reg_big.dpsa':20 --rate=1500 --requests=3000 \
--max-batch=32 --shed-fraction=0.9 --workers=2 --stats-port=0 \
--stats-port-file='${WORK}/reg.port' --stats-linger-s=10 \
--telemetry='${WORK}/reg_serve.jsonl' \
> '${WORK}/reg_serve.log' 2>&1 & echo $! > '${WORK}/reg_serve.pid'"
  RESULT_VARIABLE bg_rc)
if(NOT bg_rc EQUAL 0)
  message(FATAL_ERROR "backgrounding deepphi_serve failed: ${bg_rc}")
endif()

# Wait for the port file, then list the registry through the admin route
# (the retries cover server start-up).
execute_process(
  COMMAND bash -c "'${TOP}' --port-file='${WORK}/reg.port' \
--get=/admin/models > '${WORK}/reg_models.json'"
  RESULT_VARIABLE models_rc)
if(NOT models_rc EQUAL 0)
  message(FATAL_ERROR "/admin/models fetch failed: ${models_rc}")
endif()

# Hot swap `small` to the v2 checkpoint while the 2s request stream is still
# running: zero-downtime — the server keeps serving throughout.
execute_process(
  COMMAND bash -c "'${TOP}' --port-file='${WORK}/reg.port' \
--get='/admin/swap?model=small&path=${WORK}/reg_small_v2.dpsa' \
> '${WORK}/reg_swap.json'"
  RESULT_VARIABLE swap_rc)
if(NOT swap_rc EQUAL 0)
  message(FATAL_ERROR "/admin/swap fetch failed: ${swap_rc}")
endif()

# A bad swap must come back as HTTP 400, not take the server down.
execute_process(
  COMMAND ${TOP} --port-file=${WORK}/reg.port
          --get=/admin/swap?model=ghost&path=${WORK}/reg_small_v2.dpsa
  RESULT_VARIABLE bad_swap_rc ERROR_QUIET OUTPUT_QUIET)
if(bad_swap_rc EQUAL 0)
  message(FATAL_ERROR "swap of unknown model should have failed")
endif()

# Poll the dashboard across the remaining stream and capture the final
# /stats.json and /metrics.
execute_process(
  COMMAND ${TOP} --port-file=${WORK}/reg.port --count=3 --interval-ms=400
          --no-clear --out=${WORK}/reg_stats.json
          --metrics-out=${WORK}/reg_metrics.txt
  RESULT_VARIABLE top_rc)

# Always reap the background server before judging results.
execute_process(
  COMMAND bash -c "pid=$(cat '${WORK}/reg_serve.pid'); \
for i in $(seq 1 150); do kill -0 $pid 2>/dev/null || exit 0; sleep 0.2; done; \
kill $pid 2>/dev/null; echo 'deepphi_serve did not exit'; exit 1"
  RESULT_VARIABLE reap_rc)

if(NOT top_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_top polling failed: ${top_rc}")
endif()
if(NOT reap_rc EQUAL 0)
  message(FATAL_ERROR "background deepphi_serve failed to drain: ${reap_rc}")
endif()

# /admin/models listed both models with their budgets.
file(READ ${WORK}/reg_models.json models_body)
foreach(marker "\"name\":\"big\"" "\"name\":\"small\"" "\"budget_ms\":5"
        "\"budget_ms\":20" "\"precision\":\"fp32\"")
  string(FIND "${models_body}" "${marker}" marker_pos)
  if(marker_pos EQUAL -1)
    message(FATAL_ERROR "missing ${marker} in /admin/models body")
  endif()
endforeach()

# The swap bumped small to version 2 and reported the new checkpoint.
file(READ ${WORK}/reg_swap.json swap_body)
foreach(marker "\"model\":\"small\"" "\"old_version\":1" "\"new_version\":2"
        "\"magic\":\"DPSA\"")
  string(FIND "${swap_body}" "${marker}" marker_pos)
  if(marker_pos EQUAL -1)
    message(FATAL_ERROR "missing ${marker} in /admin/swap body")
  endif()
endforeach()

# The captured /stats.json is a valid deepphi.stats.v1 record carrying the
# per-model series for BOTH models alongside the process-wide ones.
execute_process(
  COMMAND ${CHECK} --schema=deepphi.stats.v1
          --require=serve.latency
          --require=serve.model.small.latency
          --require=serve.model.small.compute
          --require=serve.model.big.latency
          --require=serve.model.small.requests
          --require=serve.model.big.requests
          --require=serve.model.small.queue_depth
          --require=serve.model.small.budget_ms ${WORK}/reg_stats.json
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "reg_stats.json failed validation: ${check_rc}")
endif()

# Populated, not just present: both lanes actually served traffic, and the
# swap gauge reads version 2 for small, 1 for big.
file(READ ${WORK}/reg_stats.json stats_body)
foreach(series serve.model.small.latency serve.model.big.latency)
  if(NOT stats_body MATCHES "\"${series}\":\\{\"count\":[1-9]")
    message(FATAL_ERROR "histogram ${series} is empty in stats.json")
  endif()
endforeach()
if(NOT stats_body MATCHES "\"serve.model.small.version\":2")
  message(FATAL_ERROR "small did not reach version 2 in stats.json")
endif()
if(NOT stats_body MATCHES "\"serve.model.big.version\":1")
  message(FATAL_ERROR "big should still be version 1 in stats.json")
endif()

# The Prometheus scrape renders per-model series as ONE family with a model
# label, grouped under a single TYPE line.
file(READ ${WORK}/reg_metrics.txt metrics_body)
foreach(marker
        "# TYPE deepphi_serve_model_latency histogram"
        "deepphi_serve_model_latency_bucket{model=\"small\",le=\"\\+Inf\"}"
        "deepphi_serve_model_latency_bucket{model=\"big\",le=\"\\+Inf\"}"
        "deepphi_serve_model_requests_total{model=\"small\"}"
        "deepphi_serve_model_version{model=\"small\"} 2"
        "deepphi_serve_model_budget_ms{model=\"small\"} 5")
  if(NOT metrics_body MATCHES "${marker}")
    message(FATAL_ERROR "missing '${marker}' in /metrics")
  endif()
endforeach()
string(REGEX MATCHALL "# TYPE deepphi_serve_model_latency histogram"
       type_lines "${metrics_body}")
list(LENGTH type_lines type_count)
if(NOT type_count EQUAL 1)
  message(FATAL_ERROR
          "family deepphi_serve_model_latency must have exactly one TYPE "
          "line, found ${type_count}")
endif()

# Telemetry carries the per-model summaries plus the aggregate.
execute_process(
  COMMAND ${CHECK} --jsonl --require=record --require=seq
          --expect=deepphi.serve.v1 --expect=serve_config
          --expect=serve_model_summary --expect=serve_summary
          --expect=slo_met ${WORK}/reg_serve.jsonl
  RESULT_VARIABLE telemetry_rc)
if(NOT telemetry_rc EQUAL 0)
  message(FATAL_ERROR "serve telemetry failed validation: ${telemetry_rc}")
endif()

# The server printed a per-model summary row for each lane.
file(READ ${WORK}/reg_serve.log serve_log)
foreach(marker "--- per-model ---" "serving small:" "serving big:")
  string(FIND "${serve_log}" "${marker}" marker_pos)
  if(marker_pos EQUAL -1)
    message(FATAL_ERROR "missing '${marker}' in deepphi_serve output")
  endif()
endforeach()

# Deprecated bare-path form: still serves (as model 'default'), warns once.
execute_process(
  COMMAND ${SERVE} --model=${WORK}/reg_small.dpsa --rate=2000 --requests=100
          --max-delay-ms=1
  RESULT_VARIABLE legacy_rc OUTPUT_VARIABLE legacy_out
  ERROR_VARIABLE legacy_err)
if(NOT legacy_rc EQUAL 0)
  message(FATAL_ERROR "deprecated single-model form failed: ${legacy_rc}")
endif()
if(NOT legacy_err MATCHES "deprecated")
  message(FATAL_ERROR "bare-path --model should print a migration warning")
endif()
if(NOT legacy_out MATCHES "serving default:")
  message(FATAL_ERROR "bare-path --model should serve under name 'default'")
endif()
