# CTest script: train a tiny checkpoint, serve it with synthetic open-loop
# arrivals under deepphi_serve, and validate the emitted deepphi.serve.v1
# telemetry (config record, per-batch records, latency summary) with
# deepphi_json_check. Then replay the same load from a trace file.
execute_process(
  COMMAND ${TRAIN} --model=stack --synthetic=digits --examples=256 --epochs=1
          --layers=64,16 --save=${WORK}/serve_smoke.dpsa
  RESULT_VARIABLE train_rc)
if(NOT train_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_train for serve smoke failed: ${train_rc}")
endif()

execute_process(
  COMMAND ${SERVE} --model=${WORK}/serve_smoke.dpsa --rate=4000 --requests=400
          --max-batch=32 --max-delay-ms=1
          --telemetry=${WORK}/serve_run.jsonl
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_serve synthetic run failed: ${serve_rc}")
endif()

execute_process(
  COMMAND ${CHECK} --jsonl --require=record --require=seq
          --expect=deepphi.serve.v1 --expect=serve_config
          --expect=serve_batch --expect=serve_summary
          --expect=latency_p95_s ${WORK}/serve_run.jsonl
  RESULT_VARIABLE telemetry_rc)
if(NOT telemetry_rc EQUAL 0)
  message(FATAL_ERROR "serve telemetry JSONL failed validation: ${telemetry_rc}")
endif()

# Trace replay: a handful of bursty arrivals, comments and blanks allowed.
file(WRITE ${WORK}/serve_trace.txt
"# arrival offsets in seconds
0.000
0.000
0.001

0.010
0.010
0.011
0.050
")
execute_process(
  COMMAND ${SERVE} --model=${WORK}/serve_smoke.dpsa
          --trace=${WORK}/serve_trace.txt --max-batch=4 --max-delay-ms=1
  RESULT_VARIABLE replay_rc)
if(NOT replay_rc EQUAL 0)
  message(FATAL_ERROR "deepphi_serve trace replay failed: ${replay_rc}")
endif()
