// deepphi_top — live terminal dashboard for a deepphi_serve stats endpoint.
//
// Polls /stats.json (the deepphi.stats.v1 record served by
// `deepphi_serve --stats-port=...`) and redraws a compact top-style view:
// the rolling-window rate and tail quantiles, a per-model row for every
// `serve.model.<name>.*` series (multi-model serving), the per-stage latency
// table, and the non-zero counters/gauges.
//
//   deepphi_serve --model=m.dpsa --rate=2000 --stats-port=9100 &
//   deepphi_top --port=9100                      # 1 Hz dashboard until ^C
//   deepphi_top --port=9100 --count=1 --raw      # one poll, raw JSON dump
//   deepphi_top --port-file=stats.port --count=3 # port from --stats-port-file
//
//   # one-shot GET of any endpoint path (admin control plane without curl)
//   deepphi_top --port=9100 --get=/admin/models
//   deepphi_top --port=9100 --get='/admin/swap?model=small&path=/abs/new.dpae'
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include "util/error.hpp"
#include "util/http_listener.hpp"
#include "util/json_reader.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"

namespace {

using namespace deepphi;

int read_port_file(const std::string& path, int retries) {
  for (int attempt = 0;; ++attempt) {
    std::ifstream in(path);
    std::string line;
    if (in.good() && std::getline(in, line) && !util::trim(line).empty())
      return static_cast<int>(util::parse_int(util::trim(line)));
    DEEPPHI_CHECK_MSG(attempt < retries,
                      "port file '" << path << "' not readable after "
                                    << retries << " attempts");
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

std::string fetch_with_retries(const std::string& host, int port,
                               const std::string& path, int retries) {
  for (int attempt = 0;; ++attempt) {
    try {
      return util::http_get(host, port, path);
    } catch (const std::exception&) {
      if (attempt >= retries) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }
}

void print_histogram_row(const std::string& name, const util::JsonValue& h) {
  std::printf("  %-24s %9.0f %8.3f %8.3f %8.3f %8.3f %8.3f\n", name.c_str(),
              h.at("count").as_number(), h.at("mean").as_number() * 1e3,
              h.at("p50").as_number() * 1e3, h.at("p95").as_number() * 1e3,
              h.at("p99").as_number() * 1e3, h.at("max").as_number() * 1e3);
}

/// Model names minted into `serve.model.<name>.*` series by the server.
std::set<std::string> model_names(const util::JsonValue& stats) {
  static constexpr const char kPrefix[] = "serve.model.";
  static constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  std::set<std::string> names;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (!stats.has(section)) continue;
    for (const auto& [name, v] : stats.at(section).as_object()) {
      if (name.rfind(kPrefix, 0) != 0) continue;
      const std::size_t dot = name.find('.', kPrefixLen);
      if (dot != std::string::npos)
        names.insert(name.substr(kPrefixLen, dot - kPrefixLen));
    }
  }
  return names;
}

void render_model_rows(const util::JsonValue& stats) {
  const std::set<std::string> names = model_names(stats);
  if (names.empty()) return;
  const util::JsonValue& counters = stats.at("counters");
  const util::JsonValue& gauges = stats.at("gauges");
  const util::JsonValue& histograms = stats.at("histograms");
  const auto counter = [&](const std::string& key) {
    return counters.has(key) ? counters.at(key).as_number() : 0.0;
  };
  const auto gauge = [&](const std::string& key) {
    return gauges.has(key) ? gauges.at(key).as_number() : 0.0;
  };
  std::printf("\n  %-16s %4s %9s %7s %7s %6s %7s %9s %8s %8s %9s\n", "model",
              "ver", "requests", "shed", "batches", "queue", "batch*",
              "delay*ms", "p50_ms", "p99_ms", "budget_ms");
  for (const std::string& name : names) {
    const std::string p = "serve.model." + name + ".";
    double p50 = 0, p99 = 0;
    if (histograms.has(p + "latency")) {
      const util::JsonValue& h = histograms.at(p + "latency");
      p50 = h.at("p50").as_number() * 1e3;
      p99 = h.at("p99").as_number() * 1e3;
    }
    std::printf(
        "  %-16s %4.0f %9.0f %7.0f %7.0f %6.0f %7.0f %9.3f %8.3f %8.3f "
        "%9.1f\n",
        name.c_str(), gauge(p + "version"), counter(p + "requests"),
        counter(p + "shed"), counter(p + "batches"),
        gauge(p + "queue_depth"), gauge(p + "decided_batch"),
        gauge(p + "decided_delay_ms"), p50, p99, gauge(p + "budget_ms"));
  }
  std::printf("  (* = live adaptive-batcher decision; see docs/serving.md)\n");
}

void render(const util::JsonValue& stats, const std::string& host, int port,
            std::int64_t poll) {
  std::printf("deepphi_top — %s:%d   uptime %.1fs   poll #%lld\n",
              host.c_str(), port, stats.at("uptime_s").as_number(),
              static_cast<long long>(poll));

  const util::JsonValue& w = stats.at("window");
  std::printf(
      "window (last %.0fs of %.0f): %0.f req  %.1f req/s  "
      "p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
      w.at("covered_s").as_number(),
      w.at("interval_s").as_number() * w.at("intervals").as_number(),
      w.at("count").as_number(), w.at("rate_rps").as_number(),
      w.at("p50_s").as_number() * 1e3, w.at("p95_s").as_number() * 1e3,
      w.at("p99_s").as_number() * 1e3);

  render_model_rows(stats);

  // Per-model series render as table rows above; keep the raw dumps to the
  // process-wide names.
  const auto per_model = [](const std::string& name) {
    return name.rfind("serve.model.", 0) == 0;
  };
  std::printf("\n  %-24s %9s %8s %8s %8s %8s %8s\n", "histogram (ms)", "count",
              "mean", "p50", "p95", "p99", "max");
  for (const auto& [name, h] : stats.at("histograms").as_object())
    if (!per_model(name)) print_histogram_row(name, h);

  std::printf("\n  counters:");
  for (const auto& [name, v] : stats.at("counters").as_object())
    if (v.as_number() != 0 && !per_model(name))
      std::printf("  %s=%.0f", name.c_str(), v.as_number());
  std::printf("\n  gauges:");
  for (const auto& [name, v] : stats.at("gauges").as_object())
    if (v.as_number() != 0 && !per_model(name))
      std::printf("  %s=%.4g", name.c_str(), v.as_number());
  std::printf("\n");
}

int run(int argc, char** argv) {
  util::Options options = util::Options::parse(argc, argv);
  options.declare("host", "stats endpoint host (dotted IPv4)", "127.0.0.1");
  options.declare("port", "stats endpoint port (deepphi_serve --stats-port)");
  options.declare("port-file",
                  "read the port from this file (written by deepphi_serve "
                  "--stats-port-file); retried until it appears");
  options.declare("interval-ms", "poll period", "1000");
  options.declare("count", "stop after this many polls (0 = until ^C)", "0");
  options.declare("raw", "dump the raw /stats.json body instead of the "
                  "dashboard");
  options.declare("no-clear", "append frames instead of clearing the screen");
  options.declare("connect-retries",
                  "initial connection attempts, 200ms apart (covers server "
                  "start-up)", "25");
  options.declare("get",
                  "one-shot GET of this endpoint path (e.g. /admin/models or "
                  "/admin/swap?model=NAME&path=CKPT); prints the body and "
                  "exits");
  options.declare("out", "also write the last /stats.json body to this file");
  options.declare("metrics-out",
                  "after the last poll, fetch /metrics once and write the "
                  "Prometheus text to this file");
  options.declare("help", "print usage");
  if (options.has("help")) {
    std::printf("%s", options.help("deepphi_top").c_str());
    return 0;
  }
  options.validate();
  DEEPPHI_CHECK_MSG(options.has("port") || options.has("port-file"),
                    "--port=<n> or --port-file=<path> is required");

  const std::string host = options.get_string("host");
  const int retries = options.get_int("connect-retries");
  const int port = options.has("port")
                       ? options.get_int("port")
                       : read_port_file(options.get_string("port-file"),
                                        retries);
  if (options.has("get")) {
    std::fputs(
        fetch_with_retries(host, port, options.get_string("get"), retries)
            .c_str(),
        stdout);
    return 0;
  }

  const std::int64_t count = options.get_int("count");
  const auto interval =
      std::chrono::milliseconds(options.get_int("interval-ms"));
  const bool raw = options.has("raw");
  const bool clear = !options.has("no-clear") && !raw;

  std::string body;
  for (std::int64_t poll = 1; count == 0 || poll <= count; ++poll) {
    // Retries only cover the first poll (server still starting); after that
    // a dead endpoint should fail fast.
    body = fetch_with_retries(host, port, "/stats.json",
                              poll == 1 ? retries : 0);
    if (raw) {
      std::fputs(body.c_str(), stdout);
    } else {
      const util::JsonValue stats = util::parse_json(body);
      if (clear) std::printf("\033[H\033[2J");
      render(stats, host, port, poll);
    }
    std::fflush(stdout);
    if (count == 0 || poll < count) std::this_thread::sleep_for(interval);
  }
  if (options.has("out")) {
    std::ofstream out(options.get_string("out"));
    out << body;
    DEEPPHI_CHECK_MSG(out.good(), "cannot write --out '"
                                      << options.get_string("out") << "'");
  }
  if (options.has("metrics-out")) {
    std::ofstream out(options.get_string("metrics-out"));
    out << util::http_get(host, port, "/metrics");
    DEEPPHI_CHECK_MSG(out.good(), "cannot write --metrics-out '"
                                      << options.get_string("metrics-out")
                                      << "'");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deepphi_top: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
}
