// Validates JSON / JSONL files emitted by the observability layer: bench
// --json tables, profiler Chrome traces, and telemetry JSONL runs. Used by
// ctest and scripts/profile_run.sh so "the file is machine-readable" is an
// enforced property, not a hope.
//
// usage: deepphi_json_check [--jsonl] [--schema=NAME] [--require=KEY]...
//                           [--expect=SUBSTR]... FILE
//   --jsonl          validate each non-empty line as a standalone JSON value
//                    (default: the whole file is one JSON value)
//   --schema=NAME    the document must carry "schema": "NAME"; for known
//                    schemas (deepphi.stats.v1) the schema's required members
//                    are added to the --require set automatically
//   --require=KEY    the document (every line, with --jsonl) must contain the
//                    member name "KEY"
//   --expect=SUBSTR  the raw file must contain SUBSTR (e.g. a schema tag)
//
// Exits 0 when all checks pass, 1 otherwise. Flags are parsed by hand: the
// positional FILE argument must not be swallowed as a flag value.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_writer.hpp"
#include "util/string_util.hpp"

namespace {

bool contains_key(const std::string& text, const std::string& key) {
  return text.find("\"" + key + "\"") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  using deepphi::util::json_is_valid;

  bool jsonl = false;
  std::vector<std::string> required_keys;
  std::vector<std::string> expected_substrings;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jsonl") {
      jsonl = true;
    } else if (deepphi::util::starts_with(arg, "--schema=")) {
      const std::string schema = arg.substr(9);
      expected_substrings.push_back("\"schema\":\"" + schema + "\"");
      if (schema == "deepphi.stats.v1") {
        for (const char* key : {"schema", "uptime_s", "server", "window",
                                "counters", "gauges", "histograms"})
          required_keys.push_back(key);
      }
    } else if (deepphi::util::starts_with(arg, "--require=")) {
      required_keys.push_back(arg.substr(10));
    } else if (deepphi::util::starts_with(arg, "--expect=")) {
      expected_substrings.push_back(arg.substr(9));
    } else if (arg == "--help") {
      std::printf(
          "usage: deepphi_json_check [--jsonl] [--require=KEY]... "
          "[--expect=SUBSTR]... FILE\n");
      return 0;
    } else if (deepphi::util::starts_with(arg, "--")) {
      std::fprintf(stderr, "deepphi_json_check: unknown flag %s\n", arg.c_str());
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "deepphi_json_check: more than one FILE argument\n");
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "deepphi_json_check: missing FILE argument\n");
    return 1;
  }

  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "deepphi_json_check: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  int failures = 0;
  if (jsonl) {
    std::istringstream lines(text);
    std::string line;
    int lineno = 0;
    int records = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.empty()) continue;
      ++records;
      if (!json_is_valid(line)) {
        std::fprintf(stderr, "%s:%d: invalid JSON record\n", path.c_str(), lineno);
        ++failures;
        continue;
      }
      for (const std::string& key : required_keys) {
        if (!contains_key(line, key)) {
          std::fprintf(stderr, "%s:%d: missing required key \"%s\"\n",
                       path.c_str(), lineno, key.c_str());
          ++failures;
        }
      }
    }
    if (records == 0) {
      std::fprintf(stderr, "%s: no JSONL records\n", path.c_str());
      ++failures;
    }
  } else {
    if (!json_is_valid(text)) {
      std::fprintf(stderr, "%s: invalid JSON\n", path.c_str());
      ++failures;
    }
    for (const std::string& key : required_keys) {
      if (!contains_key(text, key)) {
        std::fprintf(stderr, "%s: missing required key \"%s\"\n", path.c_str(),
                     key.c_str());
        ++failures;
      }
    }
  }
  for (const std::string& substr : expected_substrings) {
    if (text.find(substr) == std::string::npos) {
      std::fprintf(stderr, "%s: missing expected content '%s'\n", path.c_str(),
                   substr.c_str());
      ++failures;
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "deepphi_json_check: %d check(s) failed for %s\n",
                 failures, path.c_str());
    return 1;
  }
  std::printf("deepphi_json_check: %s ok\n", path.c_str());
  return 0;
}
