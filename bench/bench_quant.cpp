// Int8 quantized serving vs fp32 — the low-precision inference tier of
// ROADMAP item "quantized inference path".
//
// The related Xeon Phi studies (Viebke & Pllana; CHAOS) find these wide
// encoder GEMMs bandwidth-bound, which is exactly where int8 pays: weights
// shrink 4x and the VNNI-class dot kernel retires 4 multiply-accumulates
// per lane per instruction. This bench measures the real serving path
// (RequestQueue -> batcher -> ThreadPool -> Encoder::encode) on Fig. 7-class
// single-layer shapes, fp32 vs the same model quantized with
// core::QuantizedEncoder, at the paper-favored coalesce size of 64 — plus
// the accuracy side of the trade: mean/max |int8 - fp32| encode delta on a
// probe batch, reported in the same table (and JSON document) as the
// throughput.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "core/quantized_encoder.hpp"
#include "core/sparse_autoencoder.hpp"
#include "la/simd/dispatch.hpp"
#include "serve/inference_server.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace {

using namespace deepphi;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

la::Matrix random_rows(la::Index rows, la::Index dim, std::uint64_t seed) {
  util::Rng rng(seed, /*stream=*/0x8BA7);
  la::Matrix m(rows, dim);
  for (la::Index i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform_float();
  return m;
}

/// Closed-loop saturation (same shape as bench_serving): keep a fixed window
/// outstanding for `seconds`, count completions.
double served_rps(const core::Encoder& model, la::Index max_batch,
                  double seconds, const la::Matrix& inputs) {
  serve::ServeConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_delay_s = 1e-3;
  cfg.queue_capacity = 4096;
  serve::InferenceServer server(model, cfg);

  std::deque<std::future<serve::Reply>> window;
  const std::size_t window_size = 512;
  const double start = now_s();
  la::Index next = 0;
  while (now_s() - start < seconds) {
    while (window.size() >= window_size) {
      window.front().get();
      window.pop_front();
    }
    window.push_back(server.submit(inputs.row(next), inputs.cols()));
    next = (next + 1) % inputs.rows();
  }
  for (auto& f : window) f.get();
  const double wall = now_s() - start;
  server.shutdown();
  return static_cast<double>(server.stats().completed) / wall;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepphi;
  util::Options options = util::Options::parse(argc, argv);
  bench::declare_common_flags(options);
  options.declare("seconds", "measurement window per configuration", "0.5");
  options.declare("shapes",
                  "visible x hidden layer shapes to sweep (Fig. 7-class)",
                  "576x1024,1024x4096,2048x8192");
  options.declare("max-batch", "serving coalesce size", "64");
  options.declare("group", "quantization group (codes per scale)", "64");
  options.declare("probe", "probe batch rows for the accuracy delta", "256");
  options.validate();

  bench::banner(
      "Int8 quantized serving vs fp32",
      "Served rows/s of InferenceServer at the paper-favored batch size, "
      "fp32 encoder vs the same weights groupwise-quantized to int8 "
      "(VNNI-class quant_dot kernels), with the encode-accuracy delta.");
  bench::set_precision("int8");

  const double seconds = options.get_double("seconds");
  const auto max_batch = static_cast<la::Index>(options.get_int("max-batch"));
  const auto group = static_cast<la::Index>(options.get_int("group"));
  const auto probe = static_cast<la::Index>(options.get_int("probe"));

  std::printf("tier: %s, closed-loop window 512, max_batch %lld, %.2fs per "
              "point\n\n",
              la::simd::tier_name(la::simd::active_tier()),
              static_cast<long long>(max_batch), seconds);

  util::Table table({"shape", "fp32_rps", "int8_rps", "speedup",
                     "mean_abs_err", "max_abs_err"});
  for (const std::string& spec : util::split(options.get_string("shapes"), ',')) {
    const std::vector<std::string> dims = util::split(spec, 'x');
    DEEPPHI_CHECK_MSG(dims.size() == 2,
                      "--shapes entries must be VISIBLExHIDDEN, got " << spec);
    core::SaeConfig cfg;
    cfg.visible = static_cast<la::Index>(util::parse_double(dims[0]));
    cfg.hidden = static_cast<la::Index>(util::parse_double(dims[1]));
    const core::SparseAutoencoder fp32(cfg, /*seed=*/7);
    const std::unique_ptr<core::QuantizedEncoder> int8 =
        core::QuantizedEncoder::from(fp32, group);

    // Accuracy first (cheap): probe-batch encode delta.
    const la::Matrix x = random_rows(probe, cfg.visible, 7);
    la::Matrix y_fp32, y_int8;
    fp32.encode(x, y_fp32);
    int8->encode(x, y_int8);
    double mean_abs = 0, max_abs = 0;
    for (la::Index i = 0; i < y_fp32.size(); ++i) {
      const double d = std::fabs(static_cast<double>(y_fp32.data()[i]) -
                                 static_cast<double>(y_int8.data()[i]));
      mean_abs += d;
      max_abs = std::max(max_abs, d);
    }
    mean_abs /= static_cast<double>(y_fp32.size());

    const la::Matrix inputs = random_rows(1024, cfg.visible, 7);
    const double fp32_rps = served_rps(fp32, max_batch, seconds, inputs);
    const double int8_rps = served_rps(*int8, max_batch, seconds, inputs);
    table.add_row({spec, util::Table::cell(fp32_rps),
                   util::Table::cell(int8_rps),
                   util::Table::cell(int8_rps / fp32_rps),
                   util::Table::cell(mean_abs), util::Table::cell(max_abs)});
    std::printf("  %s: fp32 %.0f rows/s, int8 %.0f rows/s (%.2fx), "
                "mean |d| %.2g\n",
                spec.c_str(), fp32_rps, int8_rps, int8_rps / fp32_rps,
                mean_abs);
  }
  std::printf("\n");
  bench::emit(options, table);
  return 0;
}
