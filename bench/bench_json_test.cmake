# CTest script: run a bench binary with --json and validate the emitted
# document against the deepphi.bench.v1 schema shape.
execute_process(COMMAND ${BENCH} --json=${OUT} RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench run failed: ${bench_rc}")
endif()
execute_process(
  COMMAND ${CHECK} --require=schema --require=bench --require=tables
          --require=columns --require=rows --expect=deepphi.bench.v1 ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "bench json failed validation: ${check_rc}")
endif()
