// Reproduces the paper's §IV.A loading-thread experiment (Fig. 5):
// "it costs 13s to transfer 10,000×4096 samples from the host to Intel Xeon
//  Phi and our training time is about 68s. This means that about 17% of the
//  total time is spent on transferring training data" — and the loading
// thread with a multi-chunk device ring buffer hides nearly all of it.
//
// Two scenarios:
//  * paper-calibrated — per-chunk compute pinned to the paper's 68 s;
//  * accounting-based — per-chunk compute taken from the real Improved-level
//    SAE step stats at network 1024×4096.
#include <cstdio>

#include "bench_common.hpp"
#include "core/levels.hpp"

namespace {

using namespace deepphi;

void run_scenario(const util::Options& options, const std::string& name,
                  const phi::KernelStats& per_chunk, double chunk_bytes,
                  int n_chunks) {
  std::printf("--- scenario: %s (%d chunks) ---\n", name.c_str(), n_chunks);
  util::Table table({"loading", "ring", "total_s", "compute_busy_s",
                     "exposed_transfer_pct"});
  struct Config {
    bool async;
    int ring;
    const char* label;
  };
  for (const Config& c : {Config{false, 1, "synchronous"},
                          Config{true, 1, "loading thread, ring=1"},
                          Config{true, 2, "loading thread, ring=2"},
                          Config{true, 4, "loading thread, ring=4"}}) {
    phi::Device device(phi::xeon_phi_5110p_paper_loading());
    phi::Offload offload(device, phi::OffloadConfig{c.async, c.ring});
    const auto report = offload.process_chunks(n_chunks, chunk_bytes, per_chunk);
    table.add_row({c.label, util::Table::cell(static_cast<long long>(c.ring)),
                   util::Table::cell(report.total_s),
                   util::Table::cell(report.compute_busy_s),
                   util::Table::cell(report.exposed_transfer_fraction() * 100)});
  }
  bench::emit(options, table);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepphi;
  util::Options options = util::Options::parse(argc, argv);
  bench::declare_common_flags(options);
  options.validate();

  bench::banner("§IV.A ablation — loading thread & chunk ring buffer (Fig. 5)",
                "Transfer/compute overlap for 10,000x4096-sample chunks.");

  const double chunk_bytes = 10000.0 * 4096 * 4;  // the paper's chunk

  // Scenario 1: the paper's measured balance (13 s transfer, 68 s train).
  {
    const phi::CostModel model(phi::xeon_phi_5110p());
    phi::KernelStats unit = phi::gemm_contribution(1000, 4096, 1024);
    const double unit_s = model.evaluate(unit, 240).compute_s();
    run_scenario(options, "paper-calibrated (68 s compute per chunk)",
                 unit.scaled(68.0 / unit_s), chunk_bytes, 20);
  }

  // Scenario 2: the real Improved-level step at network 1024x4096.
  {
    const core::SaeShape shape{1000, 1024, 4096};
    // One chunk = 10 batches of 1000.
    const phi::KernelStats per_chunk =
        core::sae_batch_stats(shape, core::OptLevel::kImproved).scaled(10.0);
    run_scenario(options, "accounting-based (SAE 1024x4096, batch 1000)",
                 per_chunk, chunk_bytes, 20);
  }
  std::printf(
      "paper: ~17%% of serialized time is transfer; a loading thread with a\n"
      "ring of >= 2 chunks removes nearly all of it (scenario 1). Scenario 2\n"
      "shows the flip side the paper's future work warns about: once the\n"
      "compute side is fully optimized, the measured loading path becomes the\n"
      "bottleneck and overlap alone cannot hide it (\"the transferring cost\n"
      "can be intolerable\").\n");
  return 0;
}
